"""Generate the bundled sample measurement CSV (one-time, deterministic).

Produces ``src/repro/solar/ingest/data/sample_midc.csv``: 28 days of
the SPMD synthetic trace written in raw NREL-MIDC shape (date column,
MST time column, GHI channel plus a decoy temperature channel) with a
deterministic set of injected defects, so the ingestion pipeline and CI
can exercise a "real" download -- quality flags, resampling, replay
round trip -- without network access:

* night thermal-offset negatives (exercises clipping);
* spike faults above the plausibility ceiling on four days;
* stuck-at runs (an identical-value plateau) on four days;
* dropout runs (midday zeros) on four days;
* missing telemetry on four days, in all three wild forms: empty value
  cells, ``-99999`` sentinels, and entirely absent rows.

Every defect is placed by fixed arithmetic (no RNG beyond the synthetic
generator's own seeded weather), so re-running this script reproduces
the checked-in file byte-for-byte.

Usage::

    PYTHONPATH=src python scripts/generate_sample_midc.py [--out PATH]
"""

from __future__ import annotations

import argparse
import math
from datetime import date, timedelta
from pathlib import Path

from repro.solar.datasets import build_dataset

N_DAYS = 28
START = date(2010, 3, 1)

#: (day, slot) single-sample spikes and their amplitudes (> 1500 W/m^2).
SPIKES = [
    (3, 130, 1650.0),
    (3, 141, 1712.0),
    (9, 135, 1820.0),
    (15, 128, 1685.0),
    (15, 150, 1930.0),
    (21, 138, 1760.0),
]

#: (day, start-slot, length) identical-value plateaus (>= 30 min).
STUCK = [(4, 126, 8), (11, 132, 10), (18, 140, 12), (25, 150, 6)]

#: (day, start-slot, length) midday zero runs (>= 20 min).
DROPOUTS = [(5, 128, 5), (12, 136, 6), (19, 144, 8), (26, 152, 4)]

#: (day, start-slot, length, style) missing telemetry windows.
MISSING = [
    (6, 130, 6, "empty"),
    (13, 138, 10, "sentinel"),
    (20, 146, 8, "absent"),
    (24, 125, 5, "empty"),
]


def build_rows():
    trace = build_dataset("SPMD", n_days=N_DAYS)
    spd = trace.samples_per_day
    values = trace.as_days().copy()

    for day, slot, amplitude in SPIKES:
        values[day, slot] = amplitude
    for day, start, length in STUCK:
        values[day, start : start + length] = values[day, start]
    for day, start, length in DROPOUTS:
        values[day, start : start + length] = 0.0
    # Night thermal offset: the first three samples of every day read
    # slightly negative, as real pyranometers do.
    values[:, 0] = -1.8
    values[:, 1] = -1.6
    values[:, 2] = -1.2

    cell_override = {}
    absent = set()
    for day, start, length, style in MISSING:
        for slot in range(start, start + length):
            if style == "absent":
                absent.add((day, slot))
            elif style == "sentinel":
                cell_override[(day, slot)] = "-99999"
            else:
                cell_override[(day, slot)] = ""

    rows = []
    for day in range(N_DAYS):
        stamp = START + timedelta(days=day)
        for slot in range(spd):
            if (day, slot) in absent:
                continue
            minute = slot * trace.resolution_minutes
            ghi = cell_override.get(
                (day, slot), f"{values[day, slot]:.1f}"
            )
            # Decoy channel: a smooth diurnal temperature curve.
            temperature = (
                10.0
                + 8.0 * math.sin(2.0 * math.pi * slot / spd - math.pi / 2.0)
                + 0.1 * day
            )
            rows.append(
                f"{stamp.strftime('%m/%d/%Y')},"
                f"{minute // 60:02d}:{minute % 60:02d},"
                f"{ghi},{temperature:.1f}"
            )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parents[1]
            / "src/repro/solar/ingest/data/sample_midc.csv"
        ),
    )
    args = parser.parse_args()
    header = "DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]"
    rows = build_rows()
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("\n".join([header] + rows) + "\n")
    print(f"wrote {len(rows)} rows to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
