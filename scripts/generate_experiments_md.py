#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table/figure.

Runs the full 365-day reproduction of each experiment and formats the
comparison tables.  Takes a couple of minutes; run from the repo root::

    python scripts/generate_experiments_md.py
"""

from __future__ import annotations

import io
import sys
from pathlib import Path

from repro.experiments import fig2, fig6, fig7, table1, table2, table3, table4, table5
from repro.experiments.paper_values import (
    FIG6_OVERHEAD,
    TABLE2,
    TABLE3,
    TABLE4,
    TABLE5,
)

DAYS = 365


def pct(value) -> str:
    if value is None:
        return "n/a"
    return f"{value * 100:.2f}%"


def main() -> int:
    out = io.StringIO()
    w = out.write

    w("# EXPERIMENTS — paper vs measured\n\n")
    w(
        "Reproduction of every table and figure of *Evaluation and Design "
        "Exploration of Solar Harvested-Energy Prediction Algorithm* "
        "(DATE 2010) on the synthetic NREL-MIDC stand-in traces "
        "(see DESIGN.md for the substitution rationale).  All runs use the "
        f"paper's setup: {DAYS}-day traces, days 21–365 scored, region of "
        "interest ≥ 10 % of peak.  MAPE values are percentages.\n\n"
        "Regenerate any row with `pytest benchmarks/test_bench_<id>.py "
        "--benchmark-only -s`, or this whole file with "
        "`python scripts/generate_experiments_md.py`.\n\n"
    )

    # ------------------------------------------------------------- Table I
    w("## Table I — data sets\n\n")
    w("Exact match by construction (the substitution preserves the sampling geometry).\n\n")
    w("| site | location | observations | days | resolution |\n|---|---|---|---|---|\n")
    for row in table1.run(n_days=DAYS).rows:
        w(
            f"| {row['data_set']} | {row['location']} | {row['observations']} "
            f"| {row['days']} | {row['resolution']} |\n"
        )

    # ------------------------------------------------------------ Table II
    w("\n## Table II — MAPE′ vs MAPE optimisation (N=48)\n\n")
    w(
        "| site | α′/D′/K′ (paper) | α′/D′/K′ (ours) | MAPE′ paper | MAPE′ ours "
        "| α/D/K (paper) | α/D/K (ours) | MAPE paper | MAPE ours |\n"
    )
    w("|---|---|---|---|---|---|---|---|---|\n")
    t2 = table2.run(n_days=DAYS)
    for row in t2.rows:
        site = row["data_set"]
        p_prime = TABLE2[site]["prime"]
        p_mape = TABLE2[site]["mape"]
        w(
            f"| {site} "
            f"| {p_prime[0]}/{p_prime[1]}/{p_prime[2]} "
            f"| {row['alpha_prime']}/{row['d_prime']}/{row['k_prime']} "
            f"| {pct(p_prime[3])} | {pct(row['mape_prime'])} "
            f"| {p_mape[0]}/{p_mape[1]}/{p_mape[2]} "
            f"| {row['alpha']}/{row['d']}/{row['k']} "
            f"| {pct(p_mape[3])} | {pct(row['mape'])} |\n"
        )
    w(
        "\nShape claims reproduced: MAPE optimum far below MAPE′ optimum on "
        "every site; MAPE optimisation selects higher α; site difficulty "
        "ordering preserved (ORNL hardest, PFCI easiest).\n"
    )

    # ----------------------------------------------------------- Table III
    w("\n## Table III — optimised parameters across N\n\n")
    w(
        "| site | N | α (paper/ours) | D (paper/ours) | K (paper/ours) "
        "| MAPE paper | MAPE ours | MAPE@K=2 paper | MAPE@K=2 ours |\n"
    )
    w("|---|---|---|---|---|---|---|---|---|\n")
    t3 = table3.run(n_days=DAYS)
    for row in t3.rows:
        key = (row["data_set"], row["n"])
        paper = TABLE3[key]

        def fmt(value):
            return "n/a" if value is None else value

        w(
            f"| {row['data_set']} | {row['n']} "
            f"| {fmt(paper[0])} / {row['alpha']} "
            f"| {fmt(paper[1])} / {row['d']} "
            f"| {fmt(paper[2])} / {row['k']} "
            f"| {pct(paper[3])} | {pct(row['mape'])} "
            f"| {pct(paper[4])} | {pct(row['mape_k2'])} |\n"
        )
    w(
        "\nShape claims reproduced: MAPE strictly decreases with N per site; "
        "α\\* rises toward 1 as N→288; the 5-minute sites give exactly 0 at "
        "N=288 with α=1 (the paper's 0† entries); K=2 within 1 point of the "
        "optimum at N≥48.\n"
    )

    # ------------------------------------------------------------ Table IV
    w("\n## Table IV — energy accounting (exact)\n\n")
    w("| hardware activity | paper | ours |\n|---|---|---|\n")
    ours_rows = {r["hardware_activity"]: r["energy"] for r in table4.run().rows}
    paper_rows = [
        ("A/D conversion", f"{TABLE4['adc_event_uj']:.0f} uJ"),
        (
            "A/D conversion + Prediction (K=1, alpha=0.7)",
            f"{TABLE4['adc_plus_prediction_k1_a07_uj']} uJ",
        ),
        (
            "A/D conversion + Prediction (K=7, alpha=0.7)",
            f"{TABLE4['adc_plus_prediction_k7_a07_uj']} uJ",
        ),
        (
            "A/D conversion + Prediction (K=7, alpha=0.0)",
            f"{TABLE4['adc_plus_prediction_k7_a00_uj']} uJ",
        ),
        ("Low power (sleep) mode", f"{TABLE4['sleep_per_day_mj']:.0f} mJ per day"),
        (
            "A/D conversion 48 samples per day @55uJ",
            f"{TABLE4['adc_48_per_day_uj']:.0f} uJ per day",
        ),
        (
            "A/D conversion + prediction 48 times per day @60uJ",
            f"{TABLE4['adc_plus_prediction_48_per_day_uj']:.0f} uJ per day",
        ),
    ]
    for activity, paper_value in paper_rows:
        w(f"| {activity} | {paper_value} | {ours_rows[activity]} |\n")
    w("\nAll rows match to display precision (the model is calibrated to these anchors).\n")

    # ------------------------------------------------------------- Table V
    w("\n## Table V — clairvoyant dynamic parameter selection\n\n")
    w(
        "| site | N | static (paper/ours) | K+α (paper/ours) "
        "| K-only α (paper/ours) | K-only (paper/ours) "
        "| α-only K (paper/ours) | α-only (paper/ours) |\n"
    )
    w("|---|---|---|---|---|---|---|---|\n")
    t5 = table5.run(n_days=DAYS)
    for row in t5.rows:
        key = (row["data_set"], row["n"])
        paper = TABLE5.get(key)
        if paper is None:
            continue

        def fmt_k(value):
            return "n/a" if value is None else value

        w(
            f"| {row['data_set']} | {row['n']} "
            f"| {pct(paper[0])} / {pct(row['static_mape'])} "
            f"| {pct(paper[1])} / {pct(row['both_mape'])} "
            f"| {paper[2]} / {row['k_only_alpha']} "
            f"| {pct(paper[3])} / {pct(row['k_only_mape'])} "
            f"| {fmt_k(paper[4])} / {fmt_k(row['alpha_only_k'])} "
            f"| {pct(paper[5])} / {pct(row['alpha_only_mape'])} |\n"
        )
    w(
        "\nShape claims reproduced: K+α ≤ α-only ≤ K-only ≤ static per row; "
        "gains grow as N shrinks; >10-point static→dynamic gain at N=24 on "
        "the variable sites; best fixed α under dynamic-K is lower, and best "
        "fixed K under dynamic-α higher, than the static optimum's values.\n"
    )

    # -------------------------------------------------------------- Fig. 2
    w("\n## Fig. 2 — solar energy on six days\n\n")
    w("| day | peak (W/m²) | energy (Wh/m²) | character |\n|---|---|---|---|\n")
    for row in fig2.run(n_days=DAYS).rows:
        w(
            f"| {row['day']} | {row['peak_wm2']:.0f} | {row['energy_wh_m2']:.0f} "
            f"| {row['day_character']} |\n"
        )
    w(
        "\nQualitative match: large day-to-day and intra-day variation, as in "
        "the paper's motivational figure.\n"
    )

    # -------------------------------------------------------------- Fig. 6
    w("\n## Fig. 6 — prediction-activity overhead vs N (exact)\n\n")
    w("| N | paper | ours |\n|---|---|---|\n")
    for row in fig6.run().rows:
        paper_value = FIG6_OVERHEAD[row["n"]] * 100
        w(f"| {row['n']} | {paper_value:.2f}% | {row['overhead_percent']:.2f}% |\n")

    # -------------------------------------------------------------- Fig. 7
    w("\n## Fig. 7 — MAPE vs D (N=48)\n\n")
    w("Curve levels at D = 2 / 10 / 20 per site (paper plots the full curves):\n\n")
    w("| site | D=2 | D=10 | D=20 | D2→D10 gain | D10→D20 gain |\n|---|---|---|---|---|---|\n")
    curves = fig7.series(n_days=DAYS)
    for site, errors in curves.items():
        d2, d10, d20 = errors[0], errors[8], errors[18]
        w(
            f"| {site} | {pct(d2)} | {pct(d10)} | {pct(d20)} "
            f"| {pct(d2 - d10)} | {pct(d10 - d20)} |\n"
        )
    w(
        "\nShape claims reproduced: every curve decreases and flattens near "
        "D≈10 (the paper's memory-conserving guideline); site ordering "
        "preserved.\n"
    )

    # ------------------------------------------------------------ Deviations
    w(
        "\n## Known deviations\n\n"
        "* **Absolute MAPE levels** sit within roughly ±35 % of the paper's "
        "values (calibrated cloud statistics, not the actual 2008-era NREL "
        "measurements).  All monotonicities, orderings and crossovers hold.\n"
        "* **Optimal K** tends 1 step higher (3–5 vs the paper's 1–3) at "
        "small N: our synthetic clear-sky-index noise has slightly more "
        "averaging-friendly structure than the measured traces.  The "
        "operative guideline — K=2 within a fraction of a point of optimal "
        "— reproduces.\n"
        "* **Optimal α** at N=48 lands at 0.5–0.6 vs the paper's 0.6–0.7 "
        "(one grid step); the α-vs-N trend is identical.\n"
        "* **Dynamic at N=48 vs static at N=288**: the paper's ORNL static "
        "N=288 error (8.31 %) is higher than ours (≈5.6 %), so the exact "
        "dynamic@48 < static@288 comparison holds only marginally here; the "
        "adjacent-horizon version (dynamic@48 < static@96) holds everywhere.\n"
        "* **η dawn guard**: both implementations substitute η=1 when μ_D "
        "is below 5 % of its daily peak; the paper does not describe its "
        "handling of near-zero μ_D, and without some such guard no "
        "parameter setting attains single-digit MAPE (see the module "
        "docstring of `repro.core.wcma`).\n"
    )

    # ------------------------------------------------------------ Extensions
    w(
        "\n## Extension experiments (beyond the paper)\n\n"
        "| bench | what it shows |\n|---|---|\n"
        "| `test_bench_predictor_comparison` | WCMA beats EWMA/persistence/previous-day/unconditioned-average on sunny and variable sites (the [7]-style comparison) |\n"
        "| `test_bench_adaptive` | causal FTL / ε-greedy / Hedge selectors beat the untuned guideline configuration and land within 15 % of the in-sample static optimum — the \"dynamic algorithm\" the paper calls for |\n"
        "| `test_bench_fixedpoint` | Q15 port within 0.2 MAPE points of float at ~10× fewer arithmetic cycles |\n"
        "| `test_bench_node_management` | year-long node simulation: prediction-driven duty control eliminates the fixed-duty node's downtime (Fig. 1 motivation, closed loop) |\n"
        "| `test_bench_ablation_conditioning` | Φ_K carries real value (plain average ≥5 % worse); linear θ ties uniform, clearly beats reversed |\n"
        "| `test_bench_ablation_roi` | reported MAPE falls as the ROI threshold rises, but parameter selection is stable — the 10 % choice is not load-bearing |\n"
        "| `test_bench_planning` | the learned-daily-profile planner achieves the smoothest realizable duty cycle at Kansal-level downtime |\n"
        "| `test_bench_calibration` | fit-a-profile-from-a-trace round trip: regenerated years preserve day-type mix, clearness and WCMA difficulty |\n"
    )

    Path("EXPERIMENTS.md").write_text(out.getvalue())
    print(f"wrote EXPERIMENTS.md ({len(out.getvalue().splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
