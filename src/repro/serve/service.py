"""The forecast service: per-site online predictors behind one API.

:class:`ForecastService` is the transport-agnostic core of the serve
daemon (:mod:`repro.serve.daemon` speaks stdin-JSONL over it,
:mod:`repro.serve.http` speaks HTTP): a registry of per-site
:class:`~repro.core.base.OnlinePredictor` instances, each fed one power
sample per slot and each checkpointed through a
:class:`~repro.serve.state.StateStore` so a restarted daemon resumes
exactly.

Every request and response is one JSON-shaped dict.  Responses to
``observe``/``forecast`` are **audit lines**: they carry the site, the
day/slot position, the predictor name, the observed value, the
prediction for the upcoming slot, and a :func:`~repro.serve.state.state_digest`
of the model state that produced it -- enough to tie any logged
prediction back to an exact, re-loadable predictor state.

Operations (``request["op"]``):

``register``
    ``{"op": "register", "site": S}`` -- instantiate a predictor for
    site ``S`` (synthetic code or a registered measured site).  An
    optional ``"dataset"`` key backs a *logical* site name with another
    site's dataset (``{"op": "register", "site": "node-17", "dataset":
    "SPMD"}``), so a fleet of named nodes can share the six synthetic
    traces while keeping per-node predictor state.  With a state store
    attached, an existing checkpoint for ``(S, predictor)`` is loaded,
    so registration after a restart *is* the resume.
``observe``
    ``{"op": "observe", "site": S, "value": W}`` -- feed one start-of-
    slot power sample; returns the audit line with the prediction for
    the next slot.
``forecast``
    ``{"op": "forecast", "site": S}`` -- the standing prediction for
    the upcoming slot (read-only; no state change).
``replay``
    ``{"op": "replay", "site": S, "days": D}`` -- warm the predictor by
    streaming the first ``D`` days of the site's dataset through it
    (start-of-slot convention of the evaluation layer).
``sites`` / ``stats`` / ``checkpoint``
    Introspection and an explicit flush of all dirty state.

Thread safety: one re-entrant lock serialises every operation, so the
HTTP front-end's request threads (and any embedder driving the service
from multiple threads) cannot interleave a predictor update with a
checkpoint write.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.core.registry import make_predictor
from repro.serve.state import StateStore, state_digest

__all__ = ["ForecastService"]


class _Node:
    """One registered site: its predictor plus serve-side counters."""

    __slots__ = ("site", "dataset", "predictor", "observed",
                 "since_checkpoint", "last_prediction", "digest")

    def __init__(self, site: str, dataset: str, predictor):
        self.site = site
        self.dataset = dataset  # geometry/replay source (default: site)
        self.predictor = predictor
        self.observed = 0          # total samples fed (replay included)
        self.since_checkpoint = 0  # samples since the last state flush
        self.last_prediction: Optional[float] = None
        self.digest: Optional[str] = None


class ForecastService:
    """Multi-site online forecasting with checkpointed state.

    Parameters
    ----------
    n_slots:
        Slots per day served to every predictor (``N``); a site's
        native samples-per-day must be divisible by it.
    predictor:
        Registry name (``wcma``, ``ewma``, ...) instantiated per site.
    state_dir:
        Directory of the :class:`~repro.serve.state.StateStore`; None
        disables persistence (state lives and dies with the process).
    checkpoint_every:
        Observed slots between automatic state flushes (1 = after every
        observation -- the always-on-node setting; larger values trade
        durability for write amplification).
    predictor_kwargs:
        Extra keyword arguments for the predictor factory (for WCMA:
        ``alpha``, ``days``, ``k``).
    model_dir:
        Directory of a :class:`~repro.learn.artifact.ArtifactStore`
        holding trained learned-tier artifacts.  When a site registers
        and the store has an artifact for ``(dataset, predictor)``, the
        predictor is constructed *frozen* around it (train/serve split)
        instead of online self-fitting; sites without a stored artifact
        fall back to the plain factory.  A stored artifact whose
        feature-schema version differs from this build's is rejected
        loudly at registration, never served silently.
    """

    def __init__(
        self,
        n_slots: int = 48,
        predictor: str = "wcma",
        state_dir=None,
        checkpoint_every: int = 1,
        predictor_kwargs: Optional[dict] = None,
        model_dir=None,
    ):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.n_slots = n_slots
        self.predictor_name = predictor.lower()
        self.checkpoint_every = checkpoint_every
        self.predictor_kwargs = dict(predictor_kwargs or {})
        self.store = StateStore(state_dir) if state_dir is not None else None
        self.models = None
        if model_dir is not None:
            from repro.learn.artifact import ArtifactStore

            self.models = ArtifactStore(model_dir)
        self._nodes: Dict[str, _Node] = {}
        self._lock = threading.RLock()
        self._op_counts: Dict[str, int] = {}
        self._resumed: Dict[str, str] = {}  # site -> digest resumed from
        self._artifacts: Dict[str, str] = {}  # site -> artifact digest
        # Fail fast on an unknown predictor name / bad kwargs, before
        # the daemon prints its ready line.
        make_predictor(self.predictor_name, n_slots, **self.predictor_kwargs)

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def handle(self, request) -> dict:
        """Execute one request dict; always returns a response dict.

        Never raises on bad input: malformed requests come back as
        ``{"ok": false, "error": ...}`` so one bad query cannot take
        the daemon down.  Genuine library defects still propagate.
        """
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            return {
                "ok": False,
                "error": f"unknown op {op!r}; supported: "
                         f"{', '.join(sorted(self._HANDLERS))}",
            }
        with self._lock:
            self._op_counts[op] = self._op_counts.get(op, 0) + 1
            try:
                return handler(self, request)
            except (KeyError, ValueError, TypeError, OSError) as exc:
                detail = exc.args[0] if exc.args else exc
                return {"ok": False, "op": op, "error": str(detail)}

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _op_register(self, request) -> dict:
        site = self._site_name(request)
        node = self._nodes.get(site)
        if node is not None:
            return self._registered(site, node, created=False)
        dataset = request.get("dataset", site)
        if not isinstance(dataset, str) or not dataset:
            raise ValueError("'dataset' must be a site name")
        dataset = dataset.upper()
        self._check_geometry(dataset)
        kwargs = dict(self.predictor_kwargs)
        artifact = None
        if self.models is not None:
            # Schema-mismatched artifacts raise ArtifactError here: the
            # registration fails loudly instead of serving a model whose
            # feature layout the code no longer computes.
            artifact = self.models.load(dataset, self.predictor_name)
            if artifact is not None:
                kwargs["artifact"] = artifact
        predictor = make_predictor(self.predictor_name, self.n_slots, **kwargs)
        if artifact is not None:
            self._artifacts[site] = artifact.digest()
        node = _Node(site, dataset, predictor)
        if self.store is not None:
            saved = self.store.load(site, self.predictor_name)
            if saved is not None:
                predictor.load_state_dict(saved["predictor"])
                node.observed = int(saved["observed"])
                node.last_prediction = saved["last_prediction"]
                node.digest = state_digest(saved)
                self._resumed[site] = node.digest
        self._nodes[site] = node
        return self._registered(site, node, created=True)

    def _registered(self, site: str, node: _Node, created: bool) -> dict:
        response = {
            "ok": True,
            "op": "register",
            "site": site,
            "dataset": node.dataset,
            "predictor": self.predictor_name,
            "n_slots": self.n_slots,
            "created": created,
            "observed": node.observed,
        }
        if site in self._resumed:
            response["resumed_from"] = self._resumed[site]
        if site in self._artifacts:
            response["model_digest"] = self._artifacts[site]
            response["frozen"] = True
        return response

    def _op_observe(self, request) -> dict:
        node = self._node(request)
        value = request.get("value")
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or value != value  # NaN would silently poison the state
            or value in (float("inf"), float("-inf"))
        ):
            raise ValueError("observe needs a finite numeric 'value' (W/m^2)")
        prediction = node.predictor.observe(float(value))
        node.last_prediction = prediction
        node.observed += 1
        node.since_checkpoint += 1
        node.digest = state_digest(self._snapshot(node))
        flushed = self._maybe_checkpoint(node)
        return {
            "ok": True,
            "op": "observe",
            "site": node.site,
            "day": (node.observed - 1) // self.n_slots,
            "slot": (node.observed - 1) % self.n_slots,
            "predictor": self.predictor_name,
            "value": float(value),
            "prediction": prediction,
            "state_digest": node.digest,
            "checkpointed": flushed,
        }

    def _op_forecast(self, request) -> dict:
        node = self._node(request)
        if node.last_prediction is None:
            raise ValueError(
                f"site {node.site!r} has no observations yet; "
                "send an observe (or replay) first"
            )
        return {
            "ok": True,
            "op": "forecast",
            "site": node.site,
            "day": node.observed // self.n_slots,
            "slot": node.observed % self.n_slots,
            "predictor": self.predictor_name,
            "prediction": node.last_prediction,
            "state_digest": node.digest,
        }

    def _op_replay(self, request) -> dict:
        from repro.solar.datasets import build_dataset
        from repro.solar.slots import SlotView

        node = self._node(request)
        days = request.get("days")
        if not isinstance(days, int) or isinstance(days, bool) or days < 1:
            raise ValueError("replay needs an integer 'days' >= 1")
        trace = build_dataset(node.dataset, n_days=days)
        starts = SlotView.from_trace(trace, self.n_slots).flat_starts()
        prediction = node.last_prediction
        for sample in starts:
            prediction = node.predictor.observe(float(sample))
        node.last_prediction = prediction
        node.observed += starts.size
        node.since_checkpoint += starts.size
        node.digest = state_digest(self._snapshot(node))
        flushed = self._maybe_checkpoint(node)
        return {
            "ok": True,
            "op": "replay",
            "site": node.site,
            "samples": int(starts.size),
            "days": days,
            "predictor": self.predictor_name,
            "prediction": prediction,
            "state_digest": node.digest,
            "checkpointed": flushed,
        }

    def _op_sites(self, request) -> dict:
        return {
            "ok": True,
            "op": "sites",
            "predictor": self.predictor_name,
            "sites": [
                {
                    "site": node.site,
                    "dataset": node.dataset,
                    "observed": node.observed,
                    "pending": node.since_checkpoint,
                    "state_digest": node.digest,
                }
                for node in sorted(self._nodes.values(), key=lambda n: n.site)
            ],
        }

    def _op_stats(self, request) -> dict:
        return {
            "ok": True,
            "op": "stats",
            "predictor": self.predictor_name,
            "n_slots": self.n_slots,
            "n_sites": len(self._nodes),
            "persistent": self.store is not None,
            "artifact_backed": self.models is not None,
            "checkpoint_every": self.checkpoint_every,
            "ops": dict(sorted(self._op_counts.items())),
        }

    def _op_checkpoint(self, request) -> dict:
        return {
            "ok": True,
            "op": "checkpoint",
            "checkpointed": self.checkpoint_all(),
            "persistent": self.store is not None,
        }

    _HANDLERS = {
        "register": _op_register,
        "observe": _op_observe,
        "forecast": _op_forecast,
        "replay": _op_replay,
        "sites": _op_sites,
        "stats": _op_stats,
        "checkpoint": _op_checkpoint,
    }

    # ------------------------------------------------------------------
    # State persistence
    # ------------------------------------------------------------------
    def _snapshot(self, node: _Node) -> dict:
        """The persisted unit: predictor state + serve-side position."""
        return {
            "predictor": node.predictor.state_dict(),
            "observed": node.observed,
            "last_prediction": node.last_prediction,
        }

    def _maybe_checkpoint(self, node: _Node) -> bool:
        if self.store is None or node.since_checkpoint < self.checkpoint_every:
            return False
        self.store.save(node.site, self.predictor_name, self._snapshot(node))
        node.since_checkpoint = 0
        return True

    def checkpoint_all(self) -> int:
        """Flush every node with unpersisted observations.

        The shutdown path (SIGINT / EOF in the daemon) calls this, so
        no observed slot is ever lost to a graceful stop.  Returns the
        number of sites written (0 without a state store).
        """
        if self.store is None:
            return 0
        with self._lock:
            flushed = 0
            for node in self._nodes.values():
                if node.since_checkpoint:
                    self.store.save(
                        node.site, self.predictor_name, self._snapshot(node)
                    )
                    node.since_checkpoint = 0
                    flushed += 1
            return flushed

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _site_name(self, request) -> str:
        site = request.get("site")
        if not isinstance(site, str) or not site:
            raise ValueError("request needs a 'site' name")
        return site.upper()

    def _node(self, request) -> _Node:
        site = self._site_name(request)
        node = self._nodes.get(site)
        if node is None:
            raise ValueError(
                f"site {site!r} is not registered with this service; "
                "send {'op': 'register', 'site': ...} first"
            )
        return node

    def _check_geometry(self, site: str) -> None:
        from repro.solar.datasets import samples_per_day_for

        spd = samples_per_day_for(site)  # KeyError -> unknown site
        if spd % self.n_slots:
            raise ValueError(
                f"N={self.n_slots} does not divide samples per day "
                f"({spd}) of site {site}"
            )
