"""Persistent online predictor state: the serve daemon's checkpoints.

An always-on forecast node observes one power sample per slot, forever;
when its process restarts it must *not* replay months of history to
rebuild the predictor.  This module persists the
:meth:`~repro.core.base.OnlinePredictor.state_dict` snapshot after
observed slots so a restarted daemon resumes exactly where the old one
stopped -- the checkpoint/resume tests pin the resumed prediction
stream bitwise against an uninterrupted run.

On-disk format (one file per ``(site, predictor)`` pair under the state
directory):

* a pickled **envelope** ``{"format": "repro-solar predictor state",
  "version": 1, "site": ..., "predictor": ..., "n_slots": ...,
  "state": <state_dict>}`` -- the format marker and version are
  validated on load, so a stale layout from a future schema (or a file
  that is not a checkpoint at all) is a clear error, never a silently
  corrupted predictor;
* written **atomically** (temp file in the same directory +
  ``os.replace``, the idiom of :mod:`repro.parallel.cache`), so a crash
  or SIGKILL mid-write leaves the previous checkpoint intact;
* fingerprinted by :func:`state_digest` -- a short sha256 of the
  canonically pickled state -- which the serve audit lines carry so an
  operator can tie any logged prediction to the exact model state that
  produced it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "STATE_FORMAT",
    "STATE_VERSION",
    "StateError",
    "StateStore",
    "state_digest",
]

STATE_FORMAT = "repro-solar predictor state"

#: Bump when the envelope layout changes; load refuses other versions.
STATE_VERSION = 1

_SUFFIX = ".state.pkl"


class StateError(ValueError):
    """A state file exists but cannot serve as a checkpoint."""


def _hash_value(digest, value) -> None:
    """Feed one state element into ``digest``, type-tagged.

    Explicit serialisation rather than ``pickle.dumps``: pickle's
    output depends on object *identity* (interned strings shared
    between dicts become memo references), so a snapshot and its
    pickle round trip -- equal by value -- would digest differently.
    Every branch here depends only on values.
    """
    if value is None:
        digest.update(b"N")
    elif isinstance(value, (bool, np.bool_)):
        digest.update(b"T" if value else b"F")
    elif isinstance(value, (int, np.integer)):
        digest.update(b"I" + str(int(value)).encode())
    elif isinstance(value, (float, np.floating)):
        digest.update(b"D" + struct.pack("<d", float(value)))
    elif isinstance(value, str):
        raw = value.encode()
        digest.update(b"S" + str(len(raw)).encode() + b":" + raw)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        digest.update(
            b"A" + arr.dtype.str.encode() + str(arr.shape).encode()
        )
        digest.update(arr.tobytes())
    elif isinstance(value, dict):
        digest.update(b"{")
        for key in sorted(value, key=str):
            _hash_value(digest, str(key))
            _hash_value(digest, value[key])
        digest.update(b"}")
    elif isinstance(value, (list, tuple)):
        digest.update(b"[")
        for item in value:
            _hash_value(digest, item)
        digest.update(b"]")
    else:
        raise TypeError(
            f"cannot digest {type(value).__name__!r} in a predictor state"
        )


def state_digest(state: dict) -> str:
    """Short content fingerprint of one predictor snapshot.

    Value-based: equal states digest equally regardless of dict
    insertion order, string interning, or a pickle round trip through
    the store.  16 hex characters keep audit lines compact while
    leaving collisions negligible for any realistic checkpoint count.
    """
    digest = hashlib.sha256()
    _hash_value(digest, state)
    return digest.hexdigest()[:16]


def _slug(name: str) -> str:
    """File-name-safe form of a site/predictor name."""
    cleaned = "".join(c if c.isalnum() or c in "-_" else "-" for c in name)
    return cleaned or "x"


class StateStore:
    """One directory of atomic per-``(site, predictor)`` checkpoints.

    The store is a plain directory; each checkpoint is one file, so
    concurrent daemons serving *different* sites can share a directory,
    and ``rsync``/inspection tooling needs no index.  All writes go
    through a temp file + ``os.replace`` in the same directory, making
    every checkpoint either the complete old state or the complete new
    one.
    """

    def __init__(self, root):
        self.root = Path(root)

    def path_for(self, site: str, predictor: str) -> Path:
        """Checkpoint path of one ``(site, predictor)`` pair."""
        return self.root / f"{_slug(site)}__{_slug(predictor)}{_SUFFIX}"

    # -- write ---------------------------------------------------------
    def save(self, site: str, predictor: str, state: dict) -> str:
        """Atomically persist ``state``; returns its digest."""
        path = self.path_for(site, predictor)
        self.root.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": STATE_FORMAT,
            "version": STATE_VERSION,
            "site": site,
            "predictor": predictor,
            "state": state,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return state_digest(state)

    # -- read ----------------------------------------------------------
    def load(self, site: str, predictor: str) -> Optional[dict]:
        """The saved state dict, or None when no checkpoint exists.

        Raises :class:`StateError` when a file exists but is not a
        version-compatible checkpoint of this ``(site, predictor)``
        pair -- resuming from the wrong state must be loud.
        """
        path = self.path_for(site, predictor)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise StateError(f"cannot read state file {path}: {exc}")
        if not isinstance(envelope, dict) or envelope.get("format") != STATE_FORMAT:
            raise StateError(f"{path} is not a {STATE_FORMAT!r} file")
        version = envelope.get("version")
        if version != STATE_VERSION:
            raise StateError(
                f"{path} has state-format version {version}; this build "
                f"reads version {STATE_VERSION}"
            )
        if envelope.get("site") != site or envelope.get("predictor") != predictor:
            raise StateError(
                f"{path} holds state of ({envelope.get('site')}, "
                f"{envelope.get('predictor')}); expected ({site}, {predictor})"
            )
        return envelope["state"]

    def entries(self) -> Iterator[Tuple[str, str]]:
        """Yield the ``(site, predictor)`` pairs checkpointed here.

        Read from the envelopes, not the file names, so slugged names
        round-trip exactly.  Unreadable files are skipped -- listing is
        informational; :meth:`load` is where corruption must be loud.
        """
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"*{_SUFFIX}")):
            try:
                with open(path, "rb") as handle:
                    envelope = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError):
                continue
            if (
                isinstance(envelope, dict)
                and envelope.get("format") == STATE_FORMAT
            ):
                yield envelope["site"], envelope["predictor"]
