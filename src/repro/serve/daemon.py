"""The serve daemon's stdin-JSONL transport.

One JSON request per input line, one JSON response per output line --
the simplest protocol a cron job, a shell pipe or a supervisor can
speak, and the one the CLI's ``repro-solar serve`` runs by default::

    $ printf '%s\n' \
        '{"op": "register", "site": "SPMD"}' \
        '{"op": "observe", "site": "SPMD", "value": 412.5}' \
      | repro-solar serve --n 48

Protocol events (emitted by the daemon itself, not request responses):

* on start: ``{"event": "ready", ...}`` -- the parent may begin
  writing queries once this line appears;
* on shutdown: ``{"event": "shutdown", "reason": "eof" | "signal",
  "checkpointed": N}`` -- always the last line, after every pending
  predictor state has been flushed to the state store.

Shutdown is graceful under both EOF and SIGINT: the
``KeyboardInterrupt`` raised by the default SIGINT handler is caught
*wherever* it lands in the loop, pending state is checkpointed, the
shutdown event is emitted, and the exit status is 0.  A malformed line
never kills the daemon -- it produces an ``{"ok": false, ...}``
response and the loop continues.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Optional, TextIO

from repro.serve.service import ForecastService

__all__ = ["serve_stdin"]


def _emit(out_stream: TextIO, payload: dict) -> None:
    out_stream.write(json.dumps(payload) + "\n")
    out_stream.flush()


def ready_event(service: ForecastService) -> dict:
    """The daemon's first output line (shared with the HTTP front-end)."""
    return {
        "event": "ready",
        "predictor": service.predictor_name,
        "n_slots": service.n_slots,
        "persistent": service.store is not None,
        "pid": os.getpid(),
    }


def serve_stdin(
    service: ForecastService,
    in_stream: Optional[TextIO] = None,
    out_stream: Optional[TextIO] = None,
) -> int:
    """Answer JSONL requests until EOF or SIGINT; returns the exit code.

    Every response line corresponds to exactly one input line (blank
    lines are ignored), so a driver may pipeline requests and match
    responses by order.
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    reason = "eof"
    try:
        _emit(out_stream, ready_event(service))
        for line in in_stream:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                _emit(out_stream, {"ok": False, "error": f"bad JSON: {exc}"})
                continue
            _emit(out_stream, service.handle(request))
    except KeyboardInterrupt:
        reason = "signal"
    flushed = service.checkpoint_all()
    try:
        _emit(
            out_stream,
            {"event": "shutdown", "reason": reason, "checkpointed": flushed},
        )
    except (BrokenPipeError, ValueError):
        pass  # parent already closed the pipe; state is safe regardless
    return 0
