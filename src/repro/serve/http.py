"""Optional HTTP front-end of the forecast service (stdlib only).

``repro-solar serve --http PORT`` answers the same request dicts as the
stdin-JSONL transport over ``POST /`` (JSON body in, JSON body out),
plus ``GET /healthz`` returning the ready event -- enough for a load
balancer probe.  Built on :class:`http.server.ThreadingHTTPServer`, so
concurrent queries exercise the service's internal lock (which is why
:class:`~repro.serve.service.ForecastService` serialises operations and
:class:`~repro.solar.ingest.sites.MeasuredSite.ingest` is
double-check-locked).

The server announces itself on stdout with the same ``ready`` event as
the stdin daemon, extended with the bound host/port (pass port 0 to let
the OS pick); SIGINT shuts it down gracefully with the same state flush
and ``shutdown`` event.
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, TextIO

from repro.serve.daemon import ready_event
from repro.serve.service import ForecastService

__all__ = ["serve_http"]

_MAX_BODY = 1 << 20  # a forecast query is tiny; refuse absurd bodies


class _Handler(BaseHTTPRequestHandler):
    service: ForecastService = None  # set on the subclass per server

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802 (http.server naming convention)
        if self.path == "/healthz":
            self._respond(200, ready_event(self.service))
        else:
            self._respond(404, {"ok": False, "error": "POST / with a JSON request"})

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > _MAX_BODY:
            self._respond(
                400, {"ok": False, "error": "request body must be 1 byte - 1 MiB"}
            )
            return
        try:
            request = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            self._respond(400, {"ok": False, "error": f"bad JSON: {exc}"})
            return
        response = self.service.handle(request)
        self._respond(200 if response.get("ok") else 400, response)

    def log_message(self, format, *args):  # noqa: A002
        pass  # responses are the audit trail; no access-log noise


def serve_http(
    service: ForecastService,
    port: int,
    host: str = "127.0.0.1",
    out_stream: Optional[TextIO] = None,
) -> int:
    """Serve HTTP until SIGINT; returns the exit code.

    Emits the ``ready`` event (with the bound address) on stdout before
    accepting requests and the ``shutdown`` event after the state
    flush, mirroring :func:`~repro.serve.daemon.serve_stdin`.
    """
    out_stream = out_stream if out_stream is not None else sys.stdout
    handler = type("_BoundHandler", (_Handler,), {"service": service})
    with ThreadingHTTPServer((host, port), handler) as server:
        ready = ready_event(service)
        ready["host"], ready["port"] = server.server_address[:2]
        out_stream.write(json.dumps(ready) + "\n")
        out_stream.flush()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    flushed = service.checkpoint_all()
    try:
        out_stream.write(
            json.dumps(
                {"event": "shutdown", "reason": "signal", "checkpointed": flushed}
            )
            + "\n"
        )
        out_stream.flush()
    except (BrokenPipeError, ValueError):
        pass
    return 0
