"""Always-on forecast service: streaming queries over persistent state.

The paper's predictors are evaluated offline over whole traces; a
deployed harvesting node runs them *online*, forever -- observing one
power sample per slot, answering "how much energy arrives next slot?"
on demand, surviving restarts without losing months of learned state.
This package is that deployment shape:

* :mod:`repro.serve.state` -- versioned, atomically-written on-disk
  checkpoints of :meth:`~repro.core.base.OnlinePredictor.state_dict`
  snapshots, with content digests for audit lines.
* :mod:`repro.serve.service` -- :class:`ForecastService`, the
  transport-agnostic multi-site registry of online predictors
  (register / observe / forecast / replay / checkpoint), thread-safe
  and resume-exact.
* :mod:`repro.serve.daemon` -- the stdin-JSONL transport behind
  ``repro-solar serve`` (graceful EOF/SIGINT shutdown with state
  flush).
* :mod:`repro.serve.http` -- the optional stdlib HTTP front-end
  (``--http PORT``).

Feeding the service from a file larger than memory pairs with the
streaming ingest path (:func:`repro.solar.ingest.ingest_stream` /
:func:`repro.solar.ingest.iter_days`).
"""

from repro.serve.daemon import serve_stdin
from repro.serve.http import serve_http
from repro.serve.service import ForecastService
from repro.serve.state import (
    STATE_FORMAT,
    STATE_VERSION,
    StateError,
    StateStore,
    state_digest,
)

__all__ = [
    "ForecastService",
    "StateError",
    "StateStore",
    "STATE_FORMAT",
    "STATE_VERSION",
    "serve_http",
    "serve_stdin",
    "state_digest",
]
