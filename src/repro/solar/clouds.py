"""Stochastic cloud model.

Measured solar irradiance is commonly decomposed as::

    GHI(t) = k(t) * GHI_clearsky(t)

where ``k`` is the *clear-sky index* in roughly ``[0, 1.1]`` (values
slightly above 1 occur through cloud-edge reflection).  The statistical
structure of ``k`` is what distinguishes a sunny desert site (PFCI, AZ in
the paper) from a coastal or mountain site (HSU, SPMD): sunny sites spend
most days near ``k ~ 1`` with little intra-day movement, variable sites
mix clear, broken-cloud and overcast days with fast intra-day swings.

The model here has two levels:

1. **Day-type Markov chain** (:class:`DayTypeModel`) over the states
   ``CLEAR``, ``PARTLY`` and ``OVERCAST``.  Persistence in the transition
   matrix creates multi-day weather spells, matching the paper's remark
   that traces differ in the "number and distribution of sunny and cloudy
   days".
2. **Intra-day AR(1) clear-sky index** (:class:`IntradayCloudModel`): for
   each day, ``k`` follows a mean-reverting AR(1) process around the day
   type's base level, with day-type-specific volatility and mean-reversion
   speed.  PARTLY days additionally receive short multiplicative cloud
   transients (passing cumulus) that create the bursty drops visible in
   Fig. 2 of the paper.

Both levels draw from a caller-supplied :class:`numpy.random.Generator`
so traces are exactly reproducible from a seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["DayType", "DayTypeModel", "IntradayCloudModel", "CloudModelParams"]


class DayType(enum.IntEnum):
    """Weather class of a whole day."""

    CLEAR = 0
    PARTLY = 1
    OVERCAST = 2


@dataclass(frozen=True)
class DayTypeModel:
    """First-order Markov chain over :class:`DayType`.

    Parameters
    ----------
    transition:
        Row-stochastic 3x3 matrix; ``transition[i][j]`` is the probability
        of moving from day type ``i`` to day type ``j``.
    initial:
        Distribution of the first day's type.
    """

    transition: np.ndarray
    initial: np.ndarray = field(
        default_factory=lambda: np.array([1.0 / 3, 1.0 / 3, 1.0 / 3])
    )

    def __post_init__(self):
        transition = np.asarray(self.transition, dtype=float)
        initial = np.asarray(self.initial, dtype=float)
        if transition.shape != (3, 3):
            raise ValueError(f"transition must be 3x3, got {transition.shape}")
        if initial.shape != (3,):
            raise ValueError(f"initial must have 3 entries, got {initial.shape}")
        if not np.allclose(transition.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition rows must each sum to 1")
        if not np.isclose(initial.sum(), 1.0, atol=1e-9):
            raise ValueError("initial distribution must sum to 1")
        if (transition < 0).any() or (initial < 0).any():
            raise ValueError("probabilities must be non-negative")
        object.__setattr__(self, "transition", transition)
        object.__setattr__(self, "initial", initial)

    def sample_days(self, n_days: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a length-``n_days`` day-type sequence."""
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        states = np.empty(n_days, dtype=np.int64)
        states[0] = rng.choice(3, p=self.initial)
        for day in range(1, n_days):
            states[day] = rng.choice(3, p=self.transition[states[day - 1]])
        return states

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution of the chain (left eigenvector for 1)."""
        eigvals, eigvecs = np.linalg.eig(self.transition.T)
        idx = int(np.argmin(np.abs(eigvals - 1.0)))
        vec = np.real(eigvecs[:, idx])
        vec = np.abs(vec)
        return vec / vec.sum()


@dataclass(frozen=True)
class CloudModelParams:
    """Per-day-type parameters of the intra-day clear-sky-index process.

    Attributes
    ----------
    base_index:
        Mean clear-sky index per day type ``(clear, partly, overcast)``.
    volatility:
        Innovation standard deviation of the AR(1) per day type.
    mean_reversion:
        AR(1) mean-reversion coefficient in ``(0, 1]`` per day type;
        larger values revert faster (less persistent excursions).
    day_drift:
        Standard deviation, per day type, of a slow random-walk drift of
        the index accumulated over a whole day.  This models intra-day
        weather evolution (fronts arriving, fog burning off): it makes
        hours-old observations *biased*, not merely noisy, which is what
        limits the useful conditioning-window length ``K`` on real data.
    jump_rate:
        Expected number of *regime jumps* per day, per day type: abrupt
        level changes of the index (a front passing, the marine layer
        clearing).  Jumps decorrelate the index sharply, unlike the
        gradual random walk, and are the main mechanism keeping the
        optimal ``K`` small.
    jump_sd:
        Standard deviation of each jump's level change, per day type.
    transient_rate:
        Expected number of discrete cloud transients per *hour* on PARTLY
        days (passing clouds that multiply ``k`` down sharply).
    transient_depth:
        Mean fractional attenuation of a transient (0.6 = drop to 40%).
    transient_minutes:
        Mean duration of a transient in minutes.
    k_min, k_max:
        Hard clamp of the clear-sky index.
    """

    base_index: Sequence[float] = (0.97, 0.65, 0.25)
    volatility: Sequence[float] = (0.015, 0.10, 0.05)
    mean_reversion: Sequence[float] = (0.25, 0.08, 0.12)
    day_drift: Sequence[float] = (0.03, 0.18, 0.10)
    jump_rate: Sequence[float] = (0.2, 2.0, 1.0)
    jump_sd: Sequence[float] = (0.05, 0.25, 0.12)
    transient_rate: float = 1.2
    transient_depth: float = 0.55
    transient_minutes: float = 12.0
    k_min: float = 0.02
    k_max: float = 1.15

    def __post_init__(self):
        per_type = (
            self.base_index,
            self.volatility,
            self.mean_reversion,
            self.day_drift,
            self.jump_rate,
            self.jump_sd,
        )
        if any(len(seq) != 3 for seq in per_type):
            raise ValueError("per-day-type parameter tuples must have 3 entries")
        if not 0.0 <= self.k_min < self.k_max:
            raise ValueError("require 0 <= k_min < k_max")
        for coeff in self.mean_reversion:
            if not 0.0 < coeff <= 1.0:
                raise ValueError("mean_reversion coefficients must be in (0, 1]")


class IntradayCloudModel:
    """Generates a per-sample clear-sky index series for one day."""

    def __init__(self, params: CloudModelParams):
        self.params = params

    def sample_day(
        self,
        day_type: DayType,
        samples_per_day: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Clear-sky index for one day on a uniform grid.

        Returns an array of shape ``(samples_per_day,)`` clamped to
        ``[k_min, k_max]``.
        """
        if samples_per_day <= 0:
            raise ValueError("samples_per_day must be positive")
        p = self.params
        base = p.base_index[day_type]
        sigma = p.volatility[day_type]
        beta = p.mean_reversion[day_type]

        # Mean-reverting AR(1) around the day-type base level.  Scale the
        # per-step innovation so the *stationary* variance is resolution
        # independent: sampling at 1 minute vs 5 minutes should describe
        # the same weather.
        steps_per_min = samples_per_day / (24.0 * 60.0)
        step_beta = 1.0 - (1.0 - beta) ** (1.0 / max(steps_per_min * 5.0, 1e-9))
        stationary_sd = sigma
        innovation_sd = stationary_sd * np.sqrt(
            max(1.0 - (1.0 - step_beta) ** 2, 1e-12)
        )

        noise = rng.normal(0.0, innovation_sd, size=samples_per_day)
        k = np.empty(samples_per_day, dtype=float)
        k[0] = base + rng.normal(0.0, stationary_sd)
        for i in range(1, samples_per_day):
            k[i] = k[i - 1] + step_beta * (base - k[i - 1]) + noise[i]

        # Slow intra-day weather drift: a random walk whose end-of-day
        # standard deviation is day_drift[day_type].
        drift_sd = p.day_drift[day_type]
        if drift_sd > 0:
            step_sd = drift_sd / np.sqrt(samples_per_day)
            drift = np.cumsum(rng.normal(0.0, step_sd, size=samples_per_day))
            k = k + drift

        # Regime jumps: abrupt, persistent level changes at random instants.
        n_jumps = rng.poisson(p.jump_rate[day_type])
        for _ in range(n_jumps):
            at = int(rng.integers(0, samples_per_day))
            k[at:] += rng.normal(0.0, p.jump_sd[day_type])

        if day_type == DayType.PARTLY:
            k *= self._transient_mask(samples_per_day, rng, rate_scale=1.0)
        elif day_type == DayType.OVERCAST:
            # Breaks and showers modulate overcast days too, at half rate.
            k *= self._transient_mask(samples_per_day, rng, rate_scale=0.5)

        return np.clip(k, p.k_min, p.k_max)

    def _transient_mask(
        self, samples_per_day: int, rng: np.random.Generator, rate_scale: float = 1.0
    ) -> np.ndarray:
        """Multiplicative mask of passing-cloud transients."""
        p = self.params
        mask = np.ones(samples_per_day, dtype=float)
        minutes_per_sample = 24.0 * 60.0 / samples_per_day
        expected = p.transient_rate * 24.0 * rate_scale
        n_transients = rng.poisson(expected)
        if n_transients == 0:
            return mask
        starts = rng.integers(0, samples_per_day, size=n_transients)
        for start in starts:
            duration_min = rng.exponential(p.transient_minutes)
            length = max(1, int(round(duration_min / minutes_per_sample)))
            depth = np.clip(rng.normal(p.transient_depth, 0.15), 0.1, 0.95)
            end = min(samples_per_day, start + length)
            mask[start:end] = np.minimum(mask[start:end], 1.0 - depth)
        return mask
