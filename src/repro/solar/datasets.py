"""Dataset front-end: the six synthetic traces plus measured sites.

``build_dataset("PFCI")`` returns the one-year synthetic trace standing
in for the corresponding NREL MIDC download (see Table I of the paper
and the substitution table in DESIGN.md).  Traces are memoised per
``(site, n_days, seed)`` because generating a 1-minute year takes a
noticeable fraction of a second and the experiment suite requests the
same trace many times.

Measured sites registered through
:func:`repro.solar.ingest.sites.register_measured_site` resolve through
the same front door: ``build_dataset(name)`` serves the ingested
*clean* trace (truncated to ``n_days``), so the experiment layer is
agnostic to whether a site name is synthetic or measured.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.solar.sites import SITE_ORDER, get_site
from repro.solar.synthetic import generate_trace
from repro.solar.trace import SolarTrace

__all__ = [
    "available_datasets",
    "build_dataset",
    "dataset_summary",
    "dataset_token",
    "samples_per_day_for",
    "clear_cache",
]

_CACHE: Dict[Tuple[str, int, Optional[int]], SolarTrace] = {}


def _measured_registry():
    # Lazy import: the ingest package sits above this module in the
    # solar layering (it consumes trace/scenarios), so datasets reaches
    # for it only at call time.
    from repro.solar.ingest import sites as measured

    return measured


def available_datasets() -> tuple:
    """Synthetic site codes in table order, then measured sites."""
    return SITE_ORDER + _measured_registry().measured_site_names()


def build_dataset(
    name: str, n_days: int = 365, seed: Optional[int] = None
) -> SolarTrace:
    """Return the trace for site ``name`` (synthetic or measured).

    Parameters
    ----------
    name:
        Synthetic site code (``SPMD``, ``ECSU``, ``ORNL``, ``HSU``,
        ``NPCS``, ``PFCI``) or a registered measured site,
        case-insensitive.
    n_days:
        Days to generate (synthetic) or serve (measured; must not
        exceed the ingested length).  365 reproduces the paper's setup.
    seed:
        Optional override of a synthetic site's default seed; measured
        sites are data, not generators, so a seed is rejected.
    """
    key_name = name.upper()
    if key_name not in SITE_ORDER:
        measured = _measured_registry()
        if key_name in measured.measured_site_names():
            if seed is not None:
                raise ValueError(
                    f"measured site {key_name} is data, not a generator; "
                    "seed is not applicable"
                )
            return measured.measured_site(key_name).build(n_days)
    site = get_site(name)
    key = (site.name, n_days, seed)
    if key not in _CACHE:
        _CACHE[key] = generate_trace(site, n_days=n_days, seed=seed)
    return _CACHE[key]


def dataset_token(name: str):
    """Identity token of what ``build_dataset(name)`` would serve.

    ``None`` for synthetic sites (their data is a pure function of the
    name); for measured sites, the registered (hashable)
    :class:`~repro.solar.ingest.sites.MeasuredSite` spec.  Cache layers
    that memoise traces by site name include this token in their keys,
    so re-registering a name against a different file can never serve a
    stale memo.
    """
    key = name.upper()
    if key in SITE_ORDER:
        return None
    measured = _measured_registry()
    if key in measured.measured_site_names():
        return measured.measured_site(key)
    return None


def samples_per_day_for(name: str) -> int:
    """Native samples per day of a synthetic or measured site."""
    key = name.upper()
    if key in SITE_ORDER:
        return get_site(key).samples_per_day
    measured = _measured_registry()
    if key in measured.measured_site_names():
        return measured.measured_site(key).samples_per_day
    raise KeyError(
        f"unknown site {name!r}; available: {', '.join(available_datasets())}"
    )


def dataset_summary(name: str, n_days: int = 365) -> dict:
    """Table I row for one site: observations, days, resolution."""
    site = get_site(name)
    return {
        "data_set": site.name,
        "location": site.location,
        "observations": site.samples_per_day * n_days,
        "days": n_days,
        "resolution_minutes": site.resolution_minutes,
    }


def clear_cache() -> None:
    """Drop all memoised traces (mainly for tests)."""
    _CACHE.clear()
