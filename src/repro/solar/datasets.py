"""Dataset front-end: build (and cache) the six evaluation traces.

``build_dataset("PFCI")`` returns the one-year synthetic trace standing
in for the corresponding NREL MIDC download (see Table I of the paper
and the substitution table in DESIGN.md).  Traces are memoised per
``(site, n_days, seed)`` because generating a 1-minute year takes a
noticeable fraction of a second and the experiment suite requests the
same trace many times.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.solar.sites import SITE_ORDER, get_site
from repro.solar.synthetic import generate_trace
from repro.solar.trace import SolarTrace

__all__ = ["available_datasets", "build_dataset", "dataset_summary", "clear_cache"]

_CACHE: Dict[Tuple[str, int, Optional[int]], SolarTrace] = {}


def available_datasets() -> tuple:
    """Site codes in the paper's table order."""
    return SITE_ORDER


def build_dataset(
    name: str, n_days: int = 365, seed: Optional[int] = None
) -> SolarTrace:
    """Return the synthetic stand-in trace for site ``name``.

    Parameters
    ----------
    name:
        Site code (``SPMD``, ``ECSU``, ``ORNL``, ``HSU``, ``NPCS``,
        ``PFCI``), case-insensitive.
    n_days:
        Days to generate; 365 reproduces the paper's setup, smaller
        values are useful for fast tests.
    seed:
        Optional override of the site's default seed.
    """
    site = get_site(name)
    key = (site.name, n_days, seed)
    if key not in _CACHE:
        _CACHE[key] = generate_trace(site, n_days=n_days, seed=seed)
    return _CACHE[key]


def dataset_summary(name: str, n_days: int = 365) -> dict:
    """Table I row for one site: observations, days, resolution."""
    site = get_site(name)
    return {
        "data_set": site.name,
        "location": site.location,
        "observations": site.samples_per_day * n_days,
        "days": n_days,
        "resolution_minutes": site.resolution_minutes,
    }


def clear_cache() -> None:
    """Drop all memoised traces (mainly for tests)."""
    _CACHE.clear()
