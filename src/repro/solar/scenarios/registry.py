"""Scenario factory registry (mirrors :mod:`repro.core.registry`).

Maps short names to scenario factories so the robustness experiment,
the CLI and the fleet harness can select degradations by string.
Registered defaults:

=================== ===================================================
``clean``           identity -- no degradation (the baseline row)
``soiling``         monotone panel soiling/aging ramp
``soiling-washout`` soiling with periodic rain wash (sawtooth)
``shading``         fixed morning partial-shading window
``dropout``         sensor dropout windows reading zero
``stuck``           stuck-at sensor faults holding the onset value
``gaps-hold``       missing telemetry, last-value imputation
``gaps-interp``     missing telemetry, linear-interpolation imputation
``gaps-zero``       missing telemetry, zero imputation
``regime-shift``    mid-trace shift to a gloomy cloud regime
``spikes``          isolated implausible-amplitude spike faults
``jitter``          per-day timestamp (clock-drift) jitter
``harsh-field``     soiling + shading + dropout + jitter composite
=================== ===================================================

Ingesting a measured trace (:mod:`repro.solar.ingest`) additionally
registers a ``<site>-defects`` scenario replaying the defects detected
in that file.

Factories take ``factory(seed=..., **kwargs)`` and return a
:class:`~repro.solar.scenarios.scenario.Scenario`.  Third-party
scenarios can be added with :func:`register_scenario` (pass
``overwrite=True`` to replace) and removed with
:func:`unregister_scenario`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.solar.scenarios.scenario import DEFAULT_SCENARIO_SEED, Scenario
from repro.solar.scenarios.transforms import (
    CloudRegimeShift,
    MissingGaps,
    PartialShading,
    SensorDropout,
    SoilingRamp,
    SpikeNoise,
    StuckAtFault,
    TimestampJitter,
)

__all__ = [
    "register_scenario",
    "unregister_scenario",
    "make_scenario",
    "available_scenarios",
    "scenario_descriptions",
]

_FACTORIES: Dict[str, Callable[..., Scenario]] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_scenario(
    name: str,
    factory: Callable[..., Scenario],
    description: str = "",
    overwrite: bool = False,
) -> None:
    """Register ``factory`` under ``name`` (lower-cased).

    Parameters
    ----------
    name:
        Registry key; matching is case-insensitive.
    factory:
        ``factory(seed=..., **kwargs)`` returning a :class:`Scenario`.
    description:
        One-line catalogue entry shown by ``repro-solar list``.
    overwrite:
        Replace an existing registration instead of raising.
    """
    key = name.lower()
    if key in _FACTORIES and not overwrite:
        raise ValueError(
            f"scenario {name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _FACTORIES[key] = factory
    _DESCRIPTIONS[key] = description


def unregister_scenario(name: str) -> None:
    """Remove a registered scenario."""
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(f"scenario {name!r} is not registered")
    del _FACTORIES[key]
    _DESCRIPTIONS.pop(key, None)


def make_scenario(
    name: str, seed: Optional[int] = None, **kwargs
) -> Scenario:
    """Instantiate a registered scenario.

    ``seed`` defaults to :data:`~repro.solar.scenarios.scenario.DEFAULT_SCENARIO_SEED`;
    other keyword arguments pass through to the factory.
    """
    key = name.lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        )
    if seed is None:
        seed = DEFAULT_SCENARIO_SEED
    return factory(seed=seed, **kwargs)


def available_scenarios() -> tuple:
    """Registered scenario names, sorted."""
    return tuple(sorted(_FACTORIES))


def scenario_descriptions() -> Dict[str, str]:
    """Name -> one-line description of every registered scenario."""
    return {name: _DESCRIPTIONS.get(name, "") for name in available_scenarios()}


# ----------------------------------------------------------------------
# Default catalogue
# ----------------------------------------------------------------------
def _clean(seed: int) -> Scenario:
    return Scenario(name="clean", transforms=(), seed=seed)


def _soiling(seed: int, rate_per_day: float = 0.002, floor: float = 0.5) -> Scenario:
    return Scenario(
        name="soiling",
        transforms=(SoilingRamp(rate_per_day=rate_per_day, floor=floor),),
        seed=seed,
    )


def _soiling_washout(
    seed: int, rate_per_day: float = 0.004, wash_interval_days: int = 45
) -> Scenario:
    return Scenario(
        name="soiling-washout",
        transforms=(
            SoilingRamp(
                rate_per_day=rate_per_day,
                floor=0.5,
                wash_interval_days=wash_interval_days,
            ),
        ),
        seed=seed,
    )


def _shading(
    seed: int,
    start_hour: float = 7.0,
    end_hour: float = 9.5,
    attenuation: float = 0.6,
) -> Scenario:
    return Scenario(
        name="shading",
        transforms=(
            PartialShading(
                start_hour=start_hour, end_hour=end_hour, attenuation=attenuation
            ),
        ),
        seed=seed,
    )


def _dropout(seed: int, rate_per_day: float = 0.5) -> Scenario:
    return Scenario(
        name="dropout",
        transforms=(SensorDropout(rate_per_day=rate_per_day),),
        seed=seed,
    )


def _stuck(seed: int, rate_per_day: float = 0.3) -> Scenario:
    return Scenario(
        name="stuck",
        transforms=(StuckAtFault(rate_per_day=rate_per_day),),
        seed=seed,
    )


def _gaps(policy: str):
    def factory(seed: int, rate_per_day: float = 0.4) -> Scenario:
        return Scenario(
            name=f"gaps-{policy}",
            transforms=(MissingGaps(rate_per_day=rate_per_day, policy=policy),),
            seed=seed,
        )

    return factory


def _regime_shift(seed: int, onset_fraction: float = 0.5) -> Scenario:
    # The onset is expressed as a fraction of the trace so the same
    # scenario name works at any n_days; resolved lazily per trace.
    return Scenario(
        name="regime-shift",
        transforms=(_FractionalRegimeShift(onset_fraction=onset_fraction),),
        seed=seed,
    )


def _spikes(seed: int, rate_per_day: float = 2.0) -> Scenario:
    return Scenario(
        name="spikes",
        transforms=(SpikeNoise(rate_per_day=rate_per_day),),
        seed=seed,
    )


def _jitter(seed: int, max_shift_minutes: float = 15.0) -> Scenario:
    return Scenario(
        name="jitter",
        transforms=(TimestampJitter(max_shift_minutes=max_shift_minutes),),
        seed=seed,
    )


def _harsh_field(seed: int) -> Scenario:
    return Scenario(
        name="harsh-field",
        transforms=(
            SoilingRamp(rate_per_day=0.002, floor=0.6),
            PartialShading(start_hour=7.0, end_hour=9.0, attenuation=0.5),
            SensorDropout(rate_per_day=0.3),
            TimestampJitter(max_shift_minutes=10.0),
        ),
        seed=seed,
    )


class _FractionalRegimeShift(CloudRegimeShift):
    """Regime shift whose onset scales with the trace length."""

    def __init__(self, onset_fraction: float = 0.5):
        if not 0.0 <= onset_fraction < 1.0:
            raise ValueError("onset_fraction must be in [0, 1)")
        super().__init__(onset_day=0)
        object.__setattr__(self, "onset_fraction", onset_fraction)

    def _transform(self, values, ctx):
        onset = int(self.onset_fraction * ctx.n_days)
        shifted = CloudRegimeShift(
            onset_day=onset,
            day_type_model=self.day_type_model,
            cloud_params=self.cloud_params,
        )
        return shifted._transform(values, ctx)


register_scenario("clean", _clean, "identity -- no degradation")
register_scenario("soiling", _soiling, "monotone panel soiling/aging ramp")
register_scenario(
    "soiling-washout", _soiling_washout, "soiling with periodic rain wash"
)
register_scenario("shading", _shading, "fixed morning partial-shading window")
register_scenario("dropout", _dropout, "sensor dropout windows reading zero")
register_scenario("stuck", _stuck, "stuck-at faults holding the onset value")
register_scenario("gaps-hold", _gaps("hold"), "telemetry gaps, hold imputation")
register_scenario(
    "gaps-interp", _gaps("interp"), "telemetry gaps, interpolation imputation"
)
register_scenario("gaps-zero", _gaps("zero"), "telemetry gaps, zero imputation")
register_scenario(
    "regime-shift", _regime_shift, "mid-trace shift to a gloomy cloud regime"
)
register_scenario("spikes", _spikes, "isolated implausible-amplitude spike faults")
register_scenario("jitter", _jitter, "per-day clock-drift timestamp jitter")
register_scenario(
    "harsh-field", _harsh_field, "soiling + shading + dropout + jitter composite"
)
