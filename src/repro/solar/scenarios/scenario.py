"""The :class:`Scenario` container: a seeded chain of trace transforms.

A scenario is an ordered tuple of
:class:`~repro.solar.scenarios.transforms.Transform` instances plus a
seed.  :meth:`Scenario.apply` runs the chain over a
:class:`~repro.solar.trace.SolarTrace` and returns a new trace.

Determinism and composition semantics
-------------------------------------
The seed feeds one :class:`numpy.random.SeedSequence`, which spawns one
child generator per transform *in chain order*.  Consequences:

* the same ``(seed, transforms)`` pair is byte-identical across runs,
  processes and platforms (numpy's Philox/PCG streams are portable);
* transform *i*'s randomness depends only on the seed and its position,
  never on how many draws an earlier transform consumed -- inserting a
  transform shifts the streams of those after it, but editing one
  transform's parameters never perturbs its neighbours' noise;
* composition is ordered function application: ``compose([a, b])``
  applies ``a`` first, then ``b`` to ``a``'s output.  Degradations do
  not generally commute (soiling then shading ≠ shading then soiling on
  the attenuated window), and the engine preserves whatever order the
  scenario author chose.

The empty scenario is the identity: ``apply`` returns the input trace
object itself, unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.solar.scenarios.transforms import Transform, TransformContext
from repro.solar.trace import SolarTrace

__all__ = ["Scenario", "DEFAULT_SCENARIO_SEED"]

#: Seed used when a scenario is built without an explicit one.
DEFAULT_SCENARIO_SEED = 20100308  # DATE 2010, Dresden: March 8 2010


@dataclass(frozen=True)
class Scenario:
    """A named, seeded, ordered chain of trace degradations.

    Attributes
    ----------
    name:
        Short label; appears in trace names, report rows and the
        scenario registry.
    transforms:
        The degradation chain, applied first-to-last.
    seed:
        Root of every transform's random stream (see module docstring).
    """

    name: str
    transforms: Tuple[Transform, ...] = ()
    seed: int = DEFAULT_SCENARIO_SEED

    def __post_init__(self):
        transforms = tuple(self.transforms)
        for i, transform in enumerate(transforms):
            if not isinstance(transform, Transform):
                raise TypeError(
                    f"transforms[{i}] must be a Transform, "
                    f"got {type(transform).__name__}"
                )
        object.__setattr__(self, "transforms", transforms)
        if not self.name:
            raise ValueError("scenario name must be non-empty")

    @property
    def is_identity(self) -> bool:
        """True for the empty (clean) scenario."""
        return not self.transforms

    def apply(self, trace: SolarTrace) -> SolarTrace:
        """Run the chain over ``trace``; returns a new trace.

        The empty scenario returns ``trace`` itself.  Otherwise the
        result is a fresh :class:`~repro.solar.trace.SolarTrace` with
        the same resolution and day count, named
        ``"<trace.name>+<scenario.name>"``.
        """
        if self.is_identity:
            return trace
        values = trace.values
        streams = np.random.SeedSequence(self.seed).spawn(len(self.transforms))
        for transform, stream in zip(self.transforms, streams):
            ctx = TransformContext(
                resolution_minutes=trace.resolution_minutes,
                samples_per_day=trace.samples_per_day,
                n_days=trace.n_days,
                rng=np.random.default_rng(stream),
            )
            values = transform(values, ctx)
        name = f"{trace.name}+{self.name}" if trace.name else self.name
        return SolarTrace(
            values=values,
            resolution_minutes=trace.resolution_minutes,
            name=name,
        )

    def with_seed(self, seed: int) -> "Scenario":
        """The same chain under a different seed."""
        return Scenario(name=self.name, transforms=self.transforms, seed=seed)

    @classmethod
    def compose(
        cls,
        parts: Sequence[Union["Scenario", Transform]],
        name: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> "Scenario":
        """Concatenate scenarios and/or bare transforms, in order.

        ``parts`` may mix :class:`Scenario` instances (their chains are
        inlined) and bare :class:`Transform` instances.  The composed
        scenario is re-seeded as one chain: ``seed`` when given, else
        the first composed scenario's seed, else the default -- the
        child streams are then spawned over the *composed* chain, so a
        composite is itself a first-class deterministic scenario rather
        than a replay of its parts' private streams.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("compose needs at least one scenario or transform")
        transforms: list = []
        names: list = []
        inherited_seed = None
        for i, part in enumerate(parts):
            if isinstance(part, Scenario):
                transforms.extend(part.transforms)
                names.append(part.name)
                if inherited_seed is None:
                    inherited_seed = part.seed
            elif isinstance(part, Transform):
                transforms.append(part)
                names.append(type(part).__name__.lower())
            else:
                raise TypeError(
                    f"parts[{i}] must be a Scenario or Transform, "
                    f"got {type(part).__name__}"
                )
        if seed is None:
            seed = inherited_seed if inherited_seed is not None else DEFAULT_SCENARIO_SEED
        return cls(
            name=name or "+".join(names),
            transforms=tuple(transforms),
            seed=seed,
        )

    def __repr__(self) -> str:
        chain = " -> ".join(type(t).__name__ for t in self.transforms) or "identity"
        return f"Scenario({self.name!r}, seed={self.seed}, {chain})"
