"""Trace degradation transforms.

Each transform is a small frozen dataclass mapping one flat sample
array to another of the same shape, given a :class:`TransformContext`
describing the trace geometry and carrying the transform's private
random generator.  Transforms never mutate their input and never touch
global random state: all randomness flows through ``ctx.rng``, which the
owning :class:`~repro.solar.scenarios.scenario.Scenario` derives from
its seed (one spawned child stream per transform, in composition
order), so the same seed always produces byte-identical output.

Two invariants are enforced by the :class:`Transform` base class after
every ``_transform`` call, because every downstream consumer
(:class:`~repro.solar.trace.SolarTrace` validation, the dawn guard of
the predictor, the region-of-interest mask) relies on them:

* **non-negativity** -- degraded power is clamped at zero;
* **night preservation** -- samples that were exactly zero in the input
  stay zero.  Physically: a fault model may corrupt what the sensor
  reads in daylight, but it cannot create irradiance at night, and the
  imputation policies know that a zero-power slot is genuinely dark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.solar.clouds import CloudModelParams, DayType, DayTypeModel, IntradayCloudModel

__all__ = [
    "TransformContext",
    "Transform",
    "SoilingRamp",
    "PartialShading",
    "SensorDropout",
    "StuckAtFault",
    "MissingGaps",
    "SpikeNoise",
    "CloudRegimeShift",
    "TimestampJitter",
    "GAP_POLICIES",
    "impute_holes",
]

#: Imputation policies understood by :class:`MissingGaps`.
GAP_POLICIES = ("zero", "hold", "interp")


@dataclass(frozen=True)
class TransformContext:
    """Trace geometry plus the transform's private random stream.

    Attributes
    ----------
    resolution_minutes:
        Minutes between consecutive samples.
    samples_per_day:
        Samples in each whole day.
    n_days:
        Whole days covered by the value array.
    rng:
        Generator spawned by the owning scenario for *this* transform.
        Deterministic transforms simply never draw from it.
    """

    resolution_minutes: int
    samples_per_day: int
    n_days: int
    rng: np.random.Generator

    @property
    def n_samples(self) -> int:
        """Total samples (``n_days * samples_per_day``)."""
        return self.n_days * self.samples_per_day

    def minutes_to_samples(self, minutes: float) -> int:
        """Round a duration in minutes to whole samples (at least 1)."""
        return max(1, int(round(minutes / self.resolution_minutes)))


class Transform:
    """Base class: shape-preserving degradation of a flat sample array.

    Subclasses implement :meth:`_transform`; callers use
    :meth:`__call__`, which validates the output shape and enforces the
    module-level invariants (non-negativity, night preservation).
    """

    def __call__(self, values: np.ndarray, ctx: TransformContext) -> np.ndarray:
        out = np.asarray(self._transform(values, ctx), dtype=float)
        if out.size != values.size:
            raise ValueError(
                f"{type(self).__name__} changed the sample count: "
                f"{values.size} -> {out.size}"
            )
        out = out.reshape(values.shape)
        out = np.maximum(out, 0.0)
        out[values == 0.0] = 0.0
        return out

    def _transform(self, values: np.ndarray, ctx: TransformContext) -> np.ndarray:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Deterministic degradations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SoilingRamp(Transform):
    """Panel soiling / aging: a slowly accumulating attenuation ramp.

    Dust (and cell aging) multiply the harvest by a factor that decays
    by ``rate_per_day`` each day, clamped at ``floor``.  When
    ``wash_interval_days`` is set, the accumulated soiling resets every
    interval (rain washing the panel), producing the sawtooth seen on
    real deployments.
    """

    rate_per_day: float = 0.002
    floor: float = 0.5
    wash_interval_days: Optional[int] = None

    def __post_init__(self):
        if not 0.0 <= self.rate_per_day < 1.0:
            raise ValueError("rate_per_day must be in [0, 1)")
        if not 0.0 <= self.floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        if self.wash_interval_days is not None and self.wash_interval_days <= 0:
            raise ValueError("wash_interval_days must be positive")

    def _transform(self, values, ctx):
        day = np.arange(ctx.n_days, dtype=float)
        if self.wash_interval_days is not None:
            day = day % self.wash_interval_days
        factor = np.maximum(1.0 - self.rate_per_day * day, self.floor)
        return values.reshape(ctx.n_days, -1) * factor[:, None]


@dataclass(frozen=True)
class PartialShading(Transform):
    """A fixed daily shading window (tree, mast, neighbouring roof).

    Samples between ``start_hour`` and ``end_hour`` (local solar time)
    are attenuated by ``attenuation`` (0.6 = drop to 40 %), optionally
    only for the day range ``days = (first, last)`` (half-open) --
    foliage is seasonal.
    """

    start_hour: float = 7.0
    end_hour: float = 9.5
    attenuation: float = 0.6
    days: Optional[Tuple[int, int]] = None

    def __post_init__(self):
        if not 0.0 <= self.start_hour < self.end_hour <= 24.0:
            raise ValueError("require 0 <= start_hour < end_hour <= 24")
        if not 0.0 < self.attenuation <= 1.0:
            raise ValueError("attenuation must be in (0, 1]")
        if self.days is not None and not 0 <= self.days[0] < self.days[1]:
            raise ValueError("days must be an increasing (first, last) pair")

    def _transform(self, values, ctx):
        spd = ctx.samples_per_day
        hour = (np.arange(spd) + 0.5) * (24.0 / spd)
        in_window = (hour >= self.start_hour) & (hour < self.end_hour)
        gain = np.where(in_window, 1.0 - self.attenuation, 1.0)
        shaped = values.reshape(ctx.n_days, spd).copy()
        if self.days is None:
            shaped *= gain[None, :]
        else:
            first, last = self.days
            shaped[first:last] *= gain[None, :]
        return shaped


# ----------------------------------------------------------------------
# Stochastic sensor faults
# ----------------------------------------------------------------------
def _draw_events(
    ctx: TransformContext, rate_per_day: float, mean_duration_minutes: float
):
    """Fault events as ``(start, length)`` pairs (in samples).

    One event model shared by every windowed fault transform: a
    Poisson(``rate_per_day * n_days``) event count, uniform starts,
    exponential durations -- drawn in this exact order so each
    transform's stream stays byte-stable.
    """
    n_events = int(ctx.rng.poisson(rate_per_day * ctx.n_days))
    if n_events == 0:
        return []
    starts = ctx.rng.integers(0, ctx.n_samples, size=n_events)
    durations = ctx.rng.exponential(mean_duration_minutes, size=n_events)
    return [
        (int(start), ctx.minutes_to_samples(duration))
        for start, duration in zip(starts, durations)
    ]


def _draw_windows(
    ctx: TransformContext, rate_per_day: float, mean_duration_minutes: float
) -> np.ndarray:
    """Boolean fault mask over the event windows of :func:`_draw_events`."""
    mask = np.zeros(ctx.n_samples, dtype=bool)
    for start, length in _draw_events(ctx, rate_per_day, mean_duration_minutes):
        mask[start : start + length] = True
    return mask


@dataclass(frozen=True)
class SensorDropout(Transform):
    """Sensor dropout windows: the measurement channel reads zero.

    Poisson(``rate_per_day * n_days``) dropout events, each lasting an
    exponential duration with mean ``mean_duration_minutes``.
    """

    rate_per_day: float = 0.5
    mean_duration_minutes: float = 45.0

    def __post_init__(self):
        if self.rate_per_day < 0:
            raise ValueError("rate_per_day must be non-negative")
        if self.mean_duration_minutes <= 0:
            raise ValueError("mean_duration_minutes must be positive")

    def _transform(self, values, ctx):
        mask = _draw_windows(ctx, self.rate_per_day, self.mean_duration_minutes)
        out = values.copy()
        out[mask] = 0.0
        return out


@dataclass(frozen=True)
class StuckAtFault(Transform):
    """Stuck-at sensor fault: the reading freezes at its onset value.

    During each fault window the output holds the sample observed when
    the fault began (ADC latch-up, ice on the pyranometer).  Night
    samples are exempt by the base-class invariant -- the value cannot
    stick to a nonzero level where the true power is zero.
    """

    rate_per_day: float = 0.3
    mean_duration_minutes: float = 90.0

    def __post_init__(self):
        if self.rate_per_day < 0:
            raise ValueError("rate_per_day must be non-negative")
        if self.mean_duration_minutes <= 0:
            raise ValueError("mean_duration_minutes must be positive")

    def _transform(self, values, ctx):
        out = values.copy()
        for start, length in _draw_events(
            ctx, self.rate_per_day, self.mean_duration_minutes
        ):
            end = min(ctx.n_samples, start + length)
            out[start:end] = values[start]
        return out


@dataclass(frozen=True)
class MissingGaps(Transform):
    """Missing-slot gaps filled by an explicit imputation policy.

    Telemetry gaps (radio loss, logger reboot) leave holes that any real
    pipeline must fill before a fixed-shape predictor can run.  The gap
    windows are drawn like :class:`SensorDropout`; the holes are then
    imputed according to ``policy``:

    * ``"zero"``   -- pessimistic: treat missing as no harvest;
    * ``"hold"``   -- last observation carried forward;
    * ``"interp"`` -- linear interpolation between the gap's edges.
    """

    rate_per_day: float = 0.4
    mean_duration_minutes: float = 60.0
    policy: str = "hold"

    def __post_init__(self):
        if self.rate_per_day < 0:
            raise ValueError("rate_per_day must be non-negative")
        if self.mean_duration_minutes <= 0:
            raise ValueError("mean_duration_minutes must be positive")
        if self.policy not in GAP_POLICIES:
            raise ValueError(
                f"unknown gap policy {self.policy!r}; available: {GAP_POLICIES}"
            )

    def _transform(self, values, ctx):
        missing = _draw_windows(ctx, self.rate_per_day, self.mean_duration_minutes)
        return impute_holes(values, missing, self.policy)


def impute_holes(values: np.ndarray, missing: np.ndarray, policy: str) -> np.ndarray:
    """Fill the ``missing`` samples of ``values`` by ``policy``.

    The shared imputation kernel behind :class:`MissingGaps` (random
    gap windows) and the ingestion replay transforms (measured gap
    masks).  ``policy`` is one of :data:`GAP_POLICIES`; the input is
    never mutated.
    """
    if policy not in GAP_POLICIES:
        raise ValueError(f"unknown gap policy {policy!r}; available: {GAP_POLICIES}")
    if not missing.any():
        return values.copy()
    if policy == "zero":
        out = values.copy()
        out[missing] = 0.0
        return out
    present = np.flatnonzero(~missing)
    if present.size == 0:
        return np.zeros_like(values)
    holes = np.flatnonzero(missing)
    if policy == "hold":
        # Index of the latest present sample at or before each hole;
        # holes before the first present sample fall back to it.
        prev = np.searchsorted(present, holes, side="right") - 1
        fill = values[present[np.maximum(prev, 0)]]
    else:  # "interp"
        fill = np.interp(holes, present, values[present])
    out = values.copy()
    out[holes] = fill
    return out


@dataclass(frozen=True)
class SpikeNoise(Transform):
    """Single-sample spike faults: readings jump to implausible levels.

    Electrical transients (loose connector, ADC glitch) or cloud-edge
    enhancement push isolated samples far above the clear-sky envelope.
    Poisson(``rate_per_day * n_days``) samples are raised to an
    amplitude drawn uniformly from ``amplitude_wm2``; the spike only
    ever *raises* a reading, and the base-class night invariant keeps
    dark slots dark (a spike is a daylight measurement fault).
    """

    rate_per_day: float = 2.0
    amplitude_wm2: Tuple[float, float] = (1600.0, 2200.0)

    def __post_init__(self):
        if self.rate_per_day < 0:
            raise ValueError("rate_per_day must be non-negative")
        low, high = self.amplitude_wm2
        if not 0.0 < low <= high:
            raise ValueError("amplitude_wm2 must be an increasing positive pair")

    def _transform(self, values, ctx):
        n_events = int(ctx.rng.poisson(self.rate_per_day * ctx.n_days))
        out = values.copy()
        if n_events == 0:
            return out
        idx = ctx.rng.integers(0, ctx.n_samples, size=n_events)
        amplitude = ctx.rng.uniform(*self.amplitude_wm2, size=n_events)
        out[idx] = np.maximum(out[idx], amplitude)
        return out


# ----------------------------------------------------------------------
# Weather and clock degradations
# ----------------------------------------------------------------------
#: Day-type chain used by the default regime shift: overcast-heavy with
#: strong persistence -- a stalled front / monsoon season.
_GLOOMY_TRANSITION = (
    (0.30, 0.40, 0.30),
    (0.10, 0.45, 0.45),
    (0.05, 0.25, 0.70),
)


@dataclass(frozen=True)
class CloudRegimeShift(Transform):
    """A persistent weather-regime change starting at ``onset_day``.

    From the onset on, each day is attenuated by an extra clear-sky
    index sampled from the same two-level cloud model the synthetic
    generator uses (:class:`~repro.solar.clouds.DayTypeModel` day-type
    chain, :class:`~repro.solar.clouds.IntradayCloudModel` intra-day
    index), parameterised for a gloomier climate.  This composes with
    whatever weather the base trace already has: it models the *shift*
    (relative to the trained-on climate), not absolute weather, which is
    exactly the non-stationarity that defeats a long history depth D.
    """

    onset_day: int = 0
    day_type_model: DayTypeModel = None
    cloud_params: CloudModelParams = None

    def __post_init__(self):
        if self.onset_day < 0:
            raise ValueError("onset_day must be non-negative")
        if self.day_type_model is None:
            object.__setattr__(
                self,
                "day_type_model",
                DayTypeModel(
                    transition=np.asarray(_GLOOMY_TRANSITION),
                    initial=np.array([0.1, 0.4, 0.5]),
                ),
            )
        if self.cloud_params is None:
            object.__setattr__(self, "cloud_params", CloudModelParams())

    def _transform(self, values, ctx):
        if self.onset_day >= ctx.n_days:
            return values.copy()
        shifted_days = ctx.n_days - self.onset_day
        day_types = self.day_type_model.sample_days(shifted_days, ctx.rng)
        cloud_model = IntradayCloudModel(self.cloud_params)
        shaped = values.reshape(ctx.n_days, ctx.samples_per_day).copy()
        for i in range(shifted_days):
            index = cloud_model.sample_day(
                DayType(day_types[i]), ctx.samples_per_day, ctx.rng
            )
            # The sampled series is a clear-sky index in [k_min, k_max];
            # as a *relative* attenuation it must not amplify, so cap it
            # at 1 (cloud-edge brightening does not survive a regime
            # this model describes).
            shaped[self.onset_day + i] *= np.minimum(index, 1.0)
        return shaped


@dataclass(frozen=True)
class TimestampJitter(Transform):
    """Clock drift: each day's samples shift by a few minutes.

    A cheap RTC gains or loses time, so the node's notion of "slot j"
    slides against solar time.  Each day is circularly rolled by an
    integer number of samples drawn uniformly from
    ``[-max_shift_minutes, +max_shift_minutes]``.  The roll is per day,
    so the misalignment decorrelates day-to-day history exactly the way
    an unsynchronised deployment does.
    """

    max_shift_minutes: float = 15.0

    def __post_init__(self):
        if self.max_shift_minutes < 0:
            raise ValueError("max_shift_minutes must be non-negative")

    def _transform(self, values, ctx):
        max_shift = int(self.max_shift_minutes / ctx.resolution_minutes)
        shaped = values.reshape(ctx.n_days, ctx.samples_per_day).copy()
        if max_shift == 0:
            return shaped
        shifts = ctx.rng.integers(-max_shift, max_shift + 1, size=ctx.n_days)
        for day, shift in enumerate(shifts):
            if shift:
                shaped[day] = np.roll(shaped[day], int(shift))
        return shaped
