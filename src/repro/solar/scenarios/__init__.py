"""Composable, seeded trace-degradation scenarios.

The paper evaluates WCMA on clean single-site traces; real deployments
face soiling, shading, sensor faults, telemetry gaps, regime shifts and
clock drift.  This package turns those into first-class, reproducible
*scenarios*: ordered chains of small
:class:`~repro.solar.scenarios.transforms.Transform` objects applied to
a :class:`~repro.solar.trace.SolarTrace` under one seed.

* :mod:`repro.solar.scenarios.transforms` -- the degradation catalogue.
* :mod:`repro.solar.scenarios.scenario` -- the :class:`Scenario`
  container, ``Scenario.compose`` and the determinism semantics.
* :mod:`repro.solar.scenarios.registry` -- string registry mirroring
  :mod:`repro.core.registry`, with a dozen built-in scenarios.

See README.md in this directory for the transform catalogue and the
composition/determinism contract; the robustness experiment matrix
(:mod:`repro.experiments.robustness`) and the ``repro-solar
robustness`` CLI subcommand are the main consumers.
"""

from repro.solar.scenarios.scenario import DEFAULT_SCENARIO_SEED, Scenario
from repro.solar.scenarios.transforms import (
    GAP_POLICIES,
    CloudRegimeShift,
    MissingGaps,
    PartialShading,
    SensorDropout,
    SoilingRamp,
    SpikeNoise,
    StuckAtFault,
    TimestampJitter,
    Transform,
    TransformContext,
    impute_holes,
)
from repro.solar.scenarios.registry import (
    available_scenarios,
    make_scenario,
    register_scenario,
    scenario_descriptions,
    unregister_scenario,
)

__all__ = [
    "Scenario",
    "DEFAULT_SCENARIO_SEED",
    "Transform",
    "TransformContext",
    "SoilingRamp",
    "PartialShading",
    "SensorDropout",
    "StuckAtFault",
    "MissingGaps",
    "SpikeNoise",
    "CloudRegimeShift",
    "TimestampJitter",
    "GAP_POLICIES",
    "impute_holes",
    "register_scenario",
    "unregister_scenario",
    "make_scenario",
    "available_scenarios",
    "scenario_descriptions",
]
