"""Climate profiles for the six evaluation sites.

Table I of the paper lists six NREL MIDC measurement sites.  The actual
traces are not redistributable, so each site is represented here by a
:class:`SiteProfile` whose parameters (latitude, sample resolution, cloud
statistics) were chosen to reproduce the *qualitative* character of the
measured data:

========  =====  ==========  ==========================================
Name      State  Resolution  Character
========  =====  ==========  ==========================================
SPMD      CO     5 min       Mountain site, frequent afternoon
                             convection -> bursty partly-cloudy days.
ECSU      NC     5 min       Humid coastal plain, mixed weather.
ORNL      TN     1 min       Humid continental valley, the most
                             variable trace in the paper (highest MAPE).
HSU       CA     1 min       North-coast marine layer (fog), variable.
NPCS      NV     1 min       Desert, predominantly clear.
PFCI      AZ     1 min       High desert, clearest trace (lowest MAPE).
========  =====  ==========  ==========================================

The resulting difficulty ordering (PFCI < NPCS << ECSU ~ HSU < SPMD ~
ORNL) matches Tables II/III of the paper, which is the property the
reproduction's conclusions rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solar.clouds import CloudModelParams, DayTypeModel

__all__ = ["SiteProfile", "SITES", "SITE_ORDER", "get_site"]


@dataclass(frozen=True)
class SiteProfile:
    """Static description of one measurement site.

    Attributes
    ----------
    name:
        Short site code used throughout the paper (e.g. ``"PFCI"``).
    location:
        Two-letter US state code, as in Table I.
    latitude_deg:
        Site latitude; drives the seasonal clear-sky envelope.
    resolution_minutes:
        Native sampling resolution of the (synthetic) trace: 5 for the
        two 5-minute sites, 1 for the four 1-minute sites (Table I).
    day_type_model:
        Markov chain over day types; controls the sunny/cloudy day mix.
    cloud_params:
        Intra-day clear-sky-index process parameters.
    seed:
        Default RNG seed so every run of the reproduction sees the same
        "year of weather" for this site.
    """

    name: str
    location: str
    latitude_deg: float
    resolution_minutes: int
    day_type_model: DayTypeModel
    cloud_params: CloudModelParams
    seed: int

    @property
    def samples_per_day(self) -> int:
        """Native samples per day (288 at 5-minute, 1440 at 1-minute)."""
        return (24 * 60) // self.resolution_minutes

    @property
    def observations_per_year(self) -> int:
        """Observation count over 365 days, as reported in Table I."""
        return self.samples_per_day * 365


def _day_model(p_clear: float, p_partly: float, persistence: float) -> DayTypeModel:
    """Build a day-type chain with a target stationary mix.

    ``persistence`` in [0, 1) blends the identity matrix with the
    stationary distribution: higher persistence creates longer weather
    spells while keeping the long-run day-type mix fixed.
    """
    p_over = 1.0 - p_clear - p_partly
    if p_over < 0:
        raise ValueError("p_clear + p_partly must be <= 1")
    stationary = np.array([p_clear, p_partly, p_over])
    transition = persistence * np.eye(3) + (1.0 - persistence) * np.tile(
        stationary, (3, 1)
    )
    return DayTypeModel(transition=transition, initial=stationary)


SITES: dict = {
    "SPMD": SiteProfile(
        name="SPMD",
        location="CO",
        latitude_deg=39.74,
        resolution_minutes=5,
        day_type_model=_day_model(p_clear=0.34, p_partly=0.44, persistence=0.35),
        cloud_params=CloudModelParams(
            base_index=(0.97, 0.56, 0.26),
            volatility=(0.025, 0.055, 0.06),
            mean_reversion=(0.25, 0.18, 0.12),
            day_drift=(0.05, 0.26, 0.12),
            jump_rate=(0.6, 8.5, 4.0),
            jump_sd=(0.10, 0.52, 0.30),
            transient_rate=2.0,
            transient_depth=0.60,
            transient_minutes=24.0,
        ),
        seed=42001,
    ),
    "ECSU": SiteProfile(
        name="ECSU",
        location="NC",
        latitude_deg=36.28,
        resolution_minutes=5,
        day_type_model=_day_model(p_clear=0.36, p_partly=0.40, persistence=0.40),
        cloud_params=CloudModelParams(
            base_index=(0.96, 0.58, 0.28),
            volatility=(0.035, 0.06, 0.055),
            mean_reversion=(0.25, 0.20, 0.12),
            day_drift=(0.05, 0.24, 0.12),
            jump_rate=(0.6, 7.6, 3.6),
            jump_sd=(0.10, 0.50, 0.28),
            transient_rate=1.8,
            transient_depth=0.58,
            transient_minutes=22.0,
        ),
        seed=42002,
    ),
    "ORNL": SiteProfile(
        name="ORNL",
        location="TN",
        latitude_deg=35.93,
        resolution_minutes=1,
        day_type_model=_day_model(p_clear=0.21, p_partly=0.52, persistence=0.30),
        cloud_params=CloudModelParams(
            base_index=(0.96, 0.52, 0.26),
            volatility=(0.03, 0.065, 0.065),
            mean_reversion=(0.25, 0.16, 0.10),
            day_drift=(0.06, 0.28, 0.13),
            jump_rate=(0.7, 10.5, 4.6),
            jump_sd=(0.11, 0.58, 0.33),
            transient_rate=2.5,
            transient_depth=0.65,
            transient_minutes=26.0,
        ),
        seed=42003,
    ),
    "HSU": SiteProfile(
        name="HSU",
        location="CA",
        latitude_deg=40.88,
        resolution_minutes=1,
        day_type_model=_day_model(p_clear=0.33, p_partly=0.41, persistence=0.45),
        cloud_params=CloudModelParams(
            base_index=(0.95, 0.56, 0.30),
            volatility=(0.035, 0.065, 0.06),
            mean_reversion=(0.25, 0.19, 0.12),
            day_drift=(0.06, 0.25, 0.12),
            jump_rate=(0.7, 8.0, 3.8),
            jump_sd=(0.11, 0.52, 0.30),
            transient_rate=2.0,
            transient_depth=0.58,
            transient_minutes=24.0,
        ),
        seed=42004,
    ),
    "NPCS": SiteProfile(
        name="NPCS",
        location="NV",
        latitude_deg=36.10,
        resolution_minutes=1,
        day_type_model=_day_model(p_clear=0.62, p_partly=0.29, persistence=0.45),
        cloud_params=CloudModelParams(
            base_index=(0.98, 0.64, 0.32),
            volatility=(0.05, 0.055, 0.05),
            mean_reversion=(0.30, 0.22, 0.14),
            day_drift=(0.045, 0.18, 0.10),
            jump_rate=(0.55, 8.0, 3.0),
            jump_sd=(0.10, 0.52, 0.26),
            transient_rate=1.2,
            transient_depth=0.52,
            transient_minutes=20.0,
        ),
        seed=42005,
    ),
    "PFCI": SiteProfile(
        name="PFCI",
        location="AZ",
        latitude_deg=34.61,
        resolution_minutes=1,
        day_type_model=_day_model(p_clear=0.70, p_partly=0.23, persistence=0.45),
        cloud_params=CloudModelParams(
            base_index=(0.985, 0.68, 0.34),
            volatility=(0.045, 0.05, 0.045),
            mean_reversion=(0.32, 0.24, 0.15),
            day_drift=(0.04, 0.15, 0.09),
            jump_rate=(0.5, 7.0, 2.6),
            jump_sd=(0.09, 0.50, 0.24),
            transient_rate=1.0,
            transient_depth=0.50,
            transient_minutes=18.0,
        ),
        seed=42006,
    ),
}

#: Row order used by every table in the paper.
SITE_ORDER = ("SPMD", "ECSU", "ORNL", "HSU", "NPCS", "PFCI")


def get_site(name: str) -> SiteProfile:
    """Look up a site profile by its (case-insensitive) code."""
    key = name.upper()
    try:
        return SITES[key]
    except KeyError:
        raise KeyError(f"unknown site {name!r}; available: {', '.join(SITE_ORDER)}")
