"""Clear-sky global horizontal irradiance (GHI) models.

The stochastic cloud model in :mod:`repro.solar.clouds` works in terms of
a *clear-sky index* (ratio of actual to clear-sky irradiance), so we need
a clear-sky envelope.  Two classic single-parameter models are provided:

* :func:`haurwitz` -- Haurwitz (1945), a robust all-purpose model driven
  only by the solar zenith angle.
* :func:`adnot` -- Adnot et al. (1979), slightly different shoulder
  shape; used in tests as an independent cross-check.

Both return power per unit area in W/m^2 and are vectorised over numpy
arrays of elevation angles.
"""

from __future__ import annotations

import numpy as np

__all__ = ["haurwitz", "adnot", "clearsky_profile"]


def haurwitz(elevation_rad: np.ndarray) -> np.ndarray:
    """Haurwitz clear-sky GHI in W/m^2 from solar elevation (radians).

    ``GHI = 1098 * cos(z) * exp(-0.057 / cos(z))`` where ``z`` is the
    zenith angle.  Elevations at or below the horizon yield exactly 0.
    """
    elevation = np.asarray(elevation_rad, dtype=float)
    cos_zenith = np.sin(elevation)  # cos(zenith) == sin(elevation)
    up = cos_zenith > 1e-6
    ghi = np.zeros_like(cos_zenith)
    cz = np.where(up, cos_zenith, 1.0)  # avoid divide-by-zero below horizon
    ghi = np.where(up, 1098.0 * cz * np.exp(-0.057 / cz), 0.0)
    return ghi


def adnot(elevation_rad: np.ndarray) -> np.ndarray:
    """Adnot et al. clear-sky GHI in W/m^2 from solar elevation (radians).

    ``GHI = 951.39 * cos(z)^1.15``; zero below the horizon.
    """
    elevation = np.asarray(elevation_rad, dtype=float)
    cos_zenith = np.sin(elevation)
    up = cos_zenith > 1e-6
    cz = np.where(up, cos_zenith, 0.0)
    return np.where(up, 951.39 * np.power(cz, 1.15), 0.0)


_MODELS = {"haurwitz": haurwitz, "adnot": adnot}


def clearsky_profile(
    latitude_deg: float,
    day_of_year: int,
    samples_per_day: int,
    model: str = "haurwitz",
) -> np.ndarray:
    """Clear-sky GHI profile (W/m^2) over one day on a uniform grid.

    Convenience wrapper combining :func:`repro.solar.geometry.elevation_profile`
    with the chosen clear-sky model.
    """
    from repro.solar.geometry import elevation_profile

    try:
        fn = _MODELS[model]
    except KeyError:
        raise ValueError(f"unknown clear-sky model {model!r}; choose from {sorted(_MODELS)}")
    return fn(elevation_profile(latitude_deg, day_of_year, samples_per_day))
