"""Fit a synthetic site profile to a measured trace.

Closes the loop between real data and the synthetic generator: given a
(real or synthetic) irradiance trace and its latitude, estimate the
cloud-model parameters that reproduce its statistics, and return a
ready-to-use :class:`~repro.solar.sites.SiteProfile`.  Users with an
actual NREL MIDC download can calibrate a profile from one year and
generate arbitrarily many statistically similar years.

Estimation is method-of-moments, matching what the experiments are
sensitive to:

* day-type mix and spell persistence -> Markov chain;
* per-day-type mean clear-sky index -> base levels;
* per-day-type fast variability -> AR volatility;
* per-day-type slow intra-day spread -> drift / jump budget.
"""

from __future__ import annotations

import numpy as np

from repro.solar.clouds import CloudModelParams, DayTypeModel
from repro.solar.sites import SiteProfile
from repro.solar.statistics import classify_days, clear_sky_index
from repro.solar.trace import SolarTrace

__all__ = ["calibrate_site"]


def _day_type_chain(labels: np.ndarray) -> DayTypeModel:
    """Maximum-likelihood 3-state transition matrix from labels."""
    counts = np.full((3, 3), 0.5)  # Laplace smoothing
    for previous, current in zip(labels[:-1], labels[1:]):
        counts[previous, current] += 1.0
    transition = counts / counts.sum(axis=1, keepdims=True)
    initial = np.bincount(labels, minlength=3).astype(float) + 0.5
    initial /= initial.sum()
    return DayTypeModel(transition=transition, initial=initial)


def calibrate_site(
    trace: SolarTrace,
    latitude_deg: float,
    name: str = "CALIBRATED",
    location: str = "--",
    seed: int = 7000,
    refine: int = 1,
) -> SiteProfile:
    """Estimate a :class:`SiteProfile` whose generator mimics ``trace``.

    Parameters
    ----------
    trace:
        One year (or more) of irradiance at 1- or 5-minute resolution.
    latitude_deg:
        Site latitude (drives the clear-sky envelope used to extract
        the clear-sky index).
    name, location, seed:
        Metadata for the returned profile.
    refine:
        Bias-correction iterations: after the moment fit, a probe year
        is generated and the base levels shifted by the observed
        clearness bias (the clamp/classification interplay otherwise
        brightens regenerated years slightly).  0 disables.

    Notes
    -----
    The fit matches first- and second-moment statistics per day type;
    it does not attempt to recover the exact jump/transient split (many
    parameterisations produce the same moments).  The acceptance test
    is behavioural: a trace regenerated from the calibrated profile has
    matching day-type mix, clearness and variability statistics (see
    ``tests/solar/test_calibration.py``).
    """
    if trace.n_days < 30:
        raise ValueError(
            f"calibration needs >= 30 days of data, got {trace.n_days}"
        )
    labels = classify_days(trace, latitude_deg)
    index = clear_sky_index(trace, latitude_deg).reshape(
        trace.n_days, trace.samples_per_day
    )

    base = []
    volatility = []
    drift = []
    spd = trace.samples_per_day
    lit_slice = slice(spd // 3, 2 * spd // 3)  # midday, away from dawn noise
    minutes_per_sample = trace.resolution_minutes

    for day_type in range(3):
        rows = index[labels == day_type][:, lit_slice]
        if rows.size == 0:
            # Day type absent from the data: fall back to defaults.
            defaults = CloudModelParams()
            base.append(defaults.base_index[day_type])
            volatility.append(defaults.volatility[day_type])
            drift.append(defaults.day_drift[day_type])
            continue
        base.append(float(np.clip(rows.mean(), 0.05, 1.05)))
        # Fast variability: sample-to-sample changes at ~5-minute scale.
        stride = max(1, 5 // minutes_per_sample)
        steps = np.diff(rows[:, ::stride], axis=1)
        volatility.append(float(np.clip(steps.std() / np.sqrt(2), 0.005, 0.5)))
        # Slow spread: dispersion of per-day midday means around the base,
        # attributed to the drift/jump budget.
        day_means = rows.mean(axis=1)
        drift.append(float(np.clip(day_means.std(), 0.01, 0.6)))

    # The measured per-day spread is produced jointly by the slow drift
    # and the regime jumps; splitting it (rather than assigning the full
    # spread to both) keeps regenerated days from over-dispersing and
    # re-classifying into neighbouring day types.
    drift_arr = np.asarray(drift)
    day_drift = np.clip(0.6 * drift_arr, 0.01, 0.25)
    jump_sd = np.clip(0.6 * drift_arr, 0.05, 0.5)
    params = CloudModelParams(
        base_index=tuple(base),
        volatility=tuple(volatility),
        mean_reversion=(0.25, 0.18, 0.12),
        day_drift=tuple(day_drift),
        jump_rate=(0.4, 3.0, 1.5),
        jump_sd=tuple(jump_sd),
        transient_rate=1.0,
        transient_depth=0.55,
        transient_minutes=18.0,
    )

    profile = SiteProfile(
        name=name,
        location=location,
        latitude_deg=latitude_deg,
        resolution_minutes=trace.resolution_minutes,
        day_type_model=_day_type_chain(labels),
        cloud_params=params,
        seed=seed,
    )

    # Bias correction: regenerate a probe and shift the base levels by
    # the clearness error (clamping and re-classification otherwise
    # leave regenerated years a few percent brighter than the source).
    from dataclasses import replace

    from repro.solar.statistics import daily_clearness
    from repro.solar.synthetic import generate_trace

    source_clearness = float(daily_clearness(trace, latitude_deg).mean())
    for _ in range(max(0, refine)):
        # Average two probe realisations over the full source length so
        # the correction measures the model, not one weather draw.
        probe_clearness = float(
            np.mean(
                [
                    daily_clearness(
                        generate_trace(profile, n_days=trace.n_days, seed=seed + k),
                        latitude_deg,
                    ).mean()
                    for k in (1, 2)
                ]
            )
        )
        bias = probe_clearness - source_clearness
        if abs(bias) < 0.01:
            break
        corrected = tuple(
            float(np.clip(b - bias, 0.05, 1.05))
            for b in profile.cloud_params.base_index
        )
        profile = replace(
            profile,
            cloud_params=replace(profile.cloud_params, base_index=corrected),
        )
    return profile
