"""Solar geometry: sun position as a function of location and time.

The synthetic irradiance generator needs the solar elevation angle for
every sample instant.  We use the standard engineering approximations
found in solar-energy textbooks (Duffie & Beckman):

* *declination* via Cooper's equation,
* *hour angle* from local solar time,
* *elevation* (altitude) from latitude, declination and hour angle.

All angles are handled in radians internally; public helpers accept and
return degrees where that is the conventional unit (latitude).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "declination",
    "hour_angle",
    "solar_elevation",
    "elevation_profile",
    "day_length_hours",
    "sunrise_sunset_hours",
]

#: Days per (non-leap) year used throughout the reproduction.
DAYS_PER_YEAR = 365


def declination(day_of_year: int) -> float:
    """Solar declination angle in radians (Cooper's equation).

    Parameters
    ----------
    day_of_year:
        Day number in ``[1, 365]`` (1 = January 1st).

    Returns
    -------
    float
        Declination in radians, in ``[-23.45deg, +23.45deg]``.
    """
    if not 1 <= day_of_year <= DAYS_PER_YEAR:
        raise ValueError(f"day_of_year must be in [1, {DAYS_PER_YEAR}], got {day_of_year}")
    return math.radians(23.45) * math.sin(2.0 * math.pi * (284 + day_of_year) / 365.0)


def hour_angle(solar_time_hours: float) -> float:
    """Hour angle in radians for a local solar time in hours.

    Solar noon (12.0) maps to zero; mornings are negative.  The input is
    taken modulo 24 so a cumulative hour count may be passed directly.
    """
    return math.radians(15.0) * ((solar_time_hours % 24.0) - 12.0)


def solar_elevation(latitude_deg: float, day_of_year: int, solar_time_hours: float) -> float:
    """Solar elevation angle in radians (negative below the horizon)."""
    lat = math.radians(latitude_deg)
    dec = declination(day_of_year)
    ha = hour_angle(solar_time_hours)
    sin_elev = math.sin(lat) * math.sin(dec) + math.cos(lat) * math.cos(dec) * math.cos(ha)
    return math.asin(max(-1.0, min(1.0, sin_elev)))


def elevation_profile(
    latitude_deg: float, day_of_year: int, samples_per_day: int
) -> np.ndarray:
    """Vector of solar elevations (radians) over one day.

    Sample ``i`` corresponds to solar time ``i * 24 / samples_per_day``
    hours, i.e. sample 0 is midnight and the grid is uniform.

    Returns
    -------
    numpy.ndarray
        Shape ``(samples_per_day,)`` elevations in radians.
    """
    if samples_per_day <= 0:
        raise ValueError("samples_per_day must be positive")
    lat = math.radians(latitude_deg)
    dec = declination(day_of_year)
    hours = np.arange(samples_per_day, dtype=float) * (24.0 / samples_per_day)
    ha = np.radians(15.0) * (hours - 12.0)
    sin_elev = math.sin(lat) * math.sin(dec) + math.cos(lat) * math.cos(dec) * np.cos(ha)
    return np.arcsin(np.clip(sin_elev, -1.0, 1.0))


def sunrise_sunset_hours(latitude_deg: float, day_of_year: int) -> tuple:
    """Sunrise and sunset in local solar hours.

    Returns ``(sunrise, sunset)``.  For polar day the pair is
    ``(0.0, 24.0)``; for polar night ``(12.0, 12.0)`` (zero-length day).
    """
    lat = math.radians(latitude_deg)
    dec = declination(day_of_year)
    cos_ws = -math.tan(lat) * math.tan(dec)
    if cos_ws <= -1.0:
        return (0.0, 24.0)
    if cos_ws >= 1.0:
        return (12.0, 12.0)
    ws = math.acos(cos_ws)  # sunset hour angle, radians
    half_day = math.degrees(ws) / 15.0
    return (12.0 - half_day, 12.0 + half_day)


def day_length_hours(latitude_deg: float, day_of_year: int) -> float:
    """Length of the day (sunrise to sunset) in hours."""
    sunrise, sunset = sunrise_sunset_hours(latitude_deg, day_of_year)
    return sunset - sunrise
