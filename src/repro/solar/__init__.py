"""Solar irradiance substrate.

This subpackage is the data substrate for the reproduction.  The paper
evaluates the prediction algorithm on one year of measured solar
irradiance from six NREL MIDC sites (Table I of the paper).  Those traces
are not redistributable and the reproduction environment has no network
access, so this package provides a physically grounded *synthetic*
generator:

* :mod:`repro.solar.geometry` -- sun position (declination, hour angle,
  elevation) from latitude and day of year.
* :mod:`repro.solar.clearsky` -- clear-sky global horizontal irradiance
  models (Haurwitz, Adnot).
* :mod:`repro.solar.clouds` -- a stochastic cloud model: a Markov chain
  over day types (clear / partly cloudy / overcast) plus an AR(1)
  autocorrelated intra-day clear-sky index.
* :mod:`repro.solar.sites` -- climate profiles approximating the six
  paper sites (SPMD, ECSU, ORNL, HSU, NPCS, PFCI).
* :mod:`repro.solar.synthetic` -- ties the above together into a seeded
  one-year trace generator.
* :mod:`repro.solar.trace` -- the :class:`SolarTrace` container.
* :mod:`repro.solar.slots` -- slot decomposition used by the prediction
  algorithm (start-of-slot samples and slot mean power, Fig. 4).
* :mod:`repro.solar.io` -- NREL-MIDC-like CSV round-trip.
* :mod:`repro.solar.datasets` -- ``build_dataset(name)`` front-end
  (synthetic sites plus registered measured sites).
* :mod:`repro.solar.scenarios` -- composable, seeded trace-degradation
  scenarios (soiling, shading, sensor faults, gaps, regime shifts,
  clock jitter) and their registry.
* :mod:`repro.solar.ingest` -- *real*-dataset ingestion: raw measured
  NREL-MIDC-shaped CSVs into quality-flagged, cleaned traces whose
  defects replay as scenarios (``from repro.solar.ingest import
  ingest_csv``).
"""

from repro.solar.trace import SolarTrace
from repro.solar.slots import SlotView, slot_means, slot_starts
from repro.solar.sites import SITES, SiteProfile, get_site
from repro.solar.synthetic import generate_trace
from repro.solar.datasets import available_datasets, build_dataset
from repro.solar.statistics import DayStatistics, trace_statistics
from repro.solar.calibration import calibrate_site
from repro.solar.scenarios import (
    Scenario,
    available_scenarios,
    make_scenario,
    register_scenario,
    unregister_scenario,
)

__all__ = [
    "SolarTrace",
    "SlotView",
    "slot_means",
    "slot_starts",
    "SITES",
    "SiteProfile",
    "get_site",
    "generate_trace",
    "available_datasets",
    "build_dataset",
    "DayStatistics",
    "trace_statistics",
    "calibrate_site",
    "Scenario",
    "make_scenario",
    "register_scenario",
    "unregister_scenario",
    "available_scenarios",
]
