"""Synthetic one-year irradiance trace generation.

This ties together the geometry, clear-sky, and cloud models into the
``generate_trace`` entry point that stands in for downloading a year of
NREL MIDC measurements (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solar.clearsky import clearsky_profile
from repro.solar.clouds import DayType, IntradayCloudModel
from repro.solar.sites import SiteProfile
from repro.solar.trace import SolarTrace

__all__ = ["generate_trace", "generate_day"]


def generate_day(
    site: SiteProfile,
    day_of_year: int,
    day_type: DayType,
    rng: np.random.Generator,
    clearsky_model: str = "haurwitz",
) -> np.ndarray:
    """One synthetic day of irradiance (W/m^2) at the site's resolution."""
    envelope = clearsky_profile(
        site.latitude_deg, day_of_year, site.samples_per_day, model=clearsky_model
    )
    index = IntradayCloudModel(site.cloud_params).sample_day(
        day_type, site.samples_per_day, rng
    )
    return envelope * index


def generate_trace(
    site: SiteProfile,
    n_days: int = 365,
    seed: Optional[int] = None,
    clearsky_model: str = "haurwitz",
) -> SolarTrace:
    """Generate a seeded synthetic irradiance trace for ``site``.

    Parameters
    ----------
    site:
        Site climate profile (see :mod:`repro.solar.sites`).
    n_days:
        Number of days to generate; the paper uses 365.
    seed:
        RNG seed; defaults to the site's own ``seed`` so that the "year
        of weather" is stable across runs and experiments.
    clearsky_model:
        Clear-sky envelope model name (``"haurwitz"`` or ``"adnot"``).

    Returns
    -------
    SolarTrace
        ``n_days * site.samples_per_day`` non-negative samples in W/m^2.
    """
    if n_days <= 0:
        raise ValueError("n_days must be positive")
    rng = np.random.default_rng(site.seed if seed is None else seed)
    day_types = site.day_type_model.sample_days(n_days, rng)
    cloud_model = IntradayCloudModel(site.cloud_params)

    spd = site.samples_per_day
    values = np.empty(n_days * spd, dtype=float)
    for day in range(n_days):
        day_of_year = day % 365 + 1
        envelope = clearsky_profile(
            site.latitude_deg, day_of_year, spd, model=clearsky_model
        )
        index = cloud_model.sample_day(DayType(day_types[day]), spd, rng)
        values[day * spd : (day + 1) * spd] = envelope * index

    return SolarTrace(
        values=values, resolution_minutes=site.resolution_minutes, name=site.name
    )
