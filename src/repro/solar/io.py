"""NREL-MIDC-like CSV input/output.

The MIDC export format is a simple CSV with a date column, a time
column and one column per measured channel.  We read and write a
minimal, self-describing variant so users can plug in a *real* MIDC
download (converted with :func:`write_csv`-compatible headers) in place
of the synthetic traces.

Format::

    # repro-solar-trace v1
    # name: PFCI
    # resolution_minutes: 1
    day,minute,ghi_wm2
    1,0,0.0
    1,1,0.0
    ...

Day numbers are 1-based; ``minute`` is minutes after local midnight.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.solar.trace import MINUTES_PER_DAY, SolarTrace

__all__ = ["read_csv", "write_csv", "FormatError"]

_MAGIC = "# repro-solar-trace v1"


class FormatError(ValueError):
    """Raised when a trace file does not conform to the expected format."""


def write_csv(trace: SolarTrace, destination: Union[str, Path, TextIO]) -> None:
    """Write ``trace`` to ``destination`` (path or text file object)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            _write(trace, handle)
    else:
        _write(trace, destination)


def _write(trace: SolarTrace, handle: TextIO) -> None:
    handle.write(_MAGIC + "\n")
    handle.write(f"# name: {trace.name}\n")
    handle.write(f"# resolution_minutes: {trace.resolution_minutes}\n")
    writer = csv.writer(handle)
    writer.writerow(["day", "minute", "ghi_wm2"])
    res = trace.resolution_minutes
    spd = trace.samples_per_day
    for i, value in enumerate(trace.values):
        day = i // spd + 1
        minute = (i % spd) * res
        writer.writerow([day, minute, f"{value:.6g}"])


def read_csv(source: Union[str, Path, TextIO]) -> SolarTrace:
    """Read a trace previously written by :func:`write_csv`.

    Raises
    ------
    FormatError
        On a missing magic line, malformed header, inconsistent time
        grid, or non-numeric samples.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="") as handle:
            return _read(handle)
    return _read(source)


def _read(handle: TextIO) -> SolarTrace:
    first = handle.readline().rstrip("\n")
    if first != _MAGIC:
        raise FormatError(f"missing magic header {_MAGIC!r} (got {first!r})")

    name = ""
    resolution = None
    position = handle.tell()
    line = handle.readline()
    while line.startswith("#"):
        body = line[1:].strip()
        if ":" in body:
            key, _, value = body.partition(":")
            key = key.strip()
            value = value.strip()
            if key == "name":
                name = value
            elif key == "resolution_minutes":
                try:
                    resolution = int(value)
                except ValueError:
                    raise FormatError(f"bad resolution_minutes: {value!r}")
        position = handle.tell()
        line = handle.readline()
    if resolution is None:
        raise FormatError("header lacks resolution_minutes")
    if resolution <= 0 or MINUTES_PER_DAY % resolution:
        raise FormatError(
            f"resolution_minutes {resolution} does not divide a day "
            f"({MINUTES_PER_DAY} minutes)"
        )

    handle.seek(position)
    reader = csv.reader(handle)
    header = next(reader, None)
    if header != ["day", "minute", "ghi_wm2"]:
        raise FormatError(f"unexpected column header: {header}")

    values = []
    expected_index = 0
    spd = MINUTES_PER_DAY // resolution
    for row in reader:
        if not row:
            continue
        if len(row) != 3:
            raise FormatError(f"row {expected_index + 2}: expected 3 fields, got {len(row)}")
        try:
            day = int(row[0])
            minute = int(row[1])
            value = float(row[2])
        except ValueError as exc:
            raise FormatError(f"row {expected_index + 2}: {exc}")
        want_day = expected_index // spd + 1
        want_minute = (expected_index % spd) * resolution
        if day != want_day or minute != want_minute:
            raise FormatError(
                f"row {expected_index + 2}: time grid mismatch "
                f"(got day={day} minute={minute}, "
                f"expected day={want_day} minute={want_minute})"
            )
        values.append(value)
        expected_index += 1

    if not values:
        raise FormatError("file contains no samples")
    try:
        return SolarTrace(
            values=np.asarray(values), resolution_minutes=resolution, name=name
        )
    except ValueError as exc:
        # A consistent grid can still describe an invalid trace (a
        # truncated final day, negative or non-finite samples); surface
        # those as format errors too, not library tracebacks.
        raise FormatError(str(exc))


def dumps(trace: SolarTrace) -> str:
    """Serialise ``trace`` to a CSV string (convenience for tests)."""
    buffer = io.StringIO()
    write_csv(trace, buffer)
    return buffer.getvalue()


def loads(text: str) -> SolarTrace:
    """Parse a trace from a CSV string (convenience for tests)."""
    return read_csv(io.StringIO(text))
