"""Slot decomposition of a trace (Fig. 4 of the paper).

For energy management the day is discretised into ``N`` equal slots.
Two per-slot quantities matter:

* the **start-of-slot sample** ``e(i, j)`` -- the single power value the
  node actually measures when it wakes at the slot boundary; this is the
  only input the prediction algorithm sees, and
* the **slot mean power** ``e_bar(i, j)`` -- average of the ``M`` native
  samples inside the slot, which determines the energy actually received
  (``e_bar * T``) and is the reference for the paper's preferred error
  definition (Eq. 7).

:class:`SlotView` computes both as ``(n_days, N)`` matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solar.trace import SolarTrace

__all__ = ["SlotView", "slot_starts", "slot_means", "SUPPORTED_N"]

#: Values of N evaluated in the paper (Table III).
SUPPORTED_N = (288, 96, 72, 48, 24)


@dataclass(frozen=True)
class SlotView:
    """Start-of-slot samples and slot means of a trace for a given ``N``.

    Attributes
    ----------
    trace:
        The underlying native-resolution trace.
    n_slots:
        Slots per day (``N`` in the paper).
    starts:
        ``(n_days, N)`` power at each slot boundary, ``e(i, j)``.
    means:
        ``(n_days, N)`` mean power over each slot, ``e_bar(i, j)``.
    """

    trace: SolarTrace
    n_slots: int
    starts: np.ndarray
    means: np.ndarray

    @classmethod
    def from_trace(cls, trace: SolarTrace, n_slots: int) -> "SlotView":
        """Build the slot view; ``n_slots`` must divide samples/day.

        Raises
        ------
        ValueError
            If ``n_slots`` does not divide the native samples per day —
            e.g. N=288 is undefined for a 5-minute trace with 288
            samples/day only when asked for more slots than samples (the
            paper's footnote about SPMD/ECSU corresponds to N=288 with
            5-minute data giving exactly one sample per slot, which *is*
            allowed; what is not allowed is N > samples_per_day).
        """
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        spd = trace.samples_per_day
        if spd % n_slots:
            raise ValueError(
                f"N={n_slots} does not divide samples per day ({spd}) of "
                f"trace {trace.name!r}"
            )
        samples_per_slot = spd // n_slots
        days = trace.as_days()
        shaped = days.reshape(trace.n_days, n_slots, samples_per_slot)
        starts = shaped[:, :, 0].copy()
        means = shaped.mean(axis=2)
        return cls(trace=trace, n_slots=n_slots, starts=starts, means=means)

    @property
    def samples_per_slot(self) -> int:
        """``M`` in Fig. 4: native samples inside each slot."""
        return self.trace.samples_per_day // self.n_slots

    @property
    def slot_duration_hours(self) -> float:
        """Slot length ``T`` in hours (the prediction horizon)."""
        return 24.0 / self.n_slots

    @property
    def n_days(self) -> int:
        """Number of days covered."""
        return self.trace.n_days

    def slot_energy(self) -> np.ndarray:
        """Energy received per slot (``e_bar * T``), W*h per unit area."""
        return self.means * self.slot_duration_hours

    def flat_starts(self) -> np.ndarray:
        """Start samples flattened to time order, shape ``(days*N,)``."""
        return self.starts.reshape(-1)

    def flat_means(self) -> np.ndarray:
        """Slot means flattened to time order, shape ``(days*N,)``."""
        return self.means.reshape(-1)


def slot_starts(trace: SolarTrace, n_slots: int) -> np.ndarray:
    """Shorthand for ``SlotView.from_trace(trace, n).starts``."""
    return SlotView.from_trace(trace, n_slots).starts


def slot_means(trace: SolarTrace, n_slots: int) -> np.ndarray:
    """Shorthand for ``SlotView.from_trace(trace, n).means``."""
    return SlotView.from_trace(trace, n_slots).means
