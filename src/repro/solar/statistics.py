"""Trace statistics: clear-sky index extraction and day classification.

Utilities to characterise a trace the way the cloud model is
parameterised -- useful both to validate the synthetic generator
(tests compare generated statistics against the configured site
profile) and to inspect *real* NREL MIDC downloads before plugging them
into the experiments (see :mod:`repro.solar.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solar.clearsky import clearsky_profile
from repro.solar.trace import SolarTrace

__all__ = [
    "clear_sky_index",
    "daily_clearness",
    "classify_days",
    "DayStatistics",
    "trace_statistics",
]

#: Daily-clearness thresholds separating OVERCAST / PARTLY / CLEAR.
CLEARNESS_BOUNDS = (0.45, 0.8)


def clear_sky_index(
    trace: SolarTrace, latitude_deg: float, model: str = "haurwitz"
) -> np.ndarray:
    """Per-sample clear-sky index ``k = GHI / GHI_clearsky``.

    Night samples (clear-sky value ~0) get index 0.  Returns an array
    shaped like ``trace.values``.
    """
    spd = trace.samples_per_day
    indices = np.empty_like(trace.values)
    days = trace.as_days()
    for day in range(trace.n_days):
        envelope = clearsky_profile(
            latitude_deg, day % 365 + 1, spd, model=model
        )
        lit = envelope > 1.0  # ignore the horizon sliver
        k = np.zeros(spd)
        k[lit] = days[day][lit] / envelope[lit]
        indices[day * spd : (day + 1) * spd] = k
    return indices


def daily_clearness(trace: SolarTrace, latitude_deg: float) -> np.ndarray:
    """Per-day clearness: received energy over clear-sky energy."""
    spd = trace.samples_per_day
    days = trace.as_days()
    out = np.empty(trace.n_days)
    for day in range(trace.n_days):
        envelope = clearsky_profile(latitude_deg, day % 365 + 1, spd)
        total = envelope.sum()
        out[day] = days[day].sum() / total if total > 0 else 0.0
    return out


def classify_days(
    trace: SolarTrace,
    latitude_deg: float,
    bounds: tuple = CLEARNESS_BOUNDS,
) -> np.ndarray:
    """Label each day 0=CLEAR, 1=PARTLY, 2=OVERCAST from daily clearness.

    The label encoding matches :class:`repro.solar.clouds.DayType`.
    """
    low, high = bounds
    if not 0.0 < low < high:
        raise ValueError("bounds must satisfy 0 < low < high")
    clearness = daily_clearness(trace, latitude_deg)
    labels = np.full(trace.n_days, 1, dtype=np.int64)  # PARTLY
    labels[clearness >= high] = 0  # CLEAR
    labels[clearness < low] = 2  # OVERCAST
    return labels


@dataclass(frozen=True)
class DayStatistics:
    """Summary statistics of one trace.

    Attributes
    ----------
    clear_fraction / partly_fraction / overcast_fraction:
        Day-type mix.
    mean_daily_energy_wh:
        Average energy per day (W*h per unit area).
    mean_clearness:
        Average daily clearness.
    midday_step_variability:
        Mean absolute relative change between 30-minute-apart midday
        samples -- the statistic the prediction difficulty tracks.
    peak_wm2:
        Trace peak power.
    """

    clear_fraction: float
    partly_fraction: float
    overcast_fraction: float
    mean_daily_energy_wh: float
    mean_clearness: float
    midday_step_variability: float
    peak_wm2: float


def trace_statistics(trace: SolarTrace, latitude_deg: float) -> DayStatistics:
    """Compute :class:`DayStatistics` for a trace."""
    labels = classify_days(trace, latitude_deg)
    counts = np.bincount(labels, minlength=3) / trace.n_days
    clearness = daily_clearness(trace, latitude_deg)

    spd = trace.samples_per_day
    days = trace.as_days()
    stride = max(1, (30 * spd) // (24 * 60))  # ~30 minutes of samples
    midday = days[:, spd // 3 : 2 * spd // 3 : stride]
    steps = np.abs(np.diff(midday, axis=1)) / (midday[:, :-1] + 1.0)

    return DayStatistics(
        clear_fraction=float(counts[0]),
        partly_fraction=float(counts[1]),
        overcast_fraction=float(counts[2]),
        mean_daily_energy_wh=float(trace.daily_energy().mean()),
        mean_clearness=float(clearness.mean()),
        midday_step_variability=float(steps.mean()),
        peak_wm2=trace.peak,
    )
