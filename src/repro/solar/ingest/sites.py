"""Measured-site registration: ingested files as first-class sites.

The experiment layer selects data by *site name* (``trace_for``,
``sweep_many`` specs, ``build_fleet_specs``, the robustness matrix).
Registering a measured file here makes its name resolvable through
:func:`repro.solar.datasets.build_dataset` exactly like the synthetic
six, so every experiment accepts ingested traces with no further
plumbing:

>>> site = register_measured_site("pfci_march.csv")
>>> build_dataset(site.name, n_days=14)        # the *clean* trace
>>> make_scenario(f"{site.name.lower()}-defects")  # its replayed defects

A :class:`MeasuredSite` is a small picklable spec (path + ingest
options + resolved geometry), not the data itself: ingestion is lazy
and memoised per process, so worker processes of the parallel
robustness runner can rebuild the trace from the spec
(:func:`install_measured_sites` is the pool initializer hook).

Registration also registers the file's replayed-defects scenario under
``<name>-defects`` in the scenario registry, so the measured defects
can ride the robustness matrix next to the synthetic degradations
(geometry-bound: it only applies to this site's full-length trace).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.solar.ingest import IngestResult, ingest_csv
from repro.solar.scenarios.registry import register_scenario, unregister_scenario
from repro.solar.trace import MINUTES_PER_DAY, SolarTrace

__all__ = [
    "MeasuredSite",
    "register_measured_site",
    "unregister_measured_site",
    "measured_site",
    "measured_site_names",
    "measured_specs_for",
    "install_measured_sites",
    "clear_measured_sites",
]


@dataclass(frozen=True)
class MeasuredSite:
    """Picklable spec of one registered measured site.

    Attributes
    ----------
    name:
        Registry key (upper-case), also the clean trace's label.
    path:
        Source CSV path; workers re-ingest from it lazily.
    channel / resolution_minutes:
        Ingest options (None = the ingest defaults).
    samples_per_day / n_days:
        Resolved geometry, so validation (N divisibility, day budgets)
        needs no ingestion.
    """

    name: str
    path: str
    channel: Optional[str]
    resolution_minutes: Optional[int]
    samples_per_day: int
    n_days: int

    @property
    def defects_scenario_name(self) -> str:
        """Registry key of the site's replayed-defects scenario."""
        return f"{self.name.lower()}-defects"

    def ingest(self) -> IngestResult:
        """The full ingestion result (memoised per process).

        Thread-safe: under the thread backend (and the serve daemon's
        HTTP threads) two threads can request the same site at once;
        the double-checked lock makes sure the file is ingested exactly
        once and the memo write is never racing a concurrent read.
        """
        key = (self.path, self.channel, self.resolution_minutes, self.name)
        result = _INGEST_CACHE.get(key)
        if result is None:
            with _INGEST_LOCK:
                result = _INGEST_CACHE.get(key)
                if result is None:
                    result = ingest_csv(
                        self.path,
                        channel=self.channel,
                        resolution_minutes=self.resolution_minutes,
                        name=self.name,
                    )
                    _INGEST_CACHE[key] = result
        return result

    def build(self, n_days: Optional[int] = None) -> SolarTrace:
        """The clean trace, optionally truncated to the first ``n_days``."""
        clean = self.ingest().clean
        if n_days is None or n_days == clean.n_days:
            return clean
        if n_days > clean.n_days:
            raise ValueError(
                f"measured site {self.name} has {clean.n_days} days; "
                f"requested {n_days} (measured data cannot be extended)"
            )
        return clean.select_days(0, n_days)


_REGISTRY: Dict[str, MeasuredSite] = {}
_INGEST_CACHE: Dict[Tuple, IngestResult] = {}
#: Serialises ingest-memo fills; reads stay lock-free (GIL-atomic get).
_INGEST_LOCK = threading.Lock()


def register_measured_site(
    path,
    name: Optional[str] = None,
    channel: Optional[str] = None,
    resolution_minutes: Optional[int] = None,
    overwrite: bool = False,
) -> MeasuredSite:
    """Ingest ``path`` and register it as a site.

    The file is ingested eagerly (validating it and resolving the
    geometry); the default ``name`` derives from the file name.  The
    replayed-defects scenario is registered as ``<name>-defects``.
    Raises ``ValueError`` on a name collision (synthetic site, or an
    already-registered measured site without ``overwrite``).
    """
    from repro.solar.sites import SITE_ORDER

    result = ingest_csv(
        path, channel=channel, resolution_minutes=resolution_minutes, name=name
    )
    key = result.clean.name.upper()
    if key in SITE_ORDER:
        raise ValueError(
            f"measured site name {key!r} collides with a synthetic site; "
            "pass an explicit name="
        )
    if key in _REGISTRY and not overwrite:
        raise ValueError(
            f"measured site {key!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    site = MeasuredSite(
        name=key,
        path=str(path),
        channel=channel,
        resolution_minutes=resolution_minutes,
        samples_per_day=MINUTES_PER_DAY // result.resolution_minutes,
        n_days=result.n_days,
    )
    _INGEST_CACHE[(site.path, site.channel, site.resolution_minutes, site.name)] = (
        result
    )
    _install(site)
    return site


def _install(site: MeasuredSite) -> None:
    _REGISTRY[site.name] = site

    def _defects_factory(seed: int, _site=site):
        # The replay scenario is deterministic; the seed is accepted for
        # registry-signature compatibility and ignored.
        return _site.ingest().scenario

    register_scenario(
        site.defects_scenario_name,
        _defects_factory,
        f"replayed measured defects of {site.name} (geometry-bound)",
        overwrite=True,
    )


def install_measured_sites(sites: Sequence[MeasuredSite]) -> None:
    """(Re-)install measured-site specs in this process.

    Used as a process-pool initializer so spawned workers resolve the
    same site names as the parent; ingestion stays lazy in the worker.
    """
    for site in sites:
        _install(site)


def unregister_measured_site(name: str) -> None:
    """Remove a measured site (and its defects scenario)."""
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(f"measured site {name!r} is not registered")
    site = _REGISTRY.pop(key)
    try:
        unregister_scenario(site.defects_scenario_name)
    except KeyError:
        pass


def measured_site(name: str):
    """Look up a measured site spec by (case-insensitive) name."""
    key = name.upper()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown measured site {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        )


def measured_site_names() -> tuple:
    """Registered measured-site names, sorted."""
    return tuple(sorted(_REGISTRY))


def measured_specs_for(names: Sequence[str]) -> Tuple[MeasuredSite, ...]:
    """The measured specs among ``names`` (synthetic names pass through)."""
    return tuple(
        _REGISTRY[n.upper()] for n in names if n.upper() in _REGISTRY
    )


def clear_measured_sites() -> None:
    """Drop every measured registration and ingest memo (tests)."""
    for name in list(_REGISTRY):
        unregister_measured_site(name)
    _INGEST_CACHE.clear()
