"""Real-dataset ingestion: measured irradiance files into the pipeline.

The reproduction's predictors, sweeps, fleet engine and robustness
matrix all consume :class:`~repro.solar.trace.SolarTrace`; this package
turns a *raw measured* file -- an NREL-MIDC-shaped CSV with date/time
columns and arbitrary channels -- into that type, with the file's
defects modelled instead of silently absorbed:

* :mod:`repro.solar.ingest.midc` -- the tolerant CSV parser (channel
  selection, missing rows/cells/sentinels, native-grid inference).
* :mod:`repro.solar.ingest.quality` -- the quality-flag model:
  per-slot ``missing`` / ``spike`` / ``stuck`` / ``dropout`` masks
  detected from the data, plus the cleaned-value repair.
* :mod:`repro.solar.ingest.replay` -- the detected defects expressed
  as a deterministic :class:`~repro.solar.scenarios.scenario.Scenario`
  over the existing fault transforms.
* :mod:`repro.solar.ingest.sites` -- :class:`MeasuredSite`
  registration, so an ingested file becomes a site name every
  experiment accepts alongside the synthetic six.

:func:`ingest_csv` is the front door; it returns an
:class:`IngestResult` holding the *raw* trace (defects present, missing
telemetry as zero harvest), the *clean* trace (defects repaired), the
:class:`~repro.solar.ingest.quality.QualityReport` and the
replayed-defects scenario, with the round-trip guarantee
``scenario.apply(clean) == raw`` (byte-identical values).

A deterministic bundled sample file (generated once by
``scripts/generate_sample_midc.py`` from the synthetic generator plus
seeded defects) ships with the package so tests, examples and CI need
no network: see :func:`sample_csv_path` / :func:`ingest_sample`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, TextIO, Union

import numpy as np

from repro.solar.ingest.midc import (
    DayChunk,
    IngestError,
    MIDCChannel,
    iter_days,
    parse_midc,
    scan_midc,
    stream_channel,
)
from repro.solar.ingest.quality import (
    FLAG_NAMES,
    QualityReport,
    QualityThresholds,
    clean_values,
    detect_quality,
)
from repro.solar.ingest.replay import build_replay_scenario
from repro.solar.scenarios.scenario import Scenario
from repro.solar.trace import MINUTES_PER_DAY, SolarTrace

__all__ = [
    "IngestError",
    "IngestResult",
    "QualityReport",
    "QualityThresholds",
    "FLAG_NAMES",
    "DayChunk",
    "ingest_csv",
    "ingest_stream",
    "format_ingest_report",
    "sample_csv_path",
    "ingest_sample",
    "parse_midc",
    "scan_midc",
    "iter_days",
    "stream_channel",
    "detect_quality",
    "clean_values",
    "build_replay_scenario",
]

#: Minimum fraction of valid native samples a resampled slot needs
#: before it counts as observed (below it the slot is missing).
DEFAULT_MIN_VALID_FRACTION = 0.5


@dataclass(frozen=True, eq=False)
class IngestResult:
    """Everything ingestion knows about one measured file.

    Attributes
    ----------
    raw:
        The trace as measured (negatives clipped, missing telemetry
        reads zero) -- defects present.
    clean:
        The repaired trace (flagged slots re-imputed); this is what
        :func:`~repro.solar.datasets.build_dataset` serves for a
        registered measured site.
    report:
        Per-slot quality masks (:class:`QualityReport`).
    scenario:
        The detected defects as a deterministic scenario;
        ``scenario.apply(clean)`` reproduces ``raw`` byte-for-byte.
    channel:
        Header of the ingested channel.
    channels:
        Every channel the file offered.
    native_resolution_minutes:
        Resolution inferred from the file (before resampling).
    start_date:
        ISO date of the first day in the file.
    source:
        Path the file was read from (None for in-memory streams).
    """

    raw: SolarTrace
    clean: SolarTrace
    report: QualityReport
    scenario: Scenario
    channel: str
    channels: tuple
    native_resolution_minutes: int
    start_date: str
    source: Optional[str] = None

    @property
    def n_days(self) -> int:
        """Whole days ingested."""
        return self.clean.n_days

    @property
    def resolution_minutes(self) -> int:
        """Resolution of the ingested traces (after resampling)."""
        return self.clean.resolution_minutes


def ingest_csv(
    source: Union[str, Path, TextIO],
    channel: Optional[str] = None,
    resolution_minutes: Optional[int] = None,
    name: Optional[str] = None,
    thresholds: Optional[QualityThresholds] = None,
    min_valid_fraction: float = DEFAULT_MIN_VALID_FRACTION,
) -> IngestResult:
    """Ingest a measured MIDC-shaped CSV into the reproduction pipeline.

    Parameters
    ----------
    source:
        Path or text stream of the raw CSV.
    channel:
        Channel header to ingest (case-insensitive exact or unique
        substring); default: the first ``GLOBAL`` channel.
    resolution_minutes:
        Target resolution; must be a whole multiple of the file's
        native resolution (slots are averaged over their valid native
        samples).  Default: the native resolution.
    name:
        Site label of the resulting traces (default: derived from the
        file name, or ``"measured"`` for streams).
    thresholds:
        Quality-detector knobs (:class:`QualityThresholds`).
    min_valid_fraction:
        Resampled slots with a smaller fraction of valid native samples
        are marked missing.
    """
    if not 0.0 < min_valid_fraction <= 1.0:
        raise IngestError("min_valid_fraction must be in (0, 1]")
    parsed = parse_midc(source, channel)
    native = parsed.resolution_minutes
    target = _target_resolution(resolution_minutes, native)
    # Clip thermal-offset negatives; NaN (missing) propagates through.
    values = np.maximum(parsed.values, 0.0)
    if target != native:
        values = _resample(values, target // native, min_valid_fraction)
    return _assemble(
        values,
        target=target,
        native=native,
        channel=parsed.channel,
        channels=parsed.channels,
        start_date=parsed.start_date,
        label=name or _default_name(source),
        thresholds=thresholds,
        source=str(source) if isinstance(source, (str, Path)) else None,
    )


def ingest_stream(
    source: Union[str, Path, TextIO],
    channel: Optional[str] = None,
    resolution_minutes: Optional[int] = None,
    name: Optional[str] = None,
    thresholds: Optional[QualityThresholds] = None,
    min_valid_fraction: float = DEFAULT_MIN_VALID_FRACTION,
) -> IngestResult:
    """Bounded-memory ingestion of a measured CSV (day-by-day).

    Same signature and byte-identical output to :func:`ingest_csv`, but
    the CSV text is never loaded whole: a :func:`scan_midc` validation
    pass (which keeps only the set of distinct minutes-of-day) is
    followed by a :func:`iter_days` data pass that clips and resamples
    one day of samples at a time.  The only whole-file allocation is
    the numeric grid itself -- ~8 bytes per sample versus the tens of
    bytes per text row of a multi-channel export -- so files much
    larger than memory ingest fine.

    Needs a file path (or a seekable stream): the two passes re-read
    the source.  Rows must be grouped by date (see :func:`iter_days`);
    :func:`ingest_csv` remains the fallback for shuffled files.
    """
    if not 0.0 < min_valid_fraction <= 1.0:
        raise IngestError("min_valid_fraction must be in (0, 1]")
    if not isinstance(source, (str, Path)) and getattr(source, "seek", None) is None:
        raise IngestError(
            "ingest_stream makes two passes over the source; pass a file "
            "path or a seekable stream (or use ingest_csv)"
        )
    info = scan_midc(source, channel)
    native = info.resolution_minutes
    target = _target_resolution(resolution_minutes, native)
    factor = target // native
    grid = np.empty(info.n_days * (MINUTES_PER_DAY // target), dtype=float)
    spd = MINUTES_PER_DAY // target
    for i, chunk in enumerate(
        iter_days(source, channel, resolution_minutes=native)
    ):
        day = np.maximum(chunk.values, 0.0)
        if factor > 1:
            day = _resample(day, factor, min_valid_fraction)
        grid[i * spd : (i + 1) * spd] = day
    return _assemble(
        grid,
        target=target,
        native=native,
        channel=info.channel,
        channels=info.channels,
        start_date=info.start_date,
        label=name or _default_name(source),
        thresholds=thresholds,
        source=str(source) if isinstance(source, (str, Path)) else None,
    )


def _target_resolution(resolution_minutes: Optional[int], native: int) -> int:
    target = resolution_minutes if resolution_minutes is not None else native
    if target < native or target % native or MINUTES_PER_DAY % target:
        raise IngestError(
            f"target resolution {target} min must be a whole multiple of "
            f"the native {native} min and divide a day"
        )
    return target


def _assemble(
    values: np.ndarray,
    target: int,
    native: int,
    channel: str,
    channels: tuple,
    start_date: str,
    label: str,
    thresholds: Optional[QualityThresholds],
    source: Optional[str],
) -> IngestResult:
    """Quality detection, repair and replay: shared ingestion tail.

    Both the whole-file and the streaming front doors deliver the same
    clipped, resampled grid here, so byte-identity between them holds
    by construction from this point on.
    """
    spd = MINUTES_PER_DAY // target
    report = detect_quality(values, spd, target, thresholds=thresholds)
    raw_values = np.where(report.missing, 0.0, values)
    cleaned = clean_values(values, report)

    raw = SolarTrace(raw_values, target, name=f"{label}-raw")
    clean = SolarTrace(cleaned, target, name=label)
    scenario = build_replay_scenario(
        report, raw_values, name=f"{label.lower()}-defects"
    )
    return IngestResult(
        raw=raw,
        clean=clean,
        report=report,
        scenario=scenario,
        channel=channel,
        channels=channels,
        native_resolution_minutes=native,
        start_date=start_date,
        source=source,
    )


def _resample(values: np.ndarray, factor: int, min_valid_fraction: float) -> np.ndarray:
    """Block-average ``factor`` native samples per target slot.

    A slot's value is the mean of its *valid* native samples; slots
    with fewer than ``min_valid_fraction`` valid samples are missing.
    """
    blocks = values.reshape(-1, factor)
    valid = ~np.isnan(blocks)
    n_valid = valid.sum(axis=1)
    sums = np.where(valid, blocks, 0.0).sum(axis=1)
    means = sums / np.maximum(n_valid, 1)
    return np.where(n_valid >= min_valid_fraction * factor, means, np.nan)


def _default_name(source) -> str:
    if isinstance(source, (str, Path)):
        stem = Path(source).stem
        cleaned = "".join(c if c.isalnum() else "-" for c in stem).strip("-")
        return (cleaned or "measured").upper()
    return "MEASURED"


def format_ingest_report(result: IngestResult) -> str:
    """Human-readable multi-line summary of one ingestion."""
    clean = result.clean
    report = result.report
    lines = [
        f"ingested {clean.name}: {clean.n_days} days at "
        f"{clean.resolution_minutes}-minute resolution "
        f"({clean.n_samples} samples) from {result.start_date}",
        f"channel: {result.channel} "
        f"(native {result.native_resolution_minutes} min; "
        f"file offers {len(result.channels)} channels)",
        f"peak {clean.peak:.1f} W/m^2; "
        f"mean daily energy {clean.daily_energy().mean():.1f} Wh/m^2",
    ]
    days = report.days_affected()
    flagged = int(report.any_defect.sum())
    lines.append(
        f"quality: {flagged}/{report.n_samples} samples flagged "
        f"({flagged / report.n_samples:.2%}); days affected: "
        + ", ".join(f"{flag}={days[flag]}" for flag in FLAG_NAMES)
    )
    chain = (
        " -> ".join(type(t).__name__ for t in result.scenario.transforms)
        or "identity (no defects)"
    )
    lines.append(f"replay scenario: {result.scenario.name} [{chain}]")
    return "\n".join(lines)


def sample_csv_path() -> Path:
    """Path of the bundled deterministic sample measurement file."""
    return Path(__file__).parent / "data" / "sample_midc.csv"


def ingest_sample(**kwargs) -> IngestResult:
    """Ingest the bundled sample file (kwargs pass to :func:`ingest_csv`)."""
    return ingest_csv(sample_csv_path(), **kwargs)
