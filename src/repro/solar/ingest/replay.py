"""Replay a measured trace's detected defects as a ``Scenario``.

The quality-flag model (:mod:`repro.solar.ingest.quality`) detects
*where* a measured trace is defective; this module expresses those
defects as first-class scenario transforms so a cleaned measured trace
plus its replayed-defects :class:`~repro.solar.scenarios.scenario.Scenario`
round-trips through exactly the same robustness pipeline as the
synthetic degradations.

Each replay transform subclasses the catalogue transform whose fault
model it instantiates -- the random windows of the parent are replaced
by the measured masks, everything else (imputation policy, hold
semantics, parameter validation, non-negativity) is inherited:

================  ======================================================
``ReplayedGaps``  :class:`~repro.solar.scenarios.transforms.MissingGaps`
                  at the measured missing mask (ingestion represents
                  missing telemetry as zero harvest, policy ``"zero"``)
``ReplayedDropout``  :class:`~repro.solar.scenarios.transforms.SensorDropout`
                  at the measured dropout mask
``ReplayedStuck`` :class:`~repro.solar.scenarios.transforms.StuckAtFault`
                  holding each run's onset sample (the sample just
                  before the flagged repeats)
``ReplayedSpikes``  :class:`~repro.solar.scenarios.transforms.SpikeNoise`
                  restoring the measured spike amplitudes
================  ======================================================

Replay transforms are deterministic (they never draw from the
scenario's random stream) and geometry-bound: applying one to a trace
of a different length raises ``ValueError``.

One deliberate deviation from the synthetic catalogue: replay
transforms enforce shape and non-negativity but **not** the night
invariant of the :class:`~repro.solar.scenarios.transforms.Transform`
base class.  The synthetic invariant models light -- a fault cannot
create irradiance at night -- but a replay reconstructs measured
*readings*, and a latched or spiking sensor really does report power
where the sky is dark; the raw file proves it did.  Without this, a
defect detected in an inferred night column (repaired to zero in the
clean trace) could never be restored.

The round-trip guarantee: for an ingested file,
``scenario.apply(clean)`` reproduces the raw trace byte-for-byte --
unflagged samples pass through ``clean`` untouched, and every flagged
sample is restored to its raw value (zero for missing and dropout, the
onset value for stuck repeats, the recorded amplitude for spikes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.solar.ingest.quality import QualityReport, _true_runs
from repro.solar.scenarios.scenario import DEFAULT_SCENARIO_SEED, Scenario
from repro.solar.scenarios.transforms import (
    MissingGaps,
    SensorDropout,
    SpikeNoise,
    StuckAtFault,
    Transform,
    impute_holes,
)

__all__ = [
    "ReplayedGaps",
    "ReplayedDropout",
    "ReplayedStuck",
    "ReplayedSpikes",
    "build_replay_scenario",
]


def _frozen_mask(mask) -> np.ndarray:
    out = np.asarray(mask, dtype=bool).reshape(-1)
    out.flags.writeable = False
    return out


def _check_geometry(mask: np.ndarray, n_samples: int, owner: str) -> None:
    if mask.size != n_samples:
        raise ValueError(
            f"{owner} mask was built for {mask.size} samples but the "
            f"trace has {n_samples}; replay transforms are bound to the "
            "geometry of the trace they were detected on"
        )


class _ReplayBase(Transform):
    """Measured-readings call contract for the replay transforms.

    Validates the output shape and clamps at zero like the parent, but
    does not re-impose the synthetic night invariant: a replayed defect
    must be able to restore a nonzero *reading* recorded where the
    inferred night grid says the sky was dark (see module docstring).
    """

    def __call__(self, values: np.ndarray, ctx) -> np.ndarray:
        out = np.asarray(self._transform(values, ctx), dtype=float)
        if out.size != values.size:
            raise ValueError(
                f"{type(self).__name__} changed the sample count: "
                f"{values.size} -> {out.size}"
            )
        return np.maximum(out.reshape(values.shape), 0.0)


@dataclass(frozen=True, eq=False)
class ReplayedGaps(_ReplayBase, MissingGaps):
    """Measured telemetry gaps at an explicit mask (no random draws)."""

    mask: Optional[np.ndarray] = None

    def __post_init__(self):
        super().__post_init__()
        if self.mask is None:
            raise ValueError("ReplayedGaps requires a mask")
        object.__setattr__(self, "mask", _frozen_mask(self.mask))

    def _transform(self, values, ctx):
        _check_geometry(self.mask, ctx.n_samples, type(self).__name__)
        return impute_holes(values, self.mask, self.policy)


@dataclass(frozen=True, eq=False)
class ReplayedDropout(_ReplayBase, SensorDropout):
    """Measured dropout windows at an explicit mask (no random draws)."""

    mask: Optional[np.ndarray] = None

    def __post_init__(self):
        super().__post_init__()
        if self.mask is None:
            raise ValueError("ReplayedDropout requires a mask")
        object.__setattr__(self, "mask", _frozen_mask(self.mask))

    def _transform(self, values, ctx):
        _check_geometry(self.mask, ctx.n_samples, type(self).__name__)
        out = values.copy()
        out[self.mask] = 0.0
        return out


@dataclass(frozen=True, eq=False)
class ReplayedStuck(_ReplayBase, StuckAtFault):
    """Measured stuck runs: each flagged run holds its onset sample.

    The mask flags the *repeats* of each run (the onset stays
    unflagged, matching the detector), so every flagged run starts at
    index >= 1 and the held value is the sample just before the run.
    """

    mask: Optional[np.ndarray] = None

    def __post_init__(self):
        super().__post_init__()
        if self.mask is None:
            raise ValueError("ReplayedStuck requires a mask")
        mask = _frozen_mask(self.mask)
        if mask.size and mask[0]:
            raise ValueError(
                "ReplayedStuck mask flags sample 0, which has no onset "
                "sample to hold"
            )
        object.__setattr__(self, "mask", mask)

    def _transform(self, values, ctx):
        _check_geometry(self.mask, ctx.n_samples, type(self).__name__)
        out = values.copy()
        for start, stop in _true_runs(self.mask):
            out[start : stop + 1] = values[start - 1]
        return out


@dataclass(frozen=True, eq=False)
class ReplayedSpikes(_ReplayBase, SpikeNoise):
    """Measured spikes: restore the recorded amplitudes at the mask."""

    mask: Optional[np.ndarray] = None
    amplitudes: Optional[np.ndarray] = None

    def __post_init__(self):
        super().__post_init__()
        if self.mask is None or self.amplitudes is None:
            raise ValueError("ReplayedSpikes requires a mask and amplitudes")
        mask = _frozen_mask(self.mask)
        amplitudes = np.asarray(self.amplitudes, dtype=float).reshape(-1)
        if amplitudes.size != int(mask.sum()):
            raise ValueError(
                f"amplitude count {amplitudes.size} != flagged sample "
                f"count {int(mask.sum())}"
            )
        if (amplitudes < 0).any() or not np.isfinite(amplitudes).all():
            raise ValueError("spike amplitudes must be finite and non-negative")
        amplitudes.flags.writeable = False
        object.__setattr__(self, "mask", mask)
        object.__setattr__(self, "amplitudes", amplitudes)

    def _transform(self, values, ctx):
        _check_geometry(self.mask, ctx.n_samples, type(self).__name__)
        out = values.copy()
        out[self.mask] = self.amplitudes
        return out


def build_replay_scenario(
    report: QualityReport,
    raw_values: np.ndarray,
    name: str = "defects",
    seed: int = DEFAULT_SCENARIO_SEED,
) -> Scenario:
    """The measured trace's defects as a deterministic scenario.

    Transforms are included only for flags the report actually carries,
    so a pristine file maps to the identity scenario.  ``raw_values``
    supplies the spike amplitudes (the raw trace's readings at the
    spike mask).
    """
    raw = np.asarray(raw_values, dtype=float).reshape(-1)
    if raw.size != report.n_samples:
        raise ValueError(
            f"raw value length {raw.size} != report length {report.n_samples}"
        )
    transforms = []
    if report.missing.any():
        transforms.append(ReplayedGaps(policy="zero", mask=report.missing))
    if report.dropout.any():
        transforms.append(ReplayedDropout(mask=report.dropout))
    if report.stuck.any():
        transforms.append(ReplayedStuck(mask=report.stuck))
    if report.spike.any():
        transforms.append(
            ReplayedSpikes(mask=report.spike, amplitudes=raw[report.spike])
        )
    return Scenario(name=name, transforms=tuple(transforms), seed=seed)
