"""Quality-flag model for measured irradiance traces.

Real measured solar data is imperfect in a handful of recurring ways,
and each way maps onto one transform of the scenario engine
(:mod:`repro.solar.scenarios.transforms`):

==========  ===========================================  ==================
Flag        Detected as                                  Scenario transform
==========  ===========================================  ==================
missing     no sample recorded (absent row, empty cell,  ``MissingGaps``
            sentinel value, NaN)
spike       reading above the physically plausible       ``SpikeNoise``
            irradiance ceiling
stuck       a run of identical nonzero readings (ADC     ``StuckAtFault``
            latch-up, iced pyranometer)
dropout     a run of zero readings strictly inside the   ``SensorDropout``
            day's daylight span
==========  ===========================================  ==================

:func:`detect_quality` computes the four per-slot boolean masks plus
the inferred per-slot-of-day night mask; :func:`clean_values` repairs
the flagged slots.  Detection is a pure, deterministic function of the
value array (and the externally known missing mask), and the masks are
pairwise disjoint by construction:

* ``missing`` is excluded from every other detector;
* ``spike`` readings are nonzero and above the ceiling;
* ``stuck`` readings are nonzero, below the ceiling (spikes excluded);
* ``dropout`` readings are exactly zero.

Missingness deserves a note: it is *telemetry metadata*, not a property
of the imputed value array -- once a gap has been filled, no detector
can tell an imputed zero from a measured one.  Ingestion records the
mask when the file is parsed, and re-detection (e.g. on a replayed
trace) must pass it back in via ``missing=``.

Each detected defect run is *anchored* so the replay scenario built by
:mod:`repro.solar.ingest.replay` can reproduce the raw trace exactly:
a stuck run keeps its onset sample unflagged (the first reading of a
latch-up is a genuine measurement; the repeats are the fault), which is
also precisely the semantics of
:class:`~repro.solar.scenarios.transforms.StuckAtFault`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = [
    "QualityThresholds",
    "QualityReport",
    "detect_quality",
    "clean_values",
    "FLAG_NAMES",
]

#: Mask names of one report, in detection-precedence order.
FLAG_NAMES = ("missing", "spike", "stuck", "dropout")


@dataclass(frozen=True)
class QualityThresholds:
    """Tunable knobs of the quality detectors.

    Attributes
    ----------
    spike_wm2:
        Physical plausibility ceiling; GHI above it is flagged as a
        spike.  1500 W/m^2 sits comfortably above the solar constant
        plus cloud-edge enhancement at the paper's site latitudes.
    stuck_min_minutes:
        Minimum duration of an identical-value run before its repeats
        are flagged as stuck (the onset sample stays unflagged).
    dropout_min_minutes:
        Minimum duration of a zero-run strictly inside the day's
        daylight span before it is flagged as a dropout.
    night_day_fraction:
        A slot-of-day column whose across-days fraction of positive
        readings is below this is considered night.
    """

    spike_wm2: float = 1500.0
    stuck_min_minutes: float = 20.0
    dropout_min_minutes: float = 15.0
    night_day_fraction: float = 0.02

    def __post_init__(self):
        if self.spike_wm2 <= 0:
            raise ValueError("spike_wm2 must be positive")
        if self.stuck_min_minutes <= 0 or self.dropout_min_minutes <= 0:
            raise ValueError("minimum run durations must be positive")
        if not 0.0 <= self.night_day_fraction < 1.0:
            raise ValueError("night_day_fraction must be in [0, 1)")


@dataclass(frozen=True, eq=False)
class QualityReport:
    """Per-slot defect masks of one measured trace.

    All four masks are flat boolean arrays over the trace samples;
    ``night_slots`` is per slot-of-day (length ``samples_per_day``).
    Masks are pairwise disjoint (see module docstring).
    """

    missing: np.ndarray
    spike: np.ndarray
    stuck: np.ndarray
    dropout: np.ndarray
    night_slots: np.ndarray
    samples_per_day: int
    resolution_minutes: int
    thresholds: QualityThresholds = field(default_factory=QualityThresholds)

    def __post_init__(self):
        for name in FLAG_NAMES:
            mask = np.asarray(getattr(self, name), dtype=bool)
            mask.flags.writeable = False
            object.__setattr__(self, name, mask)
        night = np.asarray(self.night_slots, dtype=bool)
        night.flags.writeable = False
        object.__setattr__(self, "night_slots", night)
        sizes = {getattr(self, name).size for name in FLAG_NAMES}
        if len(sizes) != 1:
            raise ValueError(f"mask lengths differ: {sizes}")
        n = sizes.pop()
        if n == 0 or n % self.samples_per_day:
            raise ValueError(
                f"mask length {n} is not a whole number of days at "
                f"{self.samples_per_day} samples/day"
            )
        if night.size != self.samples_per_day:
            raise ValueError(
                f"night_slots length {night.size} != samples_per_day "
                f"{self.samples_per_day}"
            )

    @property
    def n_samples(self) -> int:
        """Total samples covered by the masks."""
        return self.missing.size

    @property
    def n_days(self) -> int:
        """Whole days covered by the masks."""
        return self.n_samples // self.samples_per_day

    @property
    def any_defect(self) -> np.ndarray:
        """Union of the four defect masks."""
        return self.missing | self.spike | self.stuck | self.dropout

    def masks(self) -> Dict[str, np.ndarray]:
        """The four flag masks, keyed by :data:`FLAG_NAMES`."""
        return {name: getattr(self, name) for name in FLAG_NAMES}

    def counts(self) -> Dict[str, int]:
        """Flagged-sample count per flag."""
        return {name: int(mask.sum()) for name, mask in self.masks().items()}

    def fractions(self) -> Dict[str, float]:
        """Flagged-sample fraction per flag."""
        return {
            name: count / self.n_samples for name, count in self.counts().items()
        }

    def days_affected(self) -> Dict[str, int]:
        """Number of days carrying at least one flagged sample, per flag."""
        return {
            name: int(mask.reshape(self.n_days, -1).any(axis=1).sum())
            for name, mask in self.masks().items()
        }


def detect_quality(
    values: np.ndarray,
    samples_per_day: int,
    resolution_minutes: int,
    missing: Optional[np.ndarray] = None,
    thresholds: Optional[QualityThresholds] = None,
) -> QualityReport:
    """Detect the quality flags of a measured value array.

    Parameters
    ----------
    values:
        Flat non-negative sample array covering whole days.  NaN
        entries are treated as missing (in addition to ``missing``).
    samples_per_day / resolution_minutes:
        Trace geometry.
    missing:
        Externally known missing mask (telemetry metadata); merged with
        the NaN entries of ``values``.
    thresholds:
        Detector knobs; defaults to :class:`QualityThresholds`.
    """
    t = thresholds or QualityThresholds()
    v = np.asarray(values, dtype=float).reshape(-1)
    if v.size == 0 or v.size % samples_per_day:
        raise ValueError(
            f"value length {v.size} is not a whole number of days at "
            f"{samples_per_day} samples/day"
        )
    is_missing = np.isnan(v)
    if missing is not None:
        ext = np.asarray(missing, dtype=bool).reshape(-1)
        if ext.size != v.size:
            raise ValueError(
                f"missing mask length {ext.size} != value length {v.size}"
            )
        is_missing = is_missing | ext
    filled = np.where(is_missing, 0.0, v)
    if not np.isfinite(filled).all():
        raise ValueError("non-missing samples must be finite")
    if (filled < 0).any():
        raise ValueError("values must be non-negative (clip before detection)")

    n_days = v.size // samples_per_day
    valid = ~is_missing

    spike = valid & (filled > t.spike_wm2)

    stuck = _detect_stuck(
        filled, valid & ~spike, _min_run(t.stuck_min_minutes, resolution_minutes)
    )
    # Spikes are excluded from the daylight-span computation: a
    # pre-dawn glitch must not stretch the span and turn genuine night
    # zeros into dropouts.
    dropout = _detect_dropout(
        filled,
        valid & ~spike,
        samples_per_day,
        _min_run(t.dropout_min_minutes, resolution_minutes),
    )

    # Night inference: a slot-of-day column is night when, across the
    # days it was actually (and healthily) observed, (almost) never
    # positive.  Flagged samples are excluded so a defect-heavy column
    # is not mistaken for darkness; a column with no healthy
    # observation at all is conservatively treated as night.
    healthy = valid & ~spike & ~stuck & ~dropout
    sunny_2d = ((filled > 0.0) & healthy).reshape(n_days, samples_per_day)
    observed = healthy.reshape(n_days, samples_per_day).sum(axis=0)
    day_fraction = sunny_2d.sum(axis=0) / np.maximum(observed, 1)
    night_slots = day_fraction < t.night_day_fraction
    return QualityReport(
        missing=is_missing,
        spike=spike,
        stuck=stuck,
        dropout=dropout,
        night_slots=night_slots,
        samples_per_day=samples_per_day,
        resolution_minutes=resolution_minutes,
        thresholds=t,
    )


def _min_run(minutes: float, resolution_minutes: int) -> int:
    """Duration threshold in whole samples (always at least 2)."""
    return max(2, int(round(minutes / resolution_minutes)))


def _detect_stuck(filled: np.ndarray, eligible: np.ndarray, min_run: int) -> np.ndarray:
    """Repeats of identical nonzero eligible readings, runs >= min_run.

    A maximal run of ``L`` equal samples flags its last ``L - 1``
    samples (the onset stays unflagged) when ``L >= min_run``.
    """
    stuck = np.zeros(filled.size, dtype=bool)
    if filled.size < 2:
        return stuck
    repeat = (
        (filled[1:] == filled[:-1])
        & (filled[1:] > 0.0)
        & eligible[1:]
        & eligible[:-1]
    )
    for start, stop in _true_runs(repeat):
        # repeat[i] compares samples i and i+1, so a True-run over
        # start..stop covers samples start..stop+1: length stop-start+2.
        if stop - start + 2 >= min_run:
            stuck[start + 1 : stop + 2] = True
    return stuck


def _detect_dropout(
    filled: np.ndarray, valid: np.ndarray, samples_per_day: int, min_run: int
) -> np.ndarray:
    """Zero-runs strictly inside each day's daylight span, >= min_run."""
    dropout = np.zeros(filled.size, dtype=bool)
    days = filled.reshape(-1, samples_per_day)
    valid_days = valid.reshape(-1, samples_per_day)
    for d in range(days.shape[0]):
        sunny = np.flatnonzero((days[d] > 0.0) & valid_days[d])
        if sunny.size < 2:
            continue
        first, last = sunny[0], sunny[-1]
        zero = np.zeros(samples_per_day, dtype=bool)
        zero[first:last] = (days[d][first:last] == 0.0) & valid_days[d][first:last]
        for start, stop in _true_runs(zero):
            if stop - start + 1 >= min_run:
                dropout[d * samples_per_day + start : d * samples_per_day + stop + 1] = (
                    True
                )
    return dropout


def _true_runs(mask: np.ndarray):
    """Maximal ``(first, last)`` index pairs of the True runs of ``mask``."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([idx[0]], idx[breaks + 1]))
    stops = np.concatenate((idx[breaks], [idx[-1]]))
    return list(zip(starts, stops))


def clean_values(values: np.ndarray, report: QualityReport) -> np.ndarray:
    """Repair the flagged slots of ``values``.

    Flagged samples are re-imputed by linear interpolation across the
    unflagged ones; flagged samples falling in inferred night columns
    are set to zero instead (a defect cannot hide irradiance where the
    site is dark).  Unflagged samples pass through bit-identical, which
    is what makes the replay round trip exact.
    """
    v = np.asarray(values, dtype=float).reshape(-1)
    filled = np.where(report.missing, 0.0, v)
    bad = report.any_defect
    if not bad.any():
        return filled
    good = np.flatnonzero(~bad)
    if good.size == 0:
        raise ValueError("trace has no unflagged samples to repair from")
    out = filled.copy()
    holes = np.flatnonzero(bad)
    out[holes] = np.interp(holes, good, filled[good])
    night = np.tile(report.night_slots, report.n_days)
    out[bad & night] = 0.0
    return np.maximum(out, 0.0)
