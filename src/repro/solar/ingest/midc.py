"""Parser for raw NREL-MIDC-shaped measurement CSVs.

The NREL Measurement and Instrumentation Data Center exports are plain
CSVs with a date column, a local-time column and one column per
measured channel::

    DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]
    03/01/2010,00:00,-1.8,4.2
    03/01/2010,00:05,-1.7,4.1
    ...

This module reads that shape -- tolerant of the quirks real downloads
carry -- into a dense NaN-padded grid at the file's native resolution:

* the date column is any header containing ``DATE`` (``MM/DD/YYYY`` or
  ``YYYY-MM-DD`` values); the time column is a timezone code (``MST``,
  ``PST``, ...) or any header containing ``TIME`` (``HH:MM`` or
  ``HH:MM:SS`` values);
* channels are selected by (case-insensitive) exact or unique-substring
  header match; by default the first channel containing ``GLOBAL`` (the
  paper's GHI channel), else the first channel;
* missing data in all three wild forms -- absent rows, empty cells and
  sentinel values (``<= -999``, e.g. MIDC's ``-99999``) -- becomes NaN;
  sentinel and sample cells tolerate stray whitespace;
* a UTF-8 byte-order mark on the header row (Windows re-saves add one,
  and it breaks CSV quoting if left in) and CRLF line endings are
  absorbed;
* rows may arrive in any order; duplicate timestamps are an error;
* the native resolution is inferred from the *modal* time step and
  every row must sit on that grid.

The output covers the whole calendar span of the file (missing rows
padded with NaN), so downstream consumers always see whole days.

Two reading modes share the same row machinery:

* :func:`parse_midc` -- the whole-file parser; loads every row, accepts
  rows in any order.
* :func:`scan_midc` / :func:`iter_days` / :func:`stream_channel` -- the
  **streaming** reader for files larger than memory.  ``scan_midc``
  makes one bounded-memory validation pass (it keeps the set of
  distinct minutes-of-day, never the rows); ``iter_days`` then yields
  one dense :class:`DayChunk` at a time, holding at most a single day
  of samples, requiring rows grouped by date (real exports are).  The
  concatenation of the chunks is byte-identical to the whole-file grid
  (pinned by ``tests/solar/test_ingest_stream.py``).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from datetime import date, datetime
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.solar.trace import MINUTES_PER_DAY

__all__ = [
    "IngestError",
    "MIDCChannel",
    "DayChunk",
    "StreamInfo",
    "parse_midc",
    "scan_midc",
    "iter_days",
    "stream_channel",
]

#: Values at or below this are treated as missing-data sentinels.
SENTINEL_CEILING = -999.0

#: Time-column headers recognised as-is (timezone codes seen on MIDC).
_TIME_HEADERS = {
    "MST", "MDT", "PST", "PDT", "CST", "CDT", "EST", "EDT",
    "AKST", "HST", "LST", "UTC", "GMT",
}

#: Calendar-span ceiling: a grid this long is a parse gone wrong (e.g.
#: two disjoint deployments concatenated), not a trace.
_MAX_SPAN_DAYS = 2000


class IngestError(ValueError):
    """Raised when a measurement CSV cannot be ingested."""


@dataclass(frozen=True, eq=False)
class MIDCChannel:
    """One channel of a parsed measurement file, on a dense grid.

    Attributes
    ----------
    values:
        Flat float array covering whole days at the native resolution;
        NaN marks missing samples.
    resolution_minutes:
        Inferred native sampling resolution.
    channel:
        Header of the selected channel.
    channels:
        Every channel header the file offers.
    start_date:
        ISO date of the first grid day.
    """

    values: np.ndarray
    resolution_minutes: int
    channel: str
    channels: Tuple[str, ...]
    start_date: str

    @property
    def samples_per_day(self) -> int:
        """Samples in each whole day."""
        return MINUTES_PER_DAY // self.resolution_minutes

    @property
    def n_days(self) -> int:
        """Whole days covered by the grid."""
        return self.values.size // self.samples_per_day

    @property
    def missing_fraction(self) -> float:
        """Fraction of grid samples with no recorded value."""
        return float(np.isnan(self.values).mean())


@dataclass(frozen=True, eq=False)
class DayChunk:
    """One dense day of samples from the streaming reader.

    Attributes
    ----------
    ordinal:
        Proleptic ordinal of the calendar day.
    date:
        The same day as an ISO string.
    values:
        ``(samples_per_day,)`` float array; NaN marks missing samples.
    """

    ordinal: int
    date: str
    values: np.ndarray


@dataclass(frozen=True)
class StreamInfo:
    """What one bounded-memory scan pass learns about a file.

    Everything :func:`iter_days` needs to stream the data pass, plus
    the channel metadata :class:`MIDCChannel` carries.
    """

    resolution_minutes: int
    channel: str
    channels: Tuple[str, ...]
    first_ordinal: int
    last_ordinal: int
    n_rows: int

    @property
    def samples_per_day(self) -> int:
        """Samples in each whole day at the scanned resolution."""
        return MINUTES_PER_DAY // self.resolution_minutes

    @property
    def n_days(self) -> int:
        """Whole calendar days the grid will span."""
        return self.last_ordinal - self.first_ordinal + 1

    @property
    def start_date(self) -> str:
        """ISO date of the first grid day."""
        return date.fromordinal(self.first_ordinal).isoformat()


def parse_midc(
    source: Union[str, Path, TextIO], channel: Optional[str] = None
) -> MIDCChannel:
    """Parse one channel of an MIDC-shaped CSV (path or text stream)."""
    if isinstance(source, (str, Path)):
        with _open_path(source) as handle:
            return _parse(handle, channel)
    return _parse(source, channel)


def _open_path(source: Union[str, Path]) -> TextIO:
    # utf-8-sig absorbs a leading byte-order mark (a BOM in front of a
    # quoted header cell would otherwise break CSV quote parsing).
    return open(source, "r", newline="", encoding="utf-8-sig")


def _lines_without_bom(handle: Iterable[str]) -> Iterator[str]:
    """The lines of ``handle`` with a leading BOM stripped.

    Covers text streams the caller opened without ``utf-8-sig`` (or
    built in memory); a no-op when no BOM is present.
    """
    lines = iter(handle)
    try:
        first = next(lines)
    except StopIteration:
        return
    yield first.lstrip("\ufeff")
    yield from lines


class _RowReader:
    """CSV rows with the header resolved into (date, time, value) columns.

    Shared by the whole-file parser and both streaming passes so every
    mode tolerates the same quirks and raises the same errors.
    """

    def __init__(self, handle: Iterable[str], channel: Optional[str]):
        self._reader = csv.reader(_lines_without_bom(handle))
        header = next(
            (row for row in self._reader if row and any(c.strip() for c in row)),
            None,
        )
        if header is None:
            raise IngestError("file is empty")
        header = [cell.strip() for cell in header]
        self.date_col, self.time_col = _locate_time_columns(header)
        channel_cols = [
            (i, name)
            for i, name in enumerate(header)
            if i not in (self.date_col, self.time_col) and name
        ]
        if not channel_cols:
            raise IngestError("no measurement channels besides the date/time columns")
        self.value_col, self.channel_name = _select_channel(channel_cols, channel)
        self.channels = tuple(name for _, name in channel_cols)

    def iter_rows(self) -> Iterator[Tuple[int, int, int, float]]:
        """Yield ``(line, day_ordinal, minute_of_day, value)`` per data row."""
        width = max(self.date_col, self.time_col, self.value_col)
        for line, row in enumerate(self._reader, start=2):
            if not row or not any(cell.strip() for cell in row):
                continue
            if len(row) <= width:
                raise IngestError(
                    f"row {line}: expected at least "
                    f"{width + 1} fields, got {len(row)}"
                )
            yield (
                line,
                _parse_date(row[self.date_col].strip(), line),
                _parse_minute(row[self.time_col].strip(), line),
                _parse_value(row[self.value_col].strip(), line),
            )


def _parse(handle: TextIO, channel: Optional[str]) -> MIDCChannel:
    reader = _RowReader(handle, channel)
    ordinals: List[int] = []
    minutes: List[int] = []
    values: List[float] = []
    for _line, ordinal, minute, value in reader.iter_rows():
        ordinals.append(ordinal)
        minutes.append(minute)
        values.append(value)
    if not ordinals:
        raise IngestError("file contains no data rows")

    resolution = _infer_resolution(minutes)
    off_grid = [m for m in minutes if m % resolution]
    if off_grid:
        raise IngestError(
            f"irregular time grid: minute {off_grid[0]} is not on the "
            f"inferred {resolution}-minute grid"
        )

    first, last = min(ordinals), max(ordinals)
    n_days = last - first + 1
    if n_days > _MAX_SPAN_DAYS:
        raise IngestError(
            f"file spans {n_days} calendar days (> {_MAX_SPAN_DAYS}); "
            "not a contiguous deployment"
        )
    spd = MINUTES_PER_DAY // resolution
    grid = np.full(n_days * spd, np.nan)
    seen = np.zeros(n_days * spd, dtype=bool)
    for ordinal, minute, value in zip(ordinals, minutes, values):
        slot = (ordinal - first) * spd + minute // resolution
        if seen[slot]:
            raise IngestError(
                f"duplicate timestamp: day {ordinal - first + 1}, "
                f"minute {minute}"
            )
        seen[slot] = True
        grid[slot] = value
    return MIDCChannel(
        values=grid,
        resolution_minutes=resolution,
        channel=reader.channel_name,
        channels=reader.channels,
        start_date=datetime.fromordinal(first).date().isoformat(),
    )


# ----------------------------------------------------------------------
# Streaming reader
# ----------------------------------------------------------------------
def scan_midc(
    source: Union[str, Path, TextIO], channel: Optional[str] = None
) -> StreamInfo:
    """Validation pass over an MIDC CSV in bounded memory.

    Streams every row exactly as :func:`parse_midc` would read it --
    same header resolution, same per-row errors -- but keeps only the
    calendar span and the set of distinct minutes-of-day (at most 1440
    entries), never the rows themselves.  Returns the
    :class:`StreamInfo` that :func:`iter_days` needs for its data pass.
    """
    if isinstance(source, (str, Path)):
        with _open_path(source) as handle:
            return _scan(handle, channel)
    return _scan(source, channel)


def _scan(handle: TextIO, channel: Optional[str]) -> StreamInfo:
    reader = _RowReader(handle, channel)
    # Distinct minutes in first-occurrence order: enough to both infer
    # the resolution and report the same first off-grid minute the
    # whole-file parser would (all minutes seen before an off-grid
    # row's first occurrence are on-grid by construction).
    minute_order: dict = {}
    first = last = None
    n_rows = 0
    for _line, ordinal, minute, _value in reader.iter_rows():
        minute_order.setdefault(minute, None)
        first = ordinal if first is None else min(first, ordinal)
        last = ordinal if last is None else max(last, ordinal)
        n_rows += 1
    if n_rows == 0:
        raise IngestError("file contains no data rows")
    distinct = list(minute_order)
    resolution = _infer_resolution(distinct)
    off_grid = [m for m in distinct if m % resolution]
    if off_grid:
        raise IngestError(
            f"irregular time grid: minute {off_grid[0]} is not on the "
            f"inferred {resolution}-minute grid"
        )
    n_days = last - first + 1
    if n_days > _MAX_SPAN_DAYS:
        raise IngestError(
            f"file spans {n_days} calendar days (> {_MAX_SPAN_DAYS}); "
            "not a contiguous deployment"
        )
    return StreamInfo(
        resolution_minutes=resolution,
        channel=reader.channel_name,
        channels=reader.channels,
        first_ordinal=first,
        last_ordinal=last,
        n_rows=n_rows,
    )


def iter_days(
    source: Union[str, Path, TextIO],
    channel: Optional[str] = None,
    resolution_minutes: Optional[int] = None,
) -> Iterator[DayChunk]:
    """Stream an MIDC CSV one dense day at a time.

    Holds at most a single day of samples: each yielded
    :class:`DayChunk` carries a freshly allocated ``(samples_per_day,)``
    grid (NaN-padded, missing interior days yielded as all-NaN), so a
    consumer that processes chunks as they arrive never sees the whole
    file in memory.

    Rows must be grouped by date in file order (real logger exports
    are); an out-of-order date raises :class:`IngestError` -- the
    whole-file parser is the fallback for shuffled files.

    Parameters
    ----------
    source:
        Path or text stream of the raw CSV.
    channel:
        Channel header to read (same selection rules as
        :func:`parse_midc`).
    resolution_minutes:
        The file's grid.  When omitted, a :func:`scan_midc` pass infers
        it first -- which needs a path (or a seekable stream) so the
        data pass can re-read from the start.
    """
    if resolution_minutes is None:
        info = scan_midc(_rewound(source), channel)
        resolution = info.resolution_minutes
    else:
        resolution = resolution_minutes
        if resolution <= 0 or MINUTES_PER_DAY % resolution:
            raise IngestError(
                f"resolution_minutes must divide a day, got {resolution}"
            )
    if isinstance(source, (str, Path)):
        with _open_path(source) as handle:
            yield from _iter_days(handle, channel, resolution)
    elif resolution_minutes is None:
        yield from _iter_days(_rewound(source), channel, resolution)
    else:
        # Explicit resolution: one pass suffices.  Rewind when the
        # stream supports it (a prior scan pass left it at EOF), but a
        # one-shot non-seekable stream is fine as-is.
        seek = getattr(source, "seek", None)
        if seek is not None:
            seek(0)
        yield from _iter_days(source, channel, resolution)


def _rewound(source):
    """``source`` positioned at its start (for multi-pass streaming)."""
    if isinstance(source, (str, Path)):
        return source
    seek = getattr(source, "seek", None)
    if seek is None:
        raise IngestError(
            "streaming needs a file path or a seekable stream when the "
            "resolution must be inferred (the scan pass re-reads the "
            "source); pass resolution_minutes= for one-shot streams"
        )
    seek(0)
    return source


def _iter_days(
    handle: TextIO, channel: Optional[str], resolution: int
) -> Iterator[DayChunk]:
    reader = _RowReader(handle, channel)
    spd = MINUTES_PER_DAY // resolution
    first_ord: Optional[int] = None
    current: Optional[int] = None
    buf: Optional[np.ndarray] = None
    seen: Optional[np.ndarray] = None
    for line, ordinal, minute, value in reader.iter_rows():
        if minute % resolution:
            raise IngestError(
                f"irregular time grid: minute {minute} is not on the "
                f"inferred {resolution}-minute grid"
            )
        if current is None:
            first_ord = current = ordinal
            buf = np.full(spd, np.nan)
            seen = np.zeros(spd, dtype=bool)
        elif ordinal != current:
            if ordinal < current:
                raise IngestError(
                    f"row {line}: date {date.fromordinal(ordinal).isoformat()} "
                    f"after {date.fromordinal(current).isoformat()}; streaming "
                    "ingest needs rows grouped by date (use parse_midc for "
                    "shuffled files)"
                )
            if ordinal - first_ord + 1 > _MAX_SPAN_DAYS:
                raise IngestError(
                    f"file spans {ordinal - first_ord + 1} calendar days "
                    f"(> {_MAX_SPAN_DAYS}); not a contiguous deployment"
                )
            yield DayChunk(current, date.fromordinal(current).isoformat(), buf)
            for gap in range(current + 1, ordinal):
                yield DayChunk(
                    gap, date.fromordinal(gap).isoformat(), np.full(spd, np.nan)
                )
            current = ordinal
            buf = np.full(spd, np.nan)
            seen = np.zeros(spd, dtype=bool)
        slot = minute // resolution
        if seen[slot]:
            raise IngestError(
                f"duplicate timestamp: day {ordinal - first_ord + 1}, "
                f"minute {minute}"
            )
        seen[slot] = True
        buf[slot] = value
    if current is None:
        raise IngestError("file contains no data rows")
    yield DayChunk(current, date.fromordinal(current).isoformat(), buf)


def stream_channel(
    source: Union[str, Path, TextIO], channel: Optional[str] = None
) -> MIDCChannel:
    """Assemble a whole :class:`MIDCChannel` through the streaming reader.

    Two bounded-memory passes (scan, then day-by-day data); the result
    is byte-identical to :func:`parse_midc` for date-grouped files.
    Useful where the CSV text dwarfs the numeric grid -- the grid is
    the only whole-file allocation made.
    """
    info = scan_midc(_rewound(source), channel)
    grid = np.empty(info.n_days * info.samples_per_day, dtype=float)
    spd = info.samples_per_day
    for i, chunk in enumerate(
        iter_days(source, channel, resolution_minutes=info.resolution_minutes)
    ):
        grid[i * spd : (i + 1) * spd] = chunk.values
    return MIDCChannel(
        values=grid,
        resolution_minutes=info.resolution_minutes,
        channel=info.channel,
        channels=info.channels,
        start_date=info.start_date,
    )


def _locate_time_columns(header: List[str]) -> Tuple[int, int]:
    date_col = next(
        (i for i, name in enumerate(header) if "DATE" in name.upper()), None
    )
    if date_col is None:
        raise IngestError(
            f"no date column (header containing 'DATE') in {header}"
        )
    time_col = next(
        (
            i
            for i, name in enumerate(header)
            if i != date_col
            and (name.upper() in _TIME_HEADERS or "TIME" in name.upper())
        ),
        None,
    )
    if time_col is None:
        raise IngestError(
            "no time column (timezone code such as MST, or a header "
            f"containing 'TIME') in {header}"
        )
    return date_col, time_col


def _select_channel(
    channel_cols: List[Tuple[int, str]], requested: Optional[str]
) -> Tuple[int, str]:
    if requested is None:
        for i, name in channel_cols:
            if "GLOBAL" in name.upper():
                return i, name
        return channel_cols[0]
    wanted = requested.strip().upper()
    exact = [(i, name) for i, name in channel_cols if name.upper() == wanted]
    if exact:
        return exact[0]
    partial = [(i, name) for i, name in channel_cols if wanted in name.upper()]
    if len(partial) == 1:
        return partial[0]
    available = ", ".join(name for _, name in channel_cols)
    if not partial:
        raise IngestError(
            f"unknown channel {requested!r}; available: {available}"
        )
    raise IngestError(
        f"channel {requested!r} is ambiguous "
        f"({', '.join(name for _, name in partial)}); available: {available}"
    )


def _parse_date(text: str, line: int) -> int:
    for fmt in ("%m/%d/%Y", "%Y-%m-%d"):
        try:
            return datetime.strptime(text, fmt).toordinal()
        except ValueError:
            continue
    raise IngestError(
        f"row {line}: cannot parse date {text!r} "
        "(expected MM/DD/YYYY or YYYY-MM-DD)"
    )


def _parse_minute(text: str, line: int) -> int:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise IngestError(
            f"row {line}: cannot parse time {text!r} (expected HH:MM[:SS])"
        )
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise IngestError(f"row {line}: cannot parse time {text!r}")
    hour, minute = numbers[0], numbers[1]
    second = numbers[2] if len(numbers) == 3 else 0
    if not (0 <= hour < 24 and 0 <= minute < 60 and second == 0):
        raise IngestError(
            f"row {line}: time {text!r} outside the 00:00..23:59 "
            "whole-minute grid"
        )
    return hour * 60 + minute


def _parse_value(text: str, line: int) -> float:
    if not text:
        return float("nan")
    try:
        value = float(text)
    except ValueError:
        raise IngestError(f"row {line}: non-numeric sample {text!r}")
    if np.isnan(value) or value <= SENTINEL_CEILING:
        return float("nan")
    if not np.isfinite(value):
        raise IngestError(f"row {line}: non-finite sample {text!r}")
    return value


def _infer_resolution(minutes: List[int]) -> int:
    """Native resolution from the *modal* minute-of-day step.

    The most common step between consecutive distinct minutes is the
    file's real grid; a single stray off-grid row (a logger hiccup)
    then fails the off-grid check loudly instead of silently redefining
    the resolution and marking half the grid missing (which taking the
    minimum step would do).  Ties break toward the smaller step.
    """
    unique = sorted(set(minutes))
    if len(unique) == 1:
        return MINUTES_PER_DAY
    steps: dict = {}
    for a, b in zip(unique, unique[1:]):
        steps[b - a] = steps.get(b - a, 0) + 1
    resolution = int(min(steps, key=lambda s: (-steps[s], s)))
    if MINUTES_PER_DAY % resolution:
        raise IngestError(
            f"inferred native resolution {resolution} minutes does not "
            "divide a day"
        )
    return resolution
