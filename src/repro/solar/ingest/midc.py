"""Parser for raw NREL-MIDC-shaped measurement CSVs.

The NREL Measurement and Instrumentation Data Center exports are plain
CSVs with a date column, a local-time column and one column per
measured channel::

    DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]
    03/01/2010,00:00,-1.8,4.2
    03/01/2010,00:05,-1.7,4.1
    ...

This module reads that shape -- tolerant of the quirks real downloads
carry -- into a dense NaN-padded grid at the file's native resolution:

* the date column is any header containing ``DATE`` (``MM/DD/YYYY`` or
  ``YYYY-MM-DD`` values); the time column is a timezone code (``MST``,
  ``PST``, ...) or any header containing ``TIME`` (``HH:MM`` or
  ``HH:MM:SS`` values);
* channels are selected by (case-insensitive) exact or unique-substring
  header match; by default the first channel containing ``GLOBAL`` (the
  paper's GHI channel), else the first channel;
* missing data in all three wild forms -- absent rows, empty cells and
  sentinel values (``<= -999``, e.g. MIDC's ``-99999``) -- becomes NaN;
* rows may arrive in any order; duplicate timestamps are an error;
* the native resolution is inferred from the smallest time step and
  every row must sit on that grid.

The output covers the whole calendar span of the file (missing rows
padded with NaN), so downstream consumers always see whole days.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path
from typing import List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.solar.trace import MINUTES_PER_DAY

__all__ = ["IngestError", "MIDCChannel", "parse_midc"]

#: Values at or below this are treated as missing-data sentinels.
SENTINEL_CEILING = -999.0

#: Time-column headers recognised as-is (timezone codes seen on MIDC).
_TIME_HEADERS = {
    "MST", "MDT", "PST", "PDT", "CST", "CDT", "EST", "EDT",
    "AKST", "HST", "LST", "UTC", "GMT",
}

#: Calendar-span ceiling: a grid this long is a parse gone wrong (e.g.
#: two disjoint deployments concatenated), not a trace.
_MAX_SPAN_DAYS = 2000


class IngestError(ValueError):
    """Raised when a measurement CSV cannot be ingested."""


@dataclass(frozen=True, eq=False)
class MIDCChannel:
    """One channel of a parsed measurement file, on a dense grid.

    Attributes
    ----------
    values:
        Flat float array covering whole days at the native resolution;
        NaN marks missing samples.
    resolution_minutes:
        Inferred native sampling resolution.
    channel:
        Header of the selected channel.
    channels:
        Every channel header the file offers.
    start_date:
        ISO date of the first grid day.
    """

    values: np.ndarray
    resolution_minutes: int
    channel: str
    channels: Tuple[str, ...]
    start_date: str

    @property
    def samples_per_day(self) -> int:
        """Samples in each whole day."""
        return MINUTES_PER_DAY // self.resolution_minutes

    @property
    def n_days(self) -> int:
        """Whole days covered by the grid."""
        return self.values.size // self.samples_per_day

    @property
    def missing_fraction(self) -> float:
        """Fraction of grid samples with no recorded value."""
        return float(np.isnan(self.values).mean())


def parse_midc(
    source: Union[str, Path, TextIO], channel: Optional[str] = None
) -> MIDCChannel:
    """Parse one channel of an MIDC-shaped CSV (path or text stream)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="") as handle:
            return _parse(handle, channel)
    return _parse(source, channel)


def _parse(handle: TextIO, channel: Optional[str]) -> MIDCChannel:
    reader = csv.reader(handle)
    header = next((row for row in reader if row and any(c.strip() for c in row)), None)
    if header is None:
        raise IngestError("file is empty")
    header = [cell.strip() for cell in header]
    date_col, time_col = _locate_time_columns(header)
    channel_cols = [
        (i, name)
        for i, name in enumerate(header)
        if i not in (date_col, time_col) and name
    ]
    if not channel_cols:
        raise IngestError("no measurement channels besides the date/time columns")
    value_col, channel_name = _select_channel(channel_cols, channel)

    ordinals: List[int] = []
    minutes: List[int] = []
    values: List[float] = []
    for line, row in enumerate(reader, start=2):
        if not row or not any(cell.strip() for cell in row):
            continue
        if len(row) <= max(date_col, time_col, value_col):
            raise IngestError(
                f"row {line}: expected at least "
                f"{max(date_col, time_col, value_col) + 1} fields, got {len(row)}"
            )
        ordinals.append(_parse_date(row[date_col].strip(), line))
        minutes.append(_parse_minute(row[time_col].strip(), line))
        values.append(_parse_value(row[value_col].strip(), line))
    if not ordinals:
        raise IngestError("file contains no data rows")

    resolution = _infer_resolution(minutes)
    off_grid = [m for m in minutes if m % resolution]
    if off_grid:
        raise IngestError(
            f"irregular time grid: minute {off_grid[0]} is not on the "
            f"inferred {resolution}-minute grid"
        )

    first, last = min(ordinals), max(ordinals)
    n_days = last - first + 1
    if n_days > _MAX_SPAN_DAYS:
        raise IngestError(
            f"file spans {n_days} calendar days (> {_MAX_SPAN_DAYS}); "
            "not a contiguous deployment"
        )
    spd = MINUTES_PER_DAY // resolution
    grid = np.full(n_days * spd, np.nan)
    seen = np.zeros(n_days * spd, dtype=bool)
    for ordinal, minute, value in zip(ordinals, minutes, values):
        slot = (ordinal - first) * spd + minute // resolution
        if seen[slot]:
            raise IngestError(
                f"duplicate timestamp: day {ordinal - first + 1}, "
                f"minute {minute}"
            )
        seen[slot] = True
        grid[slot] = value
    return MIDCChannel(
        values=grid,
        resolution_minutes=resolution,
        channel=channel_name,
        channels=tuple(name for _, name in channel_cols),
        start_date=datetime.fromordinal(first).date().isoformat(),
    )


def _locate_time_columns(header: List[str]) -> Tuple[int, int]:
    date_col = next(
        (i for i, name in enumerate(header) if "DATE" in name.upper()), None
    )
    if date_col is None:
        raise IngestError(
            f"no date column (header containing 'DATE') in {header}"
        )
    time_col = next(
        (
            i
            for i, name in enumerate(header)
            if i != date_col
            and (name.upper() in _TIME_HEADERS or "TIME" in name.upper())
        ),
        None,
    )
    if time_col is None:
        raise IngestError(
            "no time column (timezone code such as MST, or a header "
            f"containing 'TIME') in {header}"
        )
    return date_col, time_col


def _select_channel(
    channel_cols: List[Tuple[int, str]], requested: Optional[str]
) -> Tuple[int, str]:
    if requested is None:
        for i, name in channel_cols:
            if "GLOBAL" in name.upper():
                return i, name
        return channel_cols[0]
    wanted = requested.strip().upper()
    exact = [(i, name) for i, name in channel_cols if name.upper() == wanted]
    if exact:
        return exact[0]
    partial = [(i, name) for i, name in channel_cols if wanted in name.upper()]
    if len(partial) == 1:
        return partial[0]
    available = ", ".join(name for _, name in channel_cols)
    if not partial:
        raise IngestError(
            f"unknown channel {requested!r}; available: {available}"
        )
    raise IngestError(
        f"channel {requested!r} is ambiguous "
        f"({', '.join(name for _, name in partial)}); available: {available}"
    )


def _parse_date(text: str, line: int) -> int:
    for fmt in ("%m/%d/%Y", "%Y-%m-%d"):
        try:
            return datetime.strptime(text, fmt).toordinal()
        except ValueError:
            continue
    raise IngestError(
        f"row {line}: cannot parse date {text!r} "
        "(expected MM/DD/YYYY or YYYY-MM-DD)"
    )


def _parse_minute(text: str, line: int) -> int:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise IngestError(
            f"row {line}: cannot parse time {text!r} (expected HH:MM[:SS])"
        )
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise IngestError(f"row {line}: cannot parse time {text!r}")
    hour, minute = numbers[0], numbers[1]
    second = numbers[2] if len(numbers) == 3 else 0
    if not (0 <= hour < 24 and 0 <= minute < 60 and second == 0):
        raise IngestError(
            f"row {line}: time {text!r} outside the 00:00..23:59 "
            "whole-minute grid"
        )
    return hour * 60 + minute


def _parse_value(text: str, line: int) -> float:
    if not text:
        return float("nan")
    try:
        value = float(text)
    except ValueError:
        raise IngestError(f"row {line}: non-numeric sample {text!r}")
    if np.isnan(value) or value <= SENTINEL_CEILING:
        return float("nan")
    if not np.isfinite(value):
        raise IngestError(f"row {line}: non-finite sample {text!r}")
    return value


def _infer_resolution(minutes: List[int]) -> int:
    """Native resolution from the *modal* minute-of-day step.

    The most common step between consecutive distinct minutes is the
    file's real grid; a single stray off-grid row (a logger hiccup)
    then fails the off-grid check loudly instead of silently redefining
    the resolution and marking half the grid missing (which taking the
    minimum step would do).  Ties break toward the smaller step.
    """
    unique = sorted(set(minutes))
    if len(unique) == 1:
        return MINUTES_PER_DAY
    steps: dict = {}
    for a, b in zip(unique, unique[1:]):
        steps[b - a] = steps.get(b - a, 0) + 1
    resolution = int(min(steps, key=lambda s: (-steps[s], s)))
    if MINUTES_PER_DAY % resolution:
        raise IngestError(
            f"inferred native resolution {resolution} minutes does not "
            "divide a day"
        )
    return resolution
