"""The :class:`SolarTrace` container.

A trace is simply a 1-D array of non-negative power samples on a uniform
time grid, together with its resolution.  Every other part of the
reproduction (slotting, prediction, error evaluation, node simulation)
consumes this type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SolarTrace", "MINUTES_PER_DAY"]

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class SolarTrace:
    """One contiguous power time series at fixed resolution.

    Attributes
    ----------
    values:
        1-D float array of power samples (W/m^2 for raw irradiance, or W
        after a harvester model).  Must be non-negative and cover an
        integer number of days.
    resolution_minutes:
        Minutes between consecutive samples; must divide a day evenly.
    name:
        Optional human-readable label (site code).
    """

    values: np.ndarray
    resolution_minutes: int
    name: str = ""

    def __post_init__(self):
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        if self.resolution_minutes <= 0 or MINUTES_PER_DAY % self.resolution_minutes:
            raise ValueError(
                f"resolution_minutes must divide {MINUTES_PER_DAY}; "
                f"got {self.resolution_minutes}"
            )
        spd = MINUTES_PER_DAY // self.resolution_minutes
        if values.size == 0 or values.size % spd:
            raise ValueError(
                f"trace length {values.size} is not a whole number of days "
                f"at {self.resolution_minutes}-minute resolution ({spd}/day)"
            )
        if not np.isfinite(values).all():
            raise ValueError("trace contains non-finite samples")
        if (values < 0).any():
            raise ValueError("trace contains negative power samples")
        values.flags.writeable = False
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def samples_per_day(self) -> int:
        """Number of samples in each day."""
        return MINUTES_PER_DAY // self.resolution_minutes

    @property
    def n_days(self) -> int:
        """Number of whole days in the trace."""
        return self.values.size // self.samples_per_day

    @property
    def n_samples(self) -> int:
        """Total number of samples."""
        return self.values.size

    def as_days(self) -> np.ndarray:
        """Read-only view shaped ``(n_days, samples_per_day)``."""
        return self.values.reshape(self.n_days, self.samples_per_day)

    def day(self, index: int) -> np.ndarray:
        """Samples of one day (0-based index; negative indices allowed)."""
        return self.as_days()[index]

    def select_days(self, start: int, stop: Optional[int] = None) -> "SolarTrace":
        """New trace containing days ``start:stop`` (0-based, half-open)."""
        days = self.as_days()[start:stop]
        if days.size == 0:
            raise ValueError(f"day slice [{start}:{stop}] selects no days")
        return SolarTrace(
            values=days.reshape(-1).copy(),
            resolution_minutes=self.resolution_minutes,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Resolution / statistics helpers
    # ------------------------------------------------------------------
    def downsample(self, factor: int) -> "SolarTrace":
        """Keep every ``factor``-th sample (decimation, not averaging).

        This mimics what a node sampling its harvester less often would
        actually see, which is how the paper derives coarser N from the
        native trace.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        if self.samples_per_day % factor:
            raise ValueError(
                f"factor {factor} does not divide samples_per_day "
                f"{self.samples_per_day}"
            )
        return SolarTrace(
            values=self.values[::factor].copy(),
            resolution_minutes=self.resolution_minutes * factor,
            name=self.name,
        )

    @property
    def peak(self) -> float:
        """Largest sample in the trace."""
        return float(self.values.max())

    def daily_energy(self) -> np.ndarray:
        """Energy received each day in W*h units per unit area.

        ``sum(power) * dt`` with ``dt`` in hours.
        """
        dt_hours = self.resolution_minutes / 60.0
        return self.as_days().sum(axis=1) * dt_hours

    def __len__(self) -> int:
        return self.values.size

    def __repr__(self) -> str:
        return (
            f"SolarTrace(name={self.name!r}, days={self.n_days}, "
            f"resolution={self.resolution_minutes}min, peak={self.peak:.1f})"
        )
