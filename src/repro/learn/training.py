"""Offline training: a trace in, a versioned :class:`ModelArtifact` out.

This is the *train* half of the train/serve split.  :func:`fit_artifact`
replays a trace through the same incremental
:class:`~repro.learn.features.FeatureState` the online kernel runs
(train/serve feature parity by construction), pairs each boundary's
feature row with its realized slot-mean reference (the Eq. 7 quantity
the evaluation layer scores against), drops the warm-up days whose
day-history features are still fallback-filled, and fits the requested
model deterministically -- for a fixed seed the resulting artifact is
byte-identical across processes and ``PYTHONHASHSEED`` values.

The in-sample MAPE over the trace's region of interest rides along in
``artifact.training["train_mape"]`` as provenance; held-out scoring is
the :mod:`repro.experiments.learn` experiment's job.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.learn.artifact import ModelArtifact
from repro.learn.features import FEATURE_SCHEMA_VERSION, N_FEATURES, FeatureConfig, FeatureState
from repro.learn.models import (
    TrainingConfig,
    fit_model_batch,
    predict_model,
    unstack_params,
)
from repro.metrics.evaluate import score_predictions
from repro.solar.slots import SlotView
from repro.solar.trace import SolarTrace

__all__ = ["build_training_set", "fit_artifact"]


def build_training_set(
    trace: SolarTrace,
    n_slots: int,
    config: Optional[FeatureConfig] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Feature matrix, slot-mean targets, and start samples of a trace.

    ``X[t]`` is the feature row available at boundary ``t`` (computed by
    the online builder, one boundary at a time), ``y[t]`` the realized
    mean of the slot starting at ``t``.  The final boundary is included;
    callers slicing train rows typically drop it along with warm-up.
    """
    config = config if config is not None else FeatureConfig()
    view = SlotView.from_trace(trace, n_slots)
    starts = view.flat_starts()
    means = view.flat_means()
    state = FeatureState(n_slots, 1, config)
    X = np.empty((starts.size, N_FEATURES), dtype=float)
    row = np.zeros(1, dtype=float)
    for t in range(starts.size):
        row[0] = starts[t]
        X[t] = state.step(row)[0]
    return X, means, starts


def fit_artifact(
    trace: SolarTrace,
    n_slots: int = 48,
    model: str = "ridge",
    site: Optional[str] = None,
    features: Optional[FeatureConfig] = None,
    training: Optional[TrainingConfig] = None,
    engine: str = "batched",
) -> ModelArtifact:
    """Train ``model`` on ``trace`` and wrap it as a persistable artifact.

    Training rows start after ``training.min_train_days`` (day-history
    features before that are fallback-filled and would teach the model
    a warm-up regime it never serves under); the GBM subsample stream
    is seeded from ``(training.seed, 0)``, matching the online kernel's
    first fit.

    ``engine`` mirrors :data:`repro.learn.predictor.REFIT_ENGINES`:
    ``"batched"`` (default) runs the stacked fit kernels at ``B == 1``,
    ``"loop"`` the frozen scalar reference -- both produce byte-identical
    artifacts (digest-pinned in the determinism suite), so the flag is
    a cross-check, not a model choice, and never enters provenance.
    """
    features = features if features is not None else FeatureConfig()
    training = training if training is not None else TrainingConfig()
    if engine not in ("batched", "loop"):
        raise ValueError(
            f"unknown fit engine {engine!r}; known: ('batched', 'loop')"
        )
    X, y, starts = build_training_set(trace, n_slots, features)
    skip = training.min_train_days * n_slots
    if X.shape[0] - skip < 2 * n_slots:
        raise ValueError(
            f"trace has {X.shape[0]} boundaries; need at least "
            f"{skip + 2 * n_slots} (min_train_days={training.min_train_days} "
            "warm-up plus two trainable days)"
        )
    rng = np.random.default_rng([training.seed, 0])
    if engine == "loop":
        from repro.learn.reference import fit_model_reference

        params = fit_model_reference(model, X[skip:], y[skip:], training, rng)
    else:
        params = unstack_params(
            fit_model_batch(
                model, X[skip:, None, :], y[skip:, None], training, rng
            )
        )

    predictions = np.maximum(predict_model(params, X), 0.0)
    # In-sample provenance MAPE over exactly the trained rows: warm-up
    # is the same min_train_days cut the fit skipped, not the (longer)
    # evaluation default, so short training heads still score.
    run = score_predictions(
        predictions=predictions[:-1],
        reference_mean=y[:-1],
        reference_next_start=starts[1:],
        n_slots=n_slots,
        warmup_days=training.min_train_days,
    )
    site_name = site if site is not None else (trace.name or "TRACE")
    provenance = dict(training.to_dict())
    provenance["train_days"] = int(X.shape[0] // n_slots)
    provenance["train_rows"] = int(X.shape[0] - skip)
    provenance["train_mape"] = float(run.mape)
    return ModelArtifact(
        site=str(site_name).upper(),
        model=model,
        n_slots=n_slots,
        feature_schema=FEATURE_SCHEMA_VERSION,
        feature_config=features.to_dict(),
        training=provenance,
        params=params,
    )
