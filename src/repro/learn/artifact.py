"""Versioned, picklable model artifacts: the train half of train/serve.

A :class:`ModelArtifact` is everything ``fit()`` produced: the fitted
parameter dict, the feature/training configuration that shaped it, the
feature-schema version it was built against, and provenance (site,
trace length, training rows, in-sample error).  Artifacts are frozen --
serving never mutates one -- and deterministic: for a fixed seed the
whole artifact is byte-identical across processes and
``PYTHONHASHSEED`` values (every dict is built in fixed key order and
every array in a fixed dtype/layout), which
``tests/learn/test_determinism.py`` pins via subprocesses.

:class:`ArtifactStore` persists them with the exact envelope pattern of
:class:`repro.serve.state.StateStore` -- a pickled
``{format, version, site, model, feature_schema, artifact}`` dict
written atomically (temp file + ``os.replace``) -- and its loader
additionally validates the **feature schema**: an artifact trained
against a different :data:`~repro.learn.features.FEATURE_SCHEMA_VERSION`
is rejected with an error naming both versions, because feeding
schema-v1 features to schema-v2 weights would silently mis-predict
(the bug class the plain format/version/site checks cannot catch).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple

from repro.learn.features import FEATURE_SCHEMA_VERSION
from repro.learn.models import MODEL_KINDS
from repro.serve.state import state_digest

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ModelArtifact",
    "ArtifactStore",
]

ARTIFACT_FORMAT = "repro-solar model artifact"

#: Bump when the envelope layout changes; load refuses other versions.
ARTIFACT_VERSION = 1

_SUFFIX = ".model.pkl"


class ArtifactError(ValueError):
    """An artifact file exists but cannot serve this build."""


def _slug(name: str) -> str:
    """File-name-safe form of a site/model name."""
    cleaned = "".join(c if c.isalnum() or c in "-_" else "-" for c in name)
    return cleaned or "x"


@dataclass(frozen=True)
class ModelArtifact:
    """One fitted model plus everything needed to serve it faithfully.

    Attributes
    ----------
    site:
        Dataset the model was trained on (upper-cased site name).
    model:
        Model kind (``ridge`` / ``gbm``), matching the registry name.
    n_slots:
        Slot grid the features were built on.
    feature_schema:
        :data:`~repro.learn.features.FEATURE_SCHEMA_VERSION` at
        training time.
    feature_config / training:
        Plain-dict forms of the configs (``FeatureConfig.to_dict()``,
        ``TrainingConfig.to_dict()`` plus provenance keys
        ``train_days``/``train_rows``/``train_mape``).
    params:
        The fitted parameter dict of :mod:`repro.learn.models`.
    """

    site: str
    model: str
    n_slots: int
    feature_schema: int
    feature_config: dict
    training: dict
    params: dict

    def __post_init__(self):
        if self.model not in MODEL_KINDS:
            raise ValueError(
                f"unknown model kind {self.model!r}; known: {MODEL_KINDS}"
            )
        if self.n_slots <= 0:
            raise ValueError("n_slots must be positive")

    def to_dict(self) -> dict:
        """Plain-dict form (fixed key order; pickles byte-stably)."""
        return {
            "site": self.site,
            "model": self.model,
            "n_slots": self.n_slots,
            "feature_schema": self.feature_schema,
            "feature_config": dict(self.feature_config),
            "training": dict(self.training),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModelArtifact":
        return cls(
            site=str(data["site"]),
            model=str(data["model"]),
            n_slots=int(data["n_slots"]),
            feature_schema=int(data["feature_schema"]),
            feature_config=dict(data["feature_config"]),
            training=dict(data["training"]),
            params=dict(data["params"]),
        )

    def digest(self) -> str:
        """Value-based content fingerprint (16 hex chars).

        Reuses :func:`repro.serve.state.state_digest`, so equal
        artifacts digest equally regardless of interning or a pickle
        round trip; serve audit lines and the determinism tests both
        key on this.
        """
        return state_digest(self.to_dict())


class ArtifactStore:
    """One directory of atomic per-``(site, model)`` artifacts.

    Mirrors :class:`repro.serve.state.StateStore`: plain directory, one
    file per pair, every write a temp file + ``os.replace`` so readers
    always see a complete artifact.
    """

    def __init__(self, root):
        self.root = Path(root)

    def path_for(self, site: str, model: str) -> Path:
        """Artifact path of one ``(site, model)`` pair."""
        return self.root / f"{_slug(site)}__{_slug(model)}{_SUFFIX}"

    # -- write ---------------------------------------------------------
    def save(self, artifact: ModelArtifact) -> str:
        """Atomically persist ``artifact``; returns its digest."""
        path = self.path_for(artifact.site, artifact.model)
        self.root.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "site": artifact.site,
            "model": artifact.model,
            "feature_schema": artifact.feature_schema,
            "artifact": artifact.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return artifact.digest()

    # -- read ----------------------------------------------------------
    def load(self, site: str, model: str) -> Optional[ModelArtifact]:
        """The saved artifact, or None when none exists for the pair.

        Raises :class:`ArtifactError` when a file exists but is not a
        version-compatible artifact of this ``(site, model)`` pair *or*
        was trained against a different feature schema -- serving a
        model on features it was not trained on must be loud, never a
        silent mis-prediction.
        """
        path = self.path_for(site, model)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise ArtifactError(f"cannot read artifact file {path}: {exc}")
        if not isinstance(envelope, dict) or envelope.get("format") != ARTIFACT_FORMAT:
            raise ArtifactError(f"{path} is not a {ARTIFACT_FORMAT!r} file")
        version = envelope.get("version")
        if version != ARTIFACT_VERSION:
            raise ArtifactError(
                f"{path} has artifact-format version {version}; this build "
                f"reads version {ARTIFACT_VERSION}"
            )
        if envelope.get("site") != site or envelope.get("model") != model:
            raise ArtifactError(
                f"{path} holds the ({envelope.get('site')}, "
                f"{envelope.get('model')}) artifact; expected ({site}, {model})"
            )
        schema = envelope.get("feature_schema")
        if schema != FEATURE_SCHEMA_VERSION:
            raise ArtifactError(
                f"{path} was trained against feature-schema version "
                f"{schema}; this build computes feature-schema version "
                f"{FEATURE_SCHEMA_VERSION} -- retrain the artifact "
                "(its features no longer mean what the weights expect)"
            )
        return ModelArtifact.from_dict(envelope["artifact"])

    def entries(self) -> Iterator[Tuple[str, str]]:
        """Yield the ``(site, model)`` pairs stored here.

        Read from the envelopes, not file names, so slugged names
        round-trip; unreadable files are skipped (listing is
        informational -- :meth:`load` is where corruption is loud).
        """
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"*{_SUFFIX}")):
            try:
                with open(path, "rb") as handle:
                    envelope = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError):
                continue
            if (
                isinstance(envelope, dict)
                and envelope.get("format") == ARTIFACT_FORMAT
            ):
                yield envelope["site"], envelope["model"]
