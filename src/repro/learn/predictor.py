"""The learned predictor tier behind the standard predictor protocols.

:class:`LearnedKernel` is a :class:`~repro.core.base.VectorPredictor`
advancing ``B`` lock-step nodes, and :class:`LearnedPredictor` is its
scalar :class:`~repro.core.base.OnlinePredictor` face (a ``B == 1``
kernel), so scalar/vector parity holds by construction and both plug
into the registry, :class:`~repro.management.fleet.FleetSimulator`, the
robustness matrix and ``repro-solar serve`` unchanged.

Two modes:

**Online self-fitting** (default; what the registry factories build).
The kernel engineers features incrementally
(:class:`~repro.learn.features.FeatureState`), records the realized
reference of every prediction (the slot mean via
``provide_slot_mean`` when the caller supplies it -- the adaptive
selectors' protocol -- falling back to the next sample), and refits its
model every ``refit_days`` on a trailing ``window_days`` window once
``min_train_days`` complete days exist.  Before the first fit it
serves a rule-based fallback (a persistence / day-history-mean blend),
mirroring ha-solar-forecast-ml's fallback chain; the evaluation
layer's 20 warm-up days keep that phase unscored.  Refits are
deterministic: every node's GBM subsample stream reseeds from
``(seed, fit_index)``, so a run is a pure function of its inputs and
scalar/vector parity survives subsampling.

**Frozen artifact** (the serve half of train/serve).  Constructed with
a :class:`~repro.learn.artifact.ModelArtifact`, the kernel loads the
fitted weights (validating slot grid, model kind, and feature-schema
version -- loudly, naming both versions on mismatch), keeps building
features online, and never refits: what was trained is exactly what
serves, across restarts.

Predictions are clamped to ``[0, inf)`` and non-finite model output
degrades to the fallback value -- a learned model may be wrong, but it
must never emit a negative or NaN power forecast.
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from repro.core.base import OnlinePredictor, VectorPredictor, as_batch
from repro.learn.artifact import ModelArtifact
from repro.learn.features import (
    FEATURE_SCHEMA_VERSION,
    IDX_MU_NEXT,
    N_FEATURES,
    FeatureConfig,
    FeatureState,
)
from repro.learn.models import (
    MODEL_KINDS,
    TrainingConfig,
    fit_model_batch,
    score_stumps,
)

__all__ = ["REFIT_ENGINES", "LearnedKernel", "LearnedPredictor"]

#: Refit dispatch: ``"batched"`` fits all ``B`` nodes through one
#: stacked kernel call; ``"loop"`` is the frozen per-node reference
#: (:mod:`repro.learn.reference`), kept on the real dispatch path so
#: engine parity stays a one-flag experiment.
REFIT_ENGINES = ("batched", "loop")


def _coerce_features(features) -> FeatureConfig:
    if features is None:
        return FeatureConfig()
    if isinstance(features, FeatureConfig):
        return features
    return FeatureConfig.from_dict(dict(features))


def _coerce_training(training) -> TrainingConfig:
    if training is None:
        return TrainingConfig()
    if isinstance(training, TrainingConfig):
        return training
    return TrainingConfig.from_dict(dict(training))


class LearnedKernel(VectorPredictor):
    """Lock-step learned predictor for ``B`` independent nodes.

    Parameters
    ----------
    n_slots:
        Slots per day (``N``).
    batch_size:
        Nodes per ``observe`` call (``B``).
    model:
        ``"ridge"`` or ``"gbm"`` (default ridge; ignored in favour of
        the artifact's kind when ``artifact`` names one and no explicit
        kind is given).
    features / training:
        :class:`~repro.learn.features.FeatureConfig` /
        :class:`~repro.learn.models.TrainingConfig` (or their dict
        forms); defaults are the tuned package defaults.
    artifact:
        A fitted :class:`~repro.learn.artifact.ModelArtifact` (or its
        dict form) -- switches the kernel to frozen serve mode.
    feedback:
        ``"slot_mean"`` (default) trains on the realized slot mean
        supplied via :meth:`provide_slot_mean` (exactly the Eq. 7
        reference), falling back to the next sample when never
        provided; ``"sample"`` always trains on the next sample.
    fallback_alpha:
        Weight of persistence in the pre-fit fallback blend.
    engine:
        Refit dispatch (:data:`REFIT_ENGINES`): ``"batched"`` (default)
        fits every node in one stacked kernel call, ``"loop"`` runs the
        frozen per-node reference fits.  Bitwise-identical outputs --
        a performance knob, not a model choice -- so it never enters
        checkpoints or artifacts.
    """

    def __init__(
        self,
        n_slots: int,
        batch_size: int = 1,
        model: Optional[str] = None,
        features=None,
        training=None,
        artifact: Optional[Union[ModelArtifact, dict]] = None,
        feedback: str = "slot_mean",
        fallback_alpha: float = 0.5,
        engine: str = "batched",
    ):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if feedback not in ("slot_mean", "sample"):
            raise ValueError(
                f"feedback must be 'slot_mean' or 'sample', got {feedback!r}"
            )
        if not 0.0 <= fallback_alpha <= 1.0:
            raise ValueError(f"fallback_alpha must be in [0, 1], got {fallback_alpha}")
        if engine not in REFIT_ENGINES:
            raise ValueError(
                f"unknown refit engine {engine!r}; known: {REFIT_ENGINES}"
            )
        self.n_slots = n_slots
        self.batch_size = batch_size
        self.feedback = feedback
        self.fallback_alpha = float(fallback_alpha)
        self.engine = engine

        if artifact is not None:
            if isinstance(artifact, dict):
                artifact = ModelArtifact.from_dict(artifact)
            if artifact.feature_schema != FEATURE_SCHEMA_VERSION:
                raise ValueError(
                    f"artifact was trained against feature-schema version "
                    f"{artifact.feature_schema}; this build computes "
                    f"feature-schema version {FEATURE_SCHEMA_VERSION}"
                )
            if artifact.n_slots != n_slots:
                raise ValueError(
                    f"artifact was trained at N={artifact.n_slots}; "
                    f"this kernel runs N={n_slots}"
                )
            if model is not None and model != artifact.model:
                raise ValueError(
                    f"artifact holds a {artifact.model!r} model; "
                    f"requested {model!r}"
                )
            self.model = artifact.model
            self.features = FeatureConfig.from_dict(artifact.feature_config)
            # Provenance keys ride along in artifact.training; only the
            # TrainingConfig fields matter to a frozen kernel.
            known = set(TrainingConfig().to_dict())
            self.training = TrainingConfig.from_dict(
                {k: v for k, v in artifact.training.items() if k in known}
            )
        else:
            self.model = model if model is not None else "ridge"
            if self.model not in MODEL_KINDS:
                raise ValueError(
                    f"unknown model kind {self.model!r}; known: {MODEL_KINDS}"
                )
            self.features = _coerce_features(features)
            self.training = _coerce_training(training)

        self.artifact = artifact
        self.frozen = artifact is not None
        self._features = FeatureState(n_slots, batch_size, self.features)
        self._cap = self.training.window_days * n_slots
        if not self.frozen:
            self._X = np.zeros((self._cap, batch_size, N_FEATURES), dtype=float)
            self._y = np.zeros((self._cap, batch_size), dtype=float)
        else:
            self._X = self._y = None
        self._alloc_model_state()
        self._t = 0
        self._pending: Optional[np.ndarray] = None
        self._fitted = False
        self._fit_count = 0
        self._last_fit_day = 0
        self._stage_seconds = {"features": 0.0, "refit": 0.0, "predict": 0.0}
        if self.frozen:
            self._load_params(artifact.params)
            self._fitted = True

    # ------------------------------------------------------------------
    # Model-state plumbing
    # ------------------------------------------------------------------
    def _alloc_model_state(self) -> None:
        B = self.batch_size
        if self.model == "ridge":
            self._mean = np.zeros((B, N_FEATURES), dtype=float)
            self._scale = np.ones((B, N_FEATURES), dtype=float)
            self._w = np.zeros((B, N_FEATURES), dtype=float)
            self._b = np.zeros(B, dtype=float)
        else:
            R = self.training.gbm_rounds
            self._gb_lr = self.training.gbm_learning_rate
            self._gb_base = np.zeros(B, dtype=float)
            self._gb_feat = np.zeros((B, R), dtype=np.int64)
            self._gb_thr = np.zeros((B, R), dtype=float)
            self._gb_left = np.zeros((B, R), dtype=float)
            self._gb_right = np.zeros((B, R), dtype=float)

    def _load_params(self, params: dict) -> None:
        """Broadcast one fitted param dict to every node (frozen mode)."""
        if params.get("kind") != self.model:
            raise ValueError(
                f"param dict is a {params.get('kind')!r} model; "
                f"kernel expects {self.model!r}"
            )
        if self.model == "ridge":
            self._mean[:] = params["mean"]
            self._scale[:] = params["scale"]
            self._w[:] = params["weights"]
            self._b[:] = params["intercept"]
        else:
            rounds = np.asarray(params["feat"]).shape[0]
            if rounds != self._gb_feat.shape[1]:
                # The artifact's round count wins; reallocate to match.
                self._gb_feat = np.zeros((self.batch_size, rounds), dtype=np.int64)
                self._gb_thr = np.zeros((self.batch_size, rounds), dtype=float)
                self._gb_left = np.zeros((self.batch_size, rounds), dtype=float)
                self._gb_right = np.zeros((self.batch_size, rounds), dtype=float)
            self._gb_base[:] = params["base"]
            self._gb_lr = float(params["learning_rate"])
            self._gb_feat[:] = params["feat"]
            self._gb_thr[:] = params["thr"]
            self._gb_left[:] = params["left"]
            self._gb_right[:] = params["right"]

    def _store_params(self, node: int, params: dict) -> None:
        """Write one node's freshly fitted params into the stacked state."""
        if self.model == "ridge":
            self._mean[node] = params["mean"]
            self._scale[node] = params["scale"]
            self._w[node] = params["weights"]
            self._b[node] = params["intercept"]
        else:
            self._gb_base[node] = params["base"]
            self._gb_lr = float(params["learning_rate"])
            self._gb_feat[node] = params["feat"]
            self._gb_thr[node] = params["thr"]
            self._gb_left[node] = params["left"]
            self._gb_right[node] = params["right"]

    def _store_params_batch(self, params: dict) -> None:
        """Write a stacked batch-fit result over every node at once."""
        if self.model == "ridge":
            self._mean[...] = params["mean"]
            self._scale[...] = params["scale"]
            self._w[...] = params["weights"]
            self._b[...] = params["intercept"]
        else:
            self._gb_base[...] = params["base"]
            self._gb_lr = float(params["learning_rate"])
            self._gb_feat[...] = params["feat"]
            self._gb_thr[...] = params["thr"]
            self._gb_left[...] = params["left"]
            self._gb_right[...] = params["right"]

    def _predict(self, feats: np.ndarray) -> np.ndarray:
        if self.model == "ridge":
            z = (feats - self._mean) / self._scale
            return (z * self._w).sum(axis=1) + self._b
        return score_stumps(
            np.take_along_axis(feats, self._gb_feat, axis=1),  # (B, R)
            self._gb_thr,
            self._gb_left,
            self._gb_right,
            self._gb_base,
            self._gb_lr,
        )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    @property
    def uses_slot_mean_feedback(self) -> bool:
        """True when evaluators should call :meth:`provide_slot_mean`."""
        return self.feedback == "slot_mean"

    @property
    def is_fitted(self) -> bool:
        """True once a model (online fit or frozen artifact) is active."""
        return self._fitted

    @property
    def fit_count(self) -> int:
        """Number of online refits performed since reset."""
        return self._fit_count

    @property
    def stage_seconds(self) -> dict:
        """Cumulative per-stage wall-clock since reset.

        ``features`` / ``refit`` / ``predict`` seconds spent inside
        :meth:`observe`, for the benchmark layer and the CLI's
        ``[parallel]`` stage breakdown.
        """
        return dict(self._stage_seconds)

    def provide_slot_mean(self, mean_watts: np.ndarray) -> None:
        """Report the just-finished slot's realized ``(B,)`` mean power.

        Called at a slot boundary, *before* ``observe`` for that
        boundary -- the same causal protocol as the adaptive selectors.
        """
        self._pending = as_batch(mean_watts, self.batch_size).copy()

    def reset(self) -> None:
        """Forget all history; a frozen kernel keeps its weights."""
        self._features.reset()
        if not self.frozen:
            self._X.fill(0.0)
            self._y.fill(0.0)
            self._alloc_model_state()
            self._fitted = False
        self._t = 0
        self._pending = None
        self._fit_count = 0
        self._last_fit_day = 0
        self._stage_seconds = {"features": 0.0, "refit": 0.0, "predict": 0.0}
        if self.frozen:
            self._load_params(self.artifact.params)

    def observe(self, values: np.ndarray) -> np.ndarray:
        values = as_batch(values, self.batch_size)
        # 1. Feedback: the realized reference for the prediction made at
        #    the previous boundary (slot mean when supplied, else this
        #    boundary's sample -- Eq. 7 vs Eq. 6 alignment).
        reference = values
        if self._pending is not None:
            reference = self._pending
            self._pending = None
        if not self.frozen and self._t > 0:
            self._y[(self._t - 1) % self._cap] = reference

        # 2. Features at this boundary (strictly causal).
        t0 = time.perf_counter()
        feats = self._features.step(values)
        t1 = time.perf_counter()
        self._stage_seconds["features"] += t1 - t0

        # 3. Training-window bookkeeping and the day-boundary refit.
        if not self.frozen:
            self._X[self._t % self._cap] = feats
            if (self._t + 1) % self.n_slots == 0:
                completed = (self._t + 1) // self.n_slots
                due = (
                    not self._fitted
                    or completed - self._last_fit_day >= self.training.refit_days
                )
                if completed >= self.training.min_train_days and due:
                    t0 = time.perf_counter()
                    self._refit(completed)
                    self._stage_seconds["refit"] += time.perf_counter() - t0

        # 4. Predict: fitted model, else the rule-based fallback.
        t0 = time.perf_counter()
        fallback = (
            self.fallback_alpha * values
            + (1.0 - self.fallback_alpha) * feats[:, IDX_MU_NEXT]
        )
        if self._fitted:
            pred = self._predict(feats)
            pred = np.where(np.isfinite(pred), pred, fallback)
        else:
            pred = fallback
        self._t += 1
        pred = np.maximum(pred, 0.0)
        self._stage_seconds["predict"] += time.perf_counter() - t0
        return pred

    def _refit(self, completed_days: int) -> None:
        """Refit every node on the trailing window (lock-step schedule).

        The just-pushed row has no realized reference yet, so the
        window is the last ``min(t, cap - 1)`` *closed* rows.  Every
        node reseeds its subsample generator from ``(seed, fit_index)``
        -- node-position-independent, so a ``B``-node kernel fits
        exactly what ``B`` separate scalar kernels would, and the
        batched engine can share one generator (and one subsample
        stream) across the whole stack.
        """
        count = min(self._t, self._cap - 1)
        if count <= 1:
            return
        order = np.arange(self._t - count, self._t) % self._cap
        Xw = self._X[order]
        yw = self._y[order]
        if self.engine == "loop":
            from repro.learn.reference import fit_model_reference

            for b in range(self.batch_size):
                rng = np.random.default_rng([self.training.seed, self._fit_count])
                params = fit_model_reference(
                    self.model, Xw[:, b, :], yw[:, b], self.training, rng
                )
                self._store_params(b, params)
        else:
            rng = np.random.default_rng([self.training.seed, self._fit_count])
            self._store_params_batch(
                fit_model_batch(self.model, Xw, yw, self.training, rng)
            )
        self._fitted = True
        self._fit_count += 1
        self._last_fit_day = completed_days

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = {
            "kind": "learned",
            "model": self.model,
            "n_slots": self.n_slots,
            "batch_size": self.batch_size,
            "feature_schema": FEATURE_SCHEMA_VERSION,
            "feature_config": self.features.to_dict(),
            "training": self.training.to_dict(),
            "frozen": self.frozen,
            "feedback": self.feedback,
            "t": self._t,
            "pending": None if self._pending is None else self._pending.copy(),
            "features": self._features.state_dict(),
            "fitted": self._fitted,
            "fit_count": self._fit_count,
            "last_fit_day": self._last_fit_day,
        }
        if not self.frozen:
            state["X"] = self._X.copy()
            state["y"] = self._y.copy()
        if self.model == "ridge":
            state["ridge"] = {
                "mean": self._mean.copy(),
                "scale": self._scale.copy(),
                "weights": self._w.copy(),
                "intercept": self._b.copy(),
            }
        else:
            state["gbm"] = {
                "base": self._gb_base.copy(),
                "learning_rate": float(getattr(self, "_gb_lr", self.training.gbm_learning_rate)),
                "feat": self._gb_feat.copy(),
                "thr": self._gb_thr.copy(),
                "left": self._gb_left.copy(),
                "right": self._gb_right.copy(),
            }
        return state

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != "learned":
            raise ValueError(
                f"snapshot is a {state.get('kind')!r} state, not a learned "
                "predictor checkpoint"
            )
        schema = state.get("feature_schema")
        if schema != FEATURE_SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint was written against feature-schema version "
                f"{schema}; this build computes feature-schema version "
                f"{FEATURE_SCHEMA_VERSION} -- the persisted features no "
                "longer mean what this code computes"
            )
        if (
            state.get("model") != self.model
            or int(state.get("n_slots", -1)) != self.n_slots
            or int(state.get("batch_size", -1)) != self.batch_size
        ):
            raise ValueError(
                f"snapshot is a {state.get('model')!r} kernel at "
                f"N={state.get('n_slots')} B={state.get('batch_size')}; "
                f"this kernel is {self.model!r} at N={self.n_slots} "
                f"B={self.batch_size}"
            )
        if bool(state.get("frozen")) != self.frozen:
            raise ValueError(
                "snapshot frozen/online mode does not match this kernel "
                f"(snapshot frozen={bool(state.get('frozen'))}, "
                f"kernel frozen={self.frozen})"
            )
        if state.get("feature_config") != self.features.to_dict():
            raise ValueError(
                "snapshot feature config differs from this kernel's; "
                "construct the kernel with the checkpoint's configuration"
            )
        if state.get("training") != self.training.to_dict():
            raise ValueError(
                "snapshot training config differs from this kernel's; "
                "construct the kernel with the checkpoint's configuration"
            )
        self._features.load_state_dict(state["features"])
        self._t = int(state["t"])
        pending = state.get("pending")
        self._pending = None if pending is None else np.asarray(pending, dtype=float).copy()
        self._fitted = bool(state["fitted"])
        self._fit_count = int(state["fit_count"])
        self._last_fit_day = int(state["last_fit_day"])
        if not self.frozen:
            X = np.asarray(state["X"], dtype=float)
            y = np.asarray(state["y"], dtype=float)
            if X.shape != self._X.shape or y.shape != self._y.shape:
                raise ValueError(
                    f"snapshot training window has shapes {X.shape}/{y.shape}; "
                    f"expected {self._X.shape}/{self._y.shape}"
                )
            self._X[...] = X
            self._y[...] = y
        if self.model == "ridge":
            saved = state["ridge"]
            self._mean[...] = saved["mean"]
            self._scale[...] = saved["scale"]
            self._w[...] = saved["weights"]
            self._b[...] = saved["intercept"]
        else:
            saved = state["gbm"]
            feat = np.asarray(saved["feat"], dtype=np.int64)
            if feat.shape != self._gb_feat.shape:
                raise ValueError(
                    f"snapshot stump arrays have shape {feat.shape}; "
                    f"expected {self._gb_feat.shape}"
                )
            self._gb_base[...] = saved["base"]
            self._gb_lr = float(saved["learning_rate"])
            self._gb_feat[...] = feat
            self._gb_thr[...] = saved["thr"]
            self._gb_left[...] = saved["left"]
            self._gb_right[...] = saved["right"]


class LearnedPredictor(OnlinePredictor):
    """Scalar face of :class:`LearnedKernel` (one node, same arithmetic).

    Accepts every kernel keyword; ``make_predictor("ridge", N, ...)``
    and ``make_predictor("gbm", N, ...)`` build these.
    """

    def __init__(self, n_slots: int, model: Optional[str] = None, **kwargs):
        self._kernel = LearnedKernel(n_slots, batch_size=1, model=model, **kwargs)
        self.n_slots = n_slots
        self._buf = np.zeros(1, dtype=float)

    # Delegated surface ------------------------------------------------
    @property
    def model(self) -> str:
        """Model kind (``ridge`` / ``gbm``)."""
        return self._kernel.model

    @property
    def frozen(self) -> bool:
        """True when serving a fitted artifact (no online refits)."""
        return self._kernel.frozen

    @property
    def is_fitted(self) -> bool:
        """True once a model (online fit or frozen artifact) is active."""
        return self._kernel.is_fitted

    @property
    def fit_count(self) -> int:
        """Number of online refits performed since reset."""
        return self._kernel.fit_count

    @property
    def uses_slot_mean_feedback(self) -> bool:
        """True when evaluators should call :meth:`provide_slot_mean`."""
        return self._kernel.uses_slot_mean_feedback

    def provide_slot_mean(self, mean_watts: float) -> None:
        """Report the just-finished slot's realized mean power."""
        self._kernel.provide_slot_mean(np.array([float(mean_watts)]))

    def reset(self) -> None:
        self._kernel.reset()

    def observe(self, value: float) -> float:
        self._buf[0] = value
        return float(self._kernel.observe(self._buf)[0])

    def state_dict(self) -> dict:
        return self._kernel.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self._kernel.load_state_dict(state)
