"""Seeded trainable models for the learned predictor tier (numpy only).

Two model families, both deliberately small and fully deterministic:

* :func:`fit_ridge` -- a deterministic standardizer (zero-variance
  columns get unit scale instead of dividing by zero) followed by a
  closed-form ridge regression via the normal equations.  No iteration,
  no randomness: byte-identical weights for identical inputs.
* :func:`fit_gbm` -- gradient-boosted regression stumps on the raw
  features (stumps are scale-invariant, so no standardizer).  Each
  round greedily picks the (feature, quantile-threshold) split with the
  best squared-error gain over an optionally subsampled row set; ties
  break toward the lowest (feature, threshold) index and the subsample
  comes from a caller-supplied ``numpy`` Generator, so training is a
  pure function of ``(X, y, config, seed)`` -- independent of process,
  platform hash seed, or dict order.

Model parameters are plain dicts of numpy arrays/scalars with a
``kind`` tag, built in a fixed key order so pickled artifacts are
byte-stable; :func:`predict_model` scores a whole ``(n, F)`` matrix and
is what offline evaluation uses, while the online kernel keeps stacked
per-node copies of the same arrays for batched prediction.

**Batched training kernels.**  :func:`fit_ridge_batch` and
:func:`fit_gbm_batch` fit ``B`` independent nodes from one stacked
``(n, B, F)`` / ``(n, B)`` training window in a single pass: batched
normal equations through ``np.linalg.solve`` over ``(B, F, F)``, and a
cross-node stump search whose per-round ``(B, F, n_sub, Q)`` split-gain
tensor is reduced by one stacked gufunc matmul.  Both are pinned
*bitwise* against the frozen scalar loops in
:mod:`repro.learn.reference` -- split selection is an argmax over
gains, so "close" is not good enough; every stacked operation here is
one whose per-slice reduction order provably matches the scalar code
path (in particular: means are taken over contiguous rows, matmul core
slices keep the reference ``(n, Q)`` shape, and the residual subset is
gathered rather than zero-padded).  The scalar :func:`fit_gbm` is the
``B == 1`` face of the batched kernel, which is what vectorizes its
per-feature split-search loop too.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

import numpy as np

__all__ = [
    "MODEL_KINDS",
    "GBM_FULL_BATCH_BUDGET",
    "TrainingConfig",
    "fit_standardizer",
    "fit_ridge",
    "fit_gbm",
    "fit_model",
    "fit_ridge_batch",
    "fit_gbm_batch",
    "fit_model_batch",
    "unstack_params",
    "score_stumps",
    "predict_model",
]

#: Largest per-round split-mask tensor (bool elements, ``B*F*n_sub*Q``)
#: the GBM batch kernel materialises across all nodes at once.  Above
#: it the kernel switches to a per-node F-stacked formulation -- both
#: are bitwise-identical to the reference loop, so the switch is purely
#: a working-set/perf knob: full-batch wins when the tensor fits cache
#: (small windows, the fleet refit shape), per-node streaming wins on
#: steady-state 60-day windows.
GBM_FULL_BATCH_BUDGET = 16_000_000

#: Registered learned-model kinds (registry names match).
MODEL_KINDS = ("ridge", "gbm")


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the training loop and both model families.

    One config covers both kinds so a persisted artifact or predictor
    checkpoint records everything that shaped its weights.
    """

    min_train_days: int = 8     # complete days before the first online fit
    refit_days: int = 5         # days between online refits
    window_days: int = 60       # training window kept by the online kernel
    ridge_lambda: float = 1e-3  # L2 strength (per-row, standardized X)
    gbm_rounds: int = 50
    gbm_learning_rate: float = 0.12
    gbm_thresholds: int = 15    # quantile split candidates per feature
    gbm_subsample: float = 0.8  # row fraction per round (1.0 = all rows)
    gbm_min_leaf: int = 8       # minimum rows on each side of a split
    seed: int = 0

    def __post_init__(self):
        if self.min_train_days < 1:
            raise ValueError("min_train_days must be >= 1")
        if self.refit_days < 1:
            raise ValueError("refit_days must be >= 1")
        if self.window_days < self.min_train_days:
            raise ValueError("window_days must be >= min_train_days")
        if self.ridge_lambda < 0:
            raise ValueError("ridge_lambda must be non-negative")
        if self.gbm_rounds < 1:
            raise ValueError("gbm_rounds must be >= 1")
        if self.gbm_learning_rate <= 0:
            raise ValueError("gbm_learning_rate must be positive")
        if self.gbm_thresholds < 1:
            raise ValueError("gbm_thresholds must be >= 1")
        if not 0.0 < self.gbm_subsample <= 1.0:
            raise ValueError("gbm_subsample must be in (0, 1]")
        if self.gbm_min_leaf < 1:
            raise ValueError("gbm_min_leaf must be >= 1")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        """Plain-scalar form, field order fixed by the dataclass."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrainingConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown training-config keys: {unknown}")
        return cls(**data)


def fit_standardizer(X: np.ndarray):
    """Per-column ``(mean, scale)``; zero-variance columns get scale 1.

    The unit fallback keeps constant columns (night slots, unfired
    quality flags) finite under transform instead of producing NaNs.
    """
    X = np.asarray(X, dtype=float)
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    scale = np.where(std > 1e-12, std, 1.0)
    return mean, scale


def fit_ridge(X: np.ndarray, y: np.ndarray, lam: float) -> dict:
    """Closed-form ridge on standardized features; returns a param dict.

    Solves ``(Xs^T Xs + lam * n * I) w = Xs^T (y - ybar)`` with ``Xs``
    standardized, so ``lam`` is a per-row penalty independent of the
    training-set size, and the intercept (``ybar``) is unpenalised.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, n_features = X.shape
    mean, scale = fit_standardizer(X)
    Xs = (X - mean) / scale
    ybar = float(y.mean())
    # lam=0 on collinear features would be singular; the per-row ridge
    # term keeps the system positive definite for any lam > 0.
    reg = max(lam, 1e-10) * n
    gram = Xs.T @ Xs + reg * np.eye(n_features)
    weights = np.linalg.solve(gram, Xs.T @ (y - ybar))
    return {
        "kind": "ridge",
        "mean": mean,
        "scale": scale,
        "weights": weights,
        "intercept": ybar,
    }


def fit_gbm(
    X: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Gradient-boosted regression stumps; returns a param dict.

    The stump arrays always have length ``config.gbm_rounds``: rounds
    that find no admissible split (degenerate/constant data) append a
    neutral stump (``left == right == 0``), so stacked per-node arrays
    in the fleet kernel stay rectangular.

    This is the ``B == 1`` face of :func:`fit_gbm_batch`, so the split
    search runs one vectorized gain tensor per round instead of a
    per-feature Python loop -- bitwise-identical to the frozen loop in
    :func:`repro.learn.reference.fit_gbm_reference`.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    params = fit_gbm_batch(X[:, None, :], y[:, None], config, rng=rng)
    return {
        "kind": "gbm",
        "base": float(params["base"][0]),
        "learning_rate": params["learning_rate"],
        "feat": params["feat"][0].copy(),
        "thr": params["thr"][0].copy(),
        "left": params["left"][0].copy(),
        "right": params["right"][0].copy(),
    }


def fit_ridge_batch(X: np.ndarray, y: np.ndarray, lam: float) -> dict:
    """Fit ``B`` independent ridge models from one stacked window.

    ``X`` is ``(n, B, F)``, ``y`` is ``(n, B)``; the result dict holds
    the same keys as :func:`fit_ridge` with a leading node axis
    (``mean``/``scale``/``weights`` are ``(B, F)``, ``intercept`` is
    ``(B,)``).  One batched normal-equation solve over ``(B, F, F)``
    replaces ``B`` scalar solves, bitwise-identically: the gram/rhs
    gemms run on contiguous per-node slices of the reference shapes and
    ``ybar`` is reduced over contiguous rows (a stacked column mean
    would change the pairwise summation grouping).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, B, n_features = X.shape
    mean = X.mean(axis=0)  # (B, F)
    std = X.std(axis=0)
    scale = np.where(std > 1e-12, std, 1.0)
    Xs = (X - mean[None, :, :]) / scale[None, :, :]
    ybar = np.ascontiguousarray(y.T).mean(axis=1)  # (B,)
    reg = max(lam, 1e-10) * n
    Xs_b = np.ascontiguousarray(Xs.transpose(1, 0, 2))  # (B, n, F)
    gram = np.matmul(Xs_b.transpose(0, 2, 1), Xs_b) + reg * np.eye(n_features)
    rhs = np.ascontiguousarray((y - ybar[None, :]).T)[:, :, None]  # (B, n, 1)
    weights = np.linalg.solve(
        gram, np.matmul(Xs_b.transpose(0, 2, 1), rhs)
    )[:, :, 0]
    return {
        "kind": "ridge",
        "mean": mean,
        "scale": scale,
        "weights": weights,
        "intercept": ybar,
    }


def fit_gbm_batch(
    X: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Fit ``B`` independent GBMs from one stacked window.

    ``X`` is ``(n, B, F)``, ``y`` is ``(n, B)``; the result dict holds
    the same keys as :func:`fit_gbm` with a leading node axis (``base``
    is ``(B,)``, the stump arrays are ``(B, rounds)``).

    The per-fit subsample stream is node-position-independent (the
    online kernel reseeds every node from ``(seed, fit_index)``), so
    one shared ``idx`` per round reproduces what ``B`` per-node
    generators would draw, and the whole round reduces to one stacked
    mask build + count + gufunc matmul.  Nodes stop splitting
    independently: a node whose best gain is not positive goes
    permanently inactive (monotone, like the reference ``break``) and
    its remaining stumps stay neutral zeros, which also makes its
    residual update an exact no-op.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, B, n_features = X.shape
    rounds = config.gbm_rounds
    lr = config.gbm_learning_rate
    min_leaf = config.gbm_min_leaf
    n_thresholds = config.gbm_thresholds

    base = np.ascontiguousarray(y.T).mean(axis=1)  # (B,)
    residual = y - base[None, :]

    # Split candidates: interior quantiles of each feature, fixed once
    # over the full training set (subsampling varies rows, not splits).
    qs = np.arange(1, n_thresholds + 1) / (n_thresholds + 1)
    thr_bf = np.ascontiguousarray(
        np.quantile(X, qs, axis=0).transpose(1, 2, 0)
    )  # (B, F, Q)

    feat = np.zeros((B, rounds), dtype=np.int64)
    thr = np.zeros((B, rounds), dtype=float)
    left = np.zeros((B, rounds), dtype=float)
    right = np.zeros((B, rounds), dtype=float)

    n_sub = n
    if config.gbm_subsample < 1.0 and rng is not None:
        n_sub = max(2 * min_leaf, int(n * config.gbm_subsample + 0.5))
        n_sub = min(n_sub, n)

    full_batch = B * n_features * n_sub * n_thresholds <= GBM_FULL_BATCH_BUDGET
    active = np.ones(B, dtype=bool)
    nodes = np.arange(B)
    n_left = np.zeros((B, n_features, n_thresholds), dtype=np.int64)
    s_left = np.zeros((B, n_features, n_thresholds), dtype=float)

    with np.errstate(divide="ignore", invalid="ignore"):
        for r in range(rounds):
            if n_sub < n:
                idx = np.sort(rng.choice(n, size=n_sub, replace=False))
                Xr, rr = X[idx], residual[idx]
            else:
                Xr, rr = X, residual
            rrT = np.ascontiguousarray(rr.T)  # (B, n_sub)
            r_total = rrT.sum(axis=1)  # (B,) == per-node rr.sum()
            Xr_t = Xr.transpose(1, 2, 0)  # (B, F, n_sub) view
            if full_batch:
                # One stacked (B, F, n_sub, Q) mask; the matmul's core
                # slices are the reference (1, n_sub) @ (n_sub, Q).
                mask = Xr_t[:, :, :, None] <= thr_bf[:, :, None, :]
                n_left = mask.sum(axis=2)
                s_left = np.matmul(rrT[:, None, None, :], mask)[:, :, 0, :]
            else:
                for b in range(B):
                    if not active[b]:
                        continue
                    mask_b = Xr_t[b][:, :, None] <= thr_bf[b][:, None, :]
                    n_left[b] = mask_b.sum(axis=1)
                    s_left[b] = np.matmul(rrT[b], mask_b)  # (F, Q)
            n_right = n_sub - n_left
            ok = (n_left >= min_leaf) & (n_right >= min_leaf)
            s_right = r_total[:, None, None] - s_left
            gain = np.where(
                ok,
                s_left**2 / np.maximum(n_left, 1)
                + s_right**2 / np.maximum(n_right, 1),
                -np.inf,
            )
            # First-occurrence argmax over the flattened (F, Q) grid is
            # exactly the reference tie-break: lowest feature, then
            # lowest threshold index; acceptance is a strictly positive
            # gain, as in the reference's ``best_gain = 0.0`` start.
            pick = np.argmax(gain.reshape(B, -1), axis=1)
            f_pick = pick // n_thresholds
            q_pick = pick - f_pick * n_thresholds
            best_val = gain[nodes, f_pick, q_pick]
            active &= best_val > 0.0
            if not active.any():
                break  # every node's remaining stumps stay neutral
            sel_n_left = n_left[nodes, f_pick, q_pick]
            sel_s_left = s_left[nodes, f_pick, q_pick]
            feat[:, r] = np.where(active, f_pick, 0)
            thr[:, r] = np.where(active, thr_bf[nodes, f_pick, q_pick], 0.0)
            left[:, r] = np.where(active, sel_s_left / sel_n_left, 0.0)
            right[:, r] = np.where(
                active,
                (r_total - sel_s_left) / (n_sub - sel_n_left),
                0.0,
            )
            vals = X[:, nodes, feat[:, r]]  # (n, B)
            step = np.where(
                vals <= thr[None, :, r], left[None, :, r], right[None, :, r]
            )
            residual = residual - lr * step

    return {
        "kind": "gbm",
        "base": base,
        "learning_rate": lr,
        "feat": feat,
        "thr": thr,
        "left": left,
        "right": right,
    }


def fit_model(
    kind: str,
    X: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Dispatch to the model family's fit function."""
    if kind == "ridge":
        return fit_ridge(X, y, config.ridge_lambda)
    if kind == "gbm":
        return fit_gbm(X, y, config, rng=rng)
    raise ValueError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")


def fit_model_batch(
    kind: str,
    X: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Dispatch to the model family's stacked ``(n, B, F)`` fit kernel."""
    if kind == "ridge":
        return fit_ridge_batch(X, y, config.ridge_lambda)
    if kind == "gbm":
        return fit_gbm_batch(X, y, config, rng=rng)
    raise ValueError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")


def unstack_params(params: dict, node: int = 0) -> dict:
    """One node's scalar param dict out of a stacked batch-fit result.

    The returned dict is key-for-key and bitwise what the scalar fit
    functions produce for that node's column, so artifacts built
    through the batched path digest identically to loop-trained ones.
    """
    kind = params["kind"]
    if kind == "ridge":
        return {
            "kind": "ridge",
            "mean": params["mean"][node].copy(),
            "scale": params["scale"][node].copy(),
            "weights": params["weights"][node].copy(),
            "intercept": float(params["intercept"][node]),
        }
    if kind == "gbm":
        return {
            "kind": "gbm",
            "base": float(params["base"][node]),
            "learning_rate": params["learning_rate"],
            "feat": params["feat"][node].copy(),
            "thr": params["thr"][node].copy(),
            "left": params["left"][node].copy(),
            "right": params["right"][node].copy(),
        }
    raise ValueError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")


def score_stumps(
    vals: np.ndarray,
    thr: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    base,
    learning_rate: float,
) -> np.ndarray:
    """The GBM stump walk shared by every scoring path.

    ``vals`` holds each row's gathered split-feature values against
    per-round thresholds/leaves (all ``(..., rounds)``, broadcastable);
    ``base`` is a scalar or one value per leading row.  Offline scoring
    (:func:`predict_model`) and the online kernel's stacked per-node
    prediction both reduce to exactly this compare/select/sum.
    """
    steps = np.where(vals <= thr, left, right)
    return base + learning_rate * steps.sum(axis=-1)


def predict_model(params: dict, X: np.ndarray) -> np.ndarray:
    """Score an ``(n, F)`` feature matrix with a fitted param dict."""
    X = np.asarray(X, dtype=float)
    kind = params["kind"]
    if kind == "ridge":
        Xs = (X - params["mean"]) / params["scale"]
        return Xs @ params["weights"] + params["intercept"]
    if kind == "gbm":
        return score_stumps(
            X[:, params["feat"]],  # (n, R)
            params["thr"],
            params["left"],
            params["right"],
            params["base"],
            params["learning_rate"],
        )
    raise ValueError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")
