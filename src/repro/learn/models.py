"""Seeded trainable models for the learned predictor tier (numpy only).

Two model families, both deliberately small and fully deterministic:

* :func:`fit_ridge` -- a deterministic standardizer (zero-variance
  columns get unit scale instead of dividing by zero) followed by a
  closed-form ridge regression via the normal equations.  No iteration,
  no randomness: byte-identical weights for identical inputs.
* :func:`fit_gbm` -- gradient-boosted regression stumps on the raw
  features (stumps are scale-invariant, so no standardizer).  Each
  round greedily picks the (feature, quantile-threshold) split with the
  best squared-error gain over an optionally subsampled row set; ties
  break toward the lowest (feature, threshold) index and the subsample
  comes from a caller-supplied ``numpy`` Generator, so training is a
  pure function of ``(X, y, config, seed)`` -- independent of process,
  platform hash seed, or dict order.

Model parameters are plain dicts of numpy arrays/scalars with a
``kind`` tag, built in a fixed key order so pickled artifacts are
byte-stable; :func:`predict_model` scores a whole ``(n, F)`` matrix and
is what offline evaluation uses, while the online kernel keeps stacked
per-node copies of the same arrays for batched prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

import numpy as np

__all__ = [
    "MODEL_KINDS",
    "TrainingConfig",
    "fit_standardizer",
    "fit_ridge",
    "fit_gbm",
    "fit_model",
    "predict_model",
]

#: Registered learned-model kinds (registry names match).
MODEL_KINDS = ("ridge", "gbm")


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the training loop and both model families.

    One config covers both kinds so a persisted artifact or predictor
    checkpoint records everything that shaped its weights.
    """

    min_train_days: int = 8     # complete days before the first online fit
    refit_days: int = 5         # days between online refits
    window_days: int = 60       # training window kept by the online kernel
    ridge_lambda: float = 1e-3  # L2 strength (per-row, standardized X)
    gbm_rounds: int = 50
    gbm_learning_rate: float = 0.12
    gbm_thresholds: int = 15    # quantile split candidates per feature
    gbm_subsample: float = 0.8  # row fraction per round (1.0 = all rows)
    gbm_min_leaf: int = 8       # minimum rows on each side of a split
    seed: int = 0

    def __post_init__(self):
        if self.min_train_days < 1:
            raise ValueError("min_train_days must be >= 1")
        if self.refit_days < 1:
            raise ValueError("refit_days must be >= 1")
        if self.window_days < self.min_train_days:
            raise ValueError("window_days must be >= min_train_days")
        if self.ridge_lambda < 0:
            raise ValueError("ridge_lambda must be non-negative")
        if self.gbm_rounds < 1:
            raise ValueError("gbm_rounds must be >= 1")
        if self.gbm_learning_rate <= 0:
            raise ValueError("gbm_learning_rate must be positive")
        if self.gbm_thresholds < 1:
            raise ValueError("gbm_thresholds must be >= 1")
        if not 0.0 < self.gbm_subsample <= 1.0:
            raise ValueError("gbm_subsample must be in (0, 1]")
        if self.gbm_min_leaf < 1:
            raise ValueError("gbm_min_leaf must be >= 1")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        """Plain-scalar form, field order fixed by the dataclass."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrainingConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown training-config keys: {unknown}")
        return cls(**data)


def fit_standardizer(X: np.ndarray):
    """Per-column ``(mean, scale)``; zero-variance columns get scale 1.

    The unit fallback keeps constant columns (night slots, unfired
    quality flags) finite under transform instead of producing NaNs.
    """
    X = np.asarray(X, dtype=float)
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    scale = np.where(std > 1e-12, std, 1.0)
    return mean, scale


def fit_ridge(X: np.ndarray, y: np.ndarray, lam: float) -> dict:
    """Closed-form ridge on standardized features; returns a param dict.

    Solves ``(Xs^T Xs + lam * n * I) w = Xs^T (y - ybar)`` with ``Xs``
    standardized, so ``lam`` is a per-row penalty independent of the
    training-set size, and the intercept (``ybar``) is unpenalised.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, n_features = X.shape
    mean, scale = fit_standardizer(X)
    Xs = (X - mean) / scale
    ybar = float(y.mean())
    # lam=0 on collinear features would be singular; the per-row ridge
    # term keeps the system positive definite for any lam > 0.
    reg = max(lam, 1e-10) * n
    gram = Xs.T @ Xs + reg * np.eye(n_features)
    weights = np.linalg.solve(gram, Xs.T @ (y - ybar))
    return {
        "kind": "ridge",
        "mean": mean,
        "scale": scale,
        "weights": weights,
        "intercept": ybar,
    }


def fit_gbm(
    X: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Gradient-boosted regression stumps; returns a param dict.

    The stump arrays always have length ``config.gbm_rounds``: rounds
    that find no admissible split (degenerate/constant data) append a
    neutral stump (``left == right == 0``), so stacked per-node arrays
    in the fleet kernel stay rectangular.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, n_features = X.shape
    rounds = config.gbm_rounds
    lr = config.gbm_learning_rate
    min_leaf = config.gbm_min_leaf

    base = float(y.mean())
    residual = y - base

    # Split candidates: interior quantiles of each feature, fixed once
    # over the full training set (subsampling varies rows, not splits).
    qs = np.arange(1, config.gbm_thresholds + 1) / (config.gbm_thresholds + 1)
    thresholds = np.quantile(X, qs, axis=0)  # (Q, F)

    feat = np.zeros(rounds, dtype=np.int64)
    thr = np.zeros(rounds, dtype=float)
    left = np.zeros(rounds, dtype=float)
    right = np.zeros(rounds, dtype=float)

    n_sub = n
    if config.gbm_subsample < 1.0 and rng is not None:
        n_sub = max(2 * min_leaf, int(n * config.gbm_subsample + 0.5))
        n_sub = min(n_sub, n)

    for r in range(rounds):
        if n_sub < n:
            idx = np.sort(rng.choice(n, size=n_sub, replace=False))
            Xr, rr = X[idx], residual[idx]
        else:
            Xr, rr = X, residual
        r_total = rr.sum()
        best_gain = 0.0
        best = None
        for f in range(n_features):
            mask = Xr[:, f, None] <= thresholds[None, :, f]  # (n_sub, Q)
            n_left = mask.sum(axis=0)
            n_right = n_sub - n_left
            ok = (n_left >= min_leaf) & (n_right >= min_leaf)
            if not ok.any():
                continue
            s_left = rr @ mask
            s_right = r_total - s_left
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = np.where(
                    ok,
                    s_left**2 / np.maximum(n_left, 1)
                    + s_right**2 / np.maximum(n_right, 1),
                    -np.inf,
                )
            q = int(np.argmax(gain))  # first max -> lowest threshold index
            if gain[q] > best_gain:
                best_gain = float(gain[q])
                best = (
                    f,
                    float(thresholds[q, f]),
                    float(s_left[q] / n_left[q]),
                    float(s_right[q] / n_right[q]),
                )
        if best is None:
            break  # remaining stumps stay neutral (zeros)
        feat[r], thr[r], left[r], right[r] = best
        step = np.where(X[:, feat[r]] <= thr[r], left[r], right[r])
        residual = residual - lr * step

    return {
        "kind": "gbm",
        "base": base,
        "learning_rate": lr,
        "feat": feat,
        "thr": thr,
        "left": left,
        "right": right,
    }


def fit_model(
    kind: str,
    X: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Dispatch to the model family's fit function."""
    if kind == "ridge":
        return fit_ridge(X, y, config.ridge_lambda)
    if kind == "gbm":
        return fit_gbm(X, y, config, rng=rng)
    raise ValueError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")


def predict_model(params: dict, X: np.ndarray) -> np.ndarray:
    """Score an ``(n, F)`` feature matrix with a fitted param dict."""
    X = np.asarray(X, dtype=float)
    kind = params["kind"]
    if kind == "ridge":
        Xs = (X - params["mean"]) / params["scale"]
        return Xs @ params["weights"] + params["intercept"]
    if kind == "gbm":
        vals = X[:, params["feat"]]  # (n, R)
        steps = np.where(vals <= params["thr"], params["left"], params["right"])
        return params["base"] + params["learning_rate"] * steps.sum(axis=1)
    raise ValueError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")
