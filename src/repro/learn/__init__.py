"""Learned predictor tier: engineered features, seeded models, artifacts.

The train/serve split in one package:

* :mod:`repro.learn.features` -- one incremental, batched feature
  builder shared verbatim by training and serving.
* :mod:`repro.learn.models` -- deterministic standardizer + closed-form
  ridge, and seeded gradient-boosted stumps (numpy only).
* :mod:`repro.learn.predictor` -- the models behind the standard
  :class:`~repro.core.base.OnlinePredictor` /
  :class:`~repro.core.base.VectorPredictor` protocols (online
  self-fitting or frozen-artifact serving).
* :mod:`repro.learn.training` -- offline ``fit()`` producing a
  versioned :class:`~repro.learn.artifact.ModelArtifact`.
* :mod:`repro.learn.artifact` -- atomic, schema-validated persistence
  (the :class:`~repro.serve.state.StateStore` envelope pattern).
"""

from repro.learn.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ArtifactError,
    ArtifactStore,
    ModelArtifact,
)
from repro.learn.features import (
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    N_FEATURES,
    FeatureConfig,
    FeatureState,
)
from repro.learn.models import (
    MODEL_KINDS,
    TrainingConfig,
    fit_gbm,
    fit_model,
    fit_ridge,
    fit_standardizer,
    predict_model,
)
from repro.learn.predictor import LearnedKernel, LearnedPredictor
from repro.learn.training import build_training_set, fit_artifact

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactStore",
    "ModelArtifact",
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "N_FEATURES",
    "FeatureConfig",
    "FeatureState",
    "MODEL_KINDS",
    "TrainingConfig",
    "fit_gbm",
    "fit_model",
    "fit_ridge",
    "fit_standardizer",
    "predict_model",
    "LearnedKernel",
    "LearnedPredictor",
    "build_training_set",
    "fit_artifact",
]
