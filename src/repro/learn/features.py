"""Causal feature engineering for the learned predictor tier.

Every learned model in :mod:`repro.learn` consumes the same feature
vector, produced by one incremental builder (:class:`FeatureState`) that
is shared verbatim between offline training and online serving -- the
train/serve split cannot drift because there is only one implementation.
At each slot boundary ``t`` the builder ingests the start-of-slot sample
and emits the row of engineered features available *at* that boundary
(strictly causal: nothing after ``t`` is read), batched over ``B``
lock-step nodes exactly like :class:`~repro.core.base.VectorPredictor`.

The feature families mirror what ha-solar-forecast-ml engineers around
the same problem, grounded in this repo's own machinery:

* **Lags** -- the current and two previous boundary samples.
* **Day history** -- the same slot and the *next* slot (the prediction
  target's slot, WCMA's ``mu_D(n+1)``) on previous days, single-day
  lags plus a ``mu_days``-day mean via
  :class:`~repro.core.base.FleetDayHistory`.
* **Rolling statistics** -- mean/std of the last ``rolling_window``
  samples.
* **Clear-sky geometry** -- Haurwitz clear-sky GHI at the current and
  next slot for the day of year (:func:`repro.solar.clearsky.clearsky_profile`),
  the clear-sky index of the current sample, and the day-of-year
  sin/cos pair.
* **Quality flags** -- causal spike / dropout / stuck indicators using
  the ingest layer's thresholds (:mod:`repro.solar.ingest.quality`), so
  a model can learn to distrust a defective sensor reading.

``FEATURE_SCHEMA_VERSION`` stamps every persisted
:class:`~repro.learn.artifact.ModelArtifact` and every predictor
checkpoint; loaders refuse a schema they were not built for (adding,
removing or reordering features must bump it).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

import numpy as np

from repro.core.base import FleetDayHistory
from repro.solar.clearsky import clearsky_profile

__all__ = [
    "FEATURE_SCHEMA_VERSION",
    "FEATURE_NAMES",
    "N_FEATURES",
    "FeatureConfig",
    "FeatureState",
]

#: Bump whenever :data:`FEATURE_NAMES` or any feature's definition
#: changes; artifact and checkpoint loaders reject other versions.
FEATURE_SCHEMA_VERSION = 1

#: Column order of every feature matrix, fixed by the schema version.
FEATURE_NAMES = (
    "value",          # e(t), the start-of-slot sample
    "lag1",           # e(t-1)
    "lag2",           # e(t-2)
    "prev_day_same",  # slot s on the most recent complete day
    "prev_day_next",  # slot s+1 on the most recent complete day
    "prev2_day_next",  # slot s+1 two complete days back
    "mu_same",        # mean of slot s over the last mu_days complete days
    "mu_next",        # mean of slot s+1 over the last mu_days complete days
    "clearsky_now",   # clear-sky GHI at slot s for the day of year
    "clearsky_next",  # clear-sky GHI at slot s+1
    "csi",            # e(t) / clearsky_now, clipped (clear-sky index)
    "roll_mean",      # mean of the last rolling_window samples
    "roll_std",       # population std of the last rolling_window samples
    "doy_sin",        # sin(2 pi doy / 365)
    "doy_cos",        # cos(2 pi doy / 365)
    "flag_spike",     # e(t) above the physical plausibility ceiling
    "flag_dropout",   # >= dropout_slots consecutive zeros in daylight
    "flag_stuck",     # e(t) == e(t-1) != 0 (frozen sensor)
)

N_FEATURES = len(FEATURE_NAMES)

# Column indices used by the predictor's rule-based fallback.
IDX_VALUE = FEATURE_NAMES.index("value")
IDX_MU_NEXT = FEATURE_NAMES.index("mu_next")


@dataclass(frozen=True)
class FeatureConfig:
    """Hyper-parameters of the feature builder (all plain scalars).

    The defaults reuse the ingest layer's quality thresholds
    (``spike_wm2``) and a mid-latitude clear-sky geometry; traces carry
    no latitude, so ``latitude_deg`` is a modelling choice, not
    metadata, and is persisted inside every artifact.
    """

    mu_days: int = 7
    rolling_window: int = 6
    latitude_deg: float = 40.0
    start_day_of_year: int = 1
    clearsky_model: str = "haurwitz"
    spike_wm2: float = 1500.0
    dropout_slots: int = 3
    night_wm2: float = 50.0
    csi_floor_wm2: float = 25.0

    def __post_init__(self):
        if self.mu_days < 2:
            raise ValueError("mu_days must be >= 2 (day-lag features need 2 days)")
        if self.rolling_window < 2:
            raise ValueError("rolling_window must be >= 2")
        if self.dropout_slots < 1:
            raise ValueError("dropout_slots must be >= 1")
        if not 1 <= self.start_day_of_year <= 365:
            raise ValueError("start_day_of_year must be in [1, 365]")

    def to_dict(self) -> Dict[str, object]:
        """Plain-scalar form, field order fixed by the dataclass."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FeatureConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown feature-config keys: {unknown}")
        return cls(**data)


class FeatureState:
    """Incremental, batched builder of one feature row per boundary.

    ``step`` is O(B x features) per boundary; the caller owns any
    accumulation of the emitted rows (the online predictor keeps a
    training window, offline training keeps the whole trace).
    """

    def __init__(self, n_slots: int, batch_size: int, config: Optional[FeatureConfig] = None):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.n_slots = n_slots
        self.batch_size = batch_size
        self.config = config if config is not None else FeatureConfig()
        depth = max(self.config.mu_days, 2)
        self._hist = FleetDayHistory(n_slots, depth, batch_size)
        self._roll = np.zeros((self.config.rolling_window, batch_size), dtype=float)
        self._prev1 = np.zeros(batch_size, dtype=float)
        self._prev2 = np.zeros(batch_size, dtype=float)
        self._zero_run = np.zeros(batch_size, dtype=np.int64)
        self._t = 0
        self._profiles: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def boundaries_seen(self) -> int:
        """Slot boundaries ingested so far."""
        return self._t

    @property
    def complete_days(self) -> int:
        """Fully observed days ingested so far (uncapped)."""
        return self._hist.total_days_completed

    def _profile_for(self, day_of_year: int) -> np.ndarray:
        profile = self._profiles.get(day_of_year)
        if profile is None:
            profile = clearsky_profile(
                self.config.latitude_deg,
                day_of_year,
                self.n_slots,
                model=self.config.clearsky_model,
            )
            self._profiles[day_of_year] = profile
        return profile

    def step(self, values: np.ndarray) -> np.ndarray:
        """Ingest one boundary's ``(B,)`` samples; return ``(B, F)`` features."""
        cfg = self.config
        t = self._t
        slot = t % self.n_slots
        day = t // self.n_slots
        doy = (cfg.start_day_of_year - 1 + day) % 365 + 1
        profile = self._profile_for(doy)
        cs_now = float(profile[slot])
        cs_next = float(profile[(slot + 1) % self.n_slots])

        lag1 = self._prev1 if t >= 1 else values
        lag2 = self._prev2 if t >= 2 else lag1

        # Quality flags use only the sample stream itself (causal
        # counterparts of the ingest report's spike/dropout/stuck).
        self._zero_run = np.where(values <= 0.0, self._zero_run + 1, 0)
        flag_spike = (values > cfg.spike_wm2).astype(float)
        flag_dropout = (
            (self._zero_run >= cfg.dropout_slots) & (cs_now > cfg.night_wm2)
        ).astype(float)
        flag_stuck = ((values == lag1) & (values > 0.0) & (t >= 1)).astype(float)

        # Day history: push first, then read -- at the last slot of a
        # day "the most recent complete day" is the day just finished.
        self._hist.push_slot(values)
        n_days = self._hist.n_complete_days
        next_slot = (slot + 1) % self.n_slots
        if n_days >= 1:
            same_col = self._hist.slot_history(slot, 2)
            next_col = self._hist.slot_history(next_slot, 2)
            prev_day_same = same_col[-1]
            prev_day_next = next_col[-1]
            prev2_day_next = next_col[0] if n_days >= 2 else next_col[-1]
            mu_same = self._hist.slot_mean(slot, cfg.mu_days)
            mu_next = self._hist.slot_mean(next_slot, cfg.mu_days)
        else:
            prev_day_same = prev_day_next = prev2_day_next = values
            mu_same = mu_next = values

        # Rolling window over the last `rolling_window` samples
        # (current included); before the window fills, over what exists.
        self._roll[t % cfg.rolling_window] = values
        window = self._roll if t + 1 >= cfg.rolling_window else self._roll[: t + 1]
        roll_mean = window.mean(axis=0)
        roll_std = window.std(axis=0)

        if cs_now > cfg.csi_floor_wm2:
            csi = np.clip(values / cs_now, 0.0, 3.0)
        else:
            csi = np.zeros(self.batch_size, dtype=float)

        angle = 2.0 * np.pi * doy / 365.0
        out = np.empty((self.batch_size, N_FEATURES), dtype=float)
        out[:, 0] = values
        out[:, 1] = lag1
        out[:, 2] = lag2
        out[:, 3] = prev_day_same
        out[:, 4] = prev_day_next
        out[:, 5] = prev2_day_next
        out[:, 6] = mu_same
        out[:, 7] = mu_next
        out[:, 8] = cs_now
        out[:, 9] = cs_next
        out[:, 10] = csi
        out[:, 11] = roll_mean
        out[:, 12] = roll_std
        out[:, 13] = np.sin(angle)
        out[:, 14] = np.cos(angle)
        out[:, 15] = flag_spike
        out[:, 16] = flag_dropout
        out[:, 17] = flag_stuck

        self._prev2 = lag1.copy() if t == 0 else self._prev1
        self._prev1 = values.copy()
        self._t += 1
        return out

    def reset(self) -> None:
        """Forget all history (clear-sky profiles are pure; kept)."""
        self._hist.reset()
        self._roll.fill(0.0)
        self._prev1 = np.zeros(self.batch_size, dtype=float)
        self._prev2 = np.zeros(self.batch_size, dtype=float)
        self._zero_run.fill(0)
        self._t = 0

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot sufficient to resume the feature stream exactly."""
        return {
            "n_slots": self.n_slots,
            "batch_size": self.batch_size,
            "t": self._t,
            "prev1": self._prev1.copy(),
            "prev2": self._prev2.copy(),
            "roll": self._roll.copy(),
            "zero_run": self._zero_run.copy(),
            "history": self._hist.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (geometry must match)."""
        if (
            int(state["n_slots"]) != self.n_slots
            or int(state["batch_size"]) != self.batch_size
        ):
            raise ValueError(
                f"feature snapshot is for N={state['n_slots']} "
                f"B={state['batch_size']}; this builder is "
                f"N={self.n_slots} B={self.batch_size}"
            )
        roll = np.asarray(state["roll"], dtype=float)
        if roll.shape != self._roll.shape:
            raise ValueError(
                f"feature snapshot rolling window has shape {roll.shape}; "
                f"expected {self._roll.shape}"
            )
        self._t = int(state["t"])
        self._prev1 = np.asarray(state["prev1"], dtype=float).copy()
        self._prev2 = np.asarray(state["prev2"], dtype=float).copy()
        self._roll = roll.copy()
        self._zero_run = np.asarray(state["zero_run"], dtype=np.int64).copy()
        self._hist.load_state_dict(state["history"])
