"""Frozen scalar training kernels: the learned tier's parity baseline.

These are verbatim copies of the pre-fast-path ``fit_ridge`` /
``fit_gbm`` loops (PR 9), kept in the tree the same way
``repro.core.sweep_reference`` keeps the frozen WCMA sweep loops: the
batched kernels in :mod:`repro.learn.models` must reproduce these
functions *bitwise* -- not to a tolerance -- because GBM split
selection is an argmax over gains and the robustness goldens pin the
learned matrix byte-for-byte.  ``tests/learn/test_fast_path.py`` pins
``fit_model`` / ``fit_model_batch`` against this module, and
``LearnedKernel(engine="loop")`` / ``fit_artifact(engine="loop")``
refit through it per node, so the reference stays executable on the
real dispatch path, not just in tests.

Do not edit the numerics here.  If the model definition changes, the
change lands in :mod:`repro.learn.models` first, this file is refrozen
to match, and the goldens are regenerated -- in that order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learn.models import MODEL_KINDS, TrainingConfig

__all__ = [
    "fit_standardizer_reference",
    "fit_ridge_reference",
    "fit_gbm_reference",
    "fit_model_reference",
]


def fit_standardizer_reference(X: np.ndarray):
    """Frozen copy of the PR 9 ``fit_standardizer``."""
    X = np.asarray(X, dtype=float)
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    scale = np.where(std > 1e-12, std, 1.0)
    return mean, scale


def fit_ridge_reference(X: np.ndarray, y: np.ndarray, lam: float) -> dict:
    """Frozen copy of the PR 9 scalar ``fit_ridge``."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, n_features = X.shape
    mean, scale = fit_standardizer_reference(X)
    Xs = (X - mean) / scale
    ybar = float(y.mean())
    reg = max(lam, 1e-10) * n
    gram = Xs.T @ Xs + reg * np.eye(n_features)
    weights = np.linalg.solve(gram, Xs.T @ (y - ybar))
    return {
        "kind": "ridge",
        "mean": mean,
        "scale": scale,
        "weights": weights,
        "intercept": ybar,
    }


def fit_gbm_reference(
    X: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Frozen copy of the PR 9 scalar ``fit_gbm`` (per-feature loop)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, n_features = X.shape
    rounds = config.gbm_rounds
    lr = config.gbm_learning_rate
    min_leaf = config.gbm_min_leaf

    base = float(y.mean())
    residual = y - base

    qs = np.arange(1, config.gbm_thresholds + 1) / (config.gbm_thresholds + 1)
    thresholds = np.quantile(X, qs, axis=0)  # (Q, F)

    feat = np.zeros(rounds, dtype=np.int64)
    thr = np.zeros(rounds, dtype=float)
    left = np.zeros(rounds, dtype=float)
    right = np.zeros(rounds, dtype=float)

    n_sub = n
    if config.gbm_subsample < 1.0 and rng is not None:
        n_sub = max(2 * min_leaf, int(n * config.gbm_subsample + 0.5))
        n_sub = min(n_sub, n)

    for r in range(rounds):
        if n_sub < n:
            idx = np.sort(rng.choice(n, size=n_sub, replace=False))
            Xr, rr = X[idx], residual[idx]
        else:
            Xr, rr = X, residual
        r_total = rr.sum()
        best_gain = 0.0
        best = None
        for f in range(n_features):
            mask = Xr[:, f, None] <= thresholds[None, :, f]  # (n_sub, Q)
            n_left = mask.sum(axis=0)
            n_right = n_sub - n_left
            ok = (n_left >= min_leaf) & (n_right >= min_leaf)
            if not ok.any():
                continue
            s_left = rr @ mask
            s_right = r_total - s_left
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = np.where(
                    ok,
                    s_left**2 / np.maximum(n_left, 1)
                    + s_right**2 / np.maximum(n_right, 1),
                    -np.inf,
                )
            q = int(np.argmax(gain))  # first max -> lowest threshold index
            if gain[q] > best_gain:
                best_gain = float(gain[q])
                best = (
                    f,
                    float(thresholds[q, f]),
                    float(s_left[q] / n_left[q]),
                    float(s_right[q] / n_right[q]),
                )
        if best is None:
            break  # remaining stumps stay neutral (zeros)
        feat[r], thr[r], left[r], right[r] = best
        step = np.where(X[:, feat[r]] <= thr[r], left[r], right[r])
        residual = residual - lr * step

    return {
        "kind": "gbm",
        "base": base,
        "learning_rate": lr,
        "feat": feat,
        "thr": thr,
        "left": left,
        "right": right,
    }


def fit_model_reference(
    kind: str,
    X: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Frozen scalar dispatch -- the per-node half of engine parity."""
    if kind == "ridge":
        return fit_ridge_reference(X, y, config.ridge_lambda)
    if kind == "gbm":
        return fit_gbm_reference(X, y, config, rng=rng)
    raise ValueError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")
