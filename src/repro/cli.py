"""Command-line front-end: regenerate the paper's tables and figures.

Examples
--------

Run everything at full fidelity (the paper's 365-day setup)::

    repro-solar run-all

Quick look at one experiment on shorter traces::

    repro-solar run table3 --days 120 --sites PFCI NPCS

Export a synthetic trace for external tooling::

    repro-solar export-trace PFCI --days 30 --out pfci.csv

Score every predictor against degraded traces (scenario engine)::

    repro-solar robustness --days 120 --scenarios clean dropout regime-shift --jobs 4

Ingest a raw measured NREL-MIDC-shaped CSV (quality flags + cleaning)::

    repro-solar ingest midc_download.csv --resolution 5 --out clean.csv

Run the robustness matrix over a measured trace::

    repro-solar robustness --trace midc_download.csv --scenarios dropout
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.fleet import CONTROLLER_KINDS
from repro.experiments.runner import EXPERIMENTS, render_report, run_all
from repro.solar.datasets import available_datasets, build_dataset
from repro.solar.io import write_csv
from repro.solar.scenarios import DEFAULT_SCENARIO_SEED, available_scenarios

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (clear error, no traceback)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type for seeds: ``numpy.random.SeedSequence`` rejects
    negative entropy, so catch it at the parser instead of a traceback."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-solar",
        description=(
            "Reproduction of 'Evaluation and Design Exploration of Solar "
            "Harvested-Energy Prediction Algorithm' (DATE 2010)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_all_p = sub.add_parser("run-all", help="run every table/figure")
    _add_run_options(run_all_p)

    run_p = sub.add_parser("run", help="run selected experiments")
    run_p.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS,
        help="experiment ids to run",
    )
    _add_run_options(run_p)

    export_p = sub.add_parser("export-trace", help="write a synthetic trace CSV")
    export_p.add_argument("site", choices=available_datasets())
    export_p.add_argument("--days", type=_positive_int, default=365)
    export_p.add_argument("--seed", type=_non_negative_int, default=None)
    export_p.add_argument("--out", required=True, help="output CSV path")

    ingest_p = sub.add_parser(
        "ingest",
        help="ingest a raw measured (NREL-MIDC-shaped) CSV: quality report + cleaning",
    )
    ingest_p.add_argument("csv", help="path to the raw measurement CSV")
    ingest_p.add_argument(
        "--channel",
        default=None,
        help="channel header to ingest (default: the first GLOBAL channel)",
    )
    ingest_p.add_argument(
        "--resolution",
        type=_positive_int,
        default=None,
        metavar="MINUTES",
        help="resample to this resolution (default: the file's native grid)",
    )
    ingest_p.add_argument(
        "--name", default=None, help="site label (default: from the file name)"
    )
    ingest_p.add_argument(
        "--out", default=None, help="write the cleaned trace as a repro-solar CSV"
    )

    tune_p = sub.add_parser(
        "tune", help="exhaustive (alpha, D, K) sweep on a site or trace CSV"
    )
    _add_trace_source(tune_p)
    tune_p.add_argument("--n", type=_positive_int, default=48, help="slots per day")
    tune_p.add_argument(
        "--objective", choices=("mape", "mape_prime"), default="mape"
    )

    compare_p = sub.add_parser(
        "compare", help="score every registered predictor on a site or CSV"
    )
    _add_trace_source(compare_p)
    compare_p.add_argument("--n", type=_positive_int, default=48, help="slots per day")

    summarize_p = sub.add_parser(
        "summarize", help="detailed error diagnostics for one predictor"
    )
    _add_trace_source(summarize_p)
    summarize_p.add_argument("--n", type=_positive_int, default=48, help="slots per day")
    summarize_p.add_argument("--predictor", default="wcma")

    learn_p = sub.add_parser(
        "learn",
        help="train learned-tier artifacts and score them on held-out days",
    )
    learn_p.add_argument(
        "--days", type=_positive_int, default=45, help="trace length in days (default 45)"
    )
    learn_p.add_argument(
        "--sites",
        nargs="+",
        default=None,
        metavar="SITE",
        help="sites to train on (default PFCI HSU)",
    )
    learn_p.add_argument(
        "--models",
        nargs="+",
        default=None,
        choices=("ridge", "gbm"),
        metavar="KIND",
        help="model kinds to fit (default: ridge gbm)",
    )
    learn_p.add_argument(
        "--train-days",
        type=_positive_int,
        default=None,
        metavar="DAYS",
        help="days reserved for training (default 30); scoring starts after",
    )
    learn_p.add_argument("--n", type=_positive_int, default=48, help="slots per day")
    learn_p.add_argument(
        "--seed", type=_non_negative_int, default=0, help="training seed"
    )
    learn_p.add_argument(
        "--model-dir",
        default=None,
        metavar="PATH",
        help="persist the fitted artifacts here (for serve --model-dir)",
    )

    fleet_p = sub.add_parser(
        "fleet",
        help="simulate a heterogeneous node fleet in lock-step",
    )
    fleet_p.add_argument(
        "--nodes", type=_positive_int, default=64, help="fleet size (default 64)"
    )
    fleet_p.add_argument(
        "--sites",
        nargs="+",
        default=["SPMD"],
        metavar="SITE",
        help="sites cycled across the fleet (default SPMD)",
    )
    fleet_p.add_argument(
        "--days", type=_positive_int, default=30, help="trace length in days (default 30)"
    )
    fleet_p.add_argument("--n", type=_positive_int, default=48, help="slots per day")
    fleet_p.add_argument(
        "--predictors",
        nargs="+",
        default=["wcma", "ewma", "persistence"],
        metavar="NAME",
        help="registry predictor names cycled across the fleet",
    )
    fleet_p.add_argument(
        "--controllers",
        nargs="+",
        default=["kansal"],
        choices=CONTROLLER_KINDS,
        metavar="KIND",
        help="controller kinds cycled across the fleet (default kansal)",
    )
    fleet_p.add_argument(
        "--capacities",
        nargs="+",
        type=float,
        default=[250.0],
        metavar="JOULES",
        help="storage capacities cycled across the fleet (default 250 J)",
    )
    fleet_p.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        choices=available_scenarios(),
        metavar="NAME",
        help="trace-degradation scenarios cycled across the fleet",
    )
    fleet_p.add_argument(
        "--scenario-seed",
        type=_non_negative_int,
        default=DEFAULT_SCENARIO_SEED,
        help="seed of the scenario engine (with --scenarios)",
    )

    rob_p = sub.add_parser(
        "robustness",
        help="scenario robustness matrix: degraded traces x sites x predictors",
    )
    rob_p.add_argument(
        "--days", type=_positive_int, default=365, help="trace length in days (default 365)"
    )
    rob_p.add_argument(
        "--sites",
        nargs="+",
        default=None,
        metavar="SITE",
        help="restrict to these sites (default: the paper's six)",
    )
    rob_p.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        choices=available_scenarios(),
        metavar="NAME",
        help=(
            "scenario subset (default: the built-in matrix; 'clean' is "
            "always included as the baseline)"
        ),
    )
    rob_p.add_argument(
        "--predictors",
        nargs="+",
        default=None,
        metavar="NAME",
        help="registry predictors to score (default: wcma ewma persistence)",
    )
    rob_p.add_argument("--n", type=_positive_int, default=48, help="slots per day")
    rob_p.add_argument(
        "--seed",
        type=_non_negative_int,
        default=DEFAULT_SCENARIO_SEED,
        help="scenario-engine seed (the whole report is a function of it)",
    )
    rob_p.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes, one (site, scenario) cell per unit",
    )
    rob_p.add_argument(
        "--no-tune",
        action="store_true",
        help="skip the per-cell WCMA grid-search (wcma-tuned rows)",
    )
    rob_p.add_argument(
        "--no-fleet",
        action="store_true",
        help="skip the fleet-robustness table (one node per cell)",
    )
    rob_p.add_argument(
        "--fleet-days",
        type=_positive_int,
        default=30,
        metavar="DAYS",
        help="trace length of the fleet-robustness table (default 30)",
    )
    rob_p.add_argument(
        "--trace",
        default=None,
        metavar="CSV",
        help=(
            "ingest this raw measured CSV and add it to the matrix as a "
            "site (alone unless --sites adds synthetic ones); also runs "
            "its replayed-defects scenario as a second matrix"
        ),
    )
    rob_p.add_argument(
        "--trace-channel",
        default=None,
        metavar="NAME",
        help="channel of the --trace CSV (default: the first GLOBAL channel)",
    )
    rob_p.add_argument(
        "--trace-resolution",
        type=_positive_int,
        default=None,
        metavar="MINUTES",
        help="resample the --trace CSV to this resolution",
    )

    _add_cache_options(rob_p)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_info_p = cache_sub.add_parser(
        "info", help="entry count and size of the result cache"
    )
    cache_info_p.add_argument(
        "--dir", default=None, metavar="PATH",
        help="cache directory (default: $REPRO_SOLAR_CACHE_DIR or "
             "~/.cache/repro-solar)",
    )
    cache_clear_p = cache_sub.add_parser(
        "clear", help="remove every cached result"
    )
    cache_clear_p.add_argument(
        "--dir", default=None, metavar="PATH",
        help="cache directory (default: $REPRO_SOLAR_CACHE_DIR or "
             "~/.cache/repro-solar)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="forecast daemon: JSONL queries on stdin (or --http PORT)",
    )
    serve_p.add_argument(
        "--n", type=_positive_int, default=48, help="slots per day"
    )
    serve_p.add_argument(
        "--predictor", default="wcma", help="registry predictor instantiated per site"
    )
    serve_p.add_argument(
        "--state-dir",
        default=None,
        metavar="PATH",
        help="checkpoint predictor state here (enables resume on restart)",
    )
    serve_p.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=1,
        metavar="SLOTS",
        help="observed slots between automatic state flushes (default 1)",
    )
    serve_p.add_argument(
        "--trace",
        default=None,
        metavar="CSV",
        help="register this raw measured CSV as a queryable site",
    )
    serve_p.add_argument(
        "--trace-channel",
        default=None,
        metavar="NAME",
        help="channel of the --trace CSV (default: the first GLOBAL channel)",
    )
    serve_p.add_argument(
        "--trace-resolution",
        type=_positive_int,
        default=None,
        metavar="MINUTES",
        help="resample the --trace CSV to this resolution",
    )
    serve_p.add_argument(
        "--http",
        type=_non_negative_int,
        default=None,
        metavar="PORT",
        help="serve HTTP on this port instead of stdin JSONL (0 = auto-pick)",
    )
    serve_p.add_argument(
        "--model-dir",
        default=None,
        metavar="PATH",
        help=(
            "load learned-tier artifacts from here: a site registering "
            "with a stored (site, predictor) artifact serves it frozen"
        ),
    )

    plot_p = sub.add_parser("plot", help="render a figure as a text chart")
    plot_p.add_argument("figure", choices=("fig2", "fig7"))
    plot_p.add_argument("--days", type=_positive_int, default=365)
    plot_p.add_argument("--site", default="SPMD", help="site for fig2")
    plot_p.add_argument(
        "--sites", nargs="+", default=None, metavar="SITE", help="sites for fig7"
    )

    sub.add_parser("list", help="list experiments and data sets")
    return parser


def _add_trace_source(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--site", choices=available_datasets())
    source.add_argument("--trace", help="path to a repro-solar-trace CSV")
    parser.add_argument(
        "--days", type=_positive_int, default=365, help="synthetic trace length (with --site)"
    )


def _load_trace(args):
    if args.trace is not None:
        from repro.solar.io import read_csv

        return read_csv(args.trace)
    return build_dataset(args.site, n_days=args.days)


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--days", type=_positive_int, default=365, help="trace length in days (default 365)"
    )
    parser.add_argument(
        "--sites",
        nargs="+",
        default=None,
        metavar="SITE",
        help="restrict to these sites (default: the paper's six)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the experiment runner; each worker "
            "handles independent (experiment, site) units with its own "
            "trace/batch caches (default: sequential)"
        ),
    )
    _add_cache_options(parser)


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("process", "thread"),
        default=None,
        help="pool flavour with --jobs (default: process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result-cache directory (default: $REPRO_SOLAR_CACHE_DIR "
             "or ~/.cache/repro-solar)",
    )


def _cache_from_args(args):
    """The run's :class:`~repro.parallel.cache.ResultCache` (or None)."""
    if getattr(args, "no_cache", False):
        return None
    from repro.parallel.cache import ResultCache, default_cache_dir

    root = getattr(args, "cache_dir", None)
    return ResultCache(root if root else default_cache_dir())


def _print_exec_stats(stats_list, cache) -> None:
    """One machine-greppable status line per executor call (stderr)."""
    for s in stats_list:
        line = (
            f"[parallel] backend={s.backend} jobs={s.jobs} "
            f"units={s.n_units} chunk={s.chunk_size}"
        )
        if cache is not None:
            line += f" cache-hits={s.cache_hits} cache-misses={s.cache_misses}"
        line += f" elapsed={s.elapsed_s:.2f}s"
        stages = getattr(s, "stage_seconds", None)
        if stages:
            line += " stages=" + ",".join(
                f"{stage}:{seconds:.2f}s"
                for stage, seconds in sorted(stages.items())
            )
        print(line, file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Argument *shape* errors (unknown subcommand, bad choices,
    non-positive ``--jobs``) exit through argparse with status 2;
    unknown site/predictor names are rejected by :func:`_validate_names`
    before any work starts, printed as one clear ``error:`` line, also
    with status 2.  Genuine library defects still traceback -- the
    catch is confined to the up-front validation step so it can never
    mask a bug as a configuration mistake.
    """
    args = build_parser().parse_args(argv)
    try:
        _validate_names(args)
    except ValueError as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    return _dispatch(args)


def _validate_names(args) -> None:
    """Reject unknown site/predictor names and bad (site, N) pairs.

    Scenario and experiment names are already constrained by argparse
    ``choices`` and the size options by :func:`_positive_int`; sites,
    registry predictor names and N-vs-site divisibility are free-form,
    so they are checked here, eagerly, against the same validators the
    library uses.  (An ``--n`` paired with a ``--trace`` CSV can only
    be checked after the file is read, so that path stays a library
    error.)
    """
    from repro.core.registry import available_predictors
    from repro.experiments.common import sites_for
    from repro.solar.datasets import samples_per_day_for

    sites = getattr(args, "sites", None)
    if sites:
        sites_for(sites)
    site = getattr(args, "site", None)
    if site is not None and site.upper() not in available_datasets():
        raise ValueError(
            f"unknown site {site!r}; available: {', '.join(available_datasets())}"
        )
    known = available_predictors()
    predictor = getattr(args, "predictor", None)
    if predictor is not None and predictor.lower() not in known:
        raise ValueError(
            f"unknown predictor {predictor!r}; available: {', '.join(known)}"
        )
    predictors = getattr(args, "predictors", None)
    if predictors:
        unknown = [p for p in predictors if p.lower() not in known]
        if unknown:
            raise ValueError(
                f"unknown predictors: {unknown}; available: {known}"
            )
    n_slots = getattr(args, "n", None)
    if n_slots is not None:
        if site is not None:
            check_sites = (site.upper(),)
        elif sites:
            check_sites = tuple(s.upper() for s in sites)
        elif getattr(args, "command", None) == "robustness":
            if getattr(args, "trace", None) is not None:
                # A --trace run without --sites contains only the
                # measured site, whose N check happens after ingestion
                # in the dispatch; the synthetic six are not involved.
                check_sites = ()
            else:
                # The default run covers exactly the synthetic six
                # (sites_for(None)); a measured site registered
                # elsewhere in the process must not veto an N it will
                # never see.
                from repro.solar.sites import SITE_ORDER

                check_sites = SITE_ORDER
        else:
            check_sites = ()
        for name in check_sites:
            spd = samples_per_day_for(name)
            if spd % n_slots:
                raise ValueError(
                    f"N={n_slots} does not divide samples per day "
                    f"({spd}) of site {name}"
                )


def _dispatch(args) -> int:
    if args.command == "cache":
        from repro.parallel.cache import ResultCache, default_cache_dir

        cache = ResultCache(args.dir if args.dir else default_cache_dir())
        try:
            if args.cache_command == "info":
                info = cache.info()
                print(f"cache root: {info['root']}")
                print(f"salt:       {info['salt']}")
                print(f"entries:    {info['entries']}")
                print(f"size:       {info['bytes']:,} bytes")
            else:
                removed = cache.clear()
                print(f"removed {removed} entries from {cache.root}")
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "list":
        print("experiments:", ", ".join(EXPERIMENTS))
        print("data sets:  ", ", ".join(available_datasets()))
        print("scenarios:  ", ", ".join(available_scenarios()))
        return 0

    if args.command == "export-trace":
        trace = build_dataset(args.site, n_days=args.days, seed=args.seed)
        write_csv(trace, args.out)
        print(f"wrote {trace.n_samples} samples ({trace.n_days} days) to {args.out}")
        return 0

    if args.command == "ingest":
        from repro.metrics import format_quality_summary, summarise_quality
        from repro.solar.ingest import format_ingest_report, ingest_csv

        try:
            result = ingest_csv(
                args.csv,
                channel=args.channel,
                resolution_minutes=args.resolution,
                name=args.name,
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_ingest_report(result))
        print()
        print(format_quality_summary(summarise_quality(result.report)))
        if args.out:
            write_csv(result.clean, args.out)
            print(
                f"wrote cleaned trace ({result.clean.n_samples} samples, "
                f"{result.clean.n_days} days) to {args.out}"
            )
        return 0

    if args.command == "tune":
        from repro.core.optimizer import grid_search

        trace = _load_trace(args)
        sweep = grid_search(trace, args.n, objective=args.objective)
        best = sweep.best
        print(
            f"best on {trace.name or 'trace'} at N={args.n} "
            f"({args.objective}): alpha={best.alpha} D={best.days} "
            f"K={best.k} -> {sweep.best_error:.2%}"
        )
        k2_params, k2_err = sweep.best_for_k(2)
        print(
            f"guideline check: K=2 best {k2_err:.2%} "
            f"(alpha={k2_params.alpha}, D={k2_params.days})"
        )
        return 0

    if args.command == "compare":
        from repro.core.registry import available_predictors, make_predictor
        from repro.metrics import evaluate_predictor

        trace = _load_trace(args)
        print(f"predictor comparison on {trace.name or 'trace'} at N={args.n}:")
        scores = []
        for name in available_predictors():
            predictor = make_predictor(name, args.n)
            run = evaluate_predictor(predictor, trace, args.n)
            scores.append((run.mape, name))
        for mape_value, name in sorted(scores):
            print(f"  {name:<16} MAPE {mape_value:7.2%}")
        return 0

    if args.command == "summarize":
        from repro.core.registry import make_predictor
        from repro.metrics import evaluate_predictor, format_summary, summarise

        trace = _load_trace(args)
        predictor = make_predictor(args.predictor, args.n)
        run = evaluate_predictor(predictor, trace, args.n)
        print(f"{args.predictor} on {trace.name or 'trace'} at N={args.n}:")
        print(format_summary(summarise(run)))
        return 0

    if args.command == "learn":
        from repro.experiments.learn import DEFAULT_TRAIN_DAYS
        from repro.experiments.learn import run as run_learn

        train_days = (
            args.train_days if args.train_days is not None else DEFAULT_TRAIN_DAYS
        )
        try:
            result = run_learn(
                n_days=args.days,
                sites=args.sites,
                models=tuple(args.models) if args.models else ("ridge", "gbm"),
                train_days=train_days,
                n_slots=args.n,
                seed=args.seed,
                store_dir=args.model_dir,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.render())
        if args.model_dir is not None:
            print(f"artifacts written to {args.model_dir}")
        return 0

    if args.command == "fleet":
        from repro.experiments.fleet import (
            build_fleet_specs,
            fleet_result_table,
            run_fleet,
        )
        from repro.metrics import format_fleet_summary, summarise_fleet

        specs = build_fleet_specs(
            n_nodes=args.nodes,
            sites=args.sites,
            n_days=args.days,
            predictors=args.predictors,
            controllers=args.controllers,
            capacities=args.capacities,
            n_slots=args.n,
            scenarios=args.scenarios,
            scenario_seed=args.scenario_seed,
        )
        result, elapsed = run_fleet(specs, args.n)
        print(fleet_result_table(result, specs).render())
        print()
        print(format_fleet_summary(summarise_fleet(result)))
        node_slots = result.n_nodes * result.total_slots
        print(
            f"throughput: {node_slots:,} node-slots in {elapsed:.2f}s "
            f"({node_slots / elapsed:,.0f} node-slots/sec)"
        )
        return 0

    if args.command == "robustness":
        from repro.experiments.robustness import run as run_robustness
        from repro.experiments.robustness import run_fleet_robustness
        from repro.metrics import format_robustness_summary, summarise_robustness

        sites = args.sites
        days = args.days
        fleet_days = args.fleet_days
        measured = None
        if args.trace is not None:
            from repro.solar.ingest.sites import register_measured_site

            try:
                measured = register_measured_site(
                    args.trace,
                    channel=args.trace_channel,
                    resolution_minutes=args.trace_resolution,
                    overwrite=True,
                )
                if measured.samples_per_day % args.n:
                    raise ValueError(
                        f"N={args.n} does not divide samples per day "
                        f"({measured.samples_per_day}) of trace "
                        f"{measured.name}"
                    )
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            sites = list(args.sites or []) + [measured.name]
            if days > measured.n_days:
                print(
                    f"note: trace {measured.name} has {measured.n_days} "
                    f"days; running the matrix at {measured.n_days} days",
                    file=sys.stderr,
                )
                days = measured.n_days
            fleet_days = min(fleet_days, measured.n_days)

        cache = _cache_from_args(args)
        stats: List = []
        try:
            result = run_robustness(
                n_days=days,
                sites=sites,
                scenarios=args.scenarios,
                predictors=args.predictors,
                n_slots=args.n,
                seed=args.seed,
                jobs=args.jobs,
                tune_wcma=not args.no_tune,
                backend=args.backend,
                cache=cache,
                stats=stats,
            )
            print(result.render())
            print()
            summary_predictor = result.meta["predictors"][0]
            print(
                format_robustness_summary(
                    summarise_robustness(result.rows, predictor=summary_predictor)
                )
            )
            if not args.no_fleet:
                fleet_result = run_fleet_robustness(
                    n_days=fleet_days,
                    sites=sites,
                    scenarios=args.scenarios,
                    n_slots=args.n,
                    seed=args.seed,
                )
                print()
                print(fleet_result.render())
            if measured is not None:
                # The measured trace's own defects as a matrix: the
                # cleaned trace under its replayed-defects scenario, via
                # exactly the same code path as the synthetic
                # degradations.  Full trace length -- the replay masks
                # are geometry-bound.
                replay_result = run_robustness(
                    n_days=measured.n_days,
                    sites=(measured.name,),
                    scenarios=("clean", measured.defects_scenario_name),
                    predictors=args.predictors,
                    n_slots=args.n,
                    seed=args.seed,
                    jobs=args.jobs,
                    tune_wcma=not args.no_tune,
                    backend=args.backend,
                    cache=cache,
                    stats=stats,
                )
                print()
                print(replay_result.render())
            _print_exec_stats(stats, cache)
        finally:
            if measured is not None:
                # The registration was a per-invocation side effect;
                # drop it (even on error) so repeated in-process main()
                # calls start clean.
                from repro.solar.ingest.sites import unregister_measured_site

                unregister_measured_site(measured.name)
        return 0

    if args.command == "serve":
        from repro.serve import ForecastService, serve_http, serve_stdin

        measured = None
        if args.trace is not None:
            from repro.solar.ingest.sites import register_measured_site

            try:
                measured = register_measured_site(
                    args.trace,
                    channel=args.trace_channel,
                    resolution_minutes=args.trace_resolution,
                    overwrite=True,
                )
                if measured.samples_per_day % args.n:
                    raise ValueError(
                        f"N={args.n} does not divide samples per day "
                        f"({measured.samples_per_day}) of trace "
                        f"{measured.name}"
                    )
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        try:
            service = ForecastService(
                n_slots=args.n,
                predictor=args.predictor,
                state_dir=args.state_dir,
                checkpoint_every=args.checkpoint_every,
                model_dir=args.model_dir,
            )
            if args.http is not None:
                return serve_http(service, port=args.http)
            return serve_stdin(service)
        finally:
            if measured is not None:
                from repro.solar.ingest.sites import unregister_measured_site

                unregister_measured_site(measured.name)

    if args.command == "plot":
        from repro.plotting import render_fig2, render_fig7

        if args.figure == "fig2":
            print(render_fig2(n_days=args.days, site=args.site.upper()))
        else:
            print(render_fig7(n_days=args.days, sites=args.sites))
        return 0

    only = None if args.command == "run-all" else args.experiments
    cache = _cache_from_args(args)
    stats: List = []
    results = run_all(
        n_days=args.days,
        sites=args.sites,
        only=only,
        jobs=args.jobs,
        backend=args.backend,
        cache=cache,
        stats=stats,
    )
    print(render_report(results))
    _print_exec_stats(stats, cache)
    return 0


if __name__ == "__main__":
    sys.exit(main())
