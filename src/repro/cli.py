"""Command-line front-end: regenerate the paper's tables and figures.

Examples
--------

Run everything at full fidelity (the paper's 365-day setup)::

    repro-solar run-all

Quick look at one experiment on shorter traces::

    repro-solar run table3 --days 120 --sites PFCI NPCS

Export a synthetic trace for external tooling::

    repro-solar export-trace PFCI --days 30 --out pfci.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.fleet import CONTROLLER_KINDS
from repro.experiments.runner import EXPERIMENTS, render_report, run_all
from repro.solar.datasets import available_datasets, build_dataset
from repro.solar.io import write_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-solar",
        description=(
            "Reproduction of 'Evaluation and Design Exploration of Solar "
            "Harvested-Energy Prediction Algorithm' (DATE 2010)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_all_p = sub.add_parser("run-all", help="run every table/figure")
    _add_run_options(run_all_p)

    run_p = sub.add_parser("run", help="run selected experiments")
    run_p.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS,
        help="experiment ids to run",
    )
    _add_run_options(run_p)

    export_p = sub.add_parser("export-trace", help="write a synthetic trace CSV")
    export_p.add_argument("site", choices=available_datasets())
    export_p.add_argument("--days", type=int, default=365)
    export_p.add_argument("--seed", type=int, default=None)
    export_p.add_argument("--out", required=True, help="output CSV path")

    tune_p = sub.add_parser(
        "tune", help="exhaustive (alpha, D, K) sweep on a site or trace CSV"
    )
    _add_trace_source(tune_p)
    tune_p.add_argument("--n", type=int, default=48, help="slots per day")
    tune_p.add_argument(
        "--objective", choices=("mape", "mape_prime"), default="mape"
    )

    compare_p = sub.add_parser(
        "compare", help="score every registered predictor on a site or CSV"
    )
    _add_trace_source(compare_p)
    compare_p.add_argument("--n", type=int, default=48, help="slots per day")

    summarize_p = sub.add_parser(
        "summarize", help="detailed error diagnostics for one predictor"
    )
    _add_trace_source(summarize_p)
    summarize_p.add_argument("--n", type=int, default=48, help="slots per day")
    summarize_p.add_argument("--predictor", default="wcma")

    fleet_p = sub.add_parser(
        "fleet",
        help="simulate a heterogeneous node fleet in lock-step",
    )
    fleet_p.add_argument(
        "--nodes", type=int, default=64, help="fleet size (default 64)"
    )
    fleet_p.add_argument(
        "--sites",
        nargs="+",
        default=["SPMD"],
        metavar="SITE",
        help="sites cycled across the fleet (default SPMD)",
    )
    fleet_p.add_argument(
        "--days", type=int, default=30, help="trace length in days (default 30)"
    )
    fleet_p.add_argument("--n", type=int, default=48, help="slots per day")
    fleet_p.add_argument(
        "--predictors",
        nargs="+",
        default=["wcma", "ewma", "persistence"],
        metavar="NAME",
        help="registry predictor names cycled across the fleet",
    )
    fleet_p.add_argument(
        "--controllers",
        nargs="+",
        default=["kansal"],
        choices=CONTROLLER_KINDS,
        metavar="KIND",
        help="controller kinds cycled across the fleet (default kansal)",
    )
    fleet_p.add_argument(
        "--capacities",
        nargs="+",
        type=float,
        default=[250.0],
        metavar="JOULES",
        help="storage capacities cycled across the fleet (default 250 J)",
    )

    plot_p = sub.add_parser("plot", help="render a figure as a text chart")
    plot_p.add_argument("figure", choices=("fig2", "fig7"))
    plot_p.add_argument("--days", type=int, default=365)
    plot_p.add_argument("--site", default="SPMD", help="site for fig2")
    plot_p.add_argument(
        "--sites", nargs="+", default=None, metavar="SITE", help="sites for fig7"
    )

    sub.add_parser("list", help="list experiments and data sets")
    return parser


def _add_trace_source(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--site", choices=available_datasets())
    source.add_argument("--trace", help="path to a repro-solar-trace CSV")
    parser.add_argument(
        "--days", type=int, default=365, help="synthetic trace length (with --site)"
    )


def _load_trace(args):
    if args.trace is not None:
        from repro.solar.io import read_csv

        return read_csv(args.trace)
    return build_dataset(args.site, n_days=args.days)


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--days", type=int, default=365, help="trace length in days (default 365)"
    )
    parser.add_argument(
        "--sites",
        nargs="+",
        default=None,
        metavar="SITE",
        help="restrict to these sites (default: the paper's six)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the experiment runner; each worker "
            "handles independent (experiment, site) units with its own "
            "trace/batch caches (default: sequential)"
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("experiments:", ", ".join(EXPERIMENTS))
        print("data sets:  ", ", ".join(available_datasets()))
        return 0

    if args.command == "export-trace":
        trace = build_dataset(args.site, n_days=args.days, seed=args.seed)
        write_csv(trace, args.out)
        print(f"wrote {trace.n_samples} samples ({trace.n_days} days) to {args.out}")
        return 0

    if args.command == "tune":
        from repro.core.optimizer import grid_search

        trace = _load_trace(args)
        sweep = grid_search(trace, args.n, objective=args.objective)
        best = sweep.best
        print(
            f"best on {trace.name or 'trace'} at N={args.n} "
            f"({args.objective}): alpha={best.alpha} D={best.days} "
            f"K={best.k} -> {sweep.best_error:.2%}"
        )
        k2_params, k2_err = sweep.best_for_k(2)
        print(
            f"guideline check: K=2 best {k2_err:.2%} "
            f"(alpha={k2_params.alpha}, D={k2_params.days})"
        )
        return 0

    if args.command == "compare":
        from repro.core.registry import available_predictors, make_predictor
        from repro.metrics import evaluate_predictor

        trace = _load_trace(args)
        print(f"predictor comparison on {trace.name or 'trace'} at N={args.n}:")
        scores = []
        for name in available_predictors():
            predictor = make_predictor(name, args.n)
            run = evaluate_predictor(predictor, trace, args.n)
            scores.append((run.mape, name))
        for mape_value, name in sorted(scores):
            print(f"  {name:<16} MAPE {mape_value:7.2%}")
        return 0

    if args.command == "summarize":
        from repro.core.registry import make_predictor
        from repro.metrics import evaluate_predictor, format_summary, summarise

        trace = _load_trace(args)
        predictor = make_predictor(args.predictor, args.n)
        run = evaluate_predictor(predictor, trace, args.n)
        print(f"{args.predictor} on {trace.name or 'trace'} at N={args.n}:")
        print(format_summary(summarise(run)))
        return 0

    if args.command == "fleet":
        from repro.experiments.fleet import (
            build_fleet_specs,
            fleet_result_table,
            run_fleet,
        )
        from repro.metrics import format_fleet_summary, summarise_fleet

        specs = build_fleet_specs(
            n_nodes=args.nodes,
            sites=args.sites,
            n_days=args.days,
            predictors=args.predictors,
            controllers=args.controllers,
            capacities=args.capacities,
            n_slots=args.n,
        )
        result, elapsed = run_fleet(specs, args.n)
        print(fleet_result_table(result, specs).render())
        print()
        print(format_fleet_summary(summarise_fleet(result)))
        node_slots = result.n_nodes * result.total_slots
        print(
            f"throughput: {node_slots:,} node-slots in {elapsed:.2f}s "
            f"({node_slots / elapsed:,.0f} node-slots/sec)"
        )
        return 0

    if args.command == "plot":
        from repro.plotting import render_fig2, render_fig7

        if args.figure == "fig2":
            print(render_fig2(n_days=args.days, site=args.site.upper()))
        else:
            print(render_fig7(n_days=args.days, sites=args.sites))
        return 0

    only = None if args.command == "run-all" else args.experiments
    results = run_all(n_days=args.days, sites=args.sites, only=only, jobs=args.jobs)
    print(render_report(results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
