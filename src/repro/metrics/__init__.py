"""Prediction-error measurement (Section III of the paper).

* :mod:`repro.metrics.errors` -- per-slot error definitions (Eq. 6 and
  Eq. 7) and the aggregate error functions (MAPE, MAPE', RMSE, MAE, MBE).
* :mod:`repro.metrics.roi` -- the region-of-interest mask: only samples
  whose reference power is at least a fraction (10 % in the paper) of the
  trace peak count towards the average, and the first 20 days are warm-up.
* :mod:`repro.metrics.evaluate` -- drive any online predictor over a
  trace and collect an aligned :class:`PredictionRun`.
"""

from repro.metrics.errors import (
    mae,
    mape,
    mbe,
    rmse,
    slot_errors,
    slot_errors_prime,
)
from repro.metrics.roi import DEFAULT_ROI_FRACTION, DEFAULT_WARMUP_DAYS, roi_mask
from repro.metrics.evaluate import PredictionRun, evaluate_predictor
from repro.metrics.summary import (
    FleetSummary,
    QualitySummary,
    RobustnessSummary,
    RunSummary,
    format_fleet_summary,
    format_quality_summary,
    format_robustness_summary,
    format_summary,
    summarise,
    summarise_fleet,
    summarise_quality,
    summarise_robustness,
)

__all__ = [
    "slot_errors",
    "slot_errors_prime",
    "mape",
    "mae",
    "mbe",
    "rmse",
    "roi_mask",
    "DEFAULT_ROI_FRACTION",
    "DEFAULT_WARMUP_DAYS",
    "PredictionRun",
    "evaluate_predictor",
    "RunSummary",
    "summarise",
    "format_summary",
    "FleetSummary",
    "summarise_fleet",
    "format_fleet_summary",
    "RobustnessSummary",
    "summarise_robustness",
    "format_robustness_summary",
    "QualitySummary",
    "summarise_quality",
    "format_quality_summary",
]
