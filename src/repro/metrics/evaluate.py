"""Run any online predictor over a trace and score it.

:func:`evaluate_predictor` is the generic (non-vectorized) evaluation
path: it slices the trace into slots, feeds the start-of-slot samples to
the predictor in time order, aligns predictions with both references
(slot mean for Eq. 7, next boundary sample for Eq. 6), applies the
region-of-interest mask and reports every aggregate error.  The fast
WCMA-specific sweeps live in :mod:`repro.core.optimizer`; this module is
used for baselines, cross-checks, and the node simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.errors import mae, mape, mbe, rmse
from repro.metrics.roi import DEFAULT_ROI_FRACTION, DEFAULT_WARMUP_DAYS, roi_mask
from repro.solar.slots import SlotView
from repro.solar.trace import SolarTrace

__all__ = ["PredictionRun", "evaluate_predictor", "score_predictions"]


@dataclass(frozen=True)
class PredictionRun:
    """Aligned predictions, references and scores for one evaluation.

    All flat arrays share the boundary index ``t`` (``t = day*N + slot``)
    and have length ``n_boundaries - 1`` (the final boundary has no next
    sample to score against).

    Attributes
    ----------
    n_slots:
        Slots per day.
    predictions:
        ``p[t]`` -- prediction made at boundary ``t``.
    reference_mean:
        ``m[t]`` -- true mean power of the slot starting at ``t`` (Eq. 7
        reference).
    reference_next_start:
        ``s[t+1]`` -- sample at the next boundary (Eq. 6 reference).
    mask_mean / mask_next:
        Region-of-interest masks for the two references.
    mape / mape_prime / mae_value / rmse_value / mbe_value:
        Aggregate scores (fractions, not percent).
    """

    n_slots: int
    predictions: np.ndarray
    reference_mean: np.ndarray
    reference_next_start: np.ndarray
    mask_mean: np.ndarray
    mask_next: np.ndarray
    mape: float
    mape_prime: float
    mae_value: float
    rmse_value: float
    mbe_value: float

    @property
    def n_scored(self) -> int:
        """Number of samples inside the Eq. 7 region of interest."""
        return int(self.mask_mean.sum())


def score_predictions(
    predictions: np.ndarray,
    reference_mean: np.ndarray,
    reference_next_start: np.ndarray,
    n_slots: int,
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
) -> PredictionRun:
    """Score aligned prediction/reference arrays (see :class:`PredictionRun`)."""
    predictions = np.asarray(predictions, dtype=float)
    reference_mean = np.asarray(reference_mean, dtype=float)
    reference_next_start = np.asarray(reference_next_start, dtype=float)
    if not (
        predictions.shape == reference_mean.shape == reference_next_start.shape
    ):
        raise ValueError("predictions and references must share one shape")

    mask_mean = roi_mask(
        reference_mean, n_slots, roi_fraction=roi_fraction, warmup_days=warmup_days
    )
    mask_next = roi_mask(
        reference_next_start,
        n_slots,
        roi_fraction=roi_fraction,
        warmup_days=warmup_days,
    )
    finite = np.isfinite(predictions)
    mask_mean = mask_mean & finite
    mask_next = mask_next & finite

    err = reference_mean - predictions
    err_prime = reference_next_start - predictions
    return PredictionRun(
        n_slots=n_slots,
        predictions=predictions,
        reference_mean=reference_mean,
        reference_next_start=reference_next_start,
        mask_mean=mask_mean,
        mask_next=mask_next,
        mape=mape(err, reference_mean, mask_mean),
        mape_prime=mape(err_prime, reference_next_start, mask_next),
        mae_value=mae(err, mask_mean),
        rmse_value=rmse(err, mask_mean),
        mbe_value=mbe(err, mask_mean),
    )


def evaluate_predictor(
    predictor,
    trace: SolarTrace,
    n_slots: int,
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
) -> PredictionRun:
    """Feed ``trace`` to ``predictor`` slot by slot and score the result.

    The predictor is reset first, then receives every start-of-slot
    sample in time order via ``observe``.  Predictors that declare
    ``uses_slot_mean_feedback`` (the adaptive selectors) additionally
    receive the just-finished slot's realized mean via
    ``provide_slot_mean`` before each boundary -- information a metering
    node has available, so the evaluation stays causal.
    """
    view = SlotView.from_trace(trace, n_slots)
    predictor.reset()
    if getattr(predictor, "uses_slot_mean_feedback", False):
        starts = view.flat_starts()
        means = view.flat_means()
        all_predictions = np.empty_like(starts)
        for t in range(starts.size):
            if t > 0:
                predictor.provide_slot_mean(float(means[t - 1]))
            all_predictions[t] = predictor.observe(float(starts[t]))
    else:
        all_predictions = predictor.run(view.flat_starts())
    return score_predictions(
        predictions=all_predictions[:-1],
        reference_mean=view.flat_means()[:-1],
        reference_next_start=view.flat_starts()[1:],
        n_slots=n_slots,
        roi_fraction=roi_fraction,
        warmup_days=warmup_days,
    )
