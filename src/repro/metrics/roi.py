"""Region-of-interest masking for average-error calculation.

Section III argues that night-time samples (prediction trivially exact
but useless) and dawn/dusk samples (tiny denominators that blow up
percentage errors) must be excluded from the averaged error.  Section
IV-A fixes the rule used throughout the paper:

* a sample counts only if its reference power is **at least 10 % of the
  peak value** of the data set, and
* evaluation starts at **day 21** so the D=20 history matrix is full and
  every parameter setting is scored on the same samples.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "roi_mask",
    "roi_indices",
    "DEFAULT_ROI_FRACTION",
    "DEFAULT_WARMUP_DAYS",
]

#: Fraction of the peak below which samples are ignored (Section IV-A).
DEFAULT_ROI_FRACTION = 0.10

#: Days excluded from scoring at the start of the trace ("days 21 to 365").
DEFAULT_WARMUP_DAYS = 20


def roi_mask(
    reference: np.ndarray,
    n_slots: int,
    peak: float = None,
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
) -> np.ndarray:
    """Boolean mask of the samples that count towards the average error.

    Parameters
    ----------
    reference:
        Flat, time-ordered array of reference powers (slot means for
        MAPE, next-boundary samples for MAPE'), length ``days * N`` or
        ``days * N - 1`` (the final boundary has no next sample).
    n_slots:
        Slots per day, used to convert ``warmup_days`` into samples.
    peak:
        Peak value the threshold is relative to.  Defaults to
        ``reference.max()`` — the data set's own peak, as in the paper.
    roi_fraction:
        Threshold as a fraction of ``peak``.
    warmup_days:
        Leading days masked out entirely.

    Returns
    -------
    numpy.ndarray
        Boolean array of ``reference.shape``.
    """
    reference = np.asarray(reference, dtype=float)
    if reference.ndim != 1:
        raise ValueError(f"reference must be 1-D, got shape {reference.shape}")
    if not 0.0 < roi_fraction < 1.0:
        raise ValueError(f"roi_fraction must be in (0, 1), got {roi_fraction}")
    if warmup_days < 0:
        raise ValueError("warmup_days must be non-negative")
    if peak is None:
        peak = float(reference.max())
    if peak <= 0:
        raise ValueError("peak must be positive (all-dark trace?)")
    mask = reference >= roi_fraction * peak
    warmup_samples = min(warmup_days * n_slots, reference.size)
    mask[:warmup_samples] = False
    return mask


def roi_indices(
    reference: np.ndarray,
    n_slots: int,
    peak: float = None,
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
) -> np.ndarray:
    """Sorted integer indices of the in-ROI samples.

    The gather-friendly form of :func:`roi_mask` (same parameters): the
    fused sweep kernels index ``Φ``/``μ``/``q`` arrays directly at the
    scored positions rather than boolean-masking full-length series, so
    they want ``np.flatnonzero`` of the mask once, up front.
    """
    return np.flatnonzero(
        roi_mask(
            reference,
            n_slots,
            peak=peak,
            roi_fraction=roi_fraction,
            warmup_days=warmup_days,
        )
    )
