"""Rich evaluation reports: seasonal, conditional and quantile breakdowns.

:func:`summarise` expands a :class:`~repro.metrics.evaluate.PredictionRun`
into the diagnostics a deployment study needs beyond a single MAPE
number: monthly error (does winter behave?), per-quantile error (are a
few slots carrying the average?), error conditioned on the reference
level (dawn vs midday), and the bias split (over- vs under-prediction,
which matter differently to an energy-neutral controller).

:func:`summarise_fleet` does the analogous job for a fleet run
(:class:`~repro.management.fleet.FleetRunResult`): the interesting
question at fleet scale is not one node's average but the *spread* --
which fraction of the deployment browns out, how unequal the achieved
duty is across sites, and which node is worst.

:func:`summarise_robustness` digests the robustness experiment matrix
(:mod:`repro.experiments.robustness`): per scenario, the mean error of
one predictor across sites and its degradation against the clean
baseline, plus which degradation hurts most.  It operates on plain row
dicts so the metrics layer stays decoupled from the experiments layer.

:func:`summarise_quality` digests an ingestion quality report
(:class:`~repro.solar.ingest.quality.QualityReport`): flagged-sample
counts and fractions per defect class, the worst day, and how much of
the day grid is night.  It is duck-typed on the report's mask surface
so the metrics layer stays decoupled from the ingest layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.metrics.evaluate import PredictionRun

__all__ = [
    "RunSummary",
    "summarise",
    "format_summary",
    "FleetSummary",
    "summarise_fleet",
    "format_fleet_summary",
    "RobustnessSummary",
    "summarise_robustness",
    "format_robustness_summary",
    "QualitySummary",
    "summarise_quality",
    "format_quality_summary",
]

#: Days per month used for the monthly breakdown (non-leap year).
MONTH_LENGTHS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


@dataclass(frozen=True)
class RunSummary:
    """Diagnostics of one evaluation run.

    All MAPE-like values are fractions.
    """

    mape: float
    monthly_mape: Dict[int, float]
    error_quantiles: Dict[float, float]
    mape_by_level: Dict[str, float]
    over_prediction_fraction: float
    mean_over_prediction: float
    mean_under_prediction: float
    n_scored: int


def summarise(run: PredictionRun) -> RunSummary:
    """Compute the full diagnostic summary of a run."""
    mask = run.mask_mean
    if not mask.any():
        raise ValueError("run has no scored samples")
    reference = run.reference_mean[mask]
    predictions = run.predictions[mask]
    pct_error = np.abs(reference - predictions) / reference
    signed = predictions - reference  # positive = over-prediction

    # Monthly breakdown from the boundary index.
    t_indices = np.nonzero(mask)[0]
    day_of_t = t_indices // run.n_slots
    month_edges = np.cumsum((0,) + MONTH_LENGTHS)
    monthly: Dict[int, float] = {}
    for month in range(12):
        in_month = (day_of_t >= month_edges[month]) & (
            day_of_t < month_edges[month + 1]
        )
        if in_month.any():
            monthly[month + 1] = float(pct_error[in_month].mean())

    quantiles = {
        q: float(np.quantile(pct_error, q)) for q in (0.5, 0.9, 0.99)
    }

    # Error conditioned on the reference level (relative to scored peak).
    peak = reference.max()
    bands = {
        "low (10-40% of peak)": (0.10, 0.40),
        "mid (40-70% of peak)": (0.40, 0.70),
        "high (70-100% of peak)": (0.70, 1.01),
    }
    by_level: Dict[str, float] = {}
    for label, (low, high) in bands.items():
        selected = (reference >= low * peak) & (reference < high * peak)
        if selected.any():
            by_level[label] = float(pct_error[selected].mean())

    over = signed > 0
    return RunSummary(
        mape=float(pct_error.mean()),
        monthly_mape=monthly,
        error_quantiles=quantiles,
        mape_by_level=by_level,
        over_prediction_fraction=float(over.mean()),
        mean_over_prediction=float(signed[over].mean()) if over.any() else 0.0,
        mean_under_prediction=float(-signed[~over].mean()) if (~over).any() else 0.0,
        n_scored=int(mask.sum()),
    )


def format_summary(summary: RunSummary) -> str:
    """Human-readable multi-line rendering of a :class:`RunSummary`."""
    lines: List[str] = []
    lines.append(f"MAPE: {summary.mape:.2%} over {summary.n_scored} slots")
    lines.append(
        "error quantiles: "
        + "  ".join(f"p{int(q * 100)}={v:.1%}" for q, v in summary.error_quantiles.items())
    )
    lines.append(
        f"over-predicts {summary.over_prediction_fraction:.0%} of slots "
        f"(+{summary.mean_over_prediction:.1f} W when over, "
        f"-{summary.mean_under_prediction:.1f} W when under)"
    )
    lines.append("by power level:")
    for label, value in summary.mape_by_level.items():
        lines.append(f"  {label:<24} {value:.2%}")
    if summary.monthly_mape:
        lines.append("by month:")
        worst = max(summary.monthly_mape, key=summary.monthly_mape.get)
        best = min(summary.monthly_mape, key=summary.monthly_mape.get)
        for month, value in summary.monthly_mape.items():
            marker = " (worst)" if month == worst else (" (best)" if month == best else "")
            lines.append(f"  month {month:>2}: {value:.2%}{marker}")
    return "\n".join(lines)


@dataclass(frozen=True)
class FleetSummary:
    """Cross-node diagnostics of one fleet run.

    Duty and downtime values are fractions; quantiles are taken across
    nodes (p50/p90/p99 of the per-node metric).
    """

    n_nodes: int
    total_slots: int
    mean_duty: float
    duty_quantiles: Dict[float, float]
    downtime_fraction: float
    downtime_quantiles: Dict[float, float]
    nodes_with_downtime: int
    worst_node: str
    worst_node_downtime: float
    waste_fraction: float
    mean_final_soc: float


#: Cross-node quantiles reported by :func:`summarise_fleet`.
FLEET_QUANTILES = (0.5, 0.9, 0.99)


def summarise_fleet(result) -> FleetSummary:
    """Cross-node digest of a :class:`~repro.management.fleet.FleetRunResult`.

    Accepts any object with the fleet-result metric surface (per-node
    ``mean_duty`` / ``downtime_fraction`` arrays, ``node_names``,
    ``summary()``), so it stays decoupled from the management layer.
    """
    aggregate = result.summary()
    per_node_duty = np.asarray(result.mean_duty, dtype=float)
    per_node_downtime = np.asarray(result.downtime_fraction, dtype=float)
    worst = int(per_node_downtime.argmax())
    return FleetSummary(
        n_nodes=aggregate["n_nodes"],
        total_slots=aggregate["total_slots"],
        mean_duty=aggregate["mean_duty"],
        duty_quantiles={
            q: float(np.quantile(per_node_duty, q)) for q in FLEET_QUANTILES
        },
        downtime_fraction=aggregate["downtime_fraction"],
        downtime_quantiles={
            q: float(np.quantile(per_node_downtime, q)) for q in FLEET_QUANTILES
        },
        nodes_with_downtime=int((per_node_downtime > 0).sum()),
        worst_node=str(result.node_names[worst]),
        worst_node_downtime=float(per_node_downtime[worst]),
        waste_fraction=aggregate["waste_fraction"],
        mean_final_soc=aggregate["mean_final_soc"],
    )


@dataclass(frozen=True)
class RobustnessSummary:
    """Per-scenario digest of one predictor's robustness matrix.

    MAPE values are fractions; degradations are percentage points
    (``100 * (scenario_mape - clean_mape)``), averaged across sites.
    """

    predictor: str
    n_sites: int
    clean_mape: float
    scenario_mape: Dict[str, float]
    scenario_degradation_pp: Dict[str, float]
    worst_scenario: str
    worst_degradation_pp: float
    most_benign_scenario: str
    most_benign_degradation_pp: float


def summarise_robustness(rows, predictor: str = "wcma") -> RobustnessSummary:
    """Digest robustness-matrix rows for one predictor.

    ``rows`` are the row dicts of the robustness
    :class:`~repro.experiments.common.ExperimentResult` -- each carrying
    ``scenario``, ``site``, ``predictor`` and the machine-friendly
    ``mape`` fraction.  The ``clean`` scenario must be present (the
    matrix runner always includes it); degradation is averaged over the
    sites the scenario was scored on.
    """
    by_scenario: Dict[str, List[float]] = {}
    clean_by_site: Dict[str, float] = {}
    degradation_rows: Dict[str, List[float]] = {}
    for row in rows:
        if row["predictor"] != predictor:
            continue
        by_scenario.setdefault(row["scenario"], []).append(row["mape"])
        if row["scenario"] == "clean":
            clean_by_site[row["site"]] = row["mape"]
    if not by_scenario:
        raise ValueError(f"no rows for predictor {predictor!r}")
    if "clean" not in by_scenario:
        raise ValueError("robustness rows lack the 'clean' baseline scenario")
    for row in rows:
        if row["predictor"] != predictor:
            continue
        baseline = clean_by_site.get(row["site"])
        if baseline is not None:
            degradation_rows.setdefault(row["scenario"], []).append(
                row["mape"] - baseline
            )
    scenario_mape = {
        name: float(np.mean(values)) for name, values in by_scenario.items()
    }
    degradation_pp = {
        name: 100.0 * float(np.mean(values))
        for name, values in degradation_rows.items()
    }
    ranked = {k: v for k, v in degradation_pp.items() if k != "clean"}
    worst = max(ranked, key=ranked.get) if ranked else "clean"
    benign = min(ranked, key=ranked.get) if ranked else "clean"
    return RobustnessSummary(
        predictor=predictor,
        n_sites=len(clean_by_site),
        clean_mape=scenario_mape["clean"],
        scenario_mape=scenario_mape,
        scenario_degradation_pp=degradation_pp,
        worst_scenario=worst,
        worst_degradation_pp=ranked.get(worst, 0.0),
        most_benign_scenario=benign,
        most_benign_degradation_pp=ranked.get(benign, 0.0),
    )


def format_robustness_summary(summary: RobustnessSummary) -> str:
    """Human-readable multi-line rendering of a :class:`RobustnessSummary`."""
    lines: List[str] = []
    lines.append(
        f"robustness ({summary.predictor}): "
        f"{len(summary.scenario_mape)} scenarios x {summary.n_sites} sites; "
        f"clean MAPE {summary.clean_mape:.2%}"
    )
    for name in summary.scenario_mape:
        if name == "clean":
            continue
        lines.append(
            f"  {name:<16} MAPE {summary.scenario_mape[name]:7.2%}  "
            f"{summary.scenario_degradation_pp[name]:+.2f}pp vs clean"
        )
    lines.append(
        f"most harmful: {summary.worst_scenario} "
        f"({summary.worst_degradation_pp:+.2f}pp); most benign: "
        f"{summary.most_benign_scenario} "
        f"({summary.most_benign_degradation_pp:+.2f}pp)"
    )
    return "\n".join(lines)


@dataclass(frozen=True)
class QualitySummary:
    """Digest of one measured-trace quality report.

    Counts are flagged samples per defect class; fractions are of the
    whole trace.  ``worst_day`` is 0-based.
    """

    n_samples: int
    n_days: int
    resolution_minutes: int
    flag_counts: Dict[str, int]
    flag_fractions: Dict[str, float]
    flagged_fraction: float
    clean_days: int
    worst_day: int
    worst_day_fraction: float
    night_fraction: float


def summarise_quality(report) -> QualitySummary:
    """Digest a quality report's masks.

    Accepts any object with the
    :class:`~repro.solar.ingest.quality.QualityReport` surface
    (``masks()``, ``any_defect``, ``night_slots``, geometry fields).
    """
    flagged = np.asarray(report.any_defect, dtype=bool)
    n = flagged.size
    if n == 0:
        raise ValueError("quality report covers no samples")
    per_day = flagged.reshape(report.n_days, -1).mean(axis=1)
    worst = int(per_day.argmax())
    counts = {name: int(mask.sum()) for name, mask in report.masks().items()}
    return QualitySummary(
        n_samples=n,
        n_days=int(report.n_days),
        resolution_minutes=int(report.resolution_minutes),
        flag_counts=counts,
        flag_fractions={name: count / n for name, count in counts.items()},
        flagged_fraction=float(flagged.mean()),
        clean_days=int((per_day == 0).sum()),
        worst_day=worst,
        worst_day_fraction=float(per_day[worst]),
        night_fraction=float(np.asarray(report.night_slots, dtype=bool).mean()),
    )


def format_quality_summary(summary: QualitySummary) -> str:
    """Human-readable multi-line rendering of a :class:`QualitySummary`."""
    lines: List[str] = []
    lines.append(
        f"quality: {summary.flagged_fraction:.2%} of "
        f"{summary.n_samples} samples flagged across {summary.n_days} days "
        f"({summary.resolution_minutes}-minute slots)"
    )
    for name, count in summary.flag_counts.items():
        lines.append(
            f"  {name:<8} {count:>6} samples ({summary.flag_fractions[name]:7.2%})"
        )
    lines.append(
        f"clean days: {summary.clean_days}/{summary.n_days}; worst day: "
        f"day {summary.worst_day + 1} "
        f"({summary.worst_day_fraction:.1%} flagged)"
    )
    lines.append(f"night fraction of the slot grid: {summary.night_fraction:.1%}")
    return "\n".join(lines)


def format_fleet_summary(summary: FleetSummary) -> str:
    """Human-readable multi-line rendering of a :class:`FleetSummary`."""
    lines: List[str] = []
    lines.append(
        f"fleet: {summary.n_nodes} nodes x {summary.total_slots} slots"
    )
    lines.append(
        f"achieved duty: mean {summary.mean_duty:.1%}  across nodes "
        + "  ".join(
            f"p{int(q * 100)}={v:.1%}" for q, v in summary.duty_quantiles.items()
        )
    )
    lines.append(
        f"downtime: {summary.downtime_fraction:.2%} of node-slots; "
        f"{summary.nodes_with_downtime}/{summary.n_nodes} nodes affected; "
        + "  ".join(
            f"p{int(q * 100)}={v:.2%}"
            for q, v in summary.downtime_quantiles.items()
        )
    )
    lines.append(
        f"worst node: {summary.worst_node} "
        f"({summary.worst_node_downtime:.2%} downtime)"
    )
    lines.append(
        f"harvest wasted full-store: {summary.waste_fraction:.1%}; "
        f"mean final SoC {summary.mean_final_soc:.1%}"
    )
    return "\n".join(lines)
