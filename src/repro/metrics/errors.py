"""Per-slot error definitions and aggregate error functions.

Alignment convention (derived from Fig. 4 and validated by the paper's
Table III: at N=288 on a 5-minute trace, ``alpha = 1`` must give MAPE
exactly 0):

* time index ``t`` enumerates slot boundaries in time order,
  ``t = day * N + slot``;
* at boundary ``t`` the node measures the start sample ``s[t]`` and
  computes the prediction ``p[t]`` for the upcoming boundary ``t+1``;
* the slot *starting* at boundary ``t`` has true mean power ``m[t]``;
* Eq. 6 (previous works): ``error'[t] = s[t+1] - p[t]``;
* Eq. 7 (this paper):      ``error[t] = m[t]  - p[t]``.

With one native sample per slot (M=1), ``m[t] == s[t]`` and a pure
persistence prediction (``alpha=1``, ``p[t]=s[t]``) gives ``error == 0``
-- exactly the ``0†`` entries of Table III.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "slot_errors",
    "slot_errors_prime",
    "mape",
    "mae",
    "mbe",
    "rmse",
    "percentage_errors",
]


def slot_errors(slot_mean: np.ndarray, prediction: np.ndarray) -> np.ndarray:
    """Eq. 7: ``error[t] = m[t] - p[t]`` (prediction vs slot mean)."""
    slot_mean = np.asarray(slot_mean, dtype=float)
    prediction = np.asarray(prediction, dtype=float)
    if slot_mean.shape != prediction.shape:
        raise ValueError(
            f"shape mismatch: slot_mean {slot_mean.shape} vs prediction "
            f"{prediction.shape}"
        )
    return slot_mean - prediction


def slot_errors_prime(next_start: np.ndarray, prediction: np.ndarray) -> np.ndarray:
    """Eq. 6: ``error'[t] = s[t+1] - p[t]`` (prediction vs next boundary sample)."""
    next_start = np.asarray(next_start, dtype=float)
    prediction = np.asarray(prediction, dtype=float)
    if next_start.shape != prediction.shape:
        raise ValueError(
            f"shape mismatch: next_start {next_start.shape} vs prediction "
            f"{prediction.shape}"
        )
    return next_start - prediction


def percentage_errors(
    error: np.ndarray, reference: np.ndarray, mask: np.ndarray = None
) -> np.ndarray:
    """``|error / reference|`` restricted to ``mask`` (boolean).

    The caller is responsible for ensuring the mask excludes zero
    references (the ROI mask does, since it requires the reference to be
    at least a positive fraction of the peak).
    """
    error = np.asarray(error, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if error.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: error {error.shape} vs reference {reference.shape}"
        )
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != error.shape:
            raise ValueError(f"mask shape {mask.shape} != error shape {error.shape}")
        error = error[mask]
        reference = reference[mask]
    if error.size == 0:
        raise ValueError("no samples selected for percentage error")
    if (reference == 0).any():
        raise ValueError("reference contains zeros inside the selected region")
    return np.abs(error / reference)


def mape(error: np.ndarray, reference: np.ndarray, mask: np.ndarray = None) -> float:
    """Mean Absolute Percentage Error (Eq. 8), as a fraction (0.158 = 15.8 %)."""
    return float(percentage_errors(error, reference, mask).mean())


def mae(error: np.ndarray, mask: np.ndarray = None) -> float:
    """Mean Absolute Error over the selected region."""
    error = _select(error, mask)
    return float(np.abs(error).mean())


def mbe(error: np.ndarray, mask: np.ndarray = None) -> float:
    """Mean Bias Error (signed) over the selected region."""
    error = _select(error, mask)
    return float(error.mean())


def rmse(error: np.ndarray, mask: np.ndarray = None) -> float:
    """Root Mean Squared Error over the selected region."""
    error = _select(error, mask)
    return float(np.sqrt(np.mean(np.square(error))))


def _select(error: np.ndarray, mask: np.ndarray) -> np.ndarray:
    error = np.asarray(error, dtype=float)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != error.shape:
            raise ValueError(f"mask shape {mask.shape} != error shape {error.shape}")
        error = error[mask]
    if error.size == 0:
        raise ValueError("no samples selected")
    return error
