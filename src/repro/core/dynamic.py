"""Clairvoyant dynamic parameter selection (Section IV-C, Table V).

The paper's dynamic study asks: *if* the node could pick the best
``alpha`` and/or ``K`` at every single prediction, how low would the
average error go?  The selection is clairvoyant (it looks at the
realized slot before choosing), so the numbers are a lower bound that
motivates realizable adaptive policies (see :mod:`repro.core.adaptive`).

Three modes reproduce the three column groups of Table V:

* ``"both"``   -- choose ``(alpha, K)`` freely at every prediction;
* ``"k_only"`` -- ``K`` adapts, ``alpha`` fixed; the reported ``alpha``
  is the fixed value minimising the resulting average error;
* ``"alpha_only"`` -- symmetric: ``alpha`` adapts, best fixed ``K``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.optimizer import DEFAULT_ALPHAS, DEFAULT_KS
from repro.core.wcma import WCMABatch
from repro.metrics.roi import DEFAULT_ROI_FRACTION, DEFAULT_WARMUP_DAYS, roi_mask
from repro.solar.trace import SolarTrace

__all__ = ["DynamicResult", "clairvoyant_dynamic"]

_MODES = ("both", "k_only", "alpha_only")


@dataclass(frozen=True)
class DynamicResult:
    """Outcome of a clairvoyant dynamic-selection evaluation.

    Attributes
    ----------
    mode:
        ``"both"``, ``"k_only"`` or ``"alpha_only"``.
    mape:
        Average error with per-prediction optimal parameters (fraction).
    fixed_alpha:
        The best fixed ``alpha`` (``k_only`` mode), else ``None``.
    fixed_k:
        The best fixed ``K`` (``alpha_only`` mode), else ``None``.
    n_slots:
        Sampling rate ``N``.
    days:
        History depth ``D`` used for every candidate predictor.
    """

    mode: str
    mape: float
    fixed_alpha: Optional[float]
    fixed_k: Optional[int]
    n_slots: int
    days: int


def _percentage_error_cube(
    batch: WCMABatch,
    days: int,
    alphas: Sequence[float],
    ks: Sequence[int],
    roi_fraction: float,
    warmup_days: int,
) -> np.ndarray:
    """|error|/reference for every (alpha, K) at every scored boundary.

    Returns shape ``(len(alphas), len(ks), n_scored)``.
    """
    reference = batch.reference_mean
    mask = roi_mask(
        reference, batch.n_slots, roi_fraction=roi_fraction, warmup_days=warmup_days
    )
    ref_sel = reference[mask]
    s_sel = batch.starts_flat[:-1][mask]
    alpha_vec = np.asarray(alphas, dtype=float)[:, None]

    cube = np.empty((len(alphas), len(ks), ref_sel.size), dtype=float)
    for j, k_param in enumerate(ks):
        q_sel = batch.conditioned_term(days, k_param)[mask]
        preds = alpha_vec * s_sel + (1.0 - alpha_vec) * q_sel
        cube[:, j, :] = np.abs(ref_sel - preds) / ref_sel
    return cube


def clairvoyant_dynamic(
    trace: SolarTrace,
    n_slots: int,
    days: int,
    mode: str = "both",
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    ks: Sequence[int] = DEFAULT_KS,
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
    batch: WCMABatch = None,
) -> DynamicResult:
    """Evaluate clairvoyant dynamic parameter selection.

    Parameters mirror :func:`repro.core.optimizer.grid_search`; ``days``
    (``D``) stays fixed, as in the paper's Table V.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    alphas = tuple(float(a) for a in alphas)
    ks = tuple(int(k) for k in ks)
    if batch is None:
        batch = WCMABatch.from_trace(trace, n_slots)

    cube = _percentage_error_cube(
        batch, days, alphas, ks, roi_fraction, warmup_days
    )  # (A, K, T)

    if mode == "both":
        per_step = cube.min(axis=(0, 1))
        return DynamicResult(
            mode=mode,
            mape=float(per_step.mean()),
            fixed_alpha=None,
            fixed_k=None,
            n_slots=n_slots,
            days=days,
        )

    if mode == "k_only":
        # K adapts per step; score each candidate fixed alpha.
        per_alpha = cube.min(axis=1).mean(axis=1)  # (A,)
        a = int(np.argmin(per_alpha))
        return DynamicResult(
            mode=mode,
            mape=float(per_alpha[a]),
            fixed_alpha=alphas[a],
            fixed_k=None,
            n_slots=n_slots,
            days=days,
        )

    # alpha_only: alpha adapts per step; score each candidate fixed K.
    per_k = cube.min(axis=0).mean(axis=1)  # (K,)
    j = int(np.argmin(per_k))
    return DynamicResult(
        mode=mode,
        mape=float(per_k[j]),
        fixed_alpha=None,
        fixed_k=ks[j],
        n_slots=n_slots,
        days=days,
    )
