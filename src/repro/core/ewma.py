"""EWMA predictor of Kansal et al. [2] -- the classic baseline.

Kansal's predictor keeps, for every slot of the day, an exponentially
weighted moving average of the power observed in that slot on previous
days::

    x(d, n) = gamma * e(d-1, n) + (1 - gamma) * x(d-1, n)

and predicts the upcoming slot from its own historical average.  It
adapts across days but, unlike WCMA, ignores how the *current* day is
unfolding -- which is exactly the weakness the conditioning factor
``Φ_K`` of the evaluated algorithm addresses.  The comparison experiment
(`benchmarks/test_bench_predictor_comparison.py`) quantifies this.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import OnlinePredictor, VectorPredictor, as_batch

__all__ = ["EWMAPredictor", "EWMAVector"]


class EWMAPredictor(OnlinePredictor):
    """Per-slot exponentially weighted moving average predictor.

    Parameters
    ----------
    n_slots:
        Slots per day (``N``).
    gamma:
        Smoothing weight on the most recent day, ``0 <= gamma <= 1``.
        Kansal et al. use 0.5.
    """

    def __init__(self, n_slots: int, gamma: float = 0.5):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        self.n_slots = n_slots
        self.gamma = gamma
        self._averages = np.zeros(n_slots, dtype=float)
        self._seen = np.zeros(n_slots, dtype=bool)
        self._slot = 0

    def reset(self) -> None:
        self._averages.fill(0.0)
        self._seen.fill(False)
        self._slot = 0

    def state_dict(self) -> dict:
        """Snapshot of the online state (resumes bitwise-exactly)."""
        return {
            "kind": "ewma",
            "n_slots": self.n_slots,
            "gamma": self.gamma,
            "averages": self._averages.copy(),
            "seen": self._seen.copy(),
            "slot": self._slot,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (config must match)."""
        if state.get("kind") != "ewma":
            raise ValueError(
                f"snapshot kind {state.get('kind')!r} is not 'ewma'"
            )
        if (
            int(state["n_slots"]) != self.n_slots
            or float(state["gamma"]) != self.gamma
        ):
            raise ValueError(
                f"snapshot was taken with n_slots={state['n_slots']}, "
                f"gamma={state['gamma']}; this predictor has "
                f"n_slots={self.n_slots}, gamma={self.gamma}"
            )
        averages = np.asarray(state["averages"], dtype=float)
        seen = np.asarray(state["seen"], dtype=bool)
        if averages.shape != (self.n_slots,) or seen.shape != (self.n_slots,):
            raise ValueError(
                f"snapshot arrays have shapes {averages.shape}/{seen.shape}; "
                f"expected ({self.n_slots},)"
            )
        self._averages[...] = averages
        self._seen[...] = seen
        self._slot = int(state["slot"])

    def observe(self, value: float) -> float:
        if value < 0:
            raise ValueError(f"power sample must be non-negative, got {value}")
        slot = self._slot
        # Update this slot's average with today's observation.
        if self._seen[slot]:
            self._averages[slot] = (
                self.gamma * value + (1.0 - self.gamma) * self._averages[slot]
            )
        else:
            self._averages[slot] = value
            self._seen[slot] = True

        next_slot = (slot + 1) % self.n_slots
        if self._seen[next_slot]:
            prediction = self._averages[next_slot]
        else:
            prediction = value  # warm-up: persistence until history exists
        self._slot = next_slot
        return float(prediction)


class EWMAVector(VectorPredictor):
    """Lock-step EWMA over a batch of ``B`` independent nodes.

    The per-slot averages grow a trailing batch axis (``(N, B)``); the
    "slot seen yet" flags stay per slot because every node observes the
    same slots in the same order.  Elementwise this matches
    :class:`EWMAPredictor` exactly.
    """

    def __init__(self, n_slots: int, batch_size: int, gamma: float = 0.5):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        self.n_slots = n_slots
        self.batch_size = batch_size
        self.gamma = gamma
        self._averages = np.zeros((n_slots, batch_size), dtype=float)
        self._seen = np.zeros(n_slots, dtype=bool)
        self._slot = 0

    def reset(self) -> None:
        self._averages.fill(0.0)
        self._seen.fill(False)
        self._slot = 0

    def observe(self, values: np.ndarray) -> np.ndarray:
        values = as_batch(values, self.batch_size)
        slot = self._slot
        if self._seen[slot]:
            self._averages[slot] = (
                self.gamma * values + (1.0 - self.gamma) * self._averages[slot]
            )
        else:
            self._averages[slot] = values
            self._seen[slot] = True

        next_slot = (slot + 1) % self.n_slots
        if self._seen[next_slot]:
            prediction = self._averages[next_slot].copy()
        else:
            prediction = values.copy()  # warm-up: persistence
        self._slot = next_slot
        return prediction
