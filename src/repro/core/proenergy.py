"""Pro-Energy-style profile-matching predictor (extension).

Cammarano, Petrioli and Spenza's *Pro-Energy* (MASS 2012) is the
best-known successor to the WCMA predictor this paper evaluates.  Where
WCMA conditions a per-slot average on the current morning, Pro-Energy
keeps a small library of **stored typical-day profiles** and, at each
slot, predicts from the stored profile *most similar* to the day
unfolding so far:

1. maintain a pool of the last ``pool_size`` observed day profiles;
2. at slot ``n``, rank stored profiles by mean absolute distance over
   the last ``window`` observed slots;
3. predict the next slot as a blend of the current measurement and the
   best profile's next-slot value (weight ``alpha``), optionally
   averaging the ``top_k`` most similar profiles.

Implementing it here lets the comparison benchmark place the paper's
algorithm between its predecessor (EWMA) and its successor on the same
traces -- the comparison the later literature reports.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.base import OnlinePredictor

__all__ = ["ProEnergyPredictor"]


class ProEnergyPredictor(OnlinePredictor):
    """Profile-matching solar predictor (Pro-Energy style).

    Parameters
    ----------
    n_slots:
        Slots per day (``N``).
    pool_size:
        Number of stored day profiles (Pro-Energy uses a handful; more
        profiles capture more weather modes at more RAM).
    window:
        Slots of the current day compared against stored profiles when
        ranking similarity.
    alpha:
        Weight of the current measurement in the final blend,
        ``0 <= alpha <= 1`` (Pro-Energy's ``alpha`` plays the same role
        as WCMA's).
    top_k:
        Stored profiles averaged after ranking (1 = best match only).
    """

    def __init__(
        self,
        n_slots: int,
        pool_size: int = 10,
        window: int = 4,
        alpha: float = 0.5,
        top_k: int = 2,
    ):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if not 1 <= window <= n_slots:
            raise ValueError(f"window must be in [1, n_slots], got {window}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 1 <= top_k <= pool_size:
            raise ValueError(f"top_k must be in [1, pool_size], got {top_k}")
        self.n_slots = n_slots
        self.pool_size = pool_size
        self.window = window
        self.alpha = alpha
        self.top_k = top_k
        self._pool: List[np.ndarray] = []
        self._today = np.zeros(n_slots, dtype=float)
        self._slot = 0

    def reset(self) -> None:
        self._pool = []
        self._today = np.zeros(self.n_slots, dtype=float)
        self._slot = 0

    # ------------------------------------------------------------------
    def observe(self, value: float) -> float:
        if value < 0:
            raise ValueError(f"power sample must be non-negative, got {value}")
        slot = self._slot
        self._today[slot] = value

        if self._pool:
            prediction = self._predict(slot, value)
        else:
            prediction = value  # warm-up: persistence

        self._slot += 1
        if self._slot == self.n_slots:
            self._store_today()
            self._slot = 0
        return float(prediction)

    # ------------------------------------------------------------------
    def _predict(self, slot: int, value: float) -> float:
        """Blend the measurement with the matched profiles' next slot."""
        next_slot = (slot + 1) % self.n_slots
        lookback = min(self.window, slot + 1)
        observed = self._today[slot + 1 - lookback : slot + 1]

        distances = np.array(
            [
                np.abs(profile[slot + 1 - lookback : slot + 1] - observed).mean()
                for profile in self._pool
            ]
        )
        order = np.argsort(distances, kind="stable")[: self.top_k]
        profile_next = float(
            np.mean([self._pool[i][next_slot] for i in order])
        )
        return self.alpha * value + (1.0 - self.alpha) * profile_next

    def _store_today(self) -> None:
        """Push the completed day into the pool (FIFO eviction)."""
        self._pool.append(self._today.copy())
        if len(self._pool) > self.pool_size:
            self._pool.pop(0)

    # ------------------------------------------------------------------
    @property
    def stored_profiles(self) -> int:
        """Number of day profiles currently stored."""
        return len(self._pool)

    def memory_bytes(self, bytes_per_sample: int = 2) -> int:
        """RAM footprint of the profile pool (for hardware comparison)."""
        if bytes_per_sample < 1:
            raise ValueError("bytes_per_sample must be >= 1")
        return self.pool_size * self.n_slots * bytes_per_sample
