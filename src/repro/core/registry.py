"""Predictor factory registry.

Maps short names to constructors so experiments, the CLI and the node
and fleet simulators can select predictors by string.  Registered
defaults:

========== =====================================================
``wcma``   :class:`~repro.core.wcma.WCMAPredictor`
``ewma``   :class:`~repro.core.ewma.EWMAPredictor`
``persistence`` :class:`~repro.core.baselines.PersistencePredictor`
``previous-day`` :class:`~repro.core.baselines.PreviousDayPredictor`
``moving-average`` :class:`~repro.core.baselines.MovingAveragePredictor`
========== =====================================================

plus the learned tier (``ridge``, ``gbm`` --
:class:`~repro.learn.predictor.LearnedPredictor`, online self-fitting
unless constructed with a fitted ``artifact=``) and the Table-V
adaptive selectors (``adaptive``, ``adaptive-greedy``, ``hedge`` --
:mod:`repro.core.adaptive` on the compact expert grid).

Each entry may additionally carry a *vector factory* producing the
lock-step fleet kernel (:class:`~repro.core.base.VectorPredictor`) for
the same name; :func:`supports_vector` reports availability and
:func:`make_vector_predictor` constructs one per fleet group.  The five
predictors above and the learned tier all ship vector kernels;
``pro-energy``, ``ar``, ``linear-trend`` and the adaptive selectors are
scalar-only (the fleet simulator falls back to one scalar instance per
node for those).

Third-party predictors can be added with :func:`register` (pass
``overwrite=True`` to replace an existing entry, e.g. when reloading in
a notebook) and removed with :func:`unregister`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.base import OnlinePredictor, VectorPredictor
from repro.core.baselines import (
    MovingAveragePredictor,
    MovingAverageVector,
    PersistencePredictor,
    PersistenceVector,
    PreviousDayPredictor,
    PreviousDayVector,
)
from repro.core.ewma import EWMAPredictor, EWMAVector
from repro.core.wcma import WCMAParams, WCMAPredictor, WCMAVector

__all__ = [
    "register",
    "unregister",
    "make_predictor",
    "make_vector_predictor",
    "available_predictors",
    "vector_predictors",
    "supports_vector",
]

_FACTORIES: Dict[str, Callable[..., OnlinePredictor]] = {}
_VECTOR_FACTORIES: Dict[str, Callable[..., VectorPredictor]] = {}


def register(
    name: str,
    factory: Callable[..., OnlinePredictor],
    vector_factory: Optional[Callable[..., VectorPredictor]] = None,
    overwrite: bool = False,
) -> None:
    """Register ``factory`` under ``name`` (lower-cased).

    Parameters
    ----------
    name:
        Registry key; matching is case-insensitive.
    factory:
        ``factory(n_slots=..., **kwargs)`` returning an
        :class:`~repro.core.base.OnlinePredictor`.
    vector_factory:
        Optional ``vector_factory(n_slots=..., batch_size=..., **kwargs)``
        returning the lock-step fleet kernel for the same predictor.
    overwrite:
        Replace an existing registration instead of raising (interactive
        and notebook-reload workflows re-execute registration code).
    """
    key = name.lower()
    if key in _FACTORIES and not overwrite:
        raise ValueError(
            f"predictor {name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _FACTORIES[key] = factory
    if vector_factory is not None:
        _VECTOR_FACTORIES[key] = vector_factory
    else:
        _VECTOR_FACTORIES.pop(key, None)


def unregister(name: str) -> None:
    """Remove a registered predictor (and its vector kernel, if any)."""
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(f"predictor {name!r} is not registered")
    del _FACTORIES[key]
    _VECTOR_FACTORIES.pop(key, None)


def make_predictor(name: str, n_slots: int, **kwargs) -> OnlinePredictor:
    """Instantiate a registered predictor.

    Keyword arguments are passed through to the factory; e.g.
    ``make_predictor("wcma", 48, alpha=0.7, days=10, k=2)``.
    """
    key = name.lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: {', '.join(available_predictors())}"
        )
    return factory(n_slots=n_slots, **kwargs)


def make_vector_predictor(
    name: str, n_slots: int, batch_size: int, **kwargs
) -> VectorPredictor:
    """Instantiate the lock-step fleet kernel of a registered predictor.

    Raises :class:`KeyError` when the name is unknown *or* registered
    without vector support (check :func:`supports_vector` first).
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown predictor {name!r}; available: {', '.join(available_predictors())}"
        )
    try:
        factory = _VECTOR_FACTORIES[key]
    except KeyError:
        raise KeyError(
            f"predictor {name!r} has no vector kernel; vectorized: "
            f"{', '.join(vector_predictors())}"
        )
    return factory(n_slots=n_slots, batch_size=batch_size, **kwargs)


def supports_vector(name: str) -> bool:
    """True when ``name`` is registered with a fleet (vector) kernel."""
    return name.lower() in _VECTOR_FACTORIES


def available_predictors() -> tuple:
    """Registered predictor names, sorted."""
    return tuple(sorted(_FACTORIES))


def vector_predictors() -> tuple:
    """Registered names that ship a vector kernel, sorted."""
    return tuple(sorted(_VECTOR_FACTORIES))


def _make_wcma(n_slots: int, alpha: float = 0.7, days: int = 10, k: int = 2):
    return WCMAPredictor(n_slots, WCMAParams(alpha=alpha, days=days, k=k))


def _make_wcma_vector(
    n_slots: int, batch_size: int, alpha: float = 0.7, days: int = 10, k: int = 2
):
    return WCMAVector(
        n_slots, WCMAParams(alpha=alpha, days=days, k=k), batch_size=batch_size
    )


def _make_proenergy(n_slots: int, **kwargs):
    from repro.core.proenergy import ProEnergyPredictor

    return ProEnergyPredictor(n_slots, **kwargs)


def _make_ridge(n_slots: int, **kwargs):
    from repro.learn.predictor import LearnedPredictor

    return LearnedPredictor(n_slots, model="ridge", **kwargs)


def _make_ridge_vector(n_slots: int, batch_size: int, **kwargs):
    from repro.learn.predictor import LearnedKernel

    return LearnedKernel(n_slots, batch_size=batch_size, model="ridge", **kwargs)


def _make_gbm(n_slots: int, **kwargs):
    from repro.learn.predictor import LearnedPredictor

    return LearnedPredictor(n_slots, model="gbm", **kwargs)


def _make_gbm_vector(n_slots: int, batch_size: int, **kwargs):
    from repro.learn.predictor import LearnedKernel

    return LearnedKernel(n_slots, batch_size=batch_size, model="gbm", **kwargs)


def _selector_grid(days, alphas, ks):
    from repro.core.adaptive import compact_grid

    grid_kwargs = {}
    if days is not None:
        grid_kwargs["days"] = days
    if alphas is not None:
        grid_kwargs["alphas"] = tuple(alphas)
    if ks is not None:
        grid_kwargs["ks"] = tuple(int(k) for k in ks)
    return compact_grid(**grid_kwargs)


def _make_adaptive(n_slots: int, days=None, alphas=None, ks=None, **kwargs):
    from repro.core.adaptive import SoftminSelector

    return SoftminSelector(
        n_slots, grid=_selector_grid(days, alphas, ks), **kwargs
    )


def _make_adaptive_greedy(n_slots: int, days=None, alphas=None, ks=None, **kwargs):
    from repro.core.adaptive import EpsilonGreedySelector

    return EpsilonGreedySelector(
        n_slots, grid=_selector_grid(days, alphas, ks), **kwargs
    )


def _make_hedge(n_slots: int, days=None, alphas=None, ks=None, **kwargs):
    from repro.core.adaptive import HedgeSelector

    return HedgeSelector(
        n_slots, grid=_selector_grid(days, alphas, ks), **kwargs
    )


def _make_ar(n_slots: int, **kwargs):
    from repro.core.regression import ARPredictor

    return ARPredictor(n_slots, **kwargs)


def _make_trend(n_slots: int, **kwargs):
    from repro.core.regression import SlotLinearTrendPredictor

    return SlotLinearTrendPredictor(n_slots, **kwargs)


register("wcma", _make_wcma, vector_factory=_make_wcma_vector)
register(
    "ewma",
    lambda n_slots, gamma=0.5: EWMAPredictor(n_slots, gamma=gamma),
    vector_factory=lambda n_slots, batch_size, gamma=0.5: EWMAVector(
        n_slots, batch_size=batch_size, gamma=gamma
    ),
)
register(
    "persistence",
    lambda n_slots: PersistencePredictor(n_slots),
    vector_factory=lambda n_slots, batch_size: PersistenceVector(
        n_slots, batch_size=batch_size
    ),
)
register(
    "previous-day",
    lambda n_slots: PreviousDayPredictor(n_slots),
    vector_factory=lambda n_slots, batch_size: PreviousDayVector(
        n_slots, batch_size=batch_size
    ),
)
register(
    "moving-average",
    lambda n_slots, days=10: MovingAveragePredictor(n_slots, days=days),
    vector_factory=lambda n_slots, batch_size, days=10: MovingAverageVector(
        n_slots, batch_size=batch_size, days=days
    ),
)
register("pro-energy", _make_proenergy)
register("ar", _make_ar)
register("linear-trend", _make_trend)
# The learned tier (repro.learn): online self-fitting by default; pass
# artifact=ModelArtifact for the frozen train/serve split.  Lazy imports
# keep the registry import-light for callers that never touch them.
register("ridge", _make_ridge, vector_factory=_make_ridge_vector)
register("gbm", _make_gbm, vector_factory=_make_gbm_vector)
# The Table-V adaptive selectors (repro.core.adaptive) on the compact
# expert grid; scalar-only, like pro-energy (an expert ensemble has no
# lock-step vector form yet).  "adaptive" is the softmin-blended
# leaderboard -- the configuration that beats the re-tuned WCMA on the
# regime-shift robustness cells.
register("adaptive", _make_adaptive)
register("adaptive-greedy", _make_adaptive_greedy)
register("hedge", _make_hedge)
