"""Predictor factory registry.

Maps short names to constructors so experiments, the CLI and the node
simulator can select predictors by string.  Registered defaults:

========== =====================================================
``wcma``   :class:`~repro.core.wcma.WCMAPredictor`
``ewma``   :class:`~repro.core.ewma.EWMAPredictor`
``persistence`` :class:`~repro.core.baselines.PersistencePredictor`
``previous-day`` :class:`~repro.core.baselines.PreviousDayPredictor`
``moving-average`` :class:`~repro.core.baselines.MovingAveragePredictor`
========== =====================================================

Third-party predictors can be added with :func:`register`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.base import OnlinePredictor
from repro.core.baselines import (
    MovingAveragePredictor,
    PersistencePredictor,
    PreviousDayPredictor,
)
from repro.core.ewma import EWMAPredictor
from repro.core.wcma import WCMAParams, WCMAPredictor

__all__ = ["register", "make_predictor", "available_predictors"]

_FACTORIES: Dict[str, Callable[..., OnlinePredictor]] = {}


def register(name: str, factory: Callable[..., OnlinePredictor]) -> None:
    """Register ``factory`` under ``name`` (lower-cased; must be new)."""
    key = name.lower()
    if key in _FACTORIES:
        raise ValueError(f"predictor {name!r} is already registered")
    _FACTORIES[key] = factory


def make_predictor(name: str, n_slots: int, **kwargs) -> OnlinePredictor:
    """Instantiate a registered predictor.

    Keyword arguments are passed through to the factory; e.g.
    ``make_predictor("wcma", 48, alpha=0.7, days=10, k=2)``.
    """
    key = name.lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: {', '.join(available_predictors())}"
        )
    return factory(n_slots=n_slots, **kwargs)


def available_predictors() -> tuple:
    """Registered predictor names, sorted."""
    return tuple(sorted(_FACTORIES))


def _make_wcma(n_slots: int, alpha: float = 0.7, days: int = 10, k: int = 2):
    return WCMAPredictor(n_slots, WCMAParams(alpha=alpha, days=days, k=k))


def _make_proenergy(n_slots: int, **kwargs):
    from repro.core.proenergy import ProEnergyPredictor

    return ProEnergyPredictor(n_slots, **kwargs)


def _make_ar(n_slots: int, **kwargs):
    from repro.core.regression import ARPredictor

    return ARPredictor(n_slots, **kwargs)


def _make_trend(n_slots: int, **kwargs):
    from repro.core.regression import SlotLinearTrendPredictor

    return SlotLinearTrendPredictor(n_slots, **kwargs)


register("wcma", _make_wcma)
register("ewma", lambda n_slots, gamma=0.5: EWMAPredictor(n_slots, gamma=gamma))
register("persistence", lambda n_slots: PersistencePredictor(n_slots))
register("previous-day", lambda n_slots: PreviousDayPredictor(n_slots))
register(
    "moving-average",
    lambda n_slots, days=10: MovingAveragePredictor(n_slots, days=days),
)
register("pro-energy", _make_proenergy)
register("ar", _make_ar)
register("linear-trend", _make_trend)
