"""WCMA -- the solar-energy predictor evaluated by the paper.

Implements the algorithm of Recas et al. [5] exactly as specified by
Eqs. 1-5 of the paper (see module docstring of
:mod:`repro.metrics.errors` for the time-alignment convention):

.. math::

    \\hat e_{n+1} = \\alpha\\,\\tilde e(n)
                  + (1-\\alpha)\\,\\mu_D(n+1)\\,\\Phi_K

with :math:`\\mu_D(j)` the mean of the start-of-slot samples of slot *j*
over the last *D* days (Eq. 2) and the conditioning factor

.. math::

    \\Phi_K = \\frac{\\sum_{k=1}^{K} \\theta(k)\\,\\eta(k)}
                   {\\sum_{k=1}^{K} \\theta(k)},\\qquad
    \\eta(k) = \\frac{\\tilde e(n-K+k)}{\\mu_D(n-K+k)},\\qquad
    \\theta(k) = k/K.

Three implementations are provided:

* :class:`WCMAPredictor` -- the *online* form a sensor node would run:
  O(D + K) state, one :meth:`observe` call per slot.  Used by the node
  simulation and the fixed-point hardware model.
* :class:`WCMAVector` -- the same online recurrence over a ``(B,)``
  batch of independent nodes in lock-step, used by the fleet simulator
  (:mod:`repro.management.fleet`).  Elementwise it matches
  :class:`WCMAPredictor` (parity-tested to 1e-9).
* :class:`WCMABatch` -- a vectorized engine over a whole trace, used by
  the parameter sweeps (Tables II, III, V; Fig. 7), where thousands of
  (alpha, D, K) combinations must be scored.

Night and dawn handling: where :math:`\\mu_D` is zero the ratio
:math:`\\eta` is undefined, and where it is merely *tiny* (first slots
after sunrise) the ratio explodes -- the sun's day-to-day elevation
drift can grow a near-horizon slot's power by an order of magnitude
over ``D`` days, so :math:`\\tilde e / \\mu_D` reaches 3-10 even on a
perfectly clear morning and would poison :math:`\\Phi_K` for the first
in-ROI predictions of the day.  Both implementations therefore
substitute the neutral value 1.0 whenever :math:`\\mu_D` at the ratio's
slot is below ``eta_floor_fraction`` (default 5 %) of the historical
daily peak of :math:`\\mu_D`.  This guard only affects slots the paper's
region-of-interest rule excludes from scoring anyway (Section III);
without it no parameter setting reproduces the paper's single-digit
MAPE values on sunny sites.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.base import (
    DayHistory,
    FleetDayHistory,
    OnlinePredictor,
    VectorPredictor,
    as_batch,
)
from repro.solar.slots import SlotView

__all__ = [
    "WCMAParams",
    "WCMAPredictor",
    "WCMAVector",
    "WCMABatch",
    "mu_matrix",
    "MU_EPS",
    "ETA_FLOOR_FRACTION",
]

#: Power (W/m^2) below which a past-days slot average counts as "night".
MU_EPS = 1e-6

#: Fraction of the historical daily peak of mu_D below which the eta
#: ratio is replaced by the neutral 1.0 (dawn guard; see module docstring).
ETA_FLOOR_FRACTION = 0.05


@dataclass(frozen=True)
class WCMAParams:
    """The three tunable parameters of the predictor (plus their ranges).

    Attributes
    ----------
    alpha:
        Weight of the persistence term, ``0 <= alpha <= 1`` (Eq. 1).
    days:
        ``D`` -- past days in the history matrix, ``D >= 1`` (the paper
        sweeps 2..20).
    k:
        ``K`` -- number of current-day slots feeding the conditioning
        factor, ``K >= 1`` (the paper sweeps 1..6).
    """

    alpha: float
    days: int
    k: int

    def __post_init__(self):
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.days < 1:
            raise ValueError(f"days (D) must be >= 1, got {self.days}")
        if self.k < 1:
            raise ValueError(f"k (K) must be >= 1, got {self.k}")

    @staticmethod
    def theta(k_param: int) -> np.ndarray:
        """Weight vector ``θ(k) = k/K`` for ``k = 1..K`` (Eq. 5)."""
        return np.arange(1, k_param + 1, dtype=float) / k_param


class WCMAPredictor(OnlinePredictor):
    """Online WCMA predictor with O(D*N) memory, as a node would run it.

    Parameters
    ----------
    n_slots:
        ``N`` -- slots (samples/predictions) per day.
    params:
        The (alpha, D, K) parameter set.

    Notes
    -----
    Until at least one full day of history exists the conditioned
    average term is unavailable and the predictor degrades to pure
    persistence (``ê = ẽ(n)``), which is also what the reference
    implementation of [5] does during warm-up.
    """

    def __init__(
        self,
        n_slots: int,
        params: WCMAParams,
        eta_floor_fraction: float = ETA_FLOOR_FRACTION,
    ):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if not 0.0 <= eta_floor_fraction < 1.0:
            raise ValueError(
                f"eta_floor_fraction must be in [0, 1), got {eta_floor_fraction}"
            )
        self.n_slots = n_slots
        self.params = params
        self.eta_floor_fraction = eta_floor_fraction
        self._history = DayHistory(n_slots=n_slots, depth=params.days)
        self._recent_eta = deque(maxlen=params.k)
        self._theta = WCMAParams.theta(params.k)
        self._theta_sum = float(self._theta.sum())
        self._mu_row: np.ndarray = None  # mu_D per slot, fixed within a day
        self._eta_floor = 0.0
        self._mu_days_seen = 0

    def reset(self) -> None:
        self._history.reset()
        self._recent_eta.clear()
        self._mu_row = None
        self._eta_floor = 0.0
        self._mu_days_seen = 0

    def state_dict(self) -> dict:
        """Snapshot of the online state (resumes bitwise-exactly).

        The derived mu-row cache is *not* serialised: loading marks it
        stale so the next :meth:`observe` recomputes it from the history
        matrix, which is deterministic -- the resumed predictor emits
        the same bits as one that never stopped.
        """
        return {
            "kind": "wcma",
            "n_slots": self.n_slots,
            "params": {
                "alpha": self.params.alpha,
                "days": self.params.days,
                "k": self.params.k,
            },
            "eta_floor_fraction": self.eta_floor_fraction,
            "history": self._history.state_dict(),
            "recent_eta": list(self._recent_eta),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (config must match)."""
        if state.get("kind") != "wcma":
            raise ValueError(
                f"snapshot kind {state.get('kind')!r} is not 'wcma'"
            )
        params = state["params"]
        mine = self.params
        if (
            int(state["n_slots"]) != self.n_slots
            or float(params["alpha"]) != mine.alpha
            or int(params["days"]) != mine.days
            or int(params["k"]) != mine.k
        ):
            raise ValueError(
                f"snapshot was taken with n_slots={state['n_slots']}, "
                f"params={params}; this predictor has n_slots="
                f"{self.n_slots}, params={{'alpha': {mine.alpha}, "
                f"'days': {mine.days}, 'k': {mine.k}}}"
            )
        if float(state["eta_floor_fraction"]) != self.eta_floor_fraction:
            raise ValueError(
                f"snapshot eta_floor_fraction {state['eta_floor_fraction']} "
                f"!= this predictor's {self.eta_floor_fraction}"
            )
        self._history.load_state_dict(state["history"])
        self._recent_eta = deque(
            (float(v) for v in state["recent_eta"]), maxlen=mine.k
        )
        # Derived caches: mark stale (-1 never equals a completed-days
        # count) so _refresh_mu recomputes them on the next observe.
        self._mu_row = None
        self._eta_floor = 0.0
        self._mu_days_seen = -1

    def _refresh_mu(self) -> None:
        """Recompute the per-slot mu_D row after a day completes.

        mu_D only depends on *complete* days, so it is constant within a
        day; caching it makes ``observe`` O(K) instead of O(D).
        """
        completed = self._history.total_days_completed
        if completed == self._mu_days_seen:
            return
        self._mu_days_seen = completed
        available = self._history.n_complete_days
        if available == 0:
            self._mu_row = None
            self._eta_floor = 0.0
            return
        rows = self._history._recent_rows(min(self.params.days, available))
        self._mu_row = rows.mean(axis=0)
        self._eta_floor = max(
            self.eta_floor_fraction * float(self._mu_row.max()), MU_EPS
        )

    def observe(self, value: float) -> float:
        if value < 0:
            raise ValueError(f"power sample must be non-negative, got {value}")
        self._refresh_mu()
        slot = self._history.current_slot
        have_history = self._mu_row is not None

        # eta for the *current* slot, appended before computing phi so the
        # most recent ratio carries the largest weight theta(K)=1.
        if have_history:
            mu_now = self._mu_row[slot]
            eta_now = value / mu_now if mu_now >= self._eta_floor else 1.0
        else:
            eta_now = 1.0
        self._recent_eta.append(eta_now)

        if have_history:
            mu_next = self._mu_row[(slot + 1) % self.n_slots]
            phi = self._phi()
            prediction = (
                self.params.alpha * value
                + (1.0 - self.params.alpha) * mu_next * phi
            )
        else:
            prediction = value  # warm-up: pure persistence

        self._history.push_slot(value)
        return float(prediction)

    def _phi(self) -> float:
        """Conditioning factor over the buffered ratios (Eq. 3).

        With fewer than K ratios buffered (start of trace) the missing,
        oldest ratios are taken as the neutral 1.0.
        """
        k_param = self.params.k
        n_have = len(self._recent_eta)
        etas = np.ones(k_param, dtype=float)
        if n_have:
            etas[k_param - n_have :] = list(self._recent_eta)
        return float(np.dot(self._theta, etas) / self._theta_sum)


class WCMAVector(VectorPredictor):
    """Lock-step WCMA over a batch of ``B`` independent nodes.

    State mirrors :class:`WCMAPredictor` with a trailing batch axis:
    the history matrix is ``(D, N, B)``, the ``η`` ring buffer is
    ``(K, B)`` (pre-filled with the neutral 1.0, matching the scalar
    predictor's padding of missing ratios), and the dawn-guard floor is
    per node.  The slot/day counters are shared scalars because every
    node crosses the same boundary at once.

    Parameters are shared across the batch; a heterogeneous fleet mixes
    parameter sets by running one :class:`WCMAVector` per distinct
    configuration (this is what :class:`~repro.management.fleet.FleetSimulator`
    does when it groups nodes).
    """

    def __init__(
        self,
        n_slots: int,
        params: WCMAParams,
        batch_size: int,
        eta_floor_fraction: float = ETA_FLOOR_FRACTION,
    ):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0.0 <= eta_floor_fraction < 1.0:
            raise ValueError(
                f"eta_floor_fraction must be in [0, 1), got {eta_floor_fraction}"
            )
        self.n_slots = n_slots
        self.params = params
        self.batch_size = batch_size
        self.eta_floor_fraction = eta_floor_fraction
        self._history = FleetDayHistory(
            n_slots=n_slots, depth=params.days, batch_size=batch_size
        )
        self._theta = WCMAParams.theta(params.k)
        self._theta_sum = float(self._theta.sum())
        self._recent_eta = np.ones((params.k, batch_size), dtype=float)
        self._mu_rows: np.ndarray = None  # (N, B); fixed within a day
        self._eta_floor = np.zeros(batch_size, dtype=float)
        self._mu_days_seen = 0

    def reset(self) -> None:
        self._history.reset()
        self._recent_eta.fill(1.0)
        self._mu_rows = None
        self._eta_floor.fill(0.0)
        self._mu_days_seen = 0

    def _refresh_mu(self) -> None:
        completed = self._history.total_days_completed
        if completed == self._mu_days_seen:
            return
        self._mu_days_seen = completed
        self._mu_rows = self._history.mu_rows(self.params.days)
        if self._mu_rows is None:
            self._eta_floor.fill(0.0)
            return
        self._eta_floor = np.maximum(
            self.eta_floor_fraction * self._mu_rows.max(axis=0), MU_EPS
        )

    def observe(self, values: np.ndarray) -> np.ndarray:
        values = as_batch(values, self.batch_size)
        self._refresh_mu()
        slot = self._history.current_slot
        have_history = self._mu_rows is not None

        if have_history:
            mu_now = self._mu_rows[slot]
            bright = mu_now >= self._eta_floor
            eta_now = np.ones(self.batch_size, dtype=float)
            np.divide(values, mu_now, out=eta_now, where=bright)
        else:
            eta_now = np.ones(self.batch_size, dtype=float)
        # Roll the (K, B) ring: oldest ratio falls off the front, the
        # newest lands at the back where theta(K) = 1 weights it most.
        self._recent_eta[:-1] = self._recent_eta[1:]
        self._recent_eta[-1] = eta_now

        if have_history:
            mu_next = self._mu_rows[(slot + 1) % self.n_slots]
            phi = self._theta @ self._recent_eta / self._theta_sum
            prediction = (
                self.params.alpha * values
                + (1.0 - self.params.alpha) * mu_next * phi
            )
        else:
            prediction = values.copy()  # warm-up: pure persistence

        self._history.push_slot(values)
        return prediction


def mu_matrix(starts: np.ndarray, days: int) -> np.ndarray:
    """``μ_D`` for every (day, slot): mean of the previous ``days`` rows.

    Parameters
    ----------
    starts:
        ``(n_days, N)`` start-of-slot sample matrix.
    days:
        History depth ``D``.

    Returns
    -------
    numpy.ndarray
        ``(n_days, N)`` where row ``d`` holds
        ``mean(starts[d-days:d], axis=0)``; rows ``d < days`` are NaN
        (insufficient history).
    """
    starts = np.asarray(starts, dtype=float)
    if starts.ndim != 2:
        raise ValueError(f"starts must be 2-D, got shape {starts.shape}")
    n_days = starts.shape[0]
    if days < 1:
        raise ValueError("days must be >= 1")
    out = np.full_like(starts, np.nan)
    if n_days <= days:
        return out
    csum = np.vstack([np.zeros((1, starts.shape[1])), np.cumsum(starts, axis=0)])
    out[days:] = (csum[days:-1] - csum[:-days - 1])[: n_days - days] / days
    # the slice above yields rows for d = days..n_days-1
    return out


class WCMABatch:
    """Vectorized WCMA evaluation over an entire trace.

    The sweep-engine v2 kernel set.  Three levels of sharing keep the
    exhaustive grid searches of Tables II/III/V cheap:

    * **Per trace** -- one prefix sum over the day axis
      (:meth:`_day_csum`) from which ``μ_D`` for *every* history depth
      ``D`` is a single slice-subtract-divide (no per-``D``
      recomputation).
    * **Per D** -- the flat ``μ_D`` and ``η`` series are memoised; ``η``
      reuses the cached ``μ`` matrix instead of rebuilding it.
    * **Per (D, K)** -- ``Φ_K`` comes from a sliding-window recurrence:
      with ``θ(k) = k/K`` the numerator is ``(1/K)·Σ k·η`` over the
      window, so two running sums (plain and lag-weighted) advance from
      ``K-1`` to ``K`` with one shifted add each, making every ``K``
      incremental instead of ``O(K)`` passes.  The *conditioned average
      term* ``q[t] = μ_D(t+1) * Φ_K(t)`` is memoised per ``(D, K)``.

    A prediction for any ``alpha`` is then the one-liner
    ``alpha * s[:-1] + (1 - alpha) * q``.  For whole-grid sweeps,
    :meth:`conditioned_stack` additionally evaluates the stacked
    ``(D, K)`` conditioned terms at a set of scored boundary indices in
    one batched pass (the input of the fused error-cube kernel in
    :mod:`repro.core.optimizer`).

    All flat arrays are aligned on the boundary index
    ``t = day * N + slot``; entries where history is incomplete are NaN.
    The pre-v2 kernels are preserved in
    :mod:`repro.core.sweep_reference` and pinned against these by the
    parity suite.
    """

    def __init__(self, view: SlotView, eta_floor_fraction: float = ETA_FLOOR_FRACTION):
        if not 0.0 <= eta_floor_fraction < 1.0:
            raise ValueError(
                f"eta_floor_fraction must be in [0, 1), got {eta_floor_fraction}"
            )
        self.view = view
        self.n_slots = view.n_slots
        self.eta_floor_fraction = eta_floor_fraction
        self.starts_flat = view.flat_starts()
        self.means_flat = view.flat_means()
        self._csum: np.ndarray = None  # (n_days + 1, N) day-axis prefix sum
        self._mu2d_cache: Dict[int, np.ndarray] = {}
        self._mu_cache: Dict[int, np.ndarray] = {}
        self._eta_cache: Dict[int, np.ndarray] = {}
        self._phi_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._window_cache: Dict[int, list] = {}  # D -> [K_done, B, W]
        self._q_cache: Dict[Tuple[int, int], np.ndarray] = {}
        # conditioned_stack workspace, keyed by its shape: repeated
        # sweep chunks reuse the lag/window buffers instead of paying a
        # fresh multi-MB allocation (page faults) per chunk.
        self._stack_scratch_key: Tuple[int, int, int] = None
        self._stack_scratch: Tuple[np.ndarray, np.ndarray, np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace, n_slots: int) -> "WCMABatch":
        """Build directly from a :class:`~repro.solar.trace.SolarTrace`."""
        return cls(SlotView.from_trace(trace, n_slots))

    @property
    def n_boundaries(self) -> int:
        """Total number of slot boundaries in the trace."""
        return self.starts_flat.size

    # ------------------------------------------------------------------
    def _day_csum(self) -> np.ndarray:
        """Shared day-axis prefix sum: ``csum[d] = Σ starts[:d]``.

        Computed once; ``μ_D`` for any ``D`` is then
        ``(csum[D:-1] - csum[:-D-1]) / D`` -- bit-identical to what
        :func:`mu_matrix` produces, without re-running the cumulative
        sum per depth.
        """
        if self._csum is None:
            starts = self.view.starts
            self._csum = np.vstack(
                [np.zeros((1, starts.shape[1])), np.cumsum(starts, axis=0)]
            )
        return self._csum

    def mu2d(self, days: int) -> np.ndarray:
        """``μ_D`` as a ``(n_days, N)`` matrix (NaN rows during warm-up)."""
        if days < 1:
            raise ValueError("days must be >= 1")
        if days not in self._mu2d_cache:
            starts = self.view.starts
            csum = self._day_csum()
            out = np.empty_like(starts)
            out[: min(days, starts.shape[0])] = np.nan
            if starts.shape[0] > days:
                np.subtract(csum[days:-1], csum[: -days - 1], out=out[days:])
                out[days:] /= days
            self._mu2d_cache[days] = out
        return self._mu2d_cache[days]

    def mu_flat(self, days: int) -> np.ndarray:
        """Flat ``μ_D`` series (NaN during the first ``days`` days)."""
        if days not in self._mu_cache:
            self._mu_cache[days] = self.mu2d(days).reshape(-1)
        return self._mu_cache[days]

    def eta_flat(self, days: int) -> np.ndarray:
        """Flat ``η`` series: ``s/μ_D`` with the night/dawn guard.

        The guard threshold is per day: ``eta_floor_fraction`` times that
        day's peak ``μ_D`` value (mirroring the online predictor, where
        the node knows its own history matrix).
        """
        if days not in self._eta_cache:
            mu2d = self.mu2d(days)
            # mu rows are all-finite (complete history) or all-NaN
            # (warm-up): a plain max propagates NaN into the floor,
            # whose comparison below is then False for the whole row --
            # the same exclusion the old where(-inf) dance produced.
            day_peak = mu2d.max(axis=1, keepdims=True)
            floor2d = np.maximum(self.eta_floor_fraction * day_peak, MU_EPS)
            mu = mu2d.reshape(-1)
            floor = np.broadcast_to(floor2d, mu2d.shape).reshape(-1)
            s = self.starts_flat
            bright = mu >= floor  # False on NaN mu/floor: warm-up stays dark
            # NaN on warm-up rows, neutral 1.0 under the dawn guard, and
            # the true ratio where mu is bright -- the where-divide
            # computes the same element divisions as masked indexing
            # would, without the gather/scatter round trip.
            eta = np.where(np.isfinite(mu), 1.0, np.nan)
            np.divide(s, mu, out=eta, where=bright)
            self._eta_cache[days] = eta
        return self._eta_cache[days]

    def phi_flat(self, days: int, k_param: int) -> np.ndarray:
        """Flat ``Φ_K`` series (Eq. 3); NaN where the lookback is short.

        Sliding-window form: with ``θ(k) = k/K`` the weighted numerator
        over the window is ``(1/K)·Σ_k k·η``, so two running sums --
        ``B[t] = Σ_{j<K} η(t-j)`` (plain) and ``W[t] = Σ_{j<K} j·η(t-j)``
        (lag-weighted) -- give every ``K`` incrementally:

        ``Φ_K(t) = (K·B[t] - W[t]) · 2 / (K·(K+1))``

        Advancing ``K -> K+1`` costs one shifted add per running sum
        instead of the ``O(K)`` shifted adds of the reference kernel.
        The sums are cached per ``D`` and every intermediate ``K``
        passed on the way up is cached too, so requesting a smaller
        ``K`` later is a pure cache hit.
        """
        if k_param < 1:
            raise ValueError("K must be >= 1")
        key = (days, k_param)
        if key not in self._phi_cache:
            state = self._window_cache.get(days)
            if state is None:
                zeros = np.zeros(self.n_boundaries, dtype=float)
                state = [0, zeros, zeros.copy()]
                self._window_cache[days] = state
            k_done, window, weighted = state
            eta = self.eta_flat(days)
            for k in range(k_done + 1, k_param + 1):
                lag = k - 1
                if lag == 0:
                    window += eta
                else:
                    window[lag:] += eta[:-lag]
                    weighted[lag:] += lag * eta[:-lag]
                phi = (k * window - weighted) * (2.0 / (k * (k + 1)))
                phi[: k - 1] = np.nan  # incomplete lookback at trace start
                self._phi_cache[(days, k)] = phi
            state[0] = max(k_done, k_param)
        return self._phi_cache[key]

    def conditioned_term(self, days: int, k_param: int) -> np.ndarray:
        """``q[t] = μ_D(t+1) · Φ_K(t)``, length ``n_boundaries - 1``."""
        key = (days, k_param)
        if key not in self._q_cache:
            mu = self.mu_flat(days)
            phi = self.phi_flat(days, k_param)
            self._q_cache[key] = mu[1:] * phi[:-1]
        return self._q_cache[key]

    def conditioned_stack(
        self,
        days_seq: Sequence[int],
        ks_seq: Sequence[int],
        idx: np.ndarray,
        out: np.ndarray = None,
    ) -> np.ndarray:
        """Conditioned terms for a block of ``(D, K)`` pairs at ``idx``.

        The sweep-side kernel: evaluates
        ``q[D, K, t] = μ_D(t+1) · Φ_K(t)`` for every ``D`` in
        ``days_seq`` x every ``K`` in ``ks_seq``, but *only* at the
        scored boundary indices ``idx`` (sorted ascending, e.g.
        :func:`repro.metrics.roi.roi_indices`), returning shape
        ``(len(days_seq), len(ks_seq), len(idx))``.

        Compared to gathering from :meth:`conditioned_term`, this skips
        materialising the full-length ``Φ``/``q`` series: the ``η``
        values each window needs (lags ``0..max(K)-1`` of every scored
        boundary, which may straddle unscored slots) are gathered once,
        after which the sliding-window sums, the ``Φ`` scaling, the
        ``μ`` product and every downstream error op touch only the
        scored subset -- typically ~25 % of the trace under the
        region-of-interest rule.  Memory is ``O(len(days_seq) · max(K) ·
        len(idx))`` for the lag tensor -- callers bound it by chunking
        ``days_seq`` (see ``grid_search``'s ``d_chunk``).

        ``μ`` and ``η`` per ``D`` go through the same memos as the
        scalar API, so repeated sweeps on one batch stay shared.  The
        internal lag/window buffers persist on the batch and are reused
        by same-shaped chunks; pass ``out`` (same shape as the result)
        to recycle the output allocation as well.
        """
        idx = np.asarray(idx)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_boundaries - 1):
            raise ValueError(
                "idx must hold boundary indices in [0, n_boundaries - 1)"
            )
        days_seq = tuple(days_seq)
        ks_seq = tuple(ks_seq)
        if min(ks_seq) < 1:
            raise ValueError("K must be >= 1")
        n_block = len(days_seq)
        max_k = max(ks_seq)
        n_sel = idx.size
        scratch_key = (n_block, max_k, n_sel)
        if self._stack_scratch_key == scratch_key:
            lags, numer, mu_next = self._stack_scratch
        else:
            lags = np.empty((n_block, max_k, n_sel), dtype=float)
            numer = np.empty((n_block, n_sel), dtype=float)
            mu_next = np.empty((n_block, n_sel), dtype=float)
            self._stack_scratch_key = scratch_key
            self._stack_scratch = (lags, numer, mu_next)
        nxt = idx + 1
        for ci, d in enumerate(days_seq):
            mu_next[ci] = self.mu_flat(d)[nxt]
        # Gathered eta neighbourhoods: lags[:, j] = eta(t - j) at every
        # scored t.  (Lag indices clamped at 0 are start-of-trace
        # positions whose phi is NaN-masked below.)
        src = np.maximum(idx[None, :] - np.arange(max_k)[:, None], 0)
        for ci, d in enumerate(days_seq):
            lags[ci] = self.eta_flat(d)[src]
        # Double recurrence for the theta-weighted numerator
        # A_K = sum_{j<K} (K-j) eta(t-j):  B_K = B_{K-1} + eta(t-K+1)
        # (plain window sum) and A_K = A_{K-1} + B_K -- one add each per
        # unit of K.  phi_K is then A_K * 2/(K*(K+1)).
        positions = {}
        for j, k in enumerate(ks_seq):
            positions.setdefault(k, []).append(j)
        out_arr = (
            out
            if out is not None
            else np.empty((n_block, len(ks_seq), n_sel), dtype=float)
        )
        window = lags[:, 0]  # B_1; accumulated in place across K
        np.copyto(numer, window)  # A_1 == B_1
        for k in range(1, max_k + 1):
            if k > 1:
                window += lags[:, k - 1]
                numer += window
            slots = positions.get(k)
            if not slots:
                continue
            q_k = out_arr[:, slots[0]]
            np.multiply(numer, mu_next, out=q_k)
            if k > 1:
                q_k *= 2.0 / (k * (k + 1))
                if n_sel and idx[0] < k - 1:
                    # incomplete lookback at trace start (idx sorted)
                    q_k[:, : np.searchsorted(idx, k - 1)] = np.nan
            for j in slots[1:]:
                out_arr[:, j] = q_k
        return out_arr

    def predictions(self, params: WCMAParams) -> np.ndarray:
        """Predictions ``p[t]`` for ``t = 0 .. n_boundaries-2``.

        ``p[t]`` is the prediction made at boundary ``t`` for the slot
        beginning there (Eq. 1).  NaN where history is incomplete.
        """
        q = self.conditioned_term(params.days, params.k)
        return params.alpha * self.starts_flat[:-1] + (1.0 - params.alpha) * q

    # ------------------------------------------------------------------
    # References for error evaluation, aligned with ``predictions``.
    # ------------------------------------------------------------------
    @property
    def reference_mean(self) -> np.ndarray:
        """Slot-mean reference for Eq. 7 (``m[t]``)."""
        return self.means_flat[:-1]

    @property
    def reference_next_start(self) -> np.ndarray:
        """Next-boundary-sample reference for Eq. 6 (``s[t+1]``)."""
        return self.starts_flat[1:]
