"""Online predictor protocol and shared history machinery.

Every predictor in this package follows the same node-side contract,
mirroring the paper's Fig. 5 sequence: once per slot the node wakes,
measures the incoming power, and produces a prediction for the upcoming
slot.  In code::

    predictor.reset()
    for sample in start_of_slot_samples:      # time order
        prediction = predictor.observe(sample)

``observe`` returns the prediction made *at* that boundary for the slot
that is just beginning (equivalently, for the power at the next
boundary -- ``ê(n+1)`` in the paper's notation).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

__all__ = ["OnlinePredictor", "VectorPredictor", "DayHistory", "FleetDayHistory"]


class OnlinePredictor(abc.ABC):
    """Abstract base class for slot-by-slot online predictors."""

    #: Slots per day this predictor was configured for.
    n_slots: int

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all history and return to the initial state."""

    @abc.abstractmethod
    def observe(self, value: float) -> float:
        """Consume the start-of-slot measurement, return the prediction.

        Parameters
        ----------
        value:
            Measured power at the current slot boundary (``ẽ(n)``).

        Returns
        -------
        float
            Prediction for the next boundary / upcoming slot (``ê(n+1)``).
        """

    def run(self, samples: np.ndarray) -> np.ndarray:
        """Feed a flat, time-ordered sample array; return all predictions.

        ``predictions[t]`` is the prediction made at boundary ``t`` (for
        boundary ``t+1``).  The predictor is *not* reset first, so warm
        state can be carried across calls; call :meth:`reset` explicitly
        for a cold start.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ValueError(f"samples must be 1-D, got shape {samples.shape}")
        out = np.empty_like(samples)
        for t, value in enumerate(samples):
            out[t] = self.observe(float(value))
        return out

    # ------------------------------------------------------------------
    # Checkpointing (optional per predictor)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the online state, sufficient to resume exactly.

        Predictors that support checkpoint/resume (WCMA, EWMA) override
        this together with :meth:`load_state_dict`; restoring the
        snapshot into a freshly constructed predictor and continuing
        must be indistinguishable from never having stopped.  The
        serving layer (:mod:`repro.serve`) persists these snapshots
        after each observed slot so a restarted daemon resumes without
        replaying history.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state checkpointing"
        )

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        Raises ``ValueError`` when the snapshot's geometry or
        configuration does not match this instance.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state checkpointing"
        )


class VectorPredictor(abc.ABC):
    """Abstract base class for lock-step fleet predictors.

    A vector predictor is the fleet-scale counterpart of
    :class:`OnlinePredictor`: it advances ``batch_size`` independent
    nodes through the *same* slot boundary at once.  All nodes share the
    slot grid (``n_slots`` and the position within the day), but each
    node sees its own measurement and carries its own history, so a
    heterogeneous fleet (different sites, different weather) is one
    ``(B,)`` array per call::

        kernel.reset()
        for t in range(total_boundaries):
            predictions = kernel.observe(samples[t])   # (B,) -> (B,)

    Elementwise, a vector kernel must reproduce its scalar counterpart:
    node ``b`` of ``observe(values)[b]`` equals what a dedicated
    :class:`OnlinePredictor` fed ``values[b]`` slot by slot would
    return (``tests/management/test_fleet_parity.py`` enforces this to
    1e-9 for every built-in predictor).
    """

    #: Slots per day this predictor was configured for.
    n_slots: int
    #: Number of nodes stepped per ``observe`` call (``B``).
    batch_size: int

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all history and return to the initial state."""

    @abc.abstractmethod
    def observe(self, values: np.ndarray) -> np.ndarray:
        """Consume one ``(B,)`` slot-boundary sample, return predictions.

        Parameters
        ----------
        values:
            ``(batch_size,)`` measured power at the current slot
            boundary, one entry per node (``ẽ_b(n)``).

        Returns
        -------
        numpy.ndarray
            ``(batch_size,)`` predictions for the upcoming slot
            (``ê_b(n+1)``).
        """

    def run(self, samples: np.ndarray) -> np.ndarray:
        """Feed a ``(T, B)`` sample matrix; return all predictions.

        Row ``t`` of the result is the prediction made at boundary
        ``t``.  As with :meth:`OnlinePredictor.run`, state is carried
        across calls; call :meth:`reset` for a cold start.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != self.batch_size:
            raise ValueError(
                f"samples must have shape (T, {self.batch_size}), "
                f"got {samples.shape}"
            )
        out = np.empty_like(samples)
        for t in range(samples.shape[0]):
            out[t] = self.observe(samples[t])
        return out


def as_batch(values, batch_size: int) -> np.ndarray:
    """Validate and coerce one slot's fleet samples to a ``(B,)`` array."""
    values = np.asarray(values, dtype=float)
    if values.shape != (batch_size,):
        raise ValueError(
            f"expected shape ({batch_size},), got {values.shape}"
        )
    if (values < 0).any():
        raise ValueError("power samples must be non-negative")
    return values


class DayHistory:
    """Ring buffer of the last ``depth`` completed days of slot samples.

    Used by predictors that condition on "the same slot on previous
    days" (WCMA's ``E_{D x N}`` matrix, EWMA's per-slot smoothing).

    The buffer distinguishes *completed* days (full rows) from the
    current, partially observed day.  ``push_slot`` appends to the
    current day and automatically rolls it into history when the row
    fills up.
    """

    def __init__(self, n_slots: int, depth: int):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.n_slots = n_slots
        self.depth = depth
        self._rows = np.zeros((depth, n_slots), dtype=float)
        self._n_complete = 0
        self._write_row = 0
        self._current = np.zeros(n_slots, dtype=float)
        self._slot = 0

    # ------------------------------------------------------------------
    @property
    def n_complete_days(self) -> int:
        """Number of fully observed days available (capped at ``depth``)."""
        return min(self._n_complete, self.depth)

    @property
    def total_days_completed(self) -> int:
        """Days completed since reset (uncapped; grows forever)."""
        return self._n_complete

    @property
    def current_slot(self) -> int:
        """Index of the next slot to be written on the current day."""
        return self._slot

    def push_slot(self, value: float) -> None:
        """Record the start-of-slot sample for the current slot."""
        self._current[self._slot] = value
        self._slot += 1
        if self._slot == self.n_slots:
            self._rows[self._write_row] = self._current
            self._write_row = (self._write_row + 1) % self.depth
            self._n_complete += 1
            self._slot = 0

    def slot_mean(self, slot: int, depth: Optional[int] = None) -> float:
        """Mean of ``slot``'s samples over the last ``depth`` complete days.

        ``μ_D(slot)`` in the paper (Eq. 2).  Returns ``nan`` when no
        complete day is available yet.
        """
        use = self.n_complete_days if depth is None else min(depth, self.n_complete_days)
        if use == 0:
            return float("nan")
        rows = self._recent_rows(use)
        return float(rows[:, slot % self.n_slots].mean())

    def slot_column(self, slot: int, depth: Optional[int] = None) -> np.ndarray:
        """Samples of ``slot`` over the last ``depth`` complete days (oldest first)."""
        use = self.n_complete_days if depth is None else min(depth, self.n_complete_days)
        if use == 0:
            return np.empty(0, dtype=float)
        return self._recent_rows(use)[:, slot % self.n_slots].copy()

    def _recent_rows(self, count: int) -> np.ndarray:
        """The last ``count`` completed day rows, oldest first."""
        end = self._write_row
        idx = (np.arange(end - count, end)) % self.depth
        return self._rows[idx]

    def reset(self) -> None:
        """Clear all state."""
        self._rows.fill(0.0)
        self._current.fill(0.0)
        self._n_complete = 0
        self._write_row = 0
        self._slot = 0

    def state_dict(self) -> dict:
        """Snapshot of the ring buffer (value copies, not views)."""
        return {
            "n_slots": self.n_slots,
            "depth": self.depth,
            "rows": self._rows.copy(),
            "n_complete": self._n_complete,
            "write_row": self._write_row,
            "current": self._current.copy(),
            "slot": self._slot,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (geometry must match)."""
        if int(state["n_slots"]) != self.n_slots or int(state["depth"]) != self.depth:
            raise ValueError(
                f"history snapshot is {state['depth']}x{state['n_slots']}; "
                f"this history is {self.depth}x{self.n_slots}"
            )
        rows = np.asarray(state["rows"], dtype=float)
        current = np.asarray(state["current"], dtype=float)
        if rows.shape != self._rows.shape or current.shape != self._current.shape:
            raise ValueError(
                f"history snapshot arrays have shapes {rows.shape}/"
                f"{current.shape}; expected {self._rows.shape}/"
                f"{self._current.shape}"
            )
        self._rows[...] = rows
        self._current[...] = current
        self._n_complete = int(state["n_complete"])
        self._write_row = int(state["write_row"])
        self._slot = int(state["slot"])


class FleetDayHistory:
    """Vectorized :class:`DayHistory`: one ring buffer for ``B`` nodes.

    Because a fleet steps in lock-step, the day/slot counters are shared
    scalars; only the sample values fan out over the batch axis.  The
    buffer is therefore ``(depth, n_slots, B)`` and every accessor that
    returns a per-slot scalar in :class:`DayHistory` returns a ``(B,)``
    array here.
    """

    def __init__(self, n_slots: int, depth: int, batch_size: int):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.n_slots = n_slots
        self.depth = depth
        self.batch_size = batch_size
        self._rows = np.zeros((depth, n_slots, batch_size), dtype=float)
        self._n_complete = 0
        self._write_row = 0
        self._current = np.zeros((n_slots, batch_size), dtype=float)
        self._slot = 0

    # ------------------------------------------------------------------
    @property
    def n_complete_days(self) -> int:
        """Number of fully observed days available (capped at ``depth``)."""
        return min(self._n_complete, self.depth)

    @property
    def total_days_completed(self) -> int:
        """Days completed since reset (uncapped; grows forever)."""
        return self._n_complete

    @property
    def current_slot(self) -> int:
        """Index of the next slot to be written on the current day."""
        return self._slot

    def push_slot(self, values: np.ndarray) -> None:
        """Record the ``(B,)`` start-of-slot samples for the current slot."""
        self._current[self._slot] = values
        self._slot += 1
        if self._slot == self.n_slots:
            self._rows[self._write_row] = self._current
            self._write_row = (self._write_row + 1) % self.depth
            self._n_complete += 1
            self._slot = 0

    def slot_mean(self, slot: int, depth: Optional[int] = None) -> np.ndarray:
        """Per-node mean of ``slot`` over the last ``depth`` complete days.

        ``(B,)``; NaN when no complete day is available yet.
        """
        use = self.n_complete_days if depth is None else min(depth, self.n_complete_days)
        if use == 0:
            return np.full(self.batch_size, np.nan)
        rows = self._recent_rows(use)
        return rows[:, slot % self.n_slots, :].mean(axis=0)

    def slot_history(self, slot: int, depth: Optional[int] = None) -> np.ndarray:
        """Samples of ``slot`` over the last ``depth`` complete days.

        ``(use, B)``, oldest first (the fleet counterpart of
        :meth:`DayHistory.slot_column`); empty when no complete day is
        available yet.
        """
        use = self.n_complete_days if depth is None else min(depth, self.n_complete_days)
        if use == 0:
            return np.empty((0, self.batch_size), dtype=float)
        return self._recent_rows(use)[:, slot % self.n_slots, :].copy()

    def mu_rows(self, depth: Optional[int] = None) -> Optional[np.ndarray]:
        """Per-node ``μ_D`` over every slot: ``(n_slots, B)`` or None.

        The fleet counterpart of the cached ``_mu_row`` the online WCMA
        predictor recomputes once per day.
        """
        use = self.n_complete_days if depth is None else min(depth, self.n_complete_days)
        if use == 0:
            return None
        return self._recent_rows(use).mean(axis=0)

    def _recent_rows(self, count: int) -> np.ndarray:
        """The last ``count`` completed day rows, oldest first."""
        end = self._write_row
        idx = (np.arange(end - count, end)) % self.depth
        return self._rows[idx]

    def reset(self) -> None:
        """Clear all state."""
        self._rows.fill(0.0)
        self._current.fill(0.0)
        self._n_complete = 0
        self._write_row = 0
        self._slot = 0

    def state_dict(self) -> dict:
        """Snapshot of the fleet ring buffer (value copies, not views)."""
        return {
            "n_slots": self.n_slots,
            "depth": self.depth,
            "batch_size": self.batch_size,
            "rows": self._rows.copy(),
            "n_complete": self._n_complete,
            "write_row": self._write_row,
            "current": self._current.copy(),
            "slot": self._slot,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (geometry must match)."""
        if (
            int(state["n_slots"]) != self.n_slots
            or int(state["depth"]) != self.depth
            or int(state["batch_size"]) != self.batch_size
        ):
            raise ValueError(
                f"fleet history snapshot is {state['depth']}x{state['n_slots']}"
                f"xB{state['batch_size']}; this history is "
                f"{self.depth}x{self.n_slots}xB{self.batch_size}"
            )
        rows = np.asarray(state["rows"], dtype=float)
        current = np.asarray(state["current"], dtype=float)
        if rows.shape != self._rows.shape or current.shape != self._current.shape:
            raise ValueError(
                f"fleet history snapshot arrays have shapes {rows.shape}/"
                f"{current.shape}; expected {self._rows.shape}/"
                f"{self._current.shape}"
            )
        self._rows[...] = rows
        self._current[...] = current
        self._n_complete = int(state["n_complete"])
        self._write_row = int(state["write_row"])
        self._slot = int(state["slot"])
