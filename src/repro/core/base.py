"""Online predictor protocol and shared history machinery.

Every predictor in this package follows the same node-side contract,
mirroring the paper's Fig. 5 sequence: once per slot the node wakes,
measures the incoming power, and produces a prediction for the upcoming
slot.  In code::

    predictor.reset()
    for sample in start_of_slot_samples:      # time order
        prediction = predictor.observe(sample)

``observe`` returns the prediction made *at* that boundary for the slot
that is just beginning (equivalently, for the power at the next
boundary -- ``ê(n+1)`` in the paper's notation).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

__all__ = ["OnlinePredictor", "DayHistory"]


class OnlinePredictor(abc.ABC):
    """Abstract base class for slot-by-slot online predictors."""

    #: Slots per day this predictor was configured for.
    n_slots: int

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all history and return to the initial state."""

    @abc.abstractmethod
    def observe(self, value: float) -> float:
        """Consume the start-of-slot measurement, return the prediction.

        Parameters
        ----------
        value:
            Measured power at the current slot boundary (``ẽ(n)``).

        Returns
        -------
        float
            Prediction for the next boundary / upcoming slot (``ê(n+1)``).
        """

    def run(self, samples: np.ndarray) -> np.ndarray:
        """Feed a flat, time-ordered sample array; return all predictions.

        ``predictions[t]`` is the prediction made at boundary ``t`` (for
        boundary ``t+1``).  The predictor is *not* reset first, so warm
        state can be carried across calls; call :meth:`reset` explicitly
        for a cold start.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ValueError(f"samples must be 1-D, got shape {samples.shape}")
        out = np.empty_like(samples)
        for t, value in enumerate(samples):
            out[t] = self.observe(float(value))
        return out


class DayHistory:
    """Ring buffer of the last ``depth`` completed days of slot samples.

    Used by predictors that condition on "the same slot on previous
    days" (WCMA's ``E_{D x N}`` matrix, EWMA's per-slot smoothing).

    The buffer distinguishes *completed* days (full rows) from the
    current, partially observed day.  ``push_slot`` appends to the
    current day and automatically rolls it into history when the row
    fills up.
    """

    def __init__(self, n_slots: int, depth: int):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.n_slots = n_slots
        self.depth = depth
        self._rows = np.zeros((depth, n_slots), dtype=float)
        self._n_complete = 0
        self._write_row = 0
        self._current = np.zeros(n_slots, dtype=float)
        self._slot = 0

    # ------------------------------------------------------------------
    @property
    def n_complete_days(self) -> int:
        """Number of fully observed days available (capped at ``depth``)."""
        return min(self._n_complete, self.depth)

    @property
    def total_days_completed(self) -> int:
        """Days completed since reset (uncapped; grows forever)."""
        return self._n_complete

    @property
    def current_slot(self) -> int:
        """Index of the next slot to be written on the current day."""
        return self._slot

    def push_slot(self, value: float) -> None:
        """Record the start-of-slot sample for the current slot."""
        self._current[self._slot] = value
        self._slot += 1
        if self._slot == self.n_slots:
            self._rows[self._write_row] = self._current
            self._write_row = (self._write_row + 1) % self.depth
            self._n_complete += 1
            self._slot = 0

    def slot_mean(self, slot: int, depth: Optional[int] = None) -> float:
        """Mean of ``slot``'s samples over the last ``depth`` complete days.

        ``μ_D(slot)`` in the paper (Eq. 2).  Returns ``nan`` when no
        complete day is available yet.
        """
        use = self.n_complete_days if depth is None else min(depth, self.n_complete_days)
        if use == 0:
            return float("nan")
        rows = self._recent_rows(use)
        return float(rows[:, slot % self.n_slots].mean())

    def slot_column(self, slot: int, depth: Optional[int] = None) -> np.ndarray:
        """Samples of ``slot`` over the last ``depth`` complete days (oldest first)."""
        use = self.n_complete_days if depth is None else min(depth, self.n_complete_days)
        if use == 0:
            return np.empty(0, dtype=float)
        return self._recent_rows(use)[:, slot % self.n_slots].copy()

    def _recent_rows(self, count: int) -> np.ndarray:
        """The last ``count`` completed day rows, oldest first."""
        end = self._write_row
        idx = (np.arange(end - count, end)) % self.depth
        return self._rows[idx]

    def reset(self) -> None:
        """Clear all state."""
        self._rows.fill(0.0)
        self._current.fill(0.0)
        self._n_complete = 0
        self._write_row = 0
        self._slot = 0
