"""Frozen pre-v2 sweep kernels: the parity and benchmark baseline.

This module preserves, verbatim, the sweep implementation the repo
shipped before the sweep-engine v2 rework (prefix-sum μ caches,
sliding-window Φ, fused error cube in :mod:`repro.core.optimizer`):

* :class:`ReferenceBatch` -- the original :class:`~repro.core.wcma.WCMABatch`
  kernels: per-``D`` ``μ`` recomputed with :func:`~repro.core.wcma.mu_matrix`
  (twice -- once for ``mu_flat``, once inside ``eta_flat``, exactly as the
  old code did) and ``Φ_K`` accumulated with one shifted add per window
  position.
* :func:`reference_error_cube` -- the original ``grid_search`` inner
  loop: two nested Python loops over ``(D, K)``, each evaluating all
  alphas with one broadcast multiply-add and a division by the
  reference.

It exists for two reasons and should not grow features:

1. **Parity.** ``tests/core/test_sweep_parity.py`` pins the v2 kernels
   against these to <= 1e-12 on the full default grid, per site.
2. **Benchmarking.** ``benchmarks/test_bench_sweep.py`` measures the
   fused engine against this exact "before" and asserts the >= 5x bar.

``grid_search(engine="loop")`` routes here, so the baseline stays
executable from the public API.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.wcma import ETA_FLOOR_FRACTION, MU_EPS, WCMAParams, mu_matrix
from repro.solar.slots import SlotView

__all__ = ["ReferenceBatch", "reference_error_cube"]


class ReferenceBatch:
    """The pre-v2 ``WCMABatch`` kernel set (see module docstring).

    Caching mirrors the old class exactly: ``μ`` and ``η`` memoised per
    ``D``, the conditioned term per ``(D, K)``; nothing is shared across
    ``D`` values.
    """

    def __init__(self, view: SlotView, eta_floor_fraction: float = ETA_FLOOR_FRACTION):
        self.view = view
        self.n_slots = view.n_slots
        self.eta_floor_fraction = eta_floor_fraction
        self.starts_flat = view.flat_starts()
        self.means_flat = view.flat_means()
        self._mu_cache: Dict[int, np.ndarray] = {}
        self._eta_cache: Dict[int, np.ndarray] = {}
        self._q_cache: Dict[Tuple[int, int], np.ndarray] = {}

    def mu_flat(self, days: int) -> np.ndarray:
        if days not in self._mu_cache:
            self._mu_cache[days] = mu_matrix(self.view.starts, days).reshape(-1)
        return self._mu_cache[days]

    def eta_flat(self, days: int) -> np.ndarray:
        if days not in self._eta_cache:
            mu2d = mu_matrix(self.view.starts, days)
            finite2d = np.isfinite(mu2d)
            filled = np.where(finite2d, mu2d, -np.inf)
            day_peak = filled.max(axis=1, keepdims=True)
            floor2d = np.maximum(self.eta_floor_fraction * day_peak, MU_EPS)
            mu = mu2d.reshape(-1)
            floor = np.broadcast_to(floor2d, mu2d.shape).reshape(-1)
            s = self.starts_flat
            eta = np.full_like(s, np.nan)
            finite = np.isfinite(mu)
            bright = finite & (mu >= floor)
            eta[bright] = s[bright] / mu[bright]
            eta[finite & ~bright] = 1.0
            self._eta_cache[days] = eta
        return self._eta_cache[days]

    def phi_flat(self, days: int, k_param: int) -> np.ndarray:
        if k_param < 1:
            raise ValueError("K must be >= 1")
        eta = self.eta_flat(days)
        total = eta.size
        theta = WCMAParams.theta(k_param)
        acc = np.zeros(total, dtype=float)
        for k in range(1, k_param + 1):
            shift = k_param - k  # eta index t - shift contributes theta[k-1]
            if shift == 0:
                acc += theta[k - 1] * eta
            else:
                acc[shift:] += theta[k - 1] * eta[:-shift]
        phi = acc / theta.sum()
        phi[: k_param - 1] = np.nan  # incomplete lookback at trace start
        return phi

    def conditioned_term(self, days: int, k_param: int) -> np.ndarray:
        key = (days, k_param)
        if key not in self._q_cache:
            mu = self.mu_flat(days)
            phi = self.phi_flat(days, k_param)
            self._q_cache[key] = mu[1:] * phi[:-1]
        return self._q_cache[key]


def reference_error_cube(
    batch: ReferenceBatch,
    days: Sequence[int],
    ks: Sequence[int],
    alphas: Sequence[float],
    reference: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """The original grid-search inner loop: one (A, T) pass per (D, K)."""
    ref_sel = reference[mask]
    s_sel = batch.starts_flat[:-1][mask]
    alpha_vec = np.asarray(alphas, dtype=float)[:, None]  # (A, 1)
    errors = np.full((len(days), len(ks), len(alphas)), np.nan)
    for i, d_param in enumerate(days):
        for j, k_param in enumerate(ks):
            q_sel = batch.conditioned_term(d_param, k_param)[mask]
            # predictions for all alphas at once: (A, T_sel)
            preds = alpha_vec * s_sel + (1.0 - alpha_vec) * q_sel
            pct = np.abs(ref_sel - preds) / ref_sel
            errors[i, j, :] = pct.mean(axis=1)
    return errors
