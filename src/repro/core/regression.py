"""Regression-based predictors (extension baselines).

Two classical time-series baselines the harvesting literature measures
against, both causal and cheap enough for a node:

* :class:`ARPredictor` -- an order-``p`` autoregressive model over the
  *clear-sky-index-like* normalised signal: the raw power is divided by
  the per-slot historical average (so the AR model sees a roughly
  stationary series), predicted one step ahead, and re-scaled by the
  next slot's average.  Coefficients are re-fit periodically by least
  squares over a sliding window.
* :class:`SlotLinearTrendPredictor` -- per-slot linear extrapolation
  over the last ``window`` days: fits ``value ~ day`` for each slot
  independently; captures seasonal drift, ignores weather.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.base import DayHistory, OnlinePredictor

__all__ = ["ARPredictor", "SlotLinearTrendPredictor"]


class ARPredictor(OnlinePredictor):
    """AR(p) predictor on the per-slot-normalised power signal.

    Parameters
    ----------
    n_slots:
        Slots per day (``N``).
    order:
        AR order ``p``.
    history_days:
        Days used for the per-slot normalising average.
    fit_window:
        Normalised samples kept for the periodic least-squares re-fit.
    refit_every:
        Steps between coefficient re-fits.
    """

    def __init__(
        self,
        n_slots: int,
        order: int = 3,
        history_days: int = 10,
        fit_window: int = 512,
        refit_every: int = 48,
    ):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if order < 1:
            raise ValueError("order must be >= 1")
        if history_days < 1:
            raise ValueError("history_days must be >= 1")
        if fit_window <= order + 1:
            raise ValueError("fit_window must exceed order + 1")
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        self.n_slots = n_slots
        self.order = order
        self.history_days = history_days
        self.fit_window = fit_window
        self.refit_every = refit_every
        self._history = DayHistory(n_slots=n_slots, depth=history_days)
        self._recent = deque(maxlen=fit_window)
        self._lags = deque(maxlen=order)
        self._coefficients = None
        self._steps = 0
        self._mu_row = None
        self._mu_days_seen = 0

    def reset(self) -> None:
        self._history.reset()
        self._recent.clear()
        self._lags.clear()
        self._coefficients = None
        self._steps = 0
        self._mu_row = None
        self._mu_days_seen = 0

    # ------------------------------------------------------------------
    def observe(self, value: float) -> float:
        if value < 0:
            raise ValueError(f"power sample must be non-negative, got {value}")
        self._refresh_mu()
        slot = self._history.current_slot

        if self._mu_row is None:
            self._history.push_slot(value)
            return float(value)  # warm-up

        floor = max(0.05 * float(self._mu_row.max()), 1e-9)
        mu_now = float(self._mu_row[slot])
        # Night guard, mirroring WCMA's eta handling: below the floor the
        # index is undefined; use the neutral 1.0 so the AR model sees a
        # stationary daylight series instead of a 0/1 day-night square wave.
        normalised = value / mu_now if mu_now >= floor else 1.0

        self._recent.append(normalised)
        self._lags.append(normalised)
        self._steps += 1
        if self._steps % self.refit_every == 0:
            self._fit()

        mu_next = float(self._mu_row[(slot + 1) % self.n_slots])
        predicted_index = self._predict_index()
        prediction = max(0.0, predicted_index * mu_next)

        self._history.push_slot(value)
        return float(prediction)

    # ------------------------------------------------------------------
    def _refresh_mu(self) -> None:
        completed = self._history.total_days_completed
        if completed == self._mu_days_seen:
            return
        self._mu_days_seen = completed
        available = self._history.n_complete_days
        if available == 0:
            self._mu_row = None
            return
        rows = self._history._recent_rows(min(self.history_days, available))
        self._mu_row = rows.mean(axis=0)

    def _fit(self) -> None:
        """Least-squares AR(p) fit over the sliding window."""
        data = np.asarray(self._recent, dtype=float)
        if data.size <= self.order + 1:
            return
        rows = data.size - self.order
        design = np.empty((rows, self.order))
        for lag in range(self.order):
            design[:, lag] = data[self.order - 1 - lag : data.size - 1 - lag]
        target = data[self.order :]
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        self._coefficients = solution

    def _predict_index(self) -> float:
        """One-step AR prediction of the normalised signal."""
        if self._coefficients is None or len(self._lags) < self.order:
            return self._lags[-1] if self._lags else 1.0
        lags = list(self._lags)[::-1]  # newest first
        return float(np.dot(self._coefficients, lags[: self.order]))


class SlotLinearTrendPredictor(OnlinePredictor):
    """Per-slot linear extrapolation over the last ``window`` days.

    For each slot the last ``window`` observed values (one per day) are
    fit with a line in the day index and extrapolated one day ahead --
    tomorrow's value for the *next* slot is estimated from the next
    slot's recent daily trend.  Captures seasonal ramps exactly, clouds
    not at all; a useful lower-bound baseline for the comparison bench.
    """

    def __init__(self, n_slots: int, window: int = 5):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if window < 2:
            raise ValueError("window must be >= 2")
        self.n_slots = n_slots
        self.window = window
        self._history = DayHistory(n_slots=n_slots, depth=window)

    def reset(self) -> None:
        self._history.reset()

    def observe(self, value: float) -> float:
        if value < 0:
            raise ValueError(f"power sample must be non-negative, got {value}")
        slot = self._history.current_slot
        available = self._history.n_complete_days

        if available < 2:
            prediction = value
        else:
            column = self._history.slot_column(slot + 1, self.window)
            days = np.arange(column.size, dtype=float)
            slope, intercept = np.polyfit(days, column, 1)
            prediction = max(0.0, slope * column.size + intercept)

        self._history.push_slot(value)
        return float(prediction)
