"""Realizable online dynamic parameter selection (extension).

Section IV-C of the paper establishes, with a clairvoyant selector, that
adapting ``(alpha, K)`` per prediction could cut the average error by
more than half, and concludes "it is promising to develop dynamic
parameters selection algorithms".  This module builds that future work:
*causal* selectors that choose among an ensemble of WCMA experts (one
per ``(alpha, K)`` grid point) using only information available on the
node at prediction time.

The feedback signal is causal either way: by default the realized
*slot mean* power (``feedback="slot_mean"``) -- a harvesting node
integrates its input current anyway, so the just-finished slot's mean
is known at the next boundary, and it is exactly the quantity MAPE
scores against (Eq. 7) -- or, for a node without energy metering, the
next start-of-slot sample (``feedback="sample"``, Eq. 6 alignment).
Selectors:

* :class:`FollowTheLeaderSelector` -- pick the expert with the smallest
  discounted cumulative absolute error so far.
* :class:`EpsilonGreedySelector` -- follow the leader, but explore a
  random expert with probability ``epsilon`` (useful when weather
  regimes shift and the leaderboard goes stale).
* :class:`HedgeSelector` -- exponential-weights (full-information Hedge)
  prediction: a *weighted blend* of all experts, with weights updated
  multiplicatively from each expert's loss.

These appear in ``benchmarks/test_bench_adaptive.py`` sandwiched
between the static optimum and the clairvoyant bound of Table V.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import OnlinePredictor
from repro.core.optimizer import DEFAULT_ALPHAS, DEFAULT_KS
from repro.core.wcma import WCMAParams, WCMAPredictor

__all__ = [
    "AdaptiveSelector",
    "FollowTheLeaderSelector",
    "SoftminSelector",
    "EpsilonGreedySelector",
    "HedgeSelector",
    "COMPACT_ALPHAS",
    "COMPACT_DAYS",
    "COMPACT_KS",
    "compact_grid",
]

#: Expert grid of the *registered* selectors (``make_predictor("adaptive",
#: ...)``): 4 alphas x 4 Ks x 3 Ds = 48 experts.  Deliberately *not* a
#: subset of the paper's tuning grid: alpha=0.45/0.55 sit between its
#: 0.1-step alpha values and K=7/10 extend past its K<=6 cap, so the
#: ensemble contains experts no fixed-parameter grid configuration can
#: match (that is what lets the selectors beat a per-trace re-tuned WCMA
#: on the regime-shift cells of the robustness matrix).  Pass
#: ``alphas=``/``ks=``/``days=`` to the factory (or a ``grid=`` to the
#: class) to change it.
COMPACT_ALPHAS = (0.45, 0.55, 0.7, 0.9)
COMPACT_KS = (3, 5, 7, 10)
COMPACT_DAYS = (5, 10, 15)


def _default_grid(days: int) -> List[WCMAParams]:
    return [
        WCMAParams(alpha=a, days=days, k=k)
        for a in DEFAULT_ALPHAS
        for k in DEFAULT_KS
    ]


def compact_grid(
    days: Sequence[int] = COMPACT_DAYS,
    alphas: Sequence[float] = COMPACT_ALPHAS,
    ks: Sequence[int] = COMPACT_KS,
) -> List[WCMAParams]:
    """The registered selectors' expert grid (``alphas`` x ``ks`` x ``days``).

    ``days`` accepts a single int as well as a sequence, so
    ``compact_grid(days=10)`` still means "every expert at D=10".
    """
    days_list = (days,) if isinstance(days, int) else tuple(days)
    return [
        WCMAParams(alpha=a, days=d, k=k)
        for a in alphas
        for k in ks
        for d in days_list
    ]


class AdaptiveSelector(OnlinePredictor):
    """Base class: an ensemble of WCMA experts plus a selection rule.

    Subclasses implement :meth:`_select`, mapping the current expert
    scores to either an expert index or a weight vector.

    Parameters
    ----------
    n_slots:
        Slots per day (``N``).
    days:
        History depth ``D`` shared by all experts (the paper fixes D in
        its dynamic study).
    grid:
        Expert parameter sets; defaults to the full (alpha, K) paper grid.
    discount:
        Per-step multiplicative discount on accumulated scores in
        ``(0, 1]``; values below 1 make the selector forget old weather.
    feedback:
        ``"slot_mean"`` (default) scores experts against the realized
        slot mean supplied via :meth:`provide_slot_mean` (falling back
        to the sample when none was provided); ``"sample"`` always uses
        the next start-of-slot sample.
    """

    def __init__(
        self,
        n_slots: int,
        days: int = 10,
        grid: Optional[Sequence[WCMAParams]] = None,
        discount: float = 0.98,
        feedback: str = "slot_mean",
    ):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if not 0.0 < discount <= 1.0:
            raise ValueError(f"discount must be in (0, 1], got {discount}")
        if feedback not in ("slot_mean", "sample"):
            raise ValueError(
                f"feedback must be 'slot_mean' or 'sample', got {feedback!r}"
            )
        self.n_slots = n_slots
        self.days = days
        self.grid: Tuple[WCMAParams, ...] = tuple(
            grid if grid is not None else _default_grid(days)
        )
        if not self.grid:
            raise ValueError("expert grid must be non-empty")
        self.discount = discount
        self.feedback = feedback
        self._experts = [WCMAPredictor(n_slots, p) for p in self.grid]
        self._scores = np.zeros(len(self.grid), dtype=float)
        self._last_predictions: Optional[np.ndarray] = None
        self._last_choice: Optional[int] = None
        self._pending_slot_mean: Optional[float] = None
        self._reference_peak = 0.0

    # ------------------------------------------------------------------
    @property
    def uses_slot_mean_feedback(self) -> bool:
        """True when evaluators should call :meth:`provide_slot_mean`."""
        return self.feedback == "slot_mean"

    def provide_slot_mean(self, mean_watts: float) -> None:
        """Report the just-finished slot's realized mean power.

        Called (by the node or the evaluator) at a slot boundary,
        *before* ``observe`` for that boundary.
        """
        if mean_watts < 0:
            raise ValueError(f"mean power must be non-negative, got {mean_watts}")
        self._pending_slot_mean = float(mean_watts)

    def reset(self) -> None:
        for expert in self._experts:
            expert.reset()
        self._scores.fill(0.0)
        self._last_predictions = None
        self._last_choice = None
        self._pending_slot_mean = None
        self._reference_peak = 0.0

    def observe(self, value: float) -> float:
        if value < 0:
            raise ValueError(f"power sample must be non-negative, got {value}")
        # 1. Feedback: score every expert's previous prediction against
        #    the realized slot mean (when available) or the sample just
        #    measured (full-information setting either way).
        reference = value
        if self._pending_slot_mean is not None:
            reference = self._pending_slot_mean
            self._pending_slot_mean = None
        if self._last_predictions is not None:
            # Relative loss, mirroring the MAPE objective: references
            # below the ROI floor (10 % of the running peak) are skipped,
            # exactly as Section III skips them when scoring.
            self._reference_peak = max(self._reference_peak, reference)
            floor = 0.1 * self._reference_peak
            if reference >= floor and floor > 0:
                losses = np.abs(self._last_predictions - reference) / reference
                self._scores *= self.discount
                self._scores += losses
                self._learn(losses)

        # 2. Every expert predicts the next boundary.
        predictions = np.array(
            [expert.observe(value) for expert in self._experts], dtype=float
        )
        self._last_predictions = predictions

        # 3. Selection rule.
        prediction = self._select(predictions)
        return float(prediction)

    # ------------------------------------------------------------------
    @property
    def last_choice(self) -> Optional[int]:
        """Index of the expert chosen at the previous step (if single)."""
        return self._last_choice

    @property
    def chosen_params(self) -> Optional[WCMAParams]:
        """Parameters of the most recently chosen expert (if single)."""
        if self._last_choice is None:
            return None
        return self.grid[self._last_choice]

    def _learn(self, losses: np.ndarray) -> None:
        """Hook for subclasses needing per-step loss updates."""

    @abc.abstractmethod
    def _select(self, predictions: np.ndarray) -> float:
        """Combine/choose among expert ``predictions`` for this step."""


class FollowTheLeaderSelector(AdaptiveSelector):
    """Always follow the expert with the lowest discounted total loss."""

    def _select(self, predictions: np.ndarray) -> float:
        self._last_choice = int(np.argmin(self._scores))
        return predictions[self._last_choice]


class SoftminSelector(FollowTheLeaderSelector):
    """Softmin-weighted blend of the leaderboard (smoothed FTL).

    Predicts the expert average weighted by
    ``softmin(discounted scores / tau)``: at ``tau -> 0`` this is
    follow-the-leader, at ``tau -> inf`` the uniform ensemble mean.
    Blending removes FTL's hard-switching noise -- near-tied experts
    share the prediction instead of flapping -- which is what lets the
    registered ``adaptive`` predictor edge out even the per-trace
    re-tuned WCMA on the regime-shift robustness cells.
    ``last_choice`` still reports the current single leader.
    """

    def __init__(
        self,
        n_slots: int,
        days: int = 10,
        grid: Optional[Sequence[WCMAParams]] = None,
        discount: float = 0.97,
        tau: float = 0.25,
        feedback: str = "slot_mean",
    ):
        super().__init__(
            n_slots, days=days, grid=grid, discount=discount, feedback=feedback
        )
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau

    def _select(self, predictions: np.ndarray) -> float:
        shifted = self._scores - self._scores.min()
        weights = np.exp(-shifted / self.tau)
        weights /= weights.sum()
        self._last_choice = int(np.argmin(self._scores))
        return float(np.dot(weights, predictions))


class EpsilonGreedySelector(AdaptiveSelector):
    """Follow the leader, explore uniformly with probability ``epsilon``."""

    def __init__(
        self,
        n_slots: int,
        days: int = 10,
        grid: Optional[Sequence[WCMAParams]] = None,
        discount: float = 0.98,
        epsilon: float = 0.05,
        seed: int = 0,
        feedback: str = "slot_mean",
    ):
        super().__init__(
            n_slots, days=days, grid=grid, discount=discount, feedback=feedback
        )
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self._seed)

    def _select(self, predictions: np.ndarray) -> float:
        if self._rng.random() < self.epsilon:
            self._last_choice = int(self._rng.integers(len(self.grid)))
        else:
            self._last_choice = int(np.argmin(self._scores))
        return predictions[self._last_choice]


class HedgeSelector(AdaptiveSelector):
    """Exponential-weights blend of all experts (full-information Hedge).

    The prediction is the weight-averaged ensemble prediction; weights
    decay exponentially in each expert's (scale-normalised) loss.
    """

    def __init__(
        self,
        n_slots: int,
        days: int = 10,
        grid: Optional[Sequence[WCMAParams]] = None,
        discount: float = 1.0,
        learning_rate: float = 2.0,
        feedback: str = "slot_mean",
    ):
        super().__init__(
            n_slots, days=days, grid=grid, discount=discount, feedback=feedback
        )
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self._log_weights = np.zeros(len(self.grid), dtype=float)
        self._loss_scale = 1.0

    def reset(self) -> None:
        super().reset()
        self._log_weights = np.zeros(len(self.grid), dtype=float)
        self._loss_scale = 1.0

    def _learn(self, losses: np.ndarray) -> None:
        # Normalise losses by a running scale so learning_rate is
        # dimensionless (irradiance is O(1000) W/m^2).
        peak = float(losses.max())
        if peak > self._loss_scale:
            self._loss_scale = peak
        self._log_weights -= self.learning_rate * losses / self._loss_scale
        self._log_weights -= self._log_weights.max()  # renormalise

    def _select(self, predictions: np.ndarray) -> float:
        weights = np.exp(self._log_weights)
        weights /= weights.sum()
        self._last_choice = int(np.argmax(weights))
        return float(np.dot(weights, predictions))
