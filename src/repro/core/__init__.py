"""Core prediction algorithms (the paper's primary subject).

* :mod:`repro.core.wcma` -- the evaluated predictor of Recas et al. [5]
  (Eqs. 1-5): online class plus a vectorized batch engine used by the
  parameter sweeps.
* :mod:`repro.core.ewma` -- the EWMA predictor of Kansal et al. [2].
* :mod:`repro.core.baselines` -- persistence / moving-average / previous-
  day baselines used for comparison experiments.
* :mod:`repro.core.optimizer` -- exhaustive (alpha, D, K) grid search
  minimising MAPE or MAPE' (Section IV-B).
* :mod:`repro.core.dynamic` -- clairvoyant per-prediction parameter
  selection (Section IV-C, Table V).
* :mod:`repro.core.adaptive` -- *extension*: realizable online dynamic
  parameter selection (follow-the-leader, epsilon-greedy).
* :mod:`repro.core.registry` -- predictor factories by name.
"""

from repro.core.base import OnlinePredictor, VectorPredictor
from repro.core.wcma import WCMAParams, WCMAPredictor, WCMAVector, WCMABatch
from repro.core.ewma import EWMAPredictor, EWMAVector
from repro.core.baselines import (
    MovingAveragePredictor,
    MovingAverageVector,
    PersistencePredictor,
    PersistenceVector,
    PreviousDayPredictor,
    PreviousDayVector,
)
from repro.core.proenergy import ProEnergyPredictor
from repro.core.regression import ARPredictor, SlotLinearTrendPredictor
from repro.core.optimizer import GridSearchResult, SweepSpec, grid_search, sweep_many
from repro.core.dynamic import DynamicResult, clairvoyant_dynamic
from repro.core.adaptive import AdaptiveSelector, FollowTheLeaderSelector, EpsilonGreedySelector
from repro.core.registry import (
    available_predictors,
    make_predictor,
    make_vector_predictor,
    supports_vector,
    vector_predictors,
)

__all__ = [
    "OnlinePredictor",
    "VectorPredictor",
    "WCMAParams",
    "WCMAPredictor",
    "WCMAVector",
    "WCMABatch",
    "EWMAPredictor",
    "EWMAVector",
    "PersistencePredictor",
    "PersistenceVector",
    "MovingAveragePredictor",
    "MovingAverageVector",
    "PreviousDayPredictor",
    "PreviousDayVector",
    "ProEnergyPredictor",
    "ARPredictor",
    "SlotLinearTrendPredictor",
    "GridSearchResult",
    "SweepSpec",
    "grid_search",
    "sweep_many",
    "DynamicResult",
    "clairvoyant_dynamic",
    "AdaptiveSelector",
    "FollowTheLeaderSelector",
    "EpsilonGreedySelector",
    "available_predictors",
    "vector_predictors",
    "supports_vector",
    "make_predictor",
    "make_vector_predictor",
]
