"""Simple baseline predictors used in comparison experiments.

These are the naive strategies the related work measures against:

* :class:`PersistencePredictor` -- "the next slot looks like this one"
  (equivalent to WCMA with ``alpha = 1``).
* :class:`PreviousDayPredictor` -- "the next slot looks like the same
  slot yesterday".
* :class:`MovingAveragePredictor` -- unconditioned ``μ_D`` (WCMA with
  ``alpha = 0`` and the conditioning factor forced to 1): the paper's
  *conditioned average term* without the conditioning, which isolates
  the contribution of ``Φ_K`` in the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    DayHistory,
    FleetDayHistory,
    OnlinePredictor,
    VectorPredictor,
    as_batch,
)

__all__ = [
    "PersistencePredictor",
    "PreviousDayPredictor",
    "MovingAveragePredictor",
    "PersistenceVector",
    "PreviousDayVector",
    "MovingAverageVector",
]


class PersistencePredictor(OnlinePredictor):
    """Predicts that the next slot's power equals the current sample."""

    def __init__(self, n_slots: int):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        self.n_slots = n_slots

    def reset(self) -> None:
        pass  # stateless

    def observe(self, value: float) -> float:
        if value < 0:
            raise ValueError(f"power sample must be non-negative, got {value}")
        return float(value)


class PreviousDayPredictor(OnlinePredictor):
    """Predicts the next slot from the same slot exactly one day ago."""

    def __init__(self, n_slots: int):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        self.n_slots = n_slots
        self._history = DayHistory(n_slots=n_slots, depth=1)

    def reset(self) -> None:
        self._history.reset()

    def observe(self, value: float) -> float:
        if value < 0:
            raise ValueError(f"power sample must be non-negative, got {value}")
        slot = self._history.current_slot
        if self._history.n_complete_days > 0:
            prediction = self._history.slot_mean(slot + 1, 1)
        else:
            prediction = value
        self._history.push_slot(value)
        return float(prediction)


class MovingAveragePredictor(OnlinePredictor):
    """Predicts the next slot as its unconditioned ``μ_D`` average.

    Equivalent to WCMA with ``alpha = 0`` and ``Φ_K ≡ 1``; comparing it
    with real WCMA isolates the benefit of the conditioning factor.
    """

    def __init__(self, n_slots: int, days: int = 10):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if days < 1:
            raise ValueError("days must be >= 1")
        self.n_slots = n_slots
        self.days = days
        self._history = DayHistory(n_slots=n_slots, depth=days)

    def reset(self) -> None:
        self._history.reset()

    def observe(self, value: float) -> float:
        if value < 0:
            raise ValueError(f"power sample must be non-negative, got {value}")
        slot = self._history.current_slot
        if self._history.n_complete_days > 0:
            prediction = self._history.slot_mean(slot + 1, self.days)
        else:
            prediction = value
        self._history.push_slot(value)
        return float(prediction)


class PersistenceVector(VectorPredictor):
    """Lock-step :class:`PersistencePredictor` over ``B`` nodes."""

    def __init__(self, n_slots: int, batch_size: int):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.n_slots = n_slots
        self.batch_size = batch_size

    def reset(self) -> None:
        pass  # stateless

    def observe(self, values: np.ndarray) -> np.ndarray:
        return as_batch(values, self.batch_size).copy()


class PreviousDayVector(VectorPredictor):
    """Lock-step :class:`PreviousDayPredictor` over ``B`` nodes."""

    def __init__(self, n_slots: int, batch_size: int):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.n_slots = n_slots
        self.batch_size = batch_size
        self._history = FleetDayHistory(n_slots=n_slots, depth=1, batch_size=batch_size)

    def reset(self) -> None:
        self._history.reset()

    def observe(self, values: np.ndarray) -> np.ndarray:
        values = as_batch(values, self.batch_size)
        slot = self._history.current_slot
        if self._history.n_complete_days > 0:
            prediction = self._history.slot_mean(slot + 1, 1)
        else:
            prediction = values.copy()
        self._history.push_slot(values)
        return prediction


class MovingAverageVector(VectorPredictor):
    """Lock-step :class:`MovingAveragePredictor` over ``B`` nodes."""

    def __init__(self, n_slots: int, batch_size: int, days: int = 10):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if days < 1:
            raise ValueError("days must be >= 1")
        self.n_slots = n_slots
        self.batch_size = batch_size
        self.days = days
        self._history = FleetDayHistory(
            n_slots=n_slots, depth=days, batch_size=batch_size
        )

    def reset(self) -> None:
        self._history.reset()

    def observe(self, values: np.ndarray) -> np.ndarray:
        values = as_batch(values, self.batch_size)
        slot = self._history.current_slot
        if self._history.n_complete_days > 0:
            prediction = self._history.slot_mean(slot + 1, self.days)
        else:
            prediction = values.copy()
        self._history.push_slot(values)
        return prediction
