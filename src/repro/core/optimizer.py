"""Exhaustive parameter optimisation (Section IV of the paper).

For a given trace and sampling rate ``N``, sweep the full
``(alpha, D, K)`` grid and find the combination minimising the average
error.  Both error definitions are supported so Table II (MAPE vs
MAPE') can be reproduced:

* ``objective="mape"``  -- Eq. 7 / Eq. 8 (slot-mean reference), the
  paper's preferred function;
* ``objective="mape_prime"`` -- Eq. 6 (next-boundary-sample reference),
  as used by previous works.

The sweep is organised so the expensive pieces are shared: ``μ_D`` and
``η`` are computed once per ``D``, the conditioned term once per
``(D, K)``, and each ``alpha`` then costs one fused multiply-add over
the region of interest (see :class:`repro.core.wcma.WCMABatch`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.core.wcma import WCMABatch, WCMAParams
from repro.metrics.roi import DEFAULT_ROI_FRACTION, DEFAULT_WARMUP_DAYS, roi_mask
from repro.solar.trace import SolarTrace

__all__ = [
    "DEFAULT_ALPHAS",
    "DEFAULT_DAYS",
    "DEFAULT_KS",
    "GridSearchResult",
    "grid_search",
    "mape_for_params",
]

#: Paper grid: 0 <= alpha <= 1 in steps of 0.1.
DEFAULT_ALPHAS: Tuple[float, ...] = tuple(round(a * 0.1, 1) for a in range(11))
#: Paper grid: 2 <= D <= 20.
DEFAULT_DAYS: Tuple[int, ...] = tuple(range(2, 21))
#: Paper grid: 1 <= K <= 6.
DEFAULT_KS: Tuple[int, ...] = tuple(range(1, 7))


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of one exhaustive sweep.

    Attributes
    ----------
    best:
        The error-minimising :class:`WCMAParams`.
    best_error:
        The minimised average error (fraction).
    objective:
        ``"mape"`` or ``"mape_prime"``.
    errors:
        Full error cube, shape ``(len(days), len(ks), len(alphas))``.
    alphas, days, ks:
        The grids the cube is indexed by.
    n_slots:
        Sampling rate ``N`` the sweep was run at.
    """

    best: WCMAParams
    best_error: float
    objective: str
    errors: np.ndarray
    alphas: Tuple[float, ...]
    days: Tuple[int, ...]
    ks: Tuple[int, ...]
    n_slots: int

    def error_at(self, alpha: float, days: int, k: int) -> float:
        """Error of one grid point (exact match on grid values)."""
        try:
            i = self.days.index(days)
            j = self.ks.index(k)
            a = self.alphas.index(alpha)
        except ValueError:
            raise KeyError(f"({alpha}, {days}, {k}) is not on the sweep grid")
        return float(self.errors[i, j, a])

    def best_for_k(self, k: int) -> Tuple[WCMAParams, float]:
        """Best (alpha, D) and error for a fixed ``K`` (Table III, last column)."""
        j = self.ks.index(k)
        plane = self.errors[:, j, :]
        i, a = np.unravel_index(np.nanargmin(plane), plane.shape)
        params = WCMAParams(alpha=self.alphas[a], days=self.days[i], k=k)
        return params, float(plane[i, a])

    def best_for_days(self, days: int) -> Tuple[WCMAParams, float]:
        """Best (alpha, K) and error for a fixed ``D`` (Fig. 7 series)."""
        i = self.days.index(days)
        plane = self.errors[i, :, :]
        j, a = np.unravel_index(np.nanargmin(plane), plane.shape)
        params = WCMAParams(alpha=self.alphas[a], days=days, k=self.ks[j])
        return params, float(plane[j, a])


def grid_search(
    trace: SolarTrace,
    n_slots: int,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    days: Sequence[int] = DEFAULT_DAYS,
    ks: Sequence[int] = DEFAULT_KS,
    objective: str = "mape",
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
    batch: WCMABatch = None,
) -> GridSearchResult:
    """Sweep the (alpha, D, K) grid on ``trace`` at sampling rate ``N``.

    Parameters
    ----------
    trace:
        Native-resolution solar trace.
    n_slots:
        Slots per day (``N``); must divide the trace's samples/day.
    alphas, days, ks:
        Parameter grids; default to the paper's ranges.
    objective:
        ``"mape"`` (Eq. 7 reference) or ``"mape_prime"`` (Eq. 6).
    roi_fraction, warmup_days:
        Region-of-interest configuration (Section III / IV-A).
    batch:
        Optional pre-built :class:`WCMABatch` to reuse its caches across
        multiple sweeps of the same trace and ``N``.

    Returns
    -------
    GridSearchResult
    """
    if objective not in ("mape", "mape_prime"):
        raise ValueError(f"objective must be 'mape' or 'mape_prime', got {objective!r}")
    alphas = tuple(float(a) for a in alphas)
    days = tuple(int(d) for d in days)
    ks = tuple(int(k) for k in ks)
    if not alphas or not days or not ks:
        raise ValueError("parameter grids must be non-empty")
    if max(days) * 2 > trace.n_days:
        # Not fatal, but the warm-up convention assumes enough days for a
        # full history plus a scored region.
        if max(days) >= trace.n_days:
            raise ValueError(
                f"history depth D={max(days)} needs more days than the "
                f"trace provides ({trace.n_days})"
            )

    if batch is None:
        batch = WCMABatch.from_trace(trace, n_slots)
    s = batch.starts_flat[:-1]

    if objective == "mape":
        reference = batch.reference_mean
    else:
        reference = batch.reference_next_start
    mask = roi_mask(
        reference, n_slots, roi_fraction=roi_fraction, warmup_days=warmup_days
    )
    ref_sel = reference[mask]
    s_sel = s[mask]
    if ref_sel.size == 0:
        raise ValueError("region of interest is empty; trace too short or dark")

    alpha_vec = np.asarray(alphas, dtype=float)[:, None]  # (A, 1)
    errors = np.full((len(days), len(ks), len(alphas)), np.nan)

    for i, d_param in enumerate(days):
        for j, k_param in enumerate(ks):
            q_sel = batch.conditioned_term(d_param, k_param)[mask]
            # predictions for all alphas at once: (A, T_sel)
            preds = alpha_vec * s_sel + (1.0 - alpha_vec) * q_sel
            pct = np.abs(ref_sel - preds) / ref_sel
            errors[i, j, :] = pct.mean(axis=1)

    flat_best = np.nanargmin(errors)
    i, j, a = np.unravel_index(flat_best, errors.shape)
    best = WCMAParams(alpha=alphas[a], days=days[i], k=ks[j])
    return GridSearchResult(
        best=best,
        best_error=float(errors[i, j, a]),
        objective=objective,
        errors=errors,
        alphas=alphas,
        days=days,
        ks=ks,
        n_slots=n_slots,
    )


def mape_for_params(
    trace: SolarTrace,
    n_slots: int,
    params: WCMAParams,
    objective: str = "mape",
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
    batch: WCMABatch = None,
) -> float:
    """Average error of a single parameter set (convenience wrapper)."""
    result = grid_search(
        trace,
        n_slots,
        alphas=(params.alpha,),
        days=(params.days,),
        ks=(params.k,),
        objective=objective,
        roi_fraction=roi_fraction,
        warmup_days=warmup_days,
        batch=batch,
    )
    return result.best_error
