"""Exhaustive parameter optimisation (Section IV of the paper).

For a given trace and sampling rate ``N``, sweep the full
``(alpha, D, K)`` grid and find the combination minimising the average
error.  Both error definitions are supported so Table II (MAPE vs
MAPE') can be reproduced:

* ``objective="mape"``  -- Eq. 7 / Eq. 8 (slot-mean reference), the
  paper's preferred function;
* ``objective="mape_prime"`` -- Eq. 6 (next-boundary-sample reference),
  as used by previous works.

Sweep-engine v2 architecture
----------------------------
The sweep is a tensor pipeline with one cache level per parameter axis
(see :class:`repro.core.wcma.WCMABatch` for the kernel details):

* **per trace** -- one day-axis prefix sum gives ``μ_D`` for every
  ``D`` as a slice; the region of interest is resolved once to integer
  indices (:func:`repro.metrics.roi.roi_indices`) so all later kernels
  gather the ~25 % of scored boundaries instead of masking full series;
* **per D** -- flat ``μ``/``η`` memoised on the batch;
* **per (D, K)** -- ``Φ_K`` advances by a sliding-window recurrence
  (two shifted adds per unit of ``K``);
* **per (D, K, alpha)** -- the whole error cube is materialised by one
  fused kernel: the stacked conditioned terms
  (:meth:`~repro.core.wcma.WCMABatch.conditioned_stack`) are normalised
  once (``g = q/r``, ``h = s/r``) so grid point ``alpha`` costs
  ``mean |1 - alpha*h - (1-alpha)*g|``, and consecutive alphas differ by
  the precomputed drift ``d_alpha*(g - h)`` -- one in-place add, one
  abs and one row-sum per alpha, swept over cache-sized row blocks
  (:func:`_alpha_profile_means`).  No division, no full-size
  prediction tensor, no DRAM round trip per alpha.

Memory of the fused cube is bounded by chunking the ``D`` axis
(``d_chunk``; the default targets ~96 MB of temporaries).  The
pre-change per-``(D, K)`` Python loop is preserved verbatim in
:mod:`repro.core.sweep_reference` and stays reachable via
``engine="loop"``; the parity suite pins the two engines to <= 1e-12
on the full default grid and the sweep benchmark asserts the >= 5x
speedup of the fused path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.core.sweep_reference import ReferenceBatch, reference_error_cube
from repro.core.wcma import WCMABatch, WCMAParams
from repro.metrics.roi import DEFAULT_ROI_FRACTION, DEFAULT_WARMUP_DAYS, roi_mask
from repro.solar.trace import SolarTrace

__all__ = [
    "DEFAULT_ALPHAS",
    "DEFAULT_DAYS",
    "DEFAULT_KS",
    "ENGINES",
    "GridSearchResult",
    "SweepSpec",
    "grid_search",
    "sweep_many",
    "mape_for_params",
]

#: Paper grid: 0 <= alpha <= 1 in steps of 0.1.
DEFAULT_ALPHAS: Tuple[float, ...] = tuple(round(a * 0.1, 1) for a in range(11))
#: Paper grid: 2 <= D <= 20.
DEFAULT_DAYS: Tuple[int, ...] = tuple(range(2, 21))
#: Paper grid: 1 <= K <= 6.
DEFAULT_KS: Tuple[int, ...] = tuple(range(1, 7))

#: Sweep engines: "fused" is the v2 tensor pipeline, "loop" the frozen
#: pre-v2 reference (:mod:`repro.core.sweep_reference`).
ENGINES = ("fused", "loop")

#: Temporary-memory target (bytes) used to pick the default ``d_chunk``.
_CHUNK_BYTES = 96 * 1024 * 1024

#: Working-set target (bytes) of one row block in the alpha kernel --
#: sized so the ~5 per-block arrays stay cache-resident while all
#: alphas sweep over them (see :func:`_alpha_profile_means`).
_TILE_BYTES = 2 * 1024 * 1024


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of one exhaustive sweep.

    Attributes
    ----------
    best:
        The error-minimising :class:`WCMAParams`.
    best_error:
        The minimised average error (fraction).
    objective:
        ``"mape"`` or ``"mape_prime"``.
    errors:
        Full error cube, shape ``(len(days), len(ks), len(alphas))``.
    alphas, days, ks:
        The grids the cube is indexed by.
    n_slots:
        Sampling rate ``N`` the sweep was run at.
    meta:
        Sweep provenance: ``engine`` used and whether the trace was
        flagged ``thin_history`` (``2*max(D) > n_days`` -- legal, but
        the warm-up convention leaves little scored data).
    """

    best: WCMAParams
    best_error: float
    objective: str
    errors: np.ndarray
    alphas: Tuple[float, ...]
    days: Tuple[int, ...]
    ks: Tuple[int, ...]
    n_slots: int
    meta: dict = field(default_factory=dict)

    def error_at(self, alpha: float, days: int, k: int) -> float:
        """Error of one grid point (exact match on grid values)."""
        try:
            i = self.days.index(days)
            j = self.ks.index(k)
            a = self.alphas.index(alpha)
        except ValueError:
            raise KeyError(f"({alpha}, {days}, {k}) is not on the sweep grid")
        return float(self.errors[i, j, a])

    def best_for_k(self, k: int) -> Tuple[WCMAParams, float]:
        """Best (alpha, D) and error for a fixed ``K`` (Table III, last column)."""
        j = self.ks.index(k)
        plane = self.errors[:, j, :]
        i, a = np.unravel_index(np.nanargmin(plane), plane.shape)
        params = WCMAParams(alpha=self.alphas[a], days=self.days[i], k=k)
        return params, float(plane[i, a])

    def best_for_days(self, days: int) -> Tuple[WCMAParams, float]:
        """Best (alpha, K) and error for a fixed ``D`` (Fig. 7 series)."""
        i = self.days.index(days)
        plane = self.errors[i, :, :]
        j, a = np.unravel_index(np.nanargmin(plane), plane.shape)
        params = WCMAParams(alpha=self.alphas[a], days=days, k=self.ks[j])
        return params, float(plane[j, a])


# ----------------------------------------------------------------------
# Fused error-cube kernels
# ----------------------------------------------------------------------
def _alpha_profile_means(
    q_rows: np.ndarray,
    inv_ref: np.ndarray,
    s_norm: np.ndarray,
    alphas_sorted: np.ndarray,
) -> np.ndarray:
    """``mean |r - alpha*s - (1-alpha)*q| / r`` per row, for all alphas.

    The residual is evaluated in reference-normalised form: with
    ``g = q/r`` and ``h = s/r`` the percentage error of grid point
    ``alpha`` is ``|1 - alpha*h - (1-alpha)*g|``, whose argument changes
    by exactly ``d_alpha * (g - h)`` between consecutive alphas.  The
    kernel therefore walks the *sorted* alpha grid incrementally -- one
    in-place add, one abs, one row-sum per alpha -- instead of
    rebuilding the prediction from scratch, and it does so over row
    blocks small enough (:data:`_TILE_BYTES`) that ``g``, the step
    array and the scratch buffers stay cache-resident while the whole
    alpha grid sweeps over them.  That keeps the hot loop compute-bound;
    the naive per-alpha broadcast is DRAM-bound and several times
    slower.

    ``q_rows`` is ``(rows, T)``; ``inv_ref``/``s_norm`` are ``(T,)``
    (``1/r`` and ``s/r``).  Returns ``(rows, len(alphas_sorted))`` in
    sorted-alpha order.  NaN ``q`` entries poison every alpha of their
    row, matching the reference loop's ``mean`` over NaN.
    """
    n_rows, total = q_rows.shape
    n_alphas = alphas_sorted.size
    out = np.empty((n_rows, n_alphas), dtype=float)
    steps = np.diff(alphas_sorted)
    uniform_step = (
        n_alphas >= 2
        and steps.size
        and steps.max() - steps.min() <= 1e-12 * max(abs(steps.max()), 1e-300)
    )
    block = max(1, int(_TILE_BYTES // max(total * 8 * 5, 1)))
    alpha0 = alphas_sorted[0]
    base0 = 1.0 - alpha0 * s_norm  # row-independent part of the first alpha
    g = np.empty((block, total), dtype=float)
    drift = np.empty((block, total), dtype=float)
    buf = np.empty((block, total), dtype=float)
    scratch = np.empty((block, total), dtype=float)
    for lo in range(0, n_rows, block):
        n_blk = min(block, n_rows - lo)
        g_b = g[:n_blk]
        drift_b = drift[:n_blk]
        buf_b = buf[:n_blk]
        scratch_b = scratch[:n_blk]
        np.multiply(q_rows[lo : lo + n_blk], inv_ref, out=g_b)
        # d(residual)/d(alpha) = g - h; for a uniform grid pre-scale by
        # the constant step so each alpha advance is a single add.
        np.subtract(g_b, s_norm, out=drift_b)
        if uniform_step:
            drift_b *= steps[0]
        # residual argument at the smallest alpha (one pass when the
        # grid starts at 0, as the paper's does: 1 - 0*h - 1*g = 1 - g)
        if alpha0 == 0.0:
            np.subtract(1.0, g_b, out=buf_b)
        else:
            np.multiply(g_b, alpha0 - 1.0, out=buf_b)
            buf_b += base0
        for j in range(n_alphas):
            if j:
                if uniform_step:
                    buf_b += drift_b
                else:
                    np.multiply(drift_b, steps[j - 1], out=scratch_b)
                    buf_b += scratch_b
            np.abs(buf_b, out=scratch_b)
            out[lo : lo + n_blk, j] = scratch_b.sum(axis=1)
    out /= total
    return out


def _default_chunk(n_days_grid: int, n_ks: int, n_scored: int, n_boundaries: int) -> int:
    """``D``-axis chunk size keeping fused temporaries near _CHUNK_BYTES.

    Per ``D`` the pipeline holds the ``max(K) * n_scored`` lag tensor
    plus the ``n_ks * n_scored`` conditioned-term stack (~8 arrays of
    that order all told) and a few full-length rows of
    ``n_boundaries``.
    """
    per_day = n_ks * n_scored * 64 + n_boundaries * 24
    return max(1, min(n_days_grid, int(_CHUNK_BYTES // max(per_day, 1))))


def _error_cube_fused(
    batch: WCMABatch,
    days: Tuple[int, ...],
    ks: Tuple[int, ...],
    alphas: Tuple[float, ...],
    reference: np.ndarray,
    idx: np.ndarray,
    d_chunk: int = None,
) -> np.ndarray:
    """The (D, K, alpha) error cube in a handful of numpy ops per chunk."""
    ref_sel = reference[idx]
    s_sel = batch.starts_flat[idx]
    inv_ref = 1.0 / ref_sel
    s_norm = s_sel * inv_ref
    alphas_v = np.asarray(alphas, dtype=float)
    order = np.argsort(alphas_v, kind="stable")
    alphas_sorted = alphas_v[order]
    n_scored = idx.size
    errors = np.full((len(days), len(ks), alphas_v.size), np.nan)
    chunk = d_chunk or _default_chunk(
        len(days), len(ks), n_scored, batch.n_boundaries
    )
    q_buf = np.empty((min(chunk, len(days)), len(ks), n_scored), dtype=float)
    for lo in range(0, len(days), chunk):
        block = days[lo : lo + chunk]
        q = batch.conditioned_stack(
            block, ks, idx, out=q_buf[: len(block)]
        )  # (C, nK, n_scored)
        cube = _alpha_profile_means(
            q.reshape(-1, n_scored), inv_ref, s_norm, alphas_sorted
        )
        errors[lo : lo + len(block)][..., order] = cube.reshape(
            len(block), len(ks), -1
        )
    # alpha = 1.0 is pure persistence: the prediction is exactly s for
    # every (D, K), and the paper's 0-dagger invariant (zero error when
    # N equals the native sampling rate) must hold *exactly*, not to
    # within the incremental kernel's ~1e-16 drift.  Recompute that
    # column the way the reference loop does; NaN rows (NaN q poisons
    # every alpha, including 1.0 via 0*q) keep their NaN.
    for a in np.flatnonzero(np.asarray(alphas, dtype=float) == 1.0):
        exact = float(np.mean(np.abs(ref_sel - s_sel) / ref_sel))
        column = errors[:, :, a]
        column[np.isfinite(column)] = exact
    return errors


def grid_search(
    trace: SolarTrace,
    n_slots: int,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    days: Sequence[int] = DEFAULT_DAYS,
    ks: Sequence[int] = DEFAULT_KS,
    objective: str = "mape",
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
    batch: WCMABatch = None,
    engine: str = "fused",
    d_chunk: int = None,
) -> GridSearchResult:
    """Sweep the (alpha, D, K) grid on ``trace`` at sampling rate ``N``.

    Parameters
    ----------
    trace:
        Native-resolution solar trace.
    n_slots:
        Slots per day (``N``); must divide the trace's samples/day.
    alphas, days, ks:
        Parameter grids; default to the paper's ranges.
    objective:
        ``"mape"`` (Eq. 7 reference) or ``"mape_prime"`` (Eq. 6).
    roi_fraction, warmup_days:
        Region-of-interest configuration (Section III / IV-A).
    batch:
        Optional pre-built :class:`WCMABatch` to reuse its caches across
        multiple sweeps of the same trace and ``N``.
    engine:
        ``"fused"`` (v2 tensor pipeline, the default) or ``"loop"`` (the
        frozen pre-v2 reference loop; parity/benchmark baseline).
    d_chunk:
        ``D``-axis chunk size of the fused cube; default is sized from a
        ~96 MB temporary budget.

    Returns
    -------
    GridSearchResult
    """
    if objective not in ("mape", "mape_prime"):
        raise ValueError(f"objective must be 'mape' or 'mape_prime', got {objective!r}")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if d_chunk is not None and d_chunk < 1:
        raise ValueError(f"d_chunk must be >= 1, got {d_chunk}")
    alphas = tuple(float(a) for a in alphas)
    days = tuple(int(d) for d in days)
    ks = tuple(int(k) for k in ks)
    if not alphas or not days or not ks:
        raise ValueError("parameter grids must be non-empty")
    if max(days) >= trace.n_days:
        raise ValueError(
            f"history depth D={max(days)} needs more days than the "
            f"trace provides ({trace.n_days})"
        )
    thin_history = max(days) * 2 > trace.n_days
    if thin_history:
        # Legal, but the warm-up convention assumes enough days for a
        # full history matrix plus a scored region of comparable size.
        warnings.warn(
            f"thin history: 2*max(D) = {2 * max(days)} exceeds the trace "
            f"length ({trace.n_days} days); deep-D grid points are scored "
            f"on very little data",
            RuntimeWarning,
            stacklevel=2,
        )

    if batch is None:
        batch = WCMABatch.from_trace(trace, n_slots)

    if objective == "mape":
        reference = batch.reference_mean
    else:
        reference = batch.reference_next_start
    mask = roi_mask(
        reference, n_slots, roi_fraction=roi_fraction, warmup_days=warmup_days
    )
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        raise ValueError("region of interest is empty; trace too short or dark")

    if engine == "loop":
        reference_batch = ReferenceBatch(batch.view, batch.eta_floor_fraction)
        errors = reference_error_cube(
            reference_batch, days, ks, alphas, reference, mask
        )
    else:
        errors = _error_cube_fused(
            batch, days, ks, alphas, reference, idx, d_chunk=d_chunk
        )

    flat_best = np.nanargmin(errors)
    i, j, a = np.unravel_index(flat_best, errors.shape)
    best = WCMAParams(alpha=alphas[a], days=days[i], k=ks[j])
    return GridSearchResult(
        best=best,
        best_error=float(errors[i, j, a]),
        objective=objective,
        errors=errors,
        alphas=alphas,
        days=days,
        ks=ks,
        n_slots=n_slots,
        meta={"engine": engine, "thin_history": thin_history},
    )


@dataclass(frozen=True)
class SweepSpec:
    """One unit of work for :func:`sweep_many`.

    ``batch`` optionally injects a pre-built engine (e.g. from the
    experiment-level memo); when omitted, batches are built once per
    distinct ``(trace, n_slots)`` within the call and shared between
    specs -- so e.g. the MAPE and MAPE' sweeps of Table II reuse one
    set of ``μ``/``η`` caches.
    """

    trace: SolarTrace
    n_slots: int
    objective: str = "mape"
    batch: WCMABatch = None


def sweep_many(
    specs: Sequence[Union[SweepSpec, Tuple]],
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    days: Sequence[int] = DEFAULT_DAYS,
    ks: Sequence[int] = DEFAULT_KS,
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
    engine: str = "fused",
    d_chunk: int = None,
) -> List[GridSearchResult]:
    """Run several grid searches against shared per-(trace, N) caches.

    ``specs`` is a sequence of :class:`SweepSpec` (or bare
    ``(trace, n_slots[, objective])`` tuples); results come back in the
    same order.  Each result is identical to the corresponding
    independent :func:`grid_search` call (property-tested); the point of
    the entry point is cache sharing: one :class:`WCMABatch` per
    distinct ``(trace, n_slots)`` serves every spec that scores it, so
    multi-objective or multi-``N`` table reproductions pay for the
    ``μ``/``η``/``Φ`` kernels once.
    """
    resolved = [
        spec if isinstance(spec, SweepSpec) else SweepSpec(*spec) for spec in specs
    ]
    shared = {}
    for spec in resolved:
        if spec.batch is not None:
            shared.setdefault((id(spec.trace), spec.n_slots), spec.batch)
    results = []
    for spec in resolved:
        key = (id(spec.trace), spec.n_slots)
        batch = spec.batch
        if batch is None:
            batch = shared.get(key)
            if batch is None:
                batch = WCMABatch.from_trace(spec.trace, spec.n_slots)
                shared[key] = batch
        results.append(
            grid_search(
                spec.trace,
                spec.n_slots,
                alphas=alphas,
                days=days,
                ks=ks,
                objective=spec.objective,
                roi_fraction=roi_fraction,
                warmup_days=warmup_days,
                batch=batch,
                engine=engine,
                d_chunk=d_chunk,
            )
        )
    return results


def mape_for_params(
    trace: SolarTrace,
    n_slots: int,
    params: WCMAParams,
    objective: str = "mape",
    roi_fraction: float = DEFAULT_ROI_FRACTION,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
    batch: WCMABatch = None,
) -> float:
    """Average error of a single parameter set (convenience wrapper)."""
    result = grid_search(
        trace,
        n_slots,
        alphas=(params.alpha,),
        days=(params.days,),
        ks=(params.k,),
        objective=objective,
        roi_fraction=roi_fraction,
        warmup_days=warmup_days,
        batch=batch,
    )
    return result.best_error
