"""Sharded fleet execution: spec-shipped blocks with checkpoint/resume.

The lock-step :class:`~repro.management.fleet.FleetSimulator` holds its
whole fleet in memory; at a million nodes that is the wrong shape --
the full per-slot record alone would be terabytes, and one process
pins one core.  This module scales the same simulation out by slicing
the fleet into **fixed-size node blocks** that stream through the
shared executor:

* A :class:`FleetPlan` is the *whole fleet as a value*: axis lists
  (sites / predictors / controllers / capacities / scenarios) plus
  primitive hardware parameters.  It is a few hundred bytes however
  many nodes it describes -- workers rebuild their own block's specs
  from the plan via ``build_fleet_specs(..., node_range=...)`` (the
  mixed-radix node identity is global, so block boundaries never change
  which node gets which axes).
* Each block runs :meth:`~repro.management.fleet.FleetSimulator.run_aggregate`,
  producing a structure-of-arrays
  :class:`~repro.management.fleet.FleetAggregate` of ``O(block)``
  memory whatever the horizon (``dtype="float32"`` halves it again for
  storage/IPC).  Per-node results are invariant to the block
  partitioning (bitwise -- every kernel is elementwise across nodes),
  so block size is purely a memory/scheduling knob.
* With a :class:`~repro.parallel.cache.ResultCache`, every finished
  block is **checkpointed** under a digest of (plan, block range,
  dtype, dataset identities, code salt): an interrupted fleet year
  resumes from its completed blocks, and re-running a grown fleet
  recomputes only the new tail.

``run_fleet_blocks(plan)`` is therefore the resumable, multicore form
of ``FleetSimulator(build_fleet_specs(...)).run_aggregate()`` -- same
numbers, flat memory, near-linear in cores and shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.management.fleet import FleetAggregate
from repro.solar.scenarios import DEFAULT_SCENARIO_SEED
from repro.parallel.cache import ResultCache, canonical_payload, dataset_identity
from repro.parallel.executor import ExecutionStats, execute_units

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "FleetPlan",
    "plan_blocks",
    "run_fleet_blocks",
]

#: Default nodes per block: large enough that per-block spec building
#: and dispatch are noise next to the slot loop, small enough that a
#: block's full simulator state (SlotView columns + records) stays in
#: the tens of megabytes.
DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class FleetPlan:
    """A whole heterogeneous fleet as a small picklable value.

    Mirrors the axes of
    :func:`~repro.experiments.fleet.build_fleet_specs` -- node ``i``
    cycles predictor fastest, site slowest -- but carries only names
    and primitives (the load is two floats, not an object), so shipping
    a plan to a worker costs the same whether it describes 64 nodes or
    a million.
    """

    n_nodes: int
    sites: Optional[Tuple[str, ...]] = ("SPMD",)
    n_days: int = 30
    predictors: Tuple[str, ...] = ("wcma",)
    controllers: Tuple[str, ...] = ("kansal",)
    capacities: Tuple[float, ...] = (250.0,)
    n_slots: int = 48
    panel_area_m2: float = 25e-4
    active_power_watts: float = 40e-3
    sleep_power_watts: float = 40e-6
    supercap_threshold_joules: float = 1000.0
    scenarios: Optional[Tuple[str, ...]] = None
    scenario_seed: int = DEFAULT_SCENARIO_SEED

    def __post_init__(self):
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")

    def spec_kwargs(self) -> dict:
        """Keyword arguments for ``build_fleet_specs`` (minus node_range)."""
        from repro.management.consumer import DutyCycledLoad

        return dict(
            n_nodes=self.n_nodes,
            sites=self.sites,
            n_days=self.n_days,
            predictors=self.predictors,
            controllers=self.controllers,
            capacities=self.capacities,
            n_slots=self.n_slots,
            panel_area_m2=self.panel_area_m2,
            load=DutyCycledLoad(
                active_power_watts=self.active_power_watts,
                sleep_power_watts=self.sleep_power_watts,
            ),
            supercap_threshold_joules=self.supercap_threshold_joules,
            scenarios=self.scenarios,
            scenario_seed=self.scenario_seed,
        )

    def site_list(self) -> Tuple[str, ...]:
        from repro.experiments.common import sites_for

        return sites_for(self.sites)


def plan_blocks(n_nodes: int, block_size: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` node ranges covering the fleet."""
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    return [
        (start, min(start + block_size, n_nodes))
        for start in range(0, n_nodes, block_size)
    ]


def _run_block(plan: FleetPlan, start: int, stop: int, dtype: str) -> FleetAggregate:
    """Simulate one node block (module-level so pools can pickle it).

    The worker rebuilds exactly this block's specs from the plan --
    traces come from the worker's own dataset memo, so consecutive
    blocks of one worker share them -- and returns the ``O(block)``
    aggregate, cast to ``dtype`` for transport.
    """
    from repro.experiments.fleet import build_fleet_specs
    from repro.management.fleet import FleetSimulator

    specs = build_fleet_specs(node_range=(start, stop), **plan.spec_kwargs())
    aggregate = FleetSimulator(specs, plan.n_slots).run_aggregate()
    if dtype != "float64":
        aggregate = aggregate.astype(np.dtype(dtype))
    return aggregate


def _block_key(cache: ResultCache, plan: FleetPlan, start: int, stop: int,
               dtype: str, identities: dict) -> str:
    return cache.key(
        {
            "kind": "fleet-block",
            "plan": canonical_payload(plan),
            "block": [start, stop],
            "dtype": dtype,
            "datasets": identities,
        }
    )


def run_fleet_blocks(
    plan: FleetPlan,
    block_size: int = DEFAULT_BLOCK_SIZE,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    dtype: str = "float64",
    chunk_size: Optional[int] = None,
) -> Tuple[FleetAggregate, ExecutionStats]:
    """Run the planned fleet in sharded blocks; returns (aggregate, stats).

    Parameters
    ----------
    plan:
        The fleet (see :class:`FleetPlan`).
    block_size:
        Nodes per block; the memory/checkpoint granularity.
    jobs / backend / chunk_size:
        Executor policy (``None``/1 jobs = inline).  Blocks are
        independent, so sequential and parallel aggregates are
        byte-identical.
    cache:
        Optional result cache; completed blocks checkpoint into it and
        a re-run resumes from them.
    dtype:
        ``"float64"`` (default) or ``"float32"`` for half-width block
        metrics.
    """
    if dtype not in ("float64", "float32"):
        raise ValueError(f"dtype must be 'float64' or 'float32', got {dtype!r}")
    blocks = plan_blocks(plan.n_nodes, block_size)
    units = [(plan, start, stop, dtype) for start, stop in blocks]

    keys = None
    initializer = None
    initargs = ()
    identities = {
        site: dataset_identity(site)
        for site in plan.site_list()
    }
    if cache is not None:
        keys = [
            _block_key(cache, plan, start, stop, dtype, identities)
            for start, stop in blocks
        ]
    if backend != "thread":
        from repro.experiments.common import warm_worker
        from repro.solar.ingest.sites import measured_specs_for

        initializer = warm_worker
        initargs = (measured_specs_for(plan.site_list()),)

    results, stats = execute_units(
        _run_block,
        units,
        jobs=jobs,
        backend=backend,
        chunk_size=chunk_size,
        initializer=initializer,
        initargs=initargs,
        cache=cache,
        keys=keys,
    )
    return FleetAggregate.concat(results), stats
