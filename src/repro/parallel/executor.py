"""Shared work-unit executor: inline / thread / process backends.

Every parallel harness in the repo dispatches the same shape of work: a
module-level function applied to a list of small picklable argument
tuples (**unit specs** -- names and primitive parameters, never
arrays), whose results merge in unit order.  This module centralises
the execution policy those harnesses used to duplicate:

* **Inline short-circuit** -- ``jobs`` of ``None``/1, a single pending
  unit, or ``backend="inline"`` runs in-process with zero pool
  overhead (a process pool costs ~100 ms of fixed start-up plus a
  fork+pickle per submit; spawning one for one unit is pure loss).
* **Chunked dispatch** -- units are batched into chunks so one submit
  (one pickle round-trip, one future) covers many small units; the
  auto chunk size targets ~4 chunks per worker for load balance.
* **Warm workers** -- an ``initializer`` runs once per worker before
  any unit, re-installing per-process registries (measured sites) and
  optionally pre-building per-worker trace/batch caches, so the first
  unit of every worker does not pay a cold start.
* **Thread backend** -- for workloads dominated by numpy kernels that
  release the GIL, ``backend="thread"`` gets parallelism without any
  fork/pickle cost (and shares the parent's caches for free).
* **Result cache** -- with a :class:`~repro.parallel.cache.ResultCache`
  and per-unit digest keys, cached units never reach the pool and
  fresh results are written back as they complete, which is what makes
  interrupted runs *resume* instead of recompute.

Results always come back in unit order, whatever the backend, chunking
or completion order -- sequential and parallel output stay
byte-identical by construction.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.parallel.cache import MISS, ResultCache

__all__ = ["BACKENDS", "DEFAULT_BACKEND", "ExecutionStats", "execute_units", "run_units"]

#: Supported execution backends.
BACKENDS = ("process", "thread", "inline")

DEFAULT_BACKEND = "process"


@dataclass
class ExecutionStats:
    """How one ``execute_units`` call actually ran (for benchmarks/CLI)."""

    backend: str
    jobs: int
    n_units: int
    cache_hits: int
    cache_misses: int
    chunk_size: int
    n_chunks: int
    dispatch_s: float  #: submit + collect overhead, excl. inline unit work
    elapsed_s: float
    #: Optional per-stage unit-work seconds (e.g. the learned slabs'
    #: features/refit/predict split), filled in by harnesses whose
    #: units report their own timings.  ``None`` when no unit did.
    stage_seconds: Optional[dict] = None

    @property
    def dispatch_per_unit_s(self) -> float:
        """Dispatch overhead amortised per executed unit."""
        executed = self.n_units - self.cache_hits
        return self.dispatch_s / executed if executed else 0.0

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["dispatch_per_unit_s"] = round(self.dispatch_per_unit_s, 6)
        if self.stage_seconds is None:
            payload.pop("stage_seconds")
        else:
            payload["stage_seconds"] = {
                stage: round(seconds, 6)
                for stage, seconds in self.stage_seconds.items()
            }
        return payload


def _run_chunk(fn: Callable, chunk: List[tuple]) -> list:
    """Execute one batch of units in a worker (module-level: picklable)."""
    return [fn(*args) for args in chunk]


def _auto_chunk_size(n_units: int, jobs: int) -> int:
    """~4 chunks per worker: coarse enough to amortise dispatch, fine
    enough that one slow chunk cannot serialise the tail."""
    return max(1, -(-n_units // (jobs * 4)))


def execute_units(
    fn: Callable,
    units: Sequence[tuple],
    *,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    cache: Optional[ResultCache] = None,
    keys: Optional[Sequence[Optional[str]]] = None,
) -> Tuple[list, ExecutionStats]:
    """Run ``fn(*unit)`` for every unit; results in unit order.

    Parameters
    ----------
    fn:
        Module-level callable (process backend pickles it by reference).
    units:
        Argument tuples -- small picklable specs, never arrays.
    jobs:
        Worker count; ``None``/1 runs inline.
    backend:
        One of :data:`BACKENDS` (default ``"process"``).  ``"thread"``
        suits numpy-heavy units that release the GIL; ``"inline"``
        forces in-process execution at any ``jobs``.
    chunk_size:
        Units per submit (default: auto, ~4 chunks per worker).
    initializer / initargs:
        Per-worker warm-up hook (process and thread backends).
    cache / keys:
        Optional result cache and one digest key per unit (``None``
        entries are uncacheable).  Hits skip execution entirely;
        misses are written back as they complete.

    Returns
    -------
    (results, stats):
        Results in unit order and the :class:`ExecutionStats` record.
    """
    backend = backend if backend is not None else DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; available: {BACKENDS}")
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if keys is not None and len(keys) != len(units):
        raise ValueError(
            f"got {len(keys)} cache keys for {len(units)} units"
        )

    t_start = time.perf_counter()
    n_units = len(units)
    results: List[object] = [None] * n_units

    # Cache lookup pass: only misses are dispatched.
    pending: List[int] = []
    hits = 0
    if cache is not None and keys is not None:
        for i, key in enumerate(keys):
            value = cache.get(key) if key is not None else MISS
            if value is MISS:
                pending.append(i)
            else:
                results[i] = value
                hits += 1
    else:
        pending = list(range(n_units))

    effective_jobs = 1 if jobs is None else min(jobs, max(1, len(pending)))
    inline = (
        backend == "inline" or effective_jobs == 1 or len(pending) <= 1
    )

    def _store(i: int, value) -> None:
        results[i] = value
        if cache is not None and keys is not None and keys[i] is not None:
            cache.put(keys[i], value)

    if inline:
        for i in pending:
            _store(i, fn(*units[i]))
        elapsed = time.perf_counter() - t_start
        stats = ExecutionStats(
            backend="inline",
            jobs=1,
            n_units=n_units,
            cache_hits=hits,
            cache_misses=len(pending),
            chunk_size=len(pending) or 1,
            n_chunks=1 if pending else 0,
            dispatch_s=0.0,
            elapsed_s=elapsed,
        )
        return results, stats

    size = chunk_size or _auto_chunk_size(len(pending), effective_jobs)
    chunks = [pending[i:i + size] for i in range(0, len(pending), size)]
    pool_cls = ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    pool_kwargs = {}
    if initializer is not None:
        pool_kwargs.update(initializer=initializer, initargs=initargs)

    dispatch = 0.0
    with pool_cls(max_workers=effective_jobs, **pool_kwargs) as pool:
        t0 = time.perf_counter()
        futures = [
            pool.submit(_run_chunk, fn, [units[i] for i in chunk])
            for chunk in chunks
        ]
        dispatch += time.perf_counter() - t0
        for chunk, future in zip(chunks, futures):
            values = future.result()
            t0 = time.perf_counter()
            for i, value in zip(chunk, values):
                _store(i, value)
            dispatch += time.perf_counter() - t0

    elapsed = time.perf_counter() - t_start
    stats = ExecutionStats(
        backend=backend,
        jobs=effective_jobs,
        n_units=n_units,
        cache_hits=hits,
        cache_misses=len(pending),
        chunk_size=size,
        n_chunks=len(chunks),
        dispatch_s=dispatch,
        elapsed_s=elapsed,
    )
    return results, stats


def run_units(fn: Callable, units: Sequence[tuple], **kwargs) -> list:
    """:func:`execute_units` without the stats record."""
    results, _ = execute_units(fn, units, **kwargs)
    return results
