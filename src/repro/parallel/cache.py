"""Content-addressed on-disk result cache for work-unit results.

Every parallel harness in this repo (the experiment runner, the
robustness matrix, the sharded fleet engine) decomposes its work into
small picklable **unit specs** -- site/scenario/predictor names plus
primitive parameters, never arrays.  A unit's result is a pure function
of its spec, the identity of the datasets it reads, and the code
version, so it can be memoised *on disk* under a digest of exactly
those three things:

``key = sha256(canonical_json({salt, payload}))``

* **payload** -- the unit spec, canonicalised the same way the golden
  suite canonicalises results (sorted keys, tuples as lists,
  dataclasses as tagged dicts), so the digest is stable across
  processes and Python hash seeds.
* **dataset identity** -- synthetic sites are pure functions of their
  name (token ``None``); measured sites contribute their registered
  spec *plus a fingerprint (size + sha256) of the backing file*, so
  re-registering a name against different data -- or editing the file
  in place -- can never serve a stale memo.
* **salt** -- the package version plus :data:`CACHE_SCHEMA_VERSION`;
  bump the schema constant when a change alters cached payloads or
  result semantics without a version bump.

The payoff is *resume*: an interrupted multi-hour robustness matrix or
fleet year re-runs only its missing cells, CI can shard a matrix across
runners against a shared cache directory, and incremental recompute
(one changed site) falls out for free.

Layout on disk: ``<root>/<key[:2]>/<key>.pkl`` (pickled result,
written atomically via rename) plus a ``cache-meta.json`` marker that
records the salt and guards ``clear`` against pointing at a directory
that is not a result cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterable, Optional, Tuple

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "MISS",
    "ResultCache",
    "cache_key",
    "canonical_payload",
    "dataset_identity",
    "default_cache_dir",
    "default_salt",
    "file_fingerprint",
]

#: Schema salt: bump when cached payload shapes or result semantics
#: change without a package-version bump (the version is salted in too).
CACHE_SCHEMA_VERSION = 1

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()

_MARKER_NAME = "cache-meta.json"


def _unlink_quiet(path: Path) -> bool:
    """Remove ``path``, tolerating a concurrent delete.

    Two resuming runs sharing a cache directory can both decide to drop
    the same entry (a corrupt file both treat as a miss, or overlapping
    ``clear`` calls); losing that race must not crash either of them.
    Returns True when this call actually removed the file.
    """
    try:
        path.unlink()
        return True
    except FileNotFoundError:
        return False
    except OSError:
        return False


def default_salt() -> str:
    """The code-version salt: package version + cache schema version."""
    from repro import __version__

    return f"{__version__}/schema-{CACHE_SCHEMA_VERSION}"


def default_cache_dir() -> Path:
    """Resolve the default cache root.

    ``REPRO_SOLAR_CACHE_DIR`` wins when set; otherwise
    ``$XDG_CACHE_HOME/repro-solar`` (``~/.cache/repro-solar``).
    """
    override = os.environ.get("REPRO_SOLAR_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-solar"


def canonical_payload(value):
    """Recursively canonicalise ``value`` for digesting.

    Tuples become lists, dict keys are forced to strings (JSON will
    sort them), dataclass instances become ``{"__spec__": <type>, ...}``
    tagged dicts of their canonicalised fields, and paths become
    strings.  Unsupported types raise ``TypeError`` -- a cache key must
    never silently depend on ``repr`` of an arbitrary object.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips exactly; no rounding -- keys must be exact.
        return value
    if isinstance(value, Path):
        return str(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical_payload(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__spec__": type(value).__name__, **fields}
    if isinstance(value, dict):
        return {str(k): canonical_payload(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_payload(v) for v in value]
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for a cache key: {value!r}"
    )


def cache_key(payload, salt: Optional[str] = None) -> str:
    """sha256 digest of the canonical JSON form of ``(salt, payload)``."""
    body = json.dumps(
        {"salt": salt if salt is not None else default_salt(),
         "payload": canonical_payload(payload)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode()).hexdigest()


def file_fingerprint(path) -> dict:
    """Size + content sha256 of a data file (for dataset identity)."""
    p = Path(path)
    digest = hashlib.sha256()
    with open(p, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return {"size": p.stat().st_size, "sha256": digest.hexdigest()}


def dataset_identity(site: str):
    """Cache-key token of what ``build_dataset(site)`` would serve.

    ``None`` for synthetic sites (pure functions of the name).  For
    measured sites: the registered spec *and* the backing file's
    fingerprint, so neither re-registering the name against another
    file nor editing the file in place can hit a stale entry.
    """
    from repro.solar.datasets import dataset_token

    token = dataset_token(site)
    if token is None:
        return None
    return {
        "spec": canonical_payload(token),
        "file": file_fingerprint(token.path),
    }


class ResultCache:
    """Content-addressed pickle store under one root directory.

    Entries live at ``<root>/<key[:2]>/<key>.pkl``.  ``get``/``put``
    never raise on a corrupt or half-written entry -- a bad file is a
    miss (and is removed), because the cache is a memo, not a store of
    record.  Hit/miss counters accumulate per instance so callers can
    report resume effectiveness.
    """

    def __init__(self, root, salt: Optional[str] = None):
        self.root = Path(root)
        self.salt = salt if salt is not None else default_salt()
        self.hits = 0
        self.misses = 0

    # -- keys ----------------------------------------------------------
    def key(self, payload) -> str:
        """Digest of ``payload`` under this cache's salt."""
        return cache_key(payload, salt=self.salt)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- entries -------------------------------------------------------
    def get(self, key: str):
        """The cached value, or :data:`MISS`."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # Corrupt / stale-format entry: drop it and treat as a miss.
            # Another process may race us to the same conclusion; its
            # unlink winning is fine (_unlink_quiet tolerates it).
            _unlink_quiet(path)
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (atomic: temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_marker()
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _write_marker(self) -> None:
        marker = self.root / _MARKER_NAME
        if not marker.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            marker.write_text(
                json.dumps({"format": "repro-solar result cache",
                            "salt": self.salt}, indent=2) + "\n"
            )

    # -- maintenance ---------------------------------------------------
    def _entries(self) -> Iterable[Path]:
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir() and len(sub.name) == 2:
                yield from sorted(sub.glob("*.pkl"))

    def info(self) -> dict:
        """Entry count, total bytes, root and salt (for ``cache info``).

        Raises ``ValueError`` when the root does not exist -- the CLI
        turns that into an ``error:`` line with exit status 2.
        """
        if not self.root.is_dir():
            raise ValueError(f"cache directory {self.root} does not exist")
        total = 0
        count = 0
        for p in self._entries():
            try:
                total += p.stat().st_size
            except FileNotFoundError:
                continue  # removed concurrently between listing and stat
            count += 1
        return {
            "root": str(self.root),
            "salt": self.salt,
            "entries": count,
            "bytes": total,
        }

    def clear(self) -> int:
        """Remove every entry; returns the number removed.

        Refuses (``ValueError``) when the root does not exist, or when
        it holds files but no ``cache-meta.json`` marker -- a guard
        against ``cache clear --dir`` pointed at the wrong directory.
        """
        if not self.root.is_dir():
            raise ValueError(f"cache directory {self.root} does not exist")
        marker = self.root / _MARKER_NAME
        entries = list(self._entries())
        if not marker.exists() and any(self.root.iterdir()):
            raise ValueError(
                f"{self.root} does not look like a repro-solar result "
                f"cache (no {_MARKER_NAME}); refusing to clear it"
            )
        removed = 0
        for path in entries:
            if _unlink_quiet(path):
                removed += 1
        for sub in self.root.iterdir():
            try:
                if sub.is_dir() and len(sub.name) == 2 and not any(sub.iterdir()):
                    sub.rmdir()
            except OSError:
                pass  # concurrent clear emptied/removed it first
        return removed

    def counters(self) -> Tuple[int, int]:
        """(hits, misses) accumulated by this instance."""
        return self.hits, self.misses
