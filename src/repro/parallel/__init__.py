"""Shared parallel execution layer: executor, result cache, fleet shards.

Every parallel harness in the repo -- the experiment runner
(:mod:`repro.experiments.runner`), the robustness matrix
(:mod:`repro.experiments.robustness`) and the sharded fleet engine
(:mod:`repro.parallel.fleet`) -- dispatches the same shape of work:
a module-level function over small picklable unit specs, merged in
unit order.  This package owns that machinery once:

* :mod:`repro.parallel.executor` -- inline / thread / process
  backends, chunked dispatch, warm-worker initializers, stats.
* :mod:`repro.parallel.cache` -- content-addressed on-disk result
  cache (spec + dataset identity + code salt), which turns
  interrupted runs into resumable ones.
* :mod:`repro.parallel.fleet` -- fixed-size node blocks streaming a
  million-node fleet year through the executor with per-block
  checkpoints.

See ``src/repro/experiments/README.md`` ("Parallel architecture &
result cache") for the end-to-end picture.
"""

from repro.parallel.cache import (
    CACHE_SCHEMA_VERSION,
    MISS,
    ResultCache,
    cache_key,
    canonical_payload,
    dataset_identity,
    default_cache_dir,
    default_salt,
    file_fingerprint,
)
from repro.parallel.executor import (
    BACKENDS,
    DEFAULT_BACKEND,
    ExecutionStats,
    execute_units,
    run_units,
)
from repro.parallel.fleet import (
    DEFAULT_BLOCK_SIZE,
    FleetPlan,
    plan_blocks,
    run_fleet_blocks,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "MISS",
    "ResultCache",
    "cache_key",
    "canonical_payload",
    "dataset_identity",
    "default_cache_dir",
    "default_salt",
    "file_fingerprint",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ExecutionStats",
    "execute_units",
    "run_units",
    "DEFAULT_BLOCK_SIZE",
    "FleetPlan",
    "plan_blocks",
    "run_fleet_blocks",
]
