"""Terminal plotting: render the paper's figures without matplotlib.

The benchmark environment is headless, so the figure experiments return
data series; this module renders them as Unicode/ASCII charts for the
CLI (``repro-solar plot fig2`` / ``plot fig7``) and for quick visual
inspection in CI logs.

Only plain characters and spaces are emitted; every public function
returns a string (no printing side effects).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["line_chart", "multi_series_chart", "render_fig2", "render_fig7"]

_LEVELS = " .:-=+*#%@"


def line_chart(
    values: Sequence[float],
    width: int = 72,
    height: int = 12,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Single-series chart: values resampled to ``width`` columns.

    Bars rise from the baseline using density characters, giving a
    compact profile view suitable for irradiance curves.
    """
    data = np.asarray(values, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if width < 8 or height < 3:
        raise ValueError("width must be >= 8 and height >= 3")

    # Resample to the display width by averaging bins.
    edges = np.linspace(0, data.size, width + 1).astype(int)
    columns = np.array(
        [
            data[start:stop].mean() if stop > start else data[min(start, data.size - 1)]
            for start, stop in zip(edges[:-1], edges[1:])
        ]
    )
    top = float(columns.max())
    if top <= 0:
        top = 1.0
    fill = np.clip(columns / top * height, 0.0, height)

    rows = []
    for level in range(height, 0, -1):
        cells = []
        for value in fill:
            if value >= level:
                cells.append("#")
            elif value > level - 1:
                cells.append(_LEVELS[int((value - (level - 1)) * (len(_LEVELS) - 1))])
            else:
                cells.append(" ")
        prefix = f"{top * level / height:8.1f} |" if level in (height, 1) else " " * 8 + " |"
        rows.append(prefix + "".join(cells))
    rows.append(" " * 8 + "+" + "-" * width)
    if x_label:
        rows.append(" " * 10 + x_label)
    if y_label:
        rows.insert(0, y_label)
    return "\n".join(rows)


def multi_series_chart(
    series: Dict[str, Sequence[float]],
    x_values: Optional[Sequence[float]] = None,
    width: int = 60,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Scatter-style chart of several named series sharing an x axis.

    Each series is drawn with its own letter (first letter of its name,
    uppercased, disambiguated by position); collisions show ``*``.
    """
    if not series:
        raise ValueError("series must be non-empty")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must share one length")
    n_points = lengths.pop()
    if n_points == 0:
        raise ValueError("series are empty")
    if x_values is None:
        x_values = list(range(n_points))
    if len(x_values) != n_points:
        raise ValueError("x_values length mismatch")
    if width < 8 or height < 3:
        raise ValueError("width must be >= 8 and height >= 3")

    all_values = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi == lo:
        hi = lo + 1.0
    x_arr = np.asarray(x_values, dtype=float)
    x_lo, x_hi = float(x_arr.min()), float(x_arr.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    used = set()
    for name in series:
        marker = name[0].upper()
        while marker in used:
            marker = chr(ord(marker) + 1) if marker != "Z" else "*"
            if marker == "*":
                break
        used.add(marker)
        markers[name] = marker

    for name, values in series.items():
        marker = markers[name]
        for x, y in zip(x_arr, np.asarray(values, dtype=float)):
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((hi - y) / (hi - lo) * (height - 1)))
            current = grid[row][col]
            grid[row][col] = marker if current in (" ", marker) else "*"

    rows = []
    if y_label:
        rows.append(y_label)
    for i, cells in enumerate(grid):
        if i == 0:
            prefix = f"{hi:8.3f} |"
        elif i == height - 1:
            prefix = f"{lo:8.3f} |"
        else:
            prefix = " " * 8 + " |"
        rows.append(prefix + "".join(cells))
    rows.append(" " * 8 + "+" + "-" * width)
    axis = f"{x_lo:g}".ljust(width - 6) + f"{x_hi:g}"
    rows.append(" " * 10 + axis)
    if x_label:
        rows.append(" " * 10 + x_label)
    legend = "   ".join(f"{marker}={name}" for name, marker in markers.items())
    rows.append(" " * 10 + legend)
    return "\n".join(rows)


def render_fig2(n_days: int = 365, site: str = "SPMD") -> str:
    """Fig. 2 as a text chart: six days of 5-minute power."""
    from repro.experiments.fig2 import series

    data = series(site=site, n_days=n_days)
    flat = data.reshape(-1)
    chart = line_chart(
        flat,
        width=72,
        height=12,
        y_label=f"W/m^2   ({site}, {data.shape[0]} consecutive days, 5-min bins)",
        x_label="time -> (day boundaries every 12 columns)",
    )
    return chart


def render_fig7(n_days: int = 365, sites: Optional[Sequence[str]] = None) -> str:
    """Fig. 7 as a text chart: MAPE vs D for every site."""
    from repro.experiments.fig7 import series

    curves = series(n_days=n_days, sites=sites)
    d_values = list(range(2, 2 + len(next(iter(curves.values())))))
    return multi_series_chart(
        {name: values.tolist() for name, values in curves.items()},
        x_values=d_values,
        width=60,
        height=16,
        y_label="MAPE",
        x_label="D (days of history)",
    )
