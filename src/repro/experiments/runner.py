"""Run every experiment and render the paper-vs-measured comparison.

``run_all`` executes all eight reproductions and returns the results
keyed by experiment id; ``render_report`` turns them into the text that
EXPERIMENTS.md embeds.  The command-line front-end lives in
:mod:`repro.cli`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments import fig2, fig6, fig7, table1, table2, table3, table4, table5
from repro.experiments.common import DEFAULT_N_DAYS, ExperimentResult

__all__ = ["EXPERIMENTS", "run_all", "render_report"]

#: Experiment ids in paper order.
EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig2",
    "fig6",
    "fig7",
)

_TRACE_DRIVEN = {"table1", "table2", "table3", "table5", "fig2", "fig7"}


def run_all(
    n_days: int = DEFAULT_N_DAYS,
    sites: Optional[Sequence[str]] = None,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, ExperimentResult]:
    """Run the selected experiments (all by default).

    Parameters
    ----------
    n_days:
        Trace length; 365 reproduces the paper, smaller is faster.
    sites:
        Site subset (None = the paper's six; table5 intersects with its
        own four-site list).
    only:
        Experiment ids to run (None = all).
    """
    selected = tuple(only) if only is not None else EXPERIMENTS
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}; available: {EXPERIMENTS}")

    modules = {
        "table1": table1,
        "table2": table2,
        "table3": table3,
        "table4": table4,
        "table5": table5,
        "fig2": fig2,
        "fig6": fig6,
        "fig7": fig7,
    }
    results: Dict[str, ExperimentResult] = {}
    for name in selected:
        module = modules[name]
        if name in _TRACE_DRIVEN:
            if name == "table5" and sites is None:
                results[name] = module.run(n_days=n_days)
            elif name == "fig2":
                results[name] = module.run(n_days=n_days)
            else:
                results[name] = module.run(n_days=n_days, sites=sites)
        else:
            results[name] = module.run()
    return results


def render_report(results: Dict[str, ExperimentResult]) -> str:
    """Concatenated text rendering of every result, in paper order."""
    parts = []
    for name in EXPERIMENTS:
        if name in results:
            parts.append(results[name].render())
    return "\n\n".join(parts)
