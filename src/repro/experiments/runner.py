"""Run every experiment and render the paper-vs-measured comparison.

``run_all`` executes all eight reproductions and returns the results
keyed by experiment id; ``render_report`` turns them into the text that
EXPERIMENTS.md embeds.  The command-line front-end lives in
:mod:`repro.cli`.

Parallel execution
------------------
``run_all(jobs=n)`` with ``n > 1`` dispatches the work onto a process
pool.  The unit of work is one **(experiment, site)** pair for the
trace-driven multi-site reproductions (Tables I/II/III/V, Fig. 7) and
one whole experiment for the cheap or single-site ones (Table IV,
Figs. 2/6): sites are independent by construction -- every sweep reads
only its own site's trace -- so per-site results concatenate, in site
order, to exactly the sequential rows.

Each worker process owns private copies of the experiment-level caches
(:func:`repro.experiments.common.trace_for` /
:func:`~repro.experiments.common.batch_for`), so a worker that draws
several ``N`` values of one site still builds the native trace once and
re-slots it per ``N``.  The trade-off is that two workers handed the
same site (e.g. Table II's and Table III's PFCI units) each synthesise
that trace -- accepted, because units stay coarse enough that the
sweep work dominates and nothing needs to be shared or pickled between
workers (only the work-unit descriptors and the
:class:`~repro.experiments.common.ExperimentResult` rows cross the
process boundary).

``jobs=None`` (or 1) keeps the exact sequential code path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import fig2, fig6, fig7, table1, table2, table3, table4, table5
from repro.experiments.common import DEFAULT_N_DAYS, ExperimentResult, sites_for

__all__ = ["EXPERIMENTS", "run_all", "render_report"]

#: Experiment ids in paper order.
EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig2",
    "fig6",
    "fig7",
)

_TRACE_DRIVEN = {"table1", "table2", "table3", "table5", "fig2", "fig7"}

#: Experiments whose rows are generated independently per site; these
#: split into (experiment, site) work units under ``jobs > 1``.
_PER_SITE = ("table1", "table2", "table3", "table5", "fig7")

_MODULES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig2": fig2,
    "fig6": fig6,
    "fig7": fig7,
}


def _run_unit(
    name: str, n_days: int, sites: Optional[Tuple[str, ...]]
) -> ExperimentResult:
    """Execute one work unit (module-level so process pools can pickle it)."""
    module = _MODULES[name]
    if name not in _TRACE_DRIVEN:
        return module.run()
    if name == "fig2" or (name == "table5" and sites is None):
        return module.run(n_days=n_days)
    return module.run(n_days=n_days, sites=sites)


def _work_units(
    selected: Sequence[str], sites: Optional[Sequence[str]]
) -> List[Tuple[str, Optional[Tuple[str, ...]]]]:
    """Split the selection into independent (experiment, sites) units."""
    units: List[Tuple[str, Optional[Tuple[str, ...]]]] = []
    for name in selected:
        site_list: Tuple[str, ...] = ()
        if name in _PER_SITE:
            if name == "table5" and sites is None:
                site_list = table5.DYNAMIC_SITES
            else:
                site_list = sites_for(sites)
        if site_list:
            units.extend((name, (site,)) for site in site_list)
        else:
            # single-unit experiments, and the degenerate empty site
            # selection (which must still yield a zero-row result, as
            # the sequential path does)
            units.append((name, tuple(sites) if sites is not None else None))
    return units


def _merge_parts(parts: List[ExperimentResult]) -> ExperimentResult:
    """Concatenate per-site results of one experiment (site order kept)."""
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    return ExperimentResult(
        experiment=first.experiment,
        title=first.title,
        headers=first.headers,
        rows=[row for part in parts for row in part.rows],
        notes=first.notes,
        meta=first.meta,
    )


def run_all(
    n_days: int = DEFAULT_N_DAYS,
    sites: Optional[Sequence[str]] = None,
    only: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """Run the selected experiments (all by default).

    Parameters
    ----------
    n_days:
        Trace length; 365 reproduces the paper, smaller is faster.
    sites:
        Site subset (None = the paper's six; table5 intersects with its
        own four-site list).
    only:
        Experiment ids to run (None = all).
    jobs:
        Worker processes for the parallel runner; ``None`` or 1 runs
        sequentially in this process (see module docstring).
    """
    selected = tuple(only) if only is not None else EXPERIMENTS
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}; available: {EXPERIMENTS}")
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    # A duplicated id runs once: the sequential loop's dict insertion
    # overwrites with an identical result, so drop repeats up front and
    # keep first-occurrence order for both code paths.
    selected = tuple(dict.fromkeys(selected))
    sites_arg = tuple(sites) if sites is not None else None

    results: Dict[str, ExperimentResult] = {}

    if jobs is None or jobs == 1:
        for name in selected:
            results[name] = _run_unit(name, n_days, sites_arg)
        return results

    units = _work_units(selected, sites)
    if not units:
        return results
    outputs: List[ExperimentResult] = [None] * len(units)
    with ProcessPoolExecutor(max_workers=min(jobs, len(units))) as pool:
        futures = [
            pool.submit(_run_unit, name, n_days, unit_sites)
            for name, unit_sites in units
        ]
        for i, future in enumerate(futures):
            outputs[i] = future.result()
    for name in selected:
        parts = [out for (unit_name, _), out in zip(units, outputs) if unit_name == name]
        results[name] = _merge_parts(parts)
    return results


def render_report(results: Dict[str, ExperimentResult]) -> str:
    """Concatenated text rendering of every result, in paper order."""
    parts = []
    for name in EXPERIMENTS:
        if name in results:
            parts.append(results[name].render())
    return "\n\n".join(parts)
