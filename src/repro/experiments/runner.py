"""Run every experiment and render the paper-vs-measured comparison.

``run_all`` executes all eight reproductions and returns the results
keyed by experiment id; ``render_report`` turns them into the text that
EXPERIMENTS.md embeds.  The command-line front-end lives in
:mod:`repro.cli`.

Parallel execution
------------------
``run_all`` decomposes the selection into work units -- one
**(experiment, site)** pair for the trace-driven multi-site
reproductions (Tables I/II/III/V, Fig. 7), one whole experiment for
the cheap or single-site ones (Table IV, Figs. 2/6) -- and hands them
to the shared executor (:func:`repro.parallel.executor.execute_units`).
Sites are independent by construction (every sweep reads only its own
site's trace), so per-site results concatenate, in site order, to
exactly the sequential rows; *both* code paths run the same unit split
and merge, which is what makes their output -- and their cache keys --
identical.

``jobs=None`` (or 1) runs the units inline in this process, sharing
the experiment-level memos (:func:`repro.experiments.common.trace_for`
/ :func:`~repro.experiments.common.batch_for`); no pool is ever
spawned for one worker or a single unit.  With ``jobs > 1`` each
worker owns private copies of those memos, warmed by the
:func:`~repro.experiments.common.warm_worker` initializer (measured
sites re-registered before the first unit).  ``backend="thread"``
trades process isolation for zero fork/pickle cost on GIL-releasing
numpy sweeps.

With a :class:`~repro.parallel.cache.ResultCache`, every unit is keyed
by (experiment, n_days, sites, dataset identity, code salt): cached
units never re-run, so an interrupted ``run_all`` resumes and repeat
invocations are near-instant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import fig2, fig6, fig7, table1, table2, table3, table4, table5
from repro.experiments.common import DEFAULT_N_DAYS, ExperimentResult, sites_for

__all__ = ["EXPERIMENTS", "run_all", "render_report"]

#: Experiment ids in paper order.
EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig2",
    "fig6",
    "fig7",
)

_TRACE_DRIVEN = {"table1", "table2", "table3", "table5", "fig2", "fig7"}

#: Experiments whose rows are generated independently per site; these
#: split into (experiment, site) work units under ``jobs > 1``.
_PER_SITE = ("table1", "table2", "table3", "table5", "fig7")

_MODULES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig2": fig2,
    "fig6": fig6,
    "fig7": fig7,
}


def _run_unit(
    name: str, n_days: int, sites: Optional[Tuple[str, ...]]
) -> ExperimentResult:
    """Execute one work unit (module-level so process pools can pickle it)."""
    module = _MODULES[name]
    if name not in _TRACE_DRIVEN:
        return module.run()
    if name == "fig2" or (name == "table5" and sites is None):
        return module.run(n_days=n_days)
    return module.run(n_days=n_days, sites=sites)


def _work_units(
    selected: Sequence[str], sites: Optional[Sequence[str]]
) -> List[Tuple[str, Optional[Tuple[str, ...]]]]:
    """Split the selection into independent (experiment, sites) units."""
    units: List[Tuple[str, Optional[Tuple[str, ...]]]] = []
    for name in selected:
        site_list: Tuple[str, ...] = ()
        if name in _PER_SITE:
            if name == "table5" and sites is None:
                site_list = table5.DYNAMIC_SITES
            else:
                site_list = sites_for(sites)
        if site_list:
            units.extend((name, (site,)) for site in site_list)
        else:
            # single-unit experiments, and the degenerate empty site
            # selection (which must still yield a zero-row result, as
            # the sequential path does)
            units.append((name, tuple(sites) if sites is not None else None))
    return units


def _merge_parts(parts: List[ExperimentResult]) -> ExperimentResult:
    """Concatenate per-site results of one experiment (site order kept)."""
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    return ExperimentResult(
        experiment=first.experiment,
        title=first.title,
        headers=first.headers,
        rows=[row for part in parts for row in part.rows],
        notes=first.notes,
        meta=first.meta,
    )


def _unit_key(cache, name: str, n_days: int, unit_sites, identities) -> str:
    """Cache digest of one work unit (spec + dataset identity)."""
    return cache.key(
        {
            "kind": "run-all-unit",
            "experiment": name,
            "n_days": n_days,
            "sites": list(unit_sites) if unit_sites is not None else None,
            "tokens": {s: identities[s] for s in (unit_sites or ())},
        }
    )


def run_all(
    n_days: int = DEFAULT_N_DAYS,
    sites: Optional[Sequence[str]] = None,
    only: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    cache=None,
    stats: Optional[list] = None,
) -> Dict[str, ExperimentResult]:
    """Run the selected experiments (all by default).

    Parameters
    ----------
    n_days:
        Trace length; 365 reproduces the paper, smaller is faster.
    sites:
        Site subset (None = the paper's six; table5 intersects with its
        own four-site list).
    only:
        Experiment ids to run (None = all).
    jobs:
        Worker count; ``None`` or 1 runs the units inline in this
        process (see module docstring) -- no pool is spawned.
    backend:
        Executor backend (:data:`repro.parallel.executor.BACKENDS`);
        ``None`` = process pool when ``jobs > 1``.
    cache:
        Optional :class:`~repro.parallel.cache.ResultCache`; completed
        units are memoised on disk and re-runs resume from them.
    stats:
        Optional list; the call appends its
        :class:`~repro.parallel.executor.ExecutionStats` record
        (benchmarks and the CLI read dispatch overhead from it).
    """
    from repro.parallel.executor import execute_units

    selected = tuple(only) if only is not None else EXPERIMENTS
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}; available: {EXPERIMENTS}")
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    # A duplicated id runs once: the merge would otherwise double rows,
    # so drop repeats up front and keep first-occurrence order.
    selected = tuple(dict.fromkeys(selected))

    results: Dict[str, ExperimentResult] = {}
    units = _work_units(selected, sites)
    if not units:
        return results

    keys = None
    if cache is not None:
        from repro.parallel.cache import dataset_identity

        distinct = sorted({s for _, u in units if u for s in u})
        identities = {s: dataset_identity(s) for s in distinct}
        keys = [
            _unit_key(cache, name, n_days, unit_sites, identities)
            for name, unit_sites in units
        ]

    initializer = None
    initargs = ()
    if backend != "thread":
        from repro.experiments.common import warm_worker
        from repro.solar.ingest.sites import measured_specs_for

        measured = measured_specs_for(
            sorted({s for _, u in units if u for s in u})
        )
        if measured:
            initializer = warm_worker
            initargs = (measured,)

    outputs, exec_stats = execute_units(
        _run_unit,
        [(name, n_days, unit_sites) for name, unit_sites in units],
        jobs=jobs,
        backend=backend,
        initializer=initializer,
        initargs=initargs,
        cache=cache,
        keys=keys,
    )
    if stats is not None:
        stats.append(exec_stats)

    for name in selected:
        parts = [out for (unit_name, _), out in zip(units, outputs) if unit_name == name]
        results[name] = _merge_parts(parts)
    return results


def render_report(results: Dict[str, ExperimentResult]) -> str:
    """Concatenated text rendering of every result, in paper order."""
    parts = []
    for name in EXPERIMENTS:
        if name in results:
            parts.append(results[name].render())
    return "\n\n".join(parts)
