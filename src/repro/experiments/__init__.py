"""Experiment reproductions: one module per table/figure of the paper.

========================  ====================================================
module                    reproduces
========================  ====================================================
:mod:`~repro.experiments.table1`  Table I   -- data-set inventory
:mod:`~repro.experiments.table2`  Table II  -- MAPE' vs MAPE optimisation, N=48
:mod:`~repro.experiments.table3`  Table III -- optimised parameters across N
:mod:`~repro.experiments.table4`  Table IV  -- energy of sampling + prediction
:mod:`~repro.experiments.table5`  Table V   -- clairvoyant dynamic parameters
:mod:`~repro.experiments.fig2`    Fig. 2    -- six days of solar energy
:mod:`~repro.experiments.fig6`    Fig. 6    -- overhead %% vs N
:mod:`~repro.experiments.fig7`    Fig. 7    -- MAPE vs D per site
========================  ====================================================

Every module exposes ``run(...)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose ``rows`` hold
the regenerated numbers and whose ``render()`` prints the paper-style
table.  :mod:`repro.experiments.runner` drives them all and emits the
paper-vs-measured comparison recorded in EXPERIMENTS.md.

Beyond the paper: :mod:`repro.experiments.fleet` (heterogeneous
lock-step fleets) and :mod:`repro.experiments.robustness` (the
scenario x site x predictor degradation matrix over
:mod:`repro.solar.scenarios`-perturbed traces).
"""

from repro.experiments.common import ExperimentResult, batch_for, format_table
from repro.experiments import (
    fig2,
    fig6,
    fig7,
    robustness,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.runner import run_all

__all__ = [
    "ExperimentResult",
    "batch_for",
    "format_table",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig2",
    "fig6",
    "fig7",
    "robustness",
    "run_all",
]
