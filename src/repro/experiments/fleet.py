"""Fleet-scale node-management experiment harness (extension).

Builds heterogeneous fleets -- nodes cycled over sites, predictors and
battery capacities -- runs them through the lock-step
:class:`~repro.management.fleet.FleetSimulator`, and digests the result
into per-predictor rows.  Used by the ``repro-solar fleet`` CLI
subcommand, ``examples/fleet_simulation.py`` and the fleet benchmarks.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import ExperimentResult, sites_for
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    Controller,
    FixedDutyController,
    KansalController,
    MinimumVarianceController,
    OracleController,
)
from repro.management.fleet import FleetNodeSpec, FleetRunResult, FleetSimulator
from repro.management.harvester import PVHarvester
from repro.management.storage import Battery, Supercapacitor
from repro.solar.datasets import build_dataset, samples_per_day_for
from repro.solar.scenarios import DEFAULT_SCENARIO_SEED, make_scenario

__all__ = [
    "CONTROLLER_KINDS",
    "DEFAULT_FLEET_LOAD",
    "build_fleet_specs",
    "make_controller",
    "run_fleet",
    "fleet_result_table",
]

#: Mote-class load shared by the fleet experiments (matches the
#: node-management benchmark's provisioning).
DEFAULT_FLEET_LOAD = DutyCycledLoad(active_power_watts=40e-3, sleep_power_watts=40e-6)

#: Controller kinds the fleet harness can build by name.
CONTROLLER_KINDS = ("kansal", "minvar", "fixed", "oracle")


def make_controller(
    kind: str,
    capacity_joules: float,
    load: DutyCycledLoad = DEFAULT_FLEET_LOAD,
    target_soc: float = 0.6,
) -> Controller:
    """Instantiate one of :data:`CONTROLLER_KINDS` for one node."""
    kind = kind.lower()
    if kind == "kansal":
        return KansalController(load, capacity_joules, target_soc=target_soc)
    if kind == "minvar":
        return MinimumVarianceController(load, capacity_joules, target_soc=target_soc)
    if kind == "fixed":
        return FixedDutyController(0.5)
    if kind == "oracle":
        return OracleController(load, capacity_joules, target_soc=target_soc)
    raise ValueError(f"unknown controller {kind!r}; available: {CONTROLLER_KINDS}")


def build_fleet_specs(
    n_nodes: int,
    sites: Optional[Sequence[str]] = ("SPMD",),
    n_days: int = 30,
    predictors: Sequence[str] = ("wcma",),
    controllers: Sequence[str] = ("kansal",),
    capacities: Sequence[float] = (250.0,),
    n_slots: int = 48,
    panel_area_m2: float = 25e-4,
    load: DutyCycledLoad = DEFAULT_FLEET_LOAD,
    supercap_threshold_joules: float = 1000.0,
    scenarios: Optional[Sequence[str]] = None,
    scenario_seed: int = DEFAULT_SCENARIO_SEED,
    node_range: Optional[Tuple[int, int]] = None,
) -> List[FleetNodeSpec]:
    """A heterogeneous fleet: node ``i`` cycles through every axis.

    The axes (predictor, controller kind, capacity, scenario, site) are
    enumerated mixed-radix -- the predictor varies fastest, the site
    slowest -- so equal-length axes do not alias (plain round-robin
    would pair predictor ``j`` with controller ``j`` forever) and a
    large enough fleet covers every combination.  Stores below
    ``supercap_threshold_joules`` are modelled as supercapacitors,
    larger ones as batteries.

    ``scenarios`` optionally cycles registered trace-degradation
    scenarios (:mod:`repro.solar.scenarios`) across the fleet: each
    (site, scenario) pair shares one perturbed trace object, so the
    simulator still groups nodes per trace.  ``None`` keeps every node
    on the clean trace (and the node names unchanged).

    ``node_range=(start, stop)`` builds only that *block* of the fleet:
    node ``i`` keeps its global mixed-radix identity (axes, name,
    trace), so the sharded fleet engine can materialise one fixed-size
    block per worker instead of all ``n_nodes`` specs at once --
    ``build_fleet_specs(n, ...)`` equals the concatenation of its
    blocks, spec for spec.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if node_range is None:
        start, stop = 0, n_nodes
    else:
        start, stop = node_range
        if not (0 <= start <= stop <= n_nodes):
            raise ValueError(
                f"node_range {node_range!r} outside [0, {n_nodes}]"
            )
    site_list = sites_for(tuple(sites) if sites is not None else None)
    # Fail on a bad (site, N) pairing before any simulation work, and
    # cheaply -- without building a single trace: a *block* of a large
    # fleet (node_range) must only pay for the sites its nodes draw, so
    # base traces are built lazily below alongside the perturbed ones.
    for site in site_list:
        if n_slots <= 0 or samples_per_day_for(site) % n_slots:
            raise ValueError(
                f"N={n_slots} does not divide samples per day "
                f"({samples_per_day_for(site)}) of site {site}"
            )
    traces: Dict[str, object] = {}
    scenario_names = (
        tuple(s.lower() for s in scenarios) if scenarios else ("clean",)
    )
    # Scenario *names* are validated eagerly (cheap); the perturbed
    # traces themselves are built lazily below -- a small fleet only
    # pays for the (site, scenario) pairs its nodes actually draw.
    built = {name: make_scenario(name, seed=scenario_seed) for name in scenario_names}
    perturbed: Dict[Tuple[str, str], object] = {}
    label_scenarios = scenarios is not None
    specs: List[FleetNodeSpec] = []
    for i in range(start, stop):
        digits = i
        predictor = predictors[digits % len(predictors)]
        digits //= len(predictors)
        controller_kind = controllers[digits % len(controllers)]
        digits //= len(controllers)
        capacity = float(capacities[digits % len(capacities)])
        digits //= len(capacities)
        scenario_name = scenario_names[digits % len(scenario_names)]
        digits //= len(scenario_names)
        site = site_list[digits % len(site_list)]
        store_cls = Supercapacitor if capacity < supercap_threshold_joules else Battery
        name = f"{site.lower()}-{predictor}-{controller_kind}-{i}"
        if label_scenarios:
            name = f"{site.lower()}-{scenario_name}-{predictor}-{controller_kind}-{i}"
        key = (site, scenario_name)
        if key not in perturbed:
            if site not in traces:
                traces[site] = build_dataset(site, n_days=n_days)
            perturbed[key] = built[scenario_name].apply(traces[site])
        specs.append(
            FleetNodeSpec(
                trace=perturbed[key],
                controller=make_controller(controller_kind, capacity, load=load),
                predictor=predictor,
                harvester=PVHarvester(area_m2=panel_area_m2),
                storage=store_cls(capacity_joules=capacity, initial_soc=0.5),
                load=load,
                name=name,
            )
        )
    return specs


def run_fleet(
    specs: Sequence[FleetNodeSpec], n_slots: int
) -> Tuple[FleetRunResult, float]:
    """Run the fleet; returns (result, wall-clock seconds)."""
    simulator = FleetSimulator(specs, n_slots)
    start = time.perf_counter()
    result = simulator.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def fleet_result_table(
    result: FleetRunResult, specs: Sequence[FleetNodeSpec]
) -> ExperimentResult:
    """Per-predictor aggregate rows of one fleet run.

    Groups nodes by predictor label and reports the duty / downtime /
    waste aggregates per group -- the fleet-scale version of the
    node-management benchmark's comparison table.
    """
    by_predictor: Dict[str, List[int]] = {}
    for i, spec in enumerate(specs):
        by_predictor.setdefault(spec.predictor_label(), []).append(i)
    rows = []
    for label in sorted(by_predictor):
        idx = np.array(by_predictor[label], dtype=np.intp)
        harvest = float(result.harvested_joules[:, idx].sum())
        wasted = float(result.wasted_joules[:, idx].sum())
        rows.append(
            {
                "predictor": label,
                "nodes": int(idx.size),
                "mean duty %": 100.0 * float(result.duty_achieved[:, idx].mean()),
                "downtime %": 100.0
                * float((result.shortfall_joules[:, idx] > 0).mean()),
                "waste %": 100.0 * (wasted / harvest if harvest > 0 else 0.0),
                "mean final soc %": 100.0 * float(result.final_soc[idx].mean()),
            }
        )
    return ExperimentResult(
        experiment="fleet",
        title=(
            f"fleet simulation: {result.n_nodes} nodes x "
            f"{result.total_slots} slots (N={result.n_slots})"
        ),
        headers=[
            "predictor",
            "nodes",
            "mean duty %",
            "downtime %",
            "waste %",
            "mean final soc %",
        ],
        rows=rows,
        meta={"n_nodes": result.n_nodes, "total_slots": result.total_slots},
    )
