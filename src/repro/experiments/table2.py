"""Table II -- parameter optimisation under MAPE' vs MAPE at N=48.

For each site, run the exhaustive (alpha, D, K) sweep twice: once
minimising MAPE' (Eq. 6 reference, as previous works scored) and once
minimising MAPE (Eq. 7, the paper's function).  The paper's findings to
reproduce:

* the MAPE values are much lower than the MAPE' values;
* the two objectives select *different* parameters, most visibly alpha
  (MAPE favours substantially higher alpha).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.optimizer import SweepSpec, sweep_many
from repro.experiments.common import (
    DEFAULT_N_DAYS,
    ExperimentResult,
    batch_for,
    sites_for,
)

__all__ = ["run", "N_SLOTS"]

N_SLOTS = 48

HEADERS = [
    "data_set",
    "alpha_prime",
    "d_prime",
    "k_prime",
    "mape_prime",
    "alpha",
    "d",
    "k",
    "mape",
]


def run(
    n_days: int = DEFAULT_N_DAYS, sites: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """Regenerate Table II."""
    rows = []
    for site in sites_for(sites):
        batch = batch_for(site, n_days, N_SLOTS)
        trace = batch.view.trace
        # One sweep_many call: both objectives share the batch's
        # mu/eta/Phi caches (the reference series differ, the
        # conditioned terms do not).
        by_prime, by_mape = sweep_many(
            [
                SweepSpec(trace, N_SLOTS, objective="mape_prime", batch=batch),
                SweepSpec(trace, N_SLOTS, objective="mape", batch=batch),
            ]
        )
        rows.append(
            {
                "data_set": site,
                "alpha_prime": by_prime.best.alpha,
                "d_prime": by_prime.best.days,
                "k_prime": by_prime.best.k,
                "mape_prime": by_prime.best_error,
                "alpha": by_mape.best.alpha,
                "d": by_mape.best.days,
                "k": by_mape.best.k,
                "mape": by_mape.best_error,
            }
        )
    return ExperimentResult(
        experiment="table2",
        title=(
            "Prediction error and parameter values using different error "
            f"evaluations at N={N_SLOTS}"
        ),
        headers=HEADERS,
        rows=rows,
        notes="MAPE values are fractions (0.158 = 15.8 %).",
        meta={"n_days": n_days, "n_slots": N_SLOTS},
    )
