"""Robustness experiment matrix: (scenario x site x predictor).

The paper scores predictors on clean traces only.  This module runs the
same evaluation pipeline over *degraded* traces from the scenario
engine (:mod:`repro.solar.scenarios`) and reports how much each
degradation costs each predictor, relative to the clean baseline.

Two harnesses:

* :func:`run` -- the prediction-robustness matrix.  For every
  (scenario, site) cell the perturbed trace is scored by each registry
  predictor (WCMA at the paper's recommended parameters goes through
  the shared :class:`~repro.core.wcma.WCMABatch` engine) and, when
  ``tune_wcma`` is on, by a re-tuned WCMA whose full ``(alpha, D, K)``
  grid search runs through :func:`~repro.core.optimizer.sweep_many`
  against the same batch caches.  The ``clean`` scenario is always
  included so every row carries its degradation against the clean
  baseline of the same (site, predictor).
* :func:`run_fleet_robustness` -- the deployment view: one fleet node
  per (site, scenario) pair, every node holding a differently-degraded
  trace, stepped in lock-step by the
  :class:`~repro.management.fleet.FleetSimulator` -- heterogeneous
  per-node scenarios are exactly what the fleet engine's grouping was
  built for.  Reports duty/downtime/waste per cell.

Parallel execution mirrors :mod:`repro.experiments.runner`: the unit of
work is one (site, scenario) cell -- except for the learned predictors
(:data:`STACKED_MATRIX_PREDICTORS`), whose cells run *column-stacked*
as one B-node kernel slab per predictor -- units are independent by
construction, workers own private trace caches, and both code paths
run through the shared executor
(:func:`repro.parallel.executor.execute_units`), so the merged output
is byte-identical at any ``jobs``/``backend`` (the degradation column
is computed *after* the merge in every path).  Everything is seeded
through the scenario engine, so the same seed produces the same report.

With a :class:`~repro.parallel.cache.ResultCache`, each cell's rows are
memoised under a digest of (site, scenario, n_days, n_slots,
predictors, seed, tune_wcma, dataset identity, code salt) *before* the
degradation fill -- an interrupted matrix resumes from its finished
cells and only recomputes the missing ones.  Learned slabs get their
own keys, which additionally fold in the full training config and the
feature-schema version, so a hyper-parameter flip or feature
redefinition re-runs the learned slice instead of serving it stale.

Measured sites (:mod:`repro.solar.ingest.sites`) flow through both
harnesses by name like the synthetic six -- including their
``<name>-defects`` replay scenarios -- and their picklable specs are
re-installed in pool workers via the
:func:`~repro.experiments.common.warm_worker` initializer, so the
parallel path works under any multiprocessing start method.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.optimizer import SweepSpec, mape_for_params, sweep_many
from repro.core.registry import available_predictors, make_predictor
from repro.core.wcma import WCMABatch, WCMAParams
from repro.experiments.common import (
    DEFAULT_N_DAYS,
    ExperimentResult,
    sites_for,
    trace_for,
)
from repro.metrics.evaluate import evaluate_predictor, score_predictions
from repro.solar.scenarios import (
    DEFAULT_SCENARIO_SEED,
    available_scenarios,
    make_scenario,
)

__all__ = [
    "DEFAULT_SCENARIOS",
    "DEFAULT_MATRIX_PREDICTORS",
    "LEARNED_MATRIX_PREDICTORS",
    "STACKED_MATRIX_PREDICTORS",
    "TUNED_WCMA_LABEL",
    "scenarios_for",
    "run",
    "run_fleet_robustness",
]

#: Scenario names evaluated by default: the clean baseline plus the
#: qualitatively distinct degradations of the original built-in
#: catalogue.  Deliberately a frozen list rather than
#: ``available_scenarios()``: the golden suite pins the default matrix,
#: so later catalogue additions (``spikes``, measured ``<site>-defects``
#: replays) are opt-in via ``scenarios=`` instead of silently widening
#: every default run.
DEFAULT_SCENARIOS = (
    "clean",
    "soiling",
    "soiling-washout",
    "shading",
    "dropout",
    "stuck",
    "gaps-hold",
    "regime-shift",
    "jitter",
    "harsh-field",
)

#: Registry predictors scored per cell by default.  WCMA runs at the
#: paper's recommended (alpha=0.7, D=10, K=2).
DEFAULT_MATRIX_PREDICTORS = ("wcma", "ewma", "persistence")

#: The learned-tier slice: the trainable predictors (``ridge``, ``gbm``
#: -- online self-fitting :class:`~repro.learn.predictor.LearnedPredictor`)
#: and the softmin adaptive selector next to the WCMA/EWMA baselines.
#: ``repro-solar robustness --predictors ridge gbm adaptive wcma ewma``
#: and the learned golden pin both run exactly this list; on the
#: regime-shift cells the adaptive selector beats every fixed-parameter
#: WCMA configuration, including the per-cell re-tuned one.
LEARNED_MATRIX_PREDICTORS = ("wcma", "ewma", "ridge", "gbm", "adaptive")

#: Learned predictors the matrix evaluates *column-stacked*: every
#: (site, scenario) cell becomes one column of a single B-node
#: :class:`~repro.learn.predictor.LearnedKernel` run, so the whole
#: learned slice advances lock-step through one batched refit per fit
#: day instead of ``n_cells`` scalar ones.  Column independence is
#: bitwise (the kernel's vector parity guarantee), so stacked cells
#: reproduce the per-cell path byte-for-byte.  The adaptive selectors
#: stay per-cell: they are scalar expert blends, not batch kernels.
STACKED_MATRIX_PREDICTORS = ("ridge", "gbm")

#: Row label of the re-tuned WCMA (full grid search per cell).
TUNED_WCMA_LABEL = "wcma-tuned"

#: Paper-recommended operating point (Section IV-B).
_PAPER_PARAMS = WCMAParams(alpha=0.7, days=10, k=2)

_MATRIX_HEADERS = [
    "scenario",
    "site",
    "predictor",
    "MAPE %",
    "dMAPE vs clean (pp)",
    "tuned params",
]


def scenarios_for(names: Optional[Sequence[str]]) -> Tuple[str, ...]:
    """Normalise a scenario selection (None -> the default ten).

    Unknown names raise :class:`ValueError`; ``clean`` is prepended
    when missing so every matrix carries its own baseline; duplicates
    collapse to the first occurrence.
    """
    if names is None:
        return DEFAULT_SCENARIOS
    resolved = tuple(dict.fromkeys(s.lower() for s in names))
    known = available_scenarios()
    unknown = [s for s in resolved if s not in known]
    if unknown:
        raise ValueError(f"unknown scenarios: {unknown}; available: {known}")
    if "clean" not in resolved:
        resolved = ("clean",) + resolved
    return resolved


def _predictors_for(names: Optional[Sequence[str]]) -> Tuple[str, ...]:
    if names is None:
        return DEFAULT_MATRIX_PREDICTORS
    resolved = tuple(dict.fromkeys(n.lower() for n in names))
    known = available_predictors()
    unknown = [n for n in resolved if n not in known]
    if unknown:
        raise ValueError(f"unknown predictors: {unknown}; available: {known}")
    return resolved


def _matrix_unit(
    site: str,
    scenario_name: str,
    n_days: int,
    n_slots: int,
    predictors: Tuple[str, ...],
    seed: int,
    tune_wcma: bool,
) -> List[dict]:
    """Score every predictor on one (site, scenario) cell.

    Module-level and primitive-argument so process pools can pickle it;
    the perturbed trace and its batch engine are built inside the
    worker (the base trace comes from the worker's own
    :func:`~repro.experiments.common.trace_for` memo).
    """
    base = trace_for(site, n_days)
    perturbed = make_scenario(scenario_name, seed=seed).apply(base)
    # The batch engine only serves the WCMA paths; a baselines-only
    # matrix should not pay for its prefix-sum caches.
    batch = None
    if tune_wcma or "wcma" in predictors:
        batch = WCMABatch.from_trace(perturbed, n_slots)
    rows: List[dict] = []
    for name in predictors:
        if name == "wcma":
            error = mape_for_params(
                perturbed, n_slots, _PAPER_PARAMS, batch=batch
            )
        else:
            run_ = evaluate_predictor(
                make_predictor(name, n_slots), perturbed, n_slots
            )
            error = run_.mape
        rows.append(_matrix_row(scenario_name, site, name, error))
    if tune_wcma:
        sweep = sweep_many(
            [SweepSpec(perturbed, n_slots, "mape", batch=batch)]
        )[0]
        row = _matrix_row(
            scenario_name, site, TUNED_WCMA_LABEL, sweep.best_error
        )
        best = sweep.best
        row["tuned params"] = f"a={best.alpha:.1f} D={best.days} K={best.k}"
        rows.append(row)
    return rows


def _cell_key(
    cache,
    site: str,
    scenario_name: str,
    n_days: int,
    n_slots: int,
    predictors: Tuple[str, ...],
    seed: int,
    tune_wcma: bool,
    identity,
) -> str:
    """Cache digest of one (site, scenario) cell's pre-merge rows."""
    return cache.key(
        {
            "kind": "robustness-cell",
            "site": site,
            "scenario": scenario_name,
            "n_days": n_days,
            "n_slots": n_slots,
            "predictors": list(predictors),
            "seed": seed,
            "tune_wcma": bool(tune_wcma),
            "token": identity,
        }
    )


def _learned_slab_unit(
    predictor: str,
    sites: Tuple[str, ...],
    scenarios: Tuple[str, ...],
    n_days: int,
    n_slots: int,
    seed: int,
    training: Optional[dict],
) -> dict:
    """Score one learned predictor on *every* (site, scenario) cell at once.

    Each cell's perturbed trace becomes one column of a ``B``-node
    :class:`~repro.learn.predictor.LearnedKernel`, fed through exactly
    the causal slot-mean protocol of
    :func:`~repro.metrics.evaluate.evaluate_predictor` -- one
    ``provide_slot_mean`` / ``observe`` pair per boundary for the whole
    stack -- then each column is scored independently.  Kernel columns
    are bitwise-independent, so the returned per-cell MAPEs equal the
    per-cell scalar path's byte-for-byte while every refit runs once,
    batched, instead of once per cell.

    Returns ``{"mape": [...], "stage_seconds": {...}}`` with one MAPE
    per (site-major, scenario-minor) cell and the kernel's cumulative
    features/refit/predict stage timings.
    """
    from repro.core.registry import make_vector_predictor
    from repro.solar.slots import SlotView

    columns = []
    for site in sites:
        base = trace_for(site, n_days)
        for scenario_name in scenarios:
            perturbed = make_scenario(scenario_name, seed=seed).apply(base)
            view = SlotView.from_trace(perturbed, n_slots)
            columns.append((view.flat_starts(), view.flat_means()))
    starts = np.stack([c[0] for c in columns], axis=1)  # (T, B)
    means = np.stack([c[1] for c in columns], axis=1)

    kwargs = {} if training is None else {"training": training}
    kernel = make_vector_predictor(
        predictor, n_slots, batch_size=starts.shape[1], **kwargs
    )
    kernel.reset()
    predictions = np.empty_like(starts)
    if getattr(kernel, "uses_slot_mean_feedback", False):
        for t in range(starts.shape[0]):
            if t > 0:
                kernel.provide_slot_mean(means[t - 1])
            predictions[t] = kernel.observe(starts[t].copy())
    else:
        for t in range(starts.shape[0]):
            predictions[t] = kernel.observe(starts[t].copy())

    mapes = []
    for j in range(starts.shape[1]):
        run_ = score_predictions(
            predictions=np.ascontiguousarray(predictions[:, j])[:-1],
            reference_mean=np.ascontiguousarray(means[:, j])[:-1],
            reference_next_start=np.ascontiguousarray(starts[:, j])[1:],
            n_slots=n_slots,
        )
        mapes.append(float(run_.mape))
    return {
        "mape": mapes,
        "stage_seconds": dict(getattr(kernel, "stage_seconds", {}) or {}),
    }


def _slab_key(
    cache,
    predictor: str,
    sites: Tuple[str, ...],
    scenarios: Tuple[str, ...],
    n_days: int,
    n_slots: int,
    seed: int,
    training: dict,
    feature_schema: int,
    identities,
) -> str:
    """Cache digest of one stacked learned-predictor slab.

    Unlike the plain cell key, the digest folds in the full
    :class:`~repro.learn.models.TrainingConfig` and the feature-schema
    version: a hyper-parameter flip or a feature redefinition must miss
    the cache, never serve a stale learned slice.
    """
    return cache.key(
        {
            "kind": "robustness-learned-slab",
            "predictor": predictor,
            "sites": list(sites),
            "scenarios": list(scenarios),
            "n_days": n_days,
            "n_slots": n_slots,
            "seed": seed,
            "training": dict(training),
            "feature_schema": int(feature_schema),
            "token": [identities[site] for site in sites],
        }
    )


def _robustness_unit(kind: str, args: tuple):
    """Executor dispatch: plain cells and learned slabs share one pool."""
    if kind == "cell":
        return _matrix_unit(*args)
    return _learned_slab_unit(*args)


def _matrix_row(scenario: str, site: str, predictor: str, error: float) -> dict:
    return {
        "scenario": scenario,
        "site": site,
        "predictor": predictor,
        # Machine-friendly fraction; the displayed columns are derived.
        "mape": float(error),
        "MAPE %": round(100.0 * error, 2),
        "dMAPE vs clean (pp)": None,
        "tuned params": None,
    }


def run(
    n_days: int = DEFAULT_N_DAYS,
    sites: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    predictors: Optional[Sequence[str]] = None,
    n_slots: int = 48,
    seed: int = DEFAULT_SCENARIO_SEED,
    jobs: Optional[int] = None,
    tune_wcma: bool = True,
    backend: Optional[str] = None,
    cache=None,
    stats: Optional[list] = None,
    training=None,
) -> ExperimentResult:
    """The robustness matrix: every (scenario, site, predictor) cell.

    Parameters
    ----------
    n_days:
        Trace length; 365 matches the paper's evaluation window.
    sites:
        Site subset (None = the paper's six).
    scenarios:
        Scenario subset (None = :data:`DEFAULT_SCENARIOS`); ``clean``
        is always included as the degradation baseline.
    predictors:
        Registry predictor names (None =
        :data:`DEFAULT_MATRIX_PREDICTORS`).
    n_slots:
        Slots per day; 48 divides every site's native rate.
    seed:
        Scenario-engine seed; the whole report is a pure function of
        ``(seed, n_days, sites, scenarios, predictors, n_slots)``.
    jobs:
        Worker count (None/1 = inline; output identical).
    tune_wcma:
        Also re-tune WCMA per cell via a full grid search through
        :func:`~repro.core.optimizer.sweep_many`.
    backend:
        Executor backend (:data:`repro.parallel.executor.BACKENDS`);
        ``None`` = process pool when ``jobs > 1``.
    cache:
        Optional :class:`~repro.parallel.cache.ResultCache`; finished
        cells are memoised (pre degradation fill) and an interrupted
        matrix resumes from them.
    stats:
        Optional list; the call appends its
        :class:`~repro.parallel.executor.ExecutionStats` record.
    training:
        Optional :class:`~repro.learn.models.TrainingConfig` (or its
        dict form) for the learned predictors; ``None`` keeps the
        package defaults.  Folded into the learned slabs' cache keys,
        so a hyper-parameter change can never serve a stale cell.
    """
    from repro.parallel.executor import execute_units

    site_list = sites_for(sites)
    scenario_list = scenarios_for(scenarios)
    predictor_list = _predictors_for(predictors)
    if n_days <= 0:
        raise ValueError(f"n_days must be positive, got {n_days}")
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    # The learned predictors run column-stacked (one slab unit per
    # predictor covering every cell); everything else stays per-cell.
    stacked = tuple(p for p in predictor_list if p in STACKED_MATRIX_PREDICTORS)
    cell_predictors = tuple(p for p in predictor_list if p not in stacked)
    training_dict = None
    if training is not None or stacked:
        from repro.learn.models import TrainingConfig

        if training is None:
            training_cfg = TrainingConfig()
        elif isinstance(training, TrainingConfig):
            training_cfg = training
        else:
            training_cfg = TrainingConfig.from_dict(dict(training))
        training_dict = training_cfg.to_dict()

    cells = [(site, scenario) for site in site_list for scenario in scenario_list]
    run_cells = bool(cell_predictors) or tune_wcma
    units: List[tuple] = []
    if run_cells:
        units.extend(
            ("cell", (site, scenario, n_days, n_slots, cell_predictors,
                      seed, tune_wcma))
            for site, scenario in cells
        )
    units.extend(
        ("slab", (name, site_list, scenario_list, n_days, n_slots, seed,
                  training_dict))
        for name in stacked
    )

    keys = None
    if cache is not None:
        from repro.parallel.cache import dataset_identity

        identities = {site: dataset_identity(site) for site in site_list}
        keys = []
        if run_cells:
            keys.extend(
                _cell_key(
                    cache, site, scenario, n_days, n_slots, cell_predictors,
                    seed, tune_wcma, identities[site],
                )
                for site, scenario in cells
            )
        if stacked:
            from repro.learn.features import FEATURE_SCHEMA_VERSION

            keys.extend(
                _slab_key(
                    cache, name, site_list, scenario_list, n_days, n_slots,
                    seed, training_dict, FEATURE_SCHEMA_VERSION, identities,
                )
                for name in stacked
            )

    initializer = None
    initargs = ()
    if backend != "thread":
        from repro.experiments.common import warm_worker
        from repro.solar.ingest.sites import measured_specs_for

        measured = measured_specs_for(site_list)
        if measured:
            initializer = warm_worker
            initargs = (measured,)

    outputs, exec_stats = execute_units(
        _robustness_unit,
        units,
        jobs=jobs,
        backend=backend,
        initializer=initializer,
        initargs=initargs,
        cache=cache,
        keys=keys,
    )

    # Re-interleave the slab columns into the original per-cell row
    # order (predictor_list order inside each cell, tuned WCMA last),
    # so the merged output is byte-identical to the all-per-cell path.
    n_cell_units = len(cells) if run_cells else 0
    slab_mapes = {
        name: outputs[n_cell_units + i]["mape"]
        for i, name in enumerate(stacked)
    }
    rows = []
    for c, (site, scenario) in enumerate(cells):
        by_name: Dict[str, dict] = {}
        if run_cells:
            by_name = {row["predictor"]: row for row in outputs[c]}
        for name in predictor_list:
            if name in slab_mapes:
                rows.append(_matrix_row(scenario, site, name, slab_mapes[name][c]))
            else:
                rows.append(by_name[name])
        if tune_wcma:
            rows.append(by_name[TUNED_WCMA_LABEL])

    if stacked:
        stage_totals: Dict[str, float] = {}
        for i in range(len(stacked)):
            for stage, seconds in (
                outputs[n_cell_units + i].get("stage_seconds") or {}
            ).items():
                stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds
        if stage_totals:
            exec_stats.stage_seconds = stage_totals
    if stats is not None:
        stats.append(exec_stats)

    _fill_degradation(rows)
    return ExperimentResult(
        experiment="robustness",
        title=(
            f"scenario robustness matrix: {len(scenario_list)} scenarios x "
            f"{len(site_list)} sites x "
            f"{len(predictor_list) + bool(tune_wcma)} predictors "
            f"({n_days} days, N={n_slots}, seed={seed})"
        ),
        headers=list(_MATRIX_HEADERS),
        rows=rows,
        notes=(
            "dMAPE is percentage points above the same (site, predictor) "
            "cell under the clean scenario; wcma runs the paper's "
            "(alpha=0.7, D=10, K=2), wcma-tuned re-optimises the full "
            "grid per cell."
        ),
        meta={
            "sites": site_list,
            "scenarios": scenario_list,
            "predictors": predictor_list,
            "tune_wcma": bool(tune_wcma),
            "n_days": n_days,
            "n_slots": n_slots,
            "seed": seed,
        },
    )


def _fill_degradation(rows: List[dict]) -> None:
    """Populate the Δ-vs-clean column in place (after any merge)."""
    clean: Dict[Tuple[str, str], float] = {}
    for row in rows:
        if row["scenario"] == "clean":
            clean[(row["site"], row["predictor"])] = row["mape"]
    for row in rows:
        baseline = clean.get((row["site"], row["predictor"]))
        if baseline is not None:
            row["dMAPE vs clean (pp)"] = round(
                100.0 * (row["mape"] - baseline), 2
            )


def run_fleet_robustness(
    n_days: int = 30,
    sites: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    n_slots: int = 48,
    seed: int = DEFAULT_SCENARIO_SEED,
    predictor: str = "wcma",
    controller: str = "kansal",
    capacity_joules: float = 250.0,
) -> ExperimentResult:
    """Deployment robustness: one fleet node per (site, scenario).

    Every node carries the same hardware (mote-class load, one storage
    cell, the same predictor and controller) but a *differently
    degraded* trace, and the whole heterogeneous fleet advances in
    lock-step through one :class:`~repro.management.fleet.FleetSimulator`.
    The interesting output is not prediction error but its downstream
    consequence: achieved duty, downtime and wasted harvest per
    scenario.

    The fleet itself comes from
    :func:`~repro.experiments.fleet.build_fleet_specs` with the
    scenario axis engaged: with single predictor/controller/capacity
    axes its mixed-radix enumeration makes the scenario vary fastest
    and the site slowest, so ``n_sites * n_scenarios`` nodes cover each
    (site, scenario) cell exactly once, in the row order reported here
    -- and the robustness fleet models exactly the same hardware as
    ``repro-solar fleet``.
    """
    from repro.experiments.fleet import build_fleet_specs
    from repro.management.fleet import FleetSimulator

    site_list = sites_for(sites)
    scenario_list = scenarios_for(scenarios)
    if n_days <= 0:
        raise ValueError(f"n_days must be positive, got {n_days}")
    specs = build_fleet_specs(
        n_nodes=len(site_list) * len(scenario_list),
        sites=site_list,
        n_days=n_days,
        predictors=(predictor,),
        controllers=(controller,),
        capacities=(capacity_joules,),
        n_slots=n_slots,
        scenarios=scenario_list,
        scenario_seed=seed,
    )
    result = FleetSimulator(specs, n_slots).run()

    rows = []
    node = 0
    clean_downtime: Dict[str, float] = {}
    for site in site_list:
        for scenario_name in scenario_list:
            # Cross-check the assumed node order against the spec's own
            # label so an axis reshuffle in build_fleet_specs can never
            # silently misattribute a cell.
            expected_prefix = f"{site.lower()}-{scenario_name}-"
            if not specs[node].name.startswith(expected_prefix):
                raise RuntimeError(
                    f"fleet spec order mismatch: node {node} is "
                    f"{specs[node].name!r}, expected a "
                    f"{expected_prefix!r} node -- build_fleet_specs "
                    "axis order changed"
                )
            downtime = float(result.downtime_fraction[node])
            if scenario_name == "clean":
                clean_downtime[site] = downtime
            rows.append(
                {
                    "scenario": scenario_name,
                    "site": site,
                    "mean duty %": round(100.0 * float(result.mean_duty[node]), 2),
                    "downtime %": round(100.0 * downtime, 2),
                    "waste %": round(
                        100.0 * float(result.waste_fraction[node]), 2
                    ),
                    "final soc %": round(
                        100.0 * float(result.final_soc[node]), 2
                    ),
                    # Machine-friendly duplicates for summaries/tests.
                    "downtime": downtime,
                    "mean_duty": float(result.mean_duty[node]),
                }
            )
            node += 1
    for row in rows:
        baseline = clean_downtime.get(row["site"])
        row["ddowntime (pp)"] = (
            round(100.0 * (row["downtime"] - baseline), 2)
            if baseline is not None
            else None
        )
    return ExperimentResult(
        experiment="robustness-fleet",
        title=(
            f"fleet robustness: {len(site_list)} sites x "
            f"{len(scenario_list)} scenarios, one node per cell "
            f"({n_days} days, N={n_slots}, {predictor}/{controller}, "
            f"{capacity_joules:g} J)"
        ),
        headers=[
            "scenario",
            "site",
            "mean duty %",
            "downtime %",
            "ddowntime (pp)",
            "waste %",
            "final soc %",
        ],
        rows=rows,
        notes=(
            "Each row is one lock-step fleet node running the scenario's "
            "degraded trace; ddowntime is percentage points of downtime "
            "above the same site's clean node."
        ),
        meta={
            "sites": site_list,
            "scenarios": scenario_list,
            "predictor": predictor,
            "controller": controller,
            "n_days": n_days,
            "n_slots": n_slots,
            "seed": seed,
            "n_nodes": len(specs),
        },
    )
