"""The paper's reported numbers, transcribed for comparison.

Every value below is copied from the paper (DATE 2010).  The runner
places these next to the regenerated numbers in EXPERIMENTS.md; shape
tests in ``tests/experiments/`` assert the qualitative agreements
listed in DESIGN.md.  MAPE values are fractions (0.158 = 15.80 %).
"""

from __future__ import annotations

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "TABLE5",
    "FIG6_OVERHEAD",
]

#: Table I -- data sets used.
TABLE1 = {
    "SPMD": {"location": "CO", "observations": 105_120, "days": 365, "resolution_minutes": 5},
    "ECSU": {"location": "NC", "observations": 105_120, "days": 365, "resolution_minutes": 5},
    "ORNL": {"location": "TN", "observations": 525_600, "days": 365, "resolution_minutes": 1},
    "HSU": {"location": "CA", "observations": 525_600, "days": 365, "resolution_minutes": 1},
    "NPCS": {"location": "NV", "observations": 525_600, "days": 365, "resolution_minutes": 1},
    "PFCI": {"location": "AZ", "observations": 525_600, "days": 365, "resolution_minutes": 1},
}

#: Table II -- optimisation under MAPE' vs MAPE at N=48.
#: site -> {"prime": (alpha, D, K, mape'), "mape": (alpha, D, K, mape)}
TABLE2 = {
    "SPMD": {"prime": (0.2, 19, 1, 0.4207), "mape": (0.7, 20, 1, 0.1580)},
    "ECSU": {"prime": (0.2, 20, 2, 0.3289), "mape": (0.7, 20, 3, 0.1345)},
    "ORNL": {"prime": (0.4, 20, 3, 0.3661), "mape": (0.7, 20, 3, 0.1722)},
    "HSU": {"prime": (0.4, 20, 3, 0.2690), "mape": (0.7, 18, 3, 0.1401)},
    "NPCS": {"prime": (0.0, 15, 1, 0.1717), "mape": (0.6, 20, 2, 0.0806)},
    "PFCI": {"prime": (0.2, 20, 3, 0.1393), "mape": (0.6, 20, 3, 0.0659)},
}

#: Table III -- (alpha, D, K, MAPE, MAPE@K=2) per (site, N).
#: D/K of None encode the paper's "n/a" entries; MAPE of 0.0 the "0†".
TABLE3 = {
    ("SPMD", 288): (1.0, None, None, 0.0, 0.0),
    ("SPMD", 96): (0.8, 20, 1, 0.1027, 0.1039),
    ("SPMD", 72): (0.8, 20, 1, 0.1236, 0.1247),
    ("SPMD", 48): (0.7, 20, 1, 0.1580, 0.1610),
    ("SPMD", 24): (0.6, 12, 2, 0.2035, None),
    ("ECSU", 288): (1.0, None, None, 0.0, 0.0),
    ("ECSU", 96): (0.8, 20, 2, 0.0939, None),
    ("ECSU", 72): (0.8, 20, 3, 0.1111, 0.1119),
    ("ECSU", 48): (0.7, 20, 3, 0.1345, 0.1351),
    ("ECSU", 24): (0.6, 19, 1, 0.1824, 0.1851),
    ("ORNL", 288): (1.0, None, None, 0.0831, None),
    ("ORNL", 96): (0.8, 20, 3, 0.1442, 0.1447),
    ("ORNL", 72): (0.8, 20, 4, 0.1572, 0.1588),
    ("ORNL", 48): (0.7, 20, 3, 0.1722, 0.1743),
    ("ORNL", 24): (0.6, 12, 2, 0.2143, None),
    ("HSU", 288): (0.9, 20, 1, 0.0600, 0.0601),
    ("HSU", 96): (0.8, 20, 4, 0.1080, 0.1088),
    ("HSU", 72): (0.8, 20, 5, 0.1211, 0.1230),
    ("HSU", 48): (0.7, 18, 3, 0.1401, 0.1411),
    ("HSU", 24): (0.7, 12, 2, 0.1919, None),
    ("NPCS", 288): (0.9, 20, 1, 0.0391, 0.0392),
    ("NPCS", 96): (0.7, 20, 3, 0.0678, 0.0680),
    ("NPCS", 72): (0.6, 20, 2, 0.0740, None),
    ("NPCS", 48): (0.6, 20, 2, 0.0806, None),
    ("NPCS", 24): (0.5, 20, 1, 0.0888, 0.0911),
    ("PFCI", 288): (0.9, 20, 4, 0.0345, 0.0346),
    ("PFCI", 96): (0.7, 20, 5, 0.0564, 0.0577),
    ("PFCI", 72): (0.6, 20, 4, 0.0592, 0.0608),
    ("PFCI", 48): (0.6, 20, 3, 0.0659, 0.0668),
    ("PFCI", 24): (0.5, 10, 2, 0.0897, None),
}

#: Table IV -- measured energies.
TABLE4 = {
    "adc_event_uj": 55.0,
    "adc_plus_prediction_k1_a07_uj": 58.6,
    "adc_plus_prediction_k7_a07_uj": 63.4,
    "adc_plus_prediction_k7_a00_uj": 61.5,
    "sleep_per_day_mj": 356.0,
    "adc_48_per_day_uj": 2640.0,
    "adc_plus_prediction_48_per_day_uj": 2880.0,
}

#: Table V -- dynamic parameter selection (four sites in the paper).
#: (site, N) -> (static, both, k_only_alpha, k_only, alpha_only_k, alpha_only)
TABLE5 = {
    ("SPMD", 288): (0.0, 0.0, 1.0, 0.0, None, 0.0),
    ("SPMD", 96): (0.1027, 0.0425, 0.4, 0.0731, 6, 0.0548),
    ("SPMD", 72): (0.1236, 0.0513, 0.3, 0.0854, 6, 0.0647),
    ("SPMD", 48): (0.1580, 0.0643, 0.3, 0.1063, 6, 0.0821),
    ("SPMD", 24): (0.2035, 0.0695, 0.3, 0.1308, 3, 0.1121),
    ("ECSU", 288): (0.0, 0.0, 1.0, 0.0, None, 0.0),
    ("ECSU", 96): (0.0939, 0.0376, 0.3, 0.0632, 6, 0.0485),
    ("ECSU", 72): (0.1111, 0.0444, 0.3, 0.0740, 6, 0.0568),
    ("ECSU", 48): (0.1345, 0.0537, 0.3, 0.0892, 6, 0.0693),
    ("ECSU", 24): (0.1824, 0.0616, 0.3, 0.1125, 3, 0.1037),
    ("ORNL", 288): (0.0831, 0.0385, 0.2, 0.0607, 6, 0.0468),
    ("ORNL", 96): (0.1442, 0.0640, 0.0, 0.0935, 6, 0.0769),
    ("ORNL", 72): (0.1572, 0.0672, 0.0, 0.1009, 6, 0.0810),
    ("ORNL", 48): (0.1722, 0.0738, 0.1, 0.1134, 6, 0.0926),
    ("ORNL", 24): (0.2143, 0.0730, 0.2, 0.1294, 3, 0.1203),
    ("HSU", 288): (0.0600, 0.0275, 0.3, 0.0446, 6, 0.0343),
    ("HSU", 96): (0.1080, 0.0460, 0.1, 0.0719, 6, 0.0576),
    ("HSU", 72): (0.1211, 0.0515, 0.2, 0.0814, 6, 0.0649),
    ("HSU", 48): (0.1401, 0.0552, 0.2, 0.0932, 6, 0.0736),
    ("HSU", 24): (0.1919, 0.0592, 0.3, 0.1121, 3, 0.1011),
}

#: Fig. 6 -- overhead (fraction of sleep energy) per N.
FIG6_OVERHEAD = {288: 0.0485, 96: 0.0162, 72: 0.0121, 48: 0.0081, 24: 0.0040}
