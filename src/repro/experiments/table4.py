"""Table IV -- energy consumption of power sampling and prediction.

Regenerates every row of Table IV from the hardware model:

* per-event energies (A/D alone; A/D + prediction at the three
  measured (K, alpha) points);
* deep-sleep energy per day;
* per-day sampling and sampling+prediction totals at N=48 (the paper
  uses a "typical" 5 uJ prediction cost for the daily rows).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hardware.energy import (
    TYPICAL_PREDICTION_ENERGY_J,
    adc_energy_per_sample,
    daily_energy,
    prediction_energy,
)
from repro.hardware.mcu import MSP430F1611

__all__ = ["run"]

HEADERS = ["hardware_activity", "energy"]


def run() -> ExperimentResult:
    """Regenerate Table IV (deterministic; no trace input)."""
    adc = adc_energy_per_sample()
    rows = [
        {
            "hardware_activity": "A/D conversion",
            "energy": f"{adc * 1e6:.1f} uJ",
        },
        {
            "hardware_activity": "A/D conversion + Prediction (K=1, alpha=0.7)",
            "energy": f"{(adc + prediction_energy(1, 0.7)) * 1e6:.1f} uJ",
        },
        {
            "hardware_activity": "A/D conversion + Prediction (K=7, alpha=0.7)",
            "energy": f"{(adc + prediction_energy(7, 0.7)) * 1e6:.1f} uJ",
        },
        {
            "hardware_activity": "A/D conversion + Prediction (K=7, alpha=0.0)",
            "energy": f"{(adc + prediction_energy(7, 0.0)) * 1e6:.1f} uJ",
        },
        {
            "hardware_activity": "Low power (sleep) mode",
            "energy": f"{MSP430F1611.sleep_energy_per_day() * 1e3:.0f} mJ per day",
        },
        {
            "hardware_activity": "A/D conversion 48 samples per day @55uJ",
            "energy": f"{daily_energy(48, include_prediction=False) * 1e6:.0f} uJ per day",
        },
        {
            "hardware_activity": "A/D conversion + prediction 48 times per day @60uJ",
            "energy": f"{daily_energy(48) * 1e6:.0f} uJ per day",
        },
    ]
    return ExperimentResult(
        experiment="table4",
        title="Energy consumption of power sampling and prediction algorithm",
        headers=HEADERS,
        rows=rows,
        notes=(
            "Per-event energies from the calibrated MSP430F1611 cycle "
            "model; the per-day rows use the paper's typical "
            f"{TYPICAL_PREDICTION_ENERGY_J * 1e6:.0f} uJ prediction cost."
        ),
    )
