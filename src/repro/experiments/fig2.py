"""Fig. 2 -- solar energy measured on six days.

The paper's motivational figure: per-5-minute-interval energy across
six consecutive days, showing intra-day and day-to-day variation.  We
regenerate the series (sampled from a variable site so both effects are
visible) as (day, interval, energy) rows; the render is textual, but
the ``series()`` helper returns plot-ready arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.common import DEFAULT_N_DAYS, ExperimentResult
from repro.solar.datasets import build_dataset
from repro.solar.slots import SlotView

__all__ = ["run", "series"]

HEADERS = ["day", "peak_wm2", "energy_wh_m2", "day_character"]

#: Interval length of the figure (the paper plots 5-minute energies).
INTERVAL_MINUTES = 5


def series(
    site: str = "SPMD",
    start_day: int = None,
    n_figure_days: int = 6,
    n_days: int = DEFAULT_N_DAYS,
) -> np.ndarray:
    """The plotted series: per-5-minute mean power, shape (days, 288).

    ``start_day`` defaults to day 150 (early summer, as the paper's
    figure appears to be), clipped to fit shorter traces.
    """
    trace = build_dataset(site, n_days=n_days)
    view = SlotView.from_trace(trace, (24 * 60) // INTERVAL_MINUTES)
    if start_day is None:
        start_day = max(0, min(150, view.n_days - n_figure_days))
    if not (0 <= start_day and start_day + n_figure_days <= view.n_days):
        raise ValueError(
            f"day window [{start_day}, {start_day + n_figure_days}) outside trace"
        )
    return view.means[start_day : start_day + n_figure_days]


def run(
    site: str = "SPMD",
    start_day: int = None,
    n_figure_days: int = 6,
    n_days: int = DEFAULT_N_DAYS,
    sites: Optional[object] = None,  # accepted for runner uniformity
) -> ExperimentResult:
    """Regenerate Fig. 2 as per-day summary rows (series via ``series()``)."""
    data = series(site, start_day, n_figure_days, n_days)
    if start_day is None:
        start_day = max(0, min(150, n_days - n_figure_days))
    dt_hours = INTERVAL_MINUTES / 60.0
    rows = []
    for offset in range(data.shape[0]):
        day_values = data[offset]
        peak = float(day_values.max())
        energy = float(day_values.sum() * dt_hours)
        daylight = day_values[day_values > 0.05 * max(peak, 1e-9)]
        variability = (
            float(np.abs(np.diff(daylight)).mean()) / peak if daylight.size > 1 and peak > 0 else 0.0
        )
        character = "smooth" if variability < 0.01 else ("broken" if variability < 0.05 else "very broken")
        rows.append(
            {
                "day": start_day + offset + 1,
                "peak_wm2": peak,
                "energy_wh_m2": energy,
                "day_character": character,
            }
        )
    return ExperimentResult(
        experiment="fig2",
        title=f"Solar energy on {n_figure_days} days ({site}, 5-minute intervals)",
        headers=HEADERS,
        rows=rows,
        notes=(
            "Summary of the plotted series; use "
            "repro.experiments.fig2.series() for the raw (days x 288) "
            "matrix the figure draws."
        ),
        meta={"site": site, "start_day": start_day},
    )
