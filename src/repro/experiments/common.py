"""Shared infrastructure for the experiment modules.

* :class:`ExperimentResult` -- rows + metadata + text rendering.
* :func:`trace_for` / :func:`batch_for` -- the two cache levels the
  table/figure reproductions run on (see below).
* :func:`format_table` -- minimal fixed-width text table.

Cache architecture
------------------
Experiments touch the same data at three granularities, each with its
own memo so nothing is rebuilt one level down:

1. **Native trace per (site, n_days)** -- :func:`trace_for`.  Building a
   one-year 1-minute trace costs a noticeable fraction of a second; a
   sweep over the five paper ``N`` values must slot the *same* trace
   five ways, not synthesise it five times.
2. **Batch engine per (site, n_days, N)** -- :func:`batch_for`, a small
   LRU of :class:`~repro.core.wcma.WCMABatch` instances.  A batch holds
   the slotted trace plus the per-``D``/per-``(D, K)`` ``μ``/``η``/``Φ``
   caches every grid search of Tables II/III/V and Fig. 7 shares.
3. **Inside each batch** -- the sweep-v2 kernel caches documented on
   :class:`~repro.core.wcma.WCMABatch` (shared day-axis prefix sum,
   memoised ``μ``/``η`` per ``D``, incremental ``Φ`` window sums).

Both memos are per process.  Under the parallel runner
(:func:`repro.experiments.runner.run_all` with ``jobs > 1``) every
worker process grows its own copies for the (experiment, site) units it
executes; nothing is pickled or shared between workers, so cache state
never crosses process boundaries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.wcma import WCMABatch
from repro.solar.datasets import build_dataset
from repro.solar.sites import SITE_ORDER
from repro.solar.trace import SolarTrace

__all__ = [
    "DEFAULT_N_DAYS",
    "PAPER_N_VALUES",
    "BATCH_CACHE_MAX_ENTRIES",
    "ExperimentResult",
    "trace_for",
    "batch_for",
    "clear_batch_cache",
    "format_table",
    "sites_for",
    "supported_n_for_site",
    "warm_worker",
]

#: Evaluation length used by the paper (days 21..365 scored).
DEFAULT_N_DAYS = 365

#: Sampling rates evaluated in Table III.
PAPER_N_VALUES = (288, 96, 72, 48, 24)

#: LRU bound on the memoised batch engines.  A WCMABatch holds the full
#: flattened trace plus per-(D, K) conditioned-term caches, so an
#: unbounded dict grows without limit during long sweeps over many
#: (site, days, N) keys; eight entries cover a whole per-site experiment
#: (the five paper N values plus slack) while keeping memory flat.
BATCH_CACHE_MAX_ENTRIES = 8

_BATCH_CACHE: "OrderedDict[Tuple[str, int, int, object], WCMABatch]" = OrderedDict()

_TRACE_CACHE: Dict[Tuple[str, int, object], SolarTrace] = {}


def trace_for(site: str, n_days: int) -> SolarTrace:
    """Memoised native-resolution trace for one (site, trace length).

    Deliberately keyed *without* ``N``: a batch-cache miss for a new
    sampling rate re-slots the already-built trace instead of
    regenerating it.  Unbounded, but a full ``run_all`` only ever holds
    the paper's six sites at one or two trace lengths.

    The key also carries the dataset identity token
    (:func:`repro.solar.datasets.dataset_token`) so re-registering a
    measured site name against a different file can never serve the
    previous file's memoised trace.
    """
    from repro.solar.datasets import dataset_token

    key = (site.upper(), n_days, dataset_token(site))
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = build_dataset(site, n_days=n_days)
    return _TRACE_CACHE[key]


def batch_for(site: str, n_days: int, n_slots: int) -> WCMABatch:
    """Memoised batch engine for one (site, trace length, N).

    The memo is a small LRU (:data:`BATCH_CACHE_MAX_ENTRIES`): a hit
    refreshes the entry, a miss beyond the bound evicts the least
    recently used batch.  The underlying native trace comes from
    :func:`trace_for`, so evicted batches rebuild only the slot view
    and kernel caches, never the trace itself.  Keys carry the same
    dataset identity token as :func:`trace_for`.
    """
    from repro.solar.datasets import dataset_token

    key = (site.upper(), n_days, n_slots, dataset_token(site))
    if key in _BATCH_CACHE:
        _BATCH_CACHE.move_to_end(key)
        return _BATCH_CACHE[key]
    trace = trace_for(site, n_days)
    batch = WCMABatch.from_trace(trace, n_slots)
    _BATCH_CACHE[key] = batch
    while len(_BATCH_CACHE) > BATCH_CACHE_MAX_ENTRIES:
        _BATCH_CACHE.popitem(last=False)
    return batch


def clear_batch_cache() -> None:
    """Drop memoised batches and traces (tests)."""
    _BATCH_CACHE.clear()
    _TRACE_CACHE.clear()


def warm_worker(
    measured_specs: Sequence = (),
    traces: Sequence[Tuple[str, int]] = (),
) -> None:
    """Pool initializer: re-arm per-process state before the first unit.

    Runs once per worker (process *or* thread backend -- it is
    idempotent, so re-running in the parent for threads is harmless):

    * re-registers the picklable measured-site specs, since the ingest
      registry (:mod:`repro.solar.ingest.sites`) is per-process state
      and a spawned worker starts without it;
    * optionally pre-builds :func:`trace_for` entries for the given
      ``(site, n_days)`` pairs, so no unit pays the trace synthesis /
      ingestion cold start inside its timed work.
    """
    if measured_specs:
        from repro.solar.ingest.sites import install_measured_sites

        install_measured_sites(measured_specs)
    for site, n_days in traces:
        trace_for(site, n_days)


def sites_for(sites: Optional[Sequence[str]]) -> Tuple[str, ...]:
    """Normalise a site selection (None -> the paper's six, in order).

    Explicit selections are validated against every available dataset
    -- the synthetic six plus any registered measured site
    (:mod:`repro.solar.ingest.sites`); the default stays the paper's
    six.
    """
    if sites is None:
        return SITE_ORDER
    from repro.solar.datasets import available_datasets

    known = available_datasets()
    resolved = tuple(s.upper() for s in sites)
    unknown = [s for s in resolved if s not in known]
    if unknown:
        raise ValueError(f"unknown sites: {unknown}; available: {known}")
    return resolved


def supported_n_for_site(site: str, n_values: Sequence[int]) -> Tuple[int, ...]:
    """Filter N values to those the site's resolution supports.

    The paper's footnote: N=288 "is not defined" for the 5-minute sites
    in the sense that a slot then contains a single sample -- it is
    still evaluable (and trivially exact at alpha=1); what cannot be
    evaluated is N exceeding the native samples per day.  We keep every
    N that divides the native rate.  Works for measured sites too.
    """
    from repro.solar.datasets import samples_per_day_for

    spd = samples_per_day_for(site)
    return tuple(n for n in n_values if spd % n == 0 and n <= spd)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], indent: str = ""
) -> str:
    """Fixed-width text table (no external dependencies)."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
    cells = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[c]) for row in cells) for c in range(columns)]
    lines = []
    for i, row in enumerate(cells):
        line = indent + "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row))
        lines.append(line.rstrip())
        if i == 0:
            lines.append(indent + "  ".join("-" * widths[c] for c in range(columns)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Regenerated numbers for one table/figure.

    Attributes
    ----------
    experiment:
        Identifier, e.g. ``"table3"``.
    title:
        Human-readable description.
    headers:
        Column names of ``rows``.
    rows:
        List of dicts keyed by ``headers`` entries.
    notes:
        Free-form remarks (conventions, substitutions).
    """

    experiment: str
    title: str
    headers: List[str]
    rows: List[dict]
    notes: str = ""
    meta: dict = field(default_factory=dict)

    def render(self) -> str:
        """Paper-style fixed-width text rendering."""
        table = format_table(
            self.headers,
            [[_fmt(row.get(h)) for h in self.headers] for row in self.rows],
        )
        parts = [f"{self.experiment.upper()}: {self.title}", table]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        if name not in self.headers:
            raise KeyError(f"unknown column {name!r}; have {self.headers}")
        return [row.get(name) for row in self.rows]


def _fmt(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
