"""Table III -- optimised parameters and MAPE across sampling rates N.

For every site and every supported N in {288, 96, 72, 48, 24}, find the
MAPE-minimising (alpha, D, K) and additionally the best error with K
fixed at 2 (the paper's last column, supporting the "K=2 is nearly
optimal" guideline; reported n/a where the optimum already has K=2).

Paper shape to reproduce: MAPE decreases monotonically with N for every
site; alpha* rises toward 1 as N grows; at N=288 on the 5-minute sites
(one sample per slot) alpha=1 gives exactly 0 error (the 0† entries).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.optimizer import SweepSpec, sweep_many
from repro.experiments.common import (
    DEFAULT_N_DAYS,
    PAPER_N_VALUES,
    ExperimentResult,
    batch_for,
    sites_for,
    supported_n_for_site,
)

__all__ = ["run"]

HEADERS = ["data_set", "n", "alpha", "d", "k", "mape", "mape_k2"]


def run(
    n_days: int = DEFAULT_N_DAYS,
    sites: Optional[Sequence[str]] = None,
    n_values: Sequence[int] = PAPER_N_VALUES,
) -> ExperimentResult:
    """Regenerate Table III."""
    rows = []
    for site in sites_for(sites):
        # All supported N of one site as a single sweep_many call; the
        # native trace is built once (trace_for) and re-slotted per N.
        specs = []
        for n_slots in supported_n_for_site(site, n_values):
            batch = batch_for(site, n_days, n_slots)
            specs.append(SweepSpec(batch.view.trace, n_slots, batch=batch))
        for spec, result in zip(specs, sweep_many(specs)):
            n_slots = spec.n_slots
            best = result.best
            if best.k == 2:
                mape_k2 = None  # paper reports n/a when the optimum is K=2
            else:
                _, mape_k2 = result.best_for_k(2)
            rows.append(
                {
                    "data_set": site,
                    "n": n_slots,
                    "alpha": best.alpha,
                    "d": best.days,
                    "k": best.k,
                    "mape": result.best_error,
                    "mape_k2": mape_k2,
                }
            )
    return ExperimentResult(
        experiment="table3",
        title="Prediction results at different values of N",
        headers=HEADERS,
        rows=rows,
        notes=(
            "mape_k2 is the best error with K fixed at 2 (n/a when the "
            "unconstrained optimum already uses K=2).  N values that "
            "exceed a site's native sampling rate are skipped."
        ),
        meta={"n_days": n_days, "n_values": tuple(n_values)},
    )
