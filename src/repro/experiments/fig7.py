"""Fig. 7 -- MAPE versus history depth D for every site (N=48).

For each site, evaluate MAPE at every D in 2..20 using the (alpha, K)
the Table III optimisation selected for that site at N=48 (the paper
fixes alpha and K the same way).  Shape to reproduce: error drops
steeply for small D and flattens around D ~ 10-11 for every site,
supporting the memory-conserving D~=10 guideline.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.optimizer import DEFAULT_DAYS, grid_search
from repro.experiments.common import (
    DEFAULT_N_DAYS,
    ExperimentResult,
    batch_for,
    sites_for,
)

__all__ = ["run", "series"]

N_SLOTS = 48

HEADERS = ["data_set", "d", "mape"]


def series(
    n_days: int = DEFAULT_N_DAYS,
    sites: Optional[Sequence[str]] = None,
    days_grid: Sequence[int] = DEFAULT_DAYS,
) -> Dict[str, np.ndarray]:
    """Per-site MAPE arrays over ``days_grid`` (plot-ready)."""
    out: Dict[str, np.ndarray] = {}
    for site in sites_for(sites):
        batch = batch_for(site, n_days, N_SLOTS)
        sweep = grid_search(
            batch.view.trace, N_SLOTS, days=days_grid, batch=batch
        )
        best = sweep.best
        alpha_idx = sweep.alphas.index(best.alpha)
        k_idx = sweep.ks.index(best.k)
        out[site] = sweep.errors[:, k_idx, alpha_idx].copy()
    return out


def run(
    n_days: int = DEFAULT_N_DAYS,
    sites: Optional[Sequence[str]] = None,
    days_grid: Sequence[int] = DEFAULT_DAYS,
) -> ExperimentResult:
    """Regenerate the Fig. 7 curves as long-format rows."""
    curves = series(n_days=n_days, sites=sites, days_grid=days_grid)
    rows = []
    for site, errors in curves.items():
        for d_value, mape_value in zip(days_grid, errors):
            rows.append({"data_set": site, "d": d_value, "mape": float(mape_value)})
    return ExperimentResult(
        experiment="fig7",
        title=f"MAPE trends with increasing D (N={N_SLOTS})",
        headers=HEADERS,
        rows=rows,
        notes=(
            "Each site's curve uses the (alpha, K) of its Table III "
            f"optimum at N={N_SLOTS}, as in the paper."
        ),
        meta={"n_days": n_days, "days_grid": tuple(days_grid)},
    )
