"""Table I -- details of the data sets used.

Regenerates the inventory row per site from the synthetic stand-in
traces; the observation counts and resolutions must match the paper
exactly (the substitution preserves the sampling geometry).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import DEFAULT_N_DAYS, ExperimentResult, sites_for
from repro.solar.datasets import build_dataset

__all__ = ["run"]

HEADERS = ["data_set", "location", "observations", "days", "resolution"]


def run(
    n_days: int = DEFAULT_N_DAYS, sites: Optional[Sequence[str]] = None
) -> ExperimentResult:
    """Build every trace and report its Table I row."""
    rows = []
    for site_name in sites_for(sites):
        trace = build_dataset(site_name, n_days=n_days)
        from repro.solar.sites import get_site

        site = get_site(site_name)
        rows.append(
            {
                "data_set": site.name,
                "location": site.location,
                "observations": trace.n_samples,
                "days": trace.n_days,
                "resolution": f"{trace.resolution_minutes} minutes",
            }
        )
    return ExperimentResult(
        experiment="table1",
        title="Details of the data sets used (synthetic stand-ins)",
        headers=HEADERS,
        rows=rows,
        notes=(
            "Traces are synthetic NREL-MIDC stand-ins (see DESIGN.md); "
            "observation counts and resolutions match Table I at "
            f"n_days={n_days}."
        ),
    )
