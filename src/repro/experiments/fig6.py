"""Fig. 6 -- prediction-activity overhead at different N.

Sampling + prediction energy per day as a percentage of the deep-sleep
energy per day, for each N in {288, 96, 72, 48, 24}.  Deterministic
arithmetic over the Table IV anchors; must match the paper's bars
(4.85 %, 1.62 %, 1.21 %, 0.81 %, 0.40 %) exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import PAPER_N_VALUES, ExperimentResult
from repro.hardware.energy import daily_energy, overhead_fraction
from repro.hardware.mcu import MSP430F1611

__all__ = ["run"]

HEADERS = ["n", "activity_uj_per_day", "sleep_mj_per_day", "overhead_percent"]


def run(
    n_values: Sequence[int] = PAPER_N_VALUES,
    sites: Optional[object] = None,  # accepted for runner uniformity
) -> ExperimentResult:
    """Regenerate the Fig. 6 series."""
    rows = []
    for n_slots in n_values:
        rows.append(
            {
                "n": n_slots,
                "activity_uj_per_day": daily_energy(n_slots) * 1e6,
                "sleep_mj_per_day": MSP430F1611.sleep_energy_per_day() * 1e3,
                "overhead_percent": overhead_fraction(n_slots) * 100.0,
            }
        )
    return ExperimentResult(
        experiment="fig6",
        title="Prediction algorithm overhead at different N",
        headers=HEADERS,
        rows=rows,
        notes="Overhead = (sampling + typical prediction) / sleep energy.",
        meta={"n_values": tuple(n_values)},
    )
