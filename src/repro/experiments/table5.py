"""Table V -- clairvoyant dynamic parameter selection.

For the paper's four dynamic-study sites (SPMD, ECSU, ORNL, HSU) and
every supported N, compute:

* the static optimum MAPE (from the Table III sweep);
* dynamic (alpha + K): per-prediction best of both;
* dynamic K at the best fixed alpha (reporting that alpha);
* dynamic alpha at the best fixed K (reporting that K).

Shape to reproduce: both >= alpha-only >= K-only >= static (in gain);
gains grow as N shrinks; dynamic at N=48 beats static at N=288; the
best fixed alpha for dynamic-K is *lower* than the static alpha*, and
the best fixed K for dynamic-alpha is *higher* than the static K*.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.dynamic import clairvoyant_dynamic
from repro.core.optimizer import SweepSpec, sweep_many
from repro.experiments.common import (
    DEFAULT_N_DAYS,
    PAPER_N_VALUES,
    ExperimentResult,
    batch_for,
    sites_for,
    supported_n_for_site,
)

__all__ = ["run", "DYNAMIC_SITES"]

#: The paper's Table V covers these four sites.
DYNAMIC_SITES = ("SPMD", "ECSU", "ORNL", "HSU")

HEADERS = [
    "data_set",
    "n",
    "static_mape",
    "both_mape",
    "k_only_alpha",
    "k_only_mape",
    "alpha_only_k",
    "alpha_only_mape",
]


def run(
    n_days: int = DEFAULT_N_DAYS,
    sites: Optional[Sequence[str]] = None,
    n_values: Sequence[int] = PAPER_N_VALUES,
) -> ExperimentResult:
    """Regenerate Table V."""
    selected = sites_for(sites if sites is not None else DYNAMIC_SITES)
    rows = []
    for site in selected:
        # Static optima for every supported N in one sweep_many call
        # (shared trace via trace_for, shared kernels per batch); the
        # clairvoyant passes then reuse the same batches.
        specs = []
        for n_slots in supported_n_for_site(site, n_values):
            batch = batch_for(site, n_days, n_slots)
            specs.append(SweepSpec(batch.view.trace, n_slots, batch=batch))
        for spec, static in zip(specs, sweep_many(specs)):
            n_slots = spec.n_slots
            batch = spec.batch
            days = static.best.days
            both = clairvoyant_dynamic(
                batch.view.trace, n_slots, days, mode="both", batch=batch
            )
            k_only = clairvoyant_dynamic(
                batch.view.trace, n_slots, days, mode="k_only", batch=batch
            )
            alpha_only = clairvoyant_dynamic(
                batch.view.trace, n_slots, days, mode="alpha_only", batch=batch
            )
            rows.append(
                {
                    "data_set": site,
                    "n": n_slots,
                    "static_mape": static.best_error,
                    "both_mape": both.mape,
                    "k_only_alpha": k_only.fixed_alpha,
                    "k_only_mape": k_only.mape,
                    "alpha_only_k": alpha_only.fixed_k,
                    "alpha_only_mape": alpha_only.mape,
                }
            )
    return ExperimentResult(
        experiment="table5",
        title=(
            "Results for dynamic parameters selection varying both alpha "
            "and K, only K at a fixed alpha and vice versa"
        ),
        headers=HEADERS,
        rows=rows,
        notes=(
            "Clairvoyant selection (Section IV-C): per-prediction best "
            "parameters; D fixed at the static optimum's value."
        ),
        meta={"n_days": n_days, "n_values": tuple(n_values)},
    )
