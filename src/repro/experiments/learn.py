"""Learned-tier experiment: train/serve split with held-out scoring.

:func:`fit_artifact` sees only the first ``train_days`` of each trace;
the resulting frozen artifact then serves the *full* trace with the
scoring warm-up set to ``train_days``, so every scored prediction is
strictly out-of-sample.  Next to it the same model runs in its online
self-fitting mode (periodic refits on a trailing window -- what the
registry serves by default), plus the WCMA and EWMA baselines under the
identical holdout mask.  The artifact digest rides along per row: the
training path is deterministic, so the digest doubles as a
reproducibility check across machines and ``PYTHONHASHSEED`` values.

``repro-solar learn`` is the CLI face of this module; pass
``--model-dir`` there (or ``store_dir`` here) to persist the artifacts
for ``repro-solar serve --model-dir``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.registry import make_predictor
from repro.experiments.common import ExperimentResult, sites_for, trace_for
from repro.learn.artifact import ArtifactStore
from repro.learn.models import MODEL_KINDS, TrainingConfig
from repro.learn.predictor import LearnedPredictor
from repro.learn.training import fit_artifact
from repro.metrics.evaluate import evaluate_predictor

__all__ = ["run", "DEFAULT_LEARN_SITES", "DEFAULT_TRAIN_DAYS"]

#: Sites of the learned-tier study (one clear-sky-dominated, one cloudy).
DEFAULT_LEARN_SITES = ("PFCI", "HSU")

#: Days reserved for training; scoring starts at the next boundary.
DEFAULT_TRAIN_DAYS = 30

HEADERS = [
    "site",
    "model",
    "train_mape",
    "frozen_mape",
    "online_mape",
    "wcma_mape",
    "ewma_mape",
    "digest",
]


def run(
    n_days: int = 45,
    sites: Optional[Sequence[str]] = None,
    models: Sequence[str] = MODEL_KINDS,
    train_days: int = DEFAULT_TRAIN_DAYS,
    n_slots: int = 48,
    seed: int = 0,
    store_dir: Optional[str] = None,
) -> ExperimentResult:
    """Train on the head of each trace, score everything on the tail.

    ``train_days`` must leave at least one scored day (``n_days -
    train_days >= 1``); the frozen/online/baseline columns are MAPE over
    days ``train_days..n_days`` only.  With ``store_dir``, each artifact
    is persisted there (atomically, schema-stamped) as a side effect.
    """
    if not 0 < train_days < n_days:
        raise ValueError(
            f"train_days must be in (0, n_days); got {train_days} of {n_days}"
        )
    selected = sites_for(sites if sites is not None else DEFAULT_LEARN_SITES)
    training = TrainingConfig(seed=seed)
    store = ArtifactStore(store_dir) if store_dir is not None else None
    rows = []
    for site in selected:
        trace = trace_for(site, n_days)
        head = trace.select_days(0, train_days)
        baselines = {
            name: evaluate_predictor(
                make_predictor(name, n_slots), trace, n_slots,
                warmup_days=train_days,
            ).mape
            for name in ("wcma", "ewma")
        }
        for model in models:
            artifact = fit_artifact(
                head, n_slots, model=model, site=site, training=training
            )
            digest = store.save(artifact) if store else artifact.digest()
            frozen = evaluate_predictor(
                LearnedPredictor(n_slots, model=model, artifact=artifact),
                trace, n_slots, warmup_days=train_days,
            )
            online = evaluate_predictor(
                make_predictor(model, n_slots), trace, n_slots,
                warmup_days=train_days,
            )
            rows.append(
                {
                    "site": site,
                    "model": model,
                    "train_mape": artifact.training["train_mape"],
                    "frozen_mape": frozen.mape,
                    "online_mape": online.mape,
                    "wcma_mape": baselines["wcma"],
                    "ewma_mape": baselines["ewma"],
                    "digest": digest,
                }
            )
    return ExperimentResult(
        experiment="learn",
        title="Learned tier: frozen-artifact holdout vs online refits",
        headers=HEADERS,
        rows=rows,
        notes=(
            f"Artifacts trained on days 0..{train_days}, all columns "
            f"scored on days {train_days}..{n_days} only (warm-up mask); "
            "digest is the deterministic artifact state digest."
        ),
        meta={
            "n_days": n_days,
            "train_days": train_days,
            "n_slots": n_slots,
            "seed": seed,
            "models": tuple(models),
        },
    )
