"""Per-event and per-day energy accounting (Table IV, Fig. 6).

Anchors:

* A/D conversion event: 55 uJ (measured, Table IV).
* Prediction: cycle model of :mod:`repro.hardware.cycles` converted at
  the MCU's energy per cycle -- reproduces the measured 3.6-8.4 uJ.
* Deep sleep: 356 mJ/day (measured, Table IV).

Derived quantities reproduce the rest of Table IV and Fig. 6:

* per-day sampling cost at N=48: ``48 * 55 uJ = 2640 uJ``;
* per-day sampling+prediction at the paper's "typical 5 uJ"
  prediction: ``48 * 60 uJ = 2880 uJ``;
* overhead vs sleep: 0.81 % at N=48, 4.85 % at N=288 (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.cycles import prediction_cycles
from repro.hardware.mcu import MCUPowerModel, MSP430F1611

__all__ = [
    "ADC_EVENT_ENERGY_J",
    "TYPICAL_PREDICTION_ENERGY_J",
    "adc_energy_per_sample",
    "prediction_energy",
    "daily_energy",
    "overhead_fraction",
    "EnergyBudget",
]

#: Measured energy of one A/D sampling event (Table IV).
ADC_EVENT_ENERGY_J = 55e-6

#: The paper's "taking 5 uJ as roughly the typical energy consumption
#: of prediction algorithm" used for the per-day rows of Table IV.
TYPICAL_PREDICTION_ENERGY_J = 5e-6


def adc_energy_per_sample() -> float:
    """Energy (J) of one power-sampling event (measured anchor)."""
    return ADC_EVENT_ENERGY_J


def prediction_energy(
    k_param: int,
    alpha: float,
    mcu: MCUPowerModel = MSP430F1611,
) -> float:
    """Energy (J) of one prediction for the given parameters."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    cycles = prediction_cycles(k_param, alpha_zero=(alpha == 0.0))
    return mcu.active_energy(cycles)


def daily_energy(
    n_slots: int,
    k_param: Optional[int] = None,
    alpha: Optional[float] = None,
    mcu: MCUPowerModel = MSP430F1611,
    include_prediction: bool = True,
) -> float:
    """Per-day energy (J) of the sampling(+prediction) activity.

    With ``k_param``/``alpha`` omitted, uses the paper's typical 5 uJ
    prediction cost (that is how the last row of Table IV and all of
    Fig. 6 are computed); pass explicit parameters for exact costs.
    """
    if n_slots <= 0:
        raise ValueError("n_slots must be positive")
    per_event = adc_energy_per_sample()
    if include_prediction:
        if k_param is None and alpha is None:
            per_event += TYPICAL_PREDICTION_ENERGY_J
        elif k_param is None or alpha is None:
            raise ValueError("pass both k_param and alpha, or neither")
        else:
            per_event += prediction_energy(k_param, alpha, mcu=mcu)
    return n_slots * per_event


def overhead_fraction(
    n_slots: int,
    k_param: Optional[int] = None,
    alpha: Optional[float] = None,
    mcu: MCUPowerModel = MSP430F1611,
) -> float:
    """Sampling+prediction energy as a fraction of sleep energy (Fig. 6)."""
    return daily_energy(n_slots, k_param, alpha, mcu=mcu) / mcu.sleep_energy_per_day()


@dataclass(frozen=True)
class EnergyBudget:
    """Complete Table IV-style accounting for one configuration.

    Attributes mirror the paper's rows; energies in joules.
    """

    n_slots: int
    k_param: int
    alpha: float
    adc_event: float
    prediction_event: float
    sleep_per_day: float
    sampling_per_day: float
    total_per_day: float
    overhead: float

    @classmethod
    def for_configuration(
        cls,
        n_slots: int,
        k_param: int,
        alpha: float,
        mcu: MCUPowerModel = MSP430F1611,
    ) -> "EnergyBudget":
        """Build the budget for an (N, K, alpha) operating point."""
        adc = adc_energy_per_sample()
        pred = prediction_energy(k_param, alpha, mcu=mcu)
        sampling_day = n_slots * adc
        total_day = n_slots * (adc + pred)
        sleep_day = mcu.sleep_energy_per_day()
        return cls(
            n_slots=n_slots,
            k_param=k_param,
            alpha=alpha,
            adc_event=adc,
            prediction_event=pred,
            sleep_per_day=sleep_day,
            sampling_per_day=sampling_day,
            total_per_day=total_day,
            overhead=total_day / sleep_day,
        )
