"""MSP430 hardware substrate (Section IV-A, Table IV, Fig. 5, Fig. 6).

The paper measures the prediction algorithm's energy cost on an
MSP430F1611 at 3 V / 5 MHz.  Without the physical board, this package
models the same accounting:

* :mod:`repro.hardware.mcu` -- electrical model of the microcontroller
  (supply, clock, per-state currents).
* :mod:`repro.hardware.adc` -- the sampling sequence of Fig. 5 (wake,
  Vref settle, conversion) and its energy.
* :mod:`repro.hardware.cycles` -- cycle-count model of the prediction
  arithmetic (software floating point on MSP430) and the history-matrix
  memory requirement.
* :mod:`repro.hardware.energy` -- per-event and per-day energy totals,
  reproducing Table IV's rows and the overhead percentages of Fig. 6.
* :mod:`repro.hardware.fixedpoint` -- a Q15 fixed-point implementation
  of the WCMA predictor, the arithmetic a production node would run.

Calibration: the per-event energies are anchored to the paper's
measurements (A/D 55 uJ; prediction 3.6-8.4 uJ depending on K and
alpha; sleep 356 mJ/day) so the derived per-day numbers and overhead
ratios reproduce Table IV / Fig. 6 exactly; the cycle model then breaks
those measured costs down into per-operation contributions.
"""

from repro.hardware.mcu import MCUPowerModel, MSP430F1611
from repro.hardware.adc import SamplingSequence
from repro.hardware.cycles import CycleCosts, prediction_cycles, history_memory_bytes
from repro.hardware.energy import (
    EnergyBudget,
    adc_energy_per_sample,
    prediction_energy,
    daily_energy,
    overhead_fraction,
)
from repro.hardware.fixedpoint import Q15, FixedPointWCMA

__all__ = [
    "MCUPowerModel",
    "MSP430F1611",
    "SamplingSequence",
    "CycleCosts",
    "prediction_cycles",
    "history_memory_bytes",
    "EnergyBudget",
    "adc_energy_per_sample",
    "prediction_energy",
    "daily_energy",
    "overhead_fraction",
    "Q15",
    "FixedPointWCMA",
]
