"""Battery-lifetime and energy-budget planning (extension of Table IV).

Table IV stops at per-day energies; a deployment engineer's next
question is *what does that mean in battery life or panel size*.  This
module answers it with the same calibrated constants:

* :func:`node_daily_energy` -- the full node's energy per day
  (sleep + sampling + prediction + application duty cycle);
* :func:`battery_lifetime_days` -- primary-cell lifetime at that rate;
* :func:`required_panel_area` -- the PV area that makes the node
  energy-neutral at a given site's average insolation;
* :func:`sampling_rate_for_budget` -- the largest paper-grid N whose
  management overhead stays within a fraction of harvested income.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.hardware.energy import daily_energy
from repro.hardware.mcu import MCUPowerModel, MSP430F1611, SECONDS_PER_DAY
from repro.management.consumer import DutyCycledLoad
from repro.management.harvester import PVHarvester

__all__ = [
    "node_daily_energy",
    "battery_lifetime_days",
    "required_panel_area",
    "sampling_rate_for_budget",
]


def node_daily_energy(
    n_slots: int,
    duty: float,
    load: DutyCycledLoad = None,
    mcu: MCUPowerModel = MSP430F1611,
    k_param: Optional[int] = None,
    alpha: Optional[float] = None,
) -> float:
    """Whole-node energy per day (J): management + application.

    Management is the paper's sleep + sampling + prediction accounting;
    the application is a duty-cycled load on top.
    """
    if not 0.0 <= duty <= 1.0:
        raise ValueError(f"duty must be in [0, 1], got {duty}")
    load = load if load is not None else DutyCycledLoad()
    management = mcu.sleep_energy_per_day() + daily_energy(
        n_slots, k_param, alpha, mcu=mcu
    )
    application = load.energy(duty, SECONDS_PER_DAY)
    return management + application


def battery_lifetime_days(
    battery_joules: float,
    n_slots: int,
    duty: float,
    load: DutyCycledLoad = None,
    mcu: MCUPowerModel = MSP430F1611,
) -> float:
    """Days a primary battery sustains the node with no harvesting.

    A pair of AA lithium cells holds ~ 2 x 9 Wh ~ 64.8 kJ.
    """
    if battery_joules <= 0:
        raise ValueError("battery_joules must be positive")
    per_day = node_daily_energy(n_slots, duty, load=load, mcu=mcu)
    return battery_joules / per_day


def required_panel_area(
    n_slots: int,
    duty: float,
    mean_daily_insolation_wh_m2: float,
    harvester: PVHarvester = None,
    load: DutyCycledLoad = None,
    mcu: MCUPowerModel = MSP430F1611,
    margin: float = 1.5,
) -> float:
    """Panel area (m^2) for energy-neutral operation with ``margin``.

    ``mean_daily_insolation_wh_m2`` is the site's average daily solar
    energy per unit area (Wh/m^2/day; use
    ``trace.daily_energy().mean()``).
    """
    if mean_daily_insolation_wh_m2 <= 0:
        raise ValueError("insolation must be positive")
    if margin < 1.0:
        raise ValueError("margin must be >= 1")
    harvester = harvester if harvester is not None else PVHarvester()
    need_joules = margin * node_daily_energy(n_slots, duty, load=load, mcu=mcu)
    efficiency = harvester.panel_efficiency * harvester.conditioning_efficiency
    income_per_m2 = mean_daily_insolation_wh_m2 * 3600.0 * efficiency
    return need_joules / income_per_m2


def sampling_rate_for_budget(
    harvest_joules_per_day: float,
    overhead_budget: float = 0.01,
    candidates: Iterable[int] = (288, 96, 72, 48, 24),
    mcu: MCUPowerModel = MSP430F1611,
) -> Optional[int]:
    """Largest paper-grid N whose management energy fits the budget.

    Parameters
    ----------
    harvest_joules_per_day:
        Expected harvested energy per day.
    overhead_budget:
        Maximum fraction of the harvest the sampling + prediction
        activity may consume.
    candidates:
        N values considered, best (largest) first.

    Returns
    -------
    int or None
        The chosen N, or None if even the smallest candidate exceeds
        the budget.
    """
    if harvest_joules_per_day <= 0:
        raise ValueError("harvest_joules_per_day must be positive")
    if not 0.0 < overhead_budget <= 1.0:
        raise ValueError("overhead_budget must be in (0, 1]")
    for n_slots in sorted(candidates, reverse=True):
        activity = daily_energy(n_slots, mcu=mcu)
        if activity <= overhead_budget * harvest_joules_per_day:
            return n_slots
    return None
