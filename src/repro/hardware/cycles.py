"""Cycle-count model of the prediction arithmetic.

Table IV of the paper gives *measured* per-event energies on the
MSP430F1611 at 3 V / 5 MHz:

===================================  ========
event                                energy
===================================  ========
A/D conversion                        55.0 uJ
A/D + prediction (K=1, alpha=0.7)     58.6 uJ
A/D + prediction (K=7, alpha=0.7)     63.4 uJ
A/D + prediction (K=7, alpha=0.0)     61.5 uJ
===================================  ========

Subtracting the A/D cost, the prediction alone is 3.6 / 8.4 / 6.5 uJ.
Those three points pin down a linear cycle model (at the MCU's
1.5 nJ/cycle):

* ``PER_K_CYCLES`` -- each extra conditioning slot costs one ratio
  multiply-accumulate pass: ``(8.4 - 3.6) uJ / 6 / 1.5 nJ = 533``
  cycles;
* ``PREDICTION_BASE_CYCLES`` -- fixed work (history ring update, the
  ``μ_D`` and ``η`` divides, Eq. 1 combination, control flow):
  ``3.6 uJ / 1.5 nJ - 533 = 1867`` cycles;
* ``ALPHA_ZERO_SAVING_CYCLES`` -- with ``alpha == 0`` the
  implementation compiles out the persistence product and its operand
  conditioning: ``(8.4 - 6.5) uJ / 1.5 nJ = 1267`` cycles.

:class:`CycleCosts` additionally provides per-primitive costs used to
compare the software-float implementation with the Q15 fixed-point one
(:mod:`repro.hardware.fixedpoint`): fixed point swaps ~400-cycle float
library calls for native adds and hardware-multiplier products, cutting
the arithmetic cycles by roughly an order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CycleCosts",
    "FLOAT_COSTS",
    "Q15_COSTS",
    "PREDICTION_BASE_CYCLES",
    "PER_K_CYCLES",
    "ALPHA_ZERO_SAVING_CYCLES",
    "prediction_cycles",
    "arithmetic_cycles",
    "history_memory_bytes",
]

#: Fixed per-prediction cycles (calibrated to Table IV; see module docstring).
PREDICTION_BASE_CYCLES = 1867
#: Extra cycles per conditioning slot K.
PER_K_CYCLES = 533
#: Cycles saved when alpha == 0 removes the persistence code path.
ALPHA_ZERO_SAVING_CYCLES = 1267


@dataclass(frozen=True)
class CycleCosts:
    """Cycle cost of each arithmetic primitive on the MSP430."""

    add: int
    mul: int
    div: int
    load_store: int

    def __post_init__(self):
        for name in ("add", "mul", "div", "load_store"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


#: Software single-precision float (representative MSP430 libm costs).
FLOAT_COSTS = CycleCosts(add=184, mul=395, div=405, load_store=6)

#: Q15 fixed point: native adds, hardware 16x16 multiplier, short
#: software divide.
Q15_COSTS = CycleCosts(add=4, mul=14, div=140, load_store=4)


def prediction_cycles(k_param: int, alpha_zero: bool = False) -> int:
    """Measured-anchored CPU cycles of one WCMA prediction.

    Parameters
    ----------
    k_param:
        Conditioning window ``K``.
    alpha_zero:
        True when ``alpha == 0`` and the persistence code path is
        compiled out (Table IV's K=7, alpha=0.0 row).
    """
    if k_param < 1:
        raise ValueError("K must be >= 1")
    cycles = PREDICTION_BASE_CYCLES + PER_K_CYCLES * k_param
    if alpha_zero:
        cycles -= ALPHA_ZERO_SAVING_CYCLES
    return cycles


def arithmetic_cycles(k_param: int, costs: CycleCosts) -> int:
    """Pure-arithmetic cycles of one prediction under a cost model.

    Counts only the algorithm's arithmetic (no control flow), for
    comparing implementations: history running-sum update (1 sub +
    1 add), the ``μ_D``, ``η`` and ``Φ`` divides, K ratio
    multiply-accumulate passes, and the Eq. 1 combination.
    """
    if k_param < 1:
        raise ValueError("K must be >= 1")
    cycles = 0
    cycles += 2 * costs.add + 6 * costs.load_store  # ring + running sum
    cycles += 3 * costs.div  # mu, eta, phi normalisation
    cycles += k_param * (costs.mul + costs.add + 2 * costs.load_store)
    cycles += 2 * costs.mul + 2 * costs.add  # Eq. 1
    return cycles


def history_memory_bytes(
    days: int, n_slots: int, bytes_per_sample: int = 2, k_param: int = 1
) -> int:
    """RAM required by the predictor state.

    ``D x N`` history ring plus per-slot 32-bit running sums plus the
    K-deep ratio buffer.  The MSP430F1611 has 10 KiB of RAM; the
    paper's guideline D~=10 exists partly to bound this (D=20, N=96 at
    2 bytes/sample is already 3.8 KiB of history alone).
    """
    if days < 1 or n_slots < 1:
        raise ValueError("days and n_slots must be >= 1")
    if bytes_per_sample < 1:
        raise ValueError("bytes_per_sample must be >= 1")
    if k_param < 1:
        raise ValueError("k_param must be >= 1")
    history = days * n_slots * bytes_per_sample
    running_sums = n_slots * 4
    ratio_buffer = k_param * bytes_per_sample
    return history + running_sums + ratio_buffer
