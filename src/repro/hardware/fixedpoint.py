"""Q15 fixed-point implementation of the WCMA predictor.

The MSP430 has no FPU; a deployed implementation would use fixed-point
arithmetic (the float version costs ~4-9 uJ per prediction, the Q15
version roughly a tenth -- see :data:`repro.hardware.cycles.Q15_COSTS`).
This module implements the predictor with the integer operations such a
port would use, so the *quantisation error* can be measured against the
reference float implementation (see
``benchmarks/test_bench_fixedpoint.py``).

Number formats
--------------

* **Power samples** are quantised to unsigned Q15 codes relative to a
  configurable full scale: ``code = round(32767 * watts / full_scale)``.
  With the default 1500 W/m^2 full scale one LSB is ~0.046 W/m^2.
* **Ratios** (``η``, ``Φ``) use Q13 (1.0 = 8192), giving headroom to
  3.999 in a 16-bit word; larger ratios saturate.
* **Weights** (``θ``, ``alpha``) use Q15 in [0, 1].

All intermediates fit 32 bits, as they would on the 16-bit CPU with the
hardware 16x16->32 multiplier.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.base import DayHistory, OnlinePredictor
from repro.core.wcma import ETA_FLOOR_FRACTION, WCMAParams

__all__ = ["Q15", "Q13_ONE", "FixedPointWCMA"]

Q15_ONE = 1 << 15  # 32768
Q15_MAX = Q15_ONE - 1  # 32767, largest sample code
Q13_ONE = 1 << 13  # 8192, ratio format unit
Q13_MAX = (1 << 16) - 1  # ratio saturation (7.999 in Q13)


class Q15:
    """Q15 fixed-point helpers (static namespace)."""

    ONE = Q15_ONE
    MAX = Q15_MAX

    @staticmethod
    def from_float(value: float) -> int:
        """Quantise a float in [0, 1] to a Q15 code (saturating)."""
        code = int(round(value * Q15_ONE))
        return max(0, min(Q15_MAX, code))

    @staticmethod
    def to_float(code: int) -> float:
        """Q15 code back to float."""
        return code / Q15_ONE

    @staticmethod
    def mul(a: int, b: int) -> int:
        """Q15 x Q15 -> Q15 (truncating, as the MCU shift would)."""
        return (a * b) >> 15

    @staticmethod
    def div(a: int, b: int) -> int:
        """Q15 / Q15 -> Q15, saturating at Q15_MAX; division by zero
        saturates too (the guard logic avoids it in practice)."""
        if b <= 0:
            return Q15_MAX
        return min(Q15_MAX, (a << 15) // b)


class FixedPointWCMA(OnlinePredictor):
    """WCMA predictor in Q15 integer arithmetic.

    Mirrors :class:`repro.core.wcma.WCMAPredictor` step for step --
    same history handling, same dawn guard -- but every quantity lives
    in a 16-bit fixed-point format.  ``observe`` accepts and returns
    floats (watts) at the boundary; the conversion models the ADC
    quantisation a real node experiences anyway.

    Parameters
    ----------
    n_slots:
        Slots per day (``N``).
    params:
        The (alpha, D, K) parameter set.
    full_scale_watts:
        Power mapped to the maximum sample code; samples above it
        saturate.
    eta_floor_fraction:
        Dawn guard threshold (see :mod:`repro.core.wcma`).
    """

    def __init__(
        self,
        n_slots: int,
        params: WCMAParams,
        full_scale_watts: float = 1500.0,
        eta_floor_fraction: float = ETA_FLOOR_FRACTION,
    ):
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if full_scale_watts <= 0:
            raise ValueError("full_scale_watts must be positive")
        if not 0.0 <= eta_floor_fraction < 1.0:
            raise ValueError(
                f"eta_floor_fraction must be in [0, 1), got {eta_floor_fraction}"
            )
        self.n_slots = n_slots
        self.params = params
        self.full_scale_watts = full_scale_watts
        self.eta_floor_fraction = eta_floor_fraction
        self._alpha_q = Q15.from_float(params.alpha)
        # theta(k) = k/K in Q15, oldest first.
        self._theta_q = [
            Q15.from_float(k / params.k) for k in range(1, params.k + 1)
        ]
        self._theta_sum_q = sum(self._theta_q)
        self._history = DayHistory(n_slots=n_slots, depth=params.days)
        self._recent_eta_q13 = deque(maxlen=params.k)
        self._mu_codes: np.ndarray = None
        self._eta_floor_code = 0
        self._mu_days_seen = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._history.reset()
        self._recent_eta_q13.clear()
        self._mu_codes = None
        self._eta_floor_code = 0
        self._mu_days_seen = 0

    def quantise(self, watts: float) -> int:
        """Power in watts -> sample code (the modelled ADC reading)."""
        if watts < 0:
            raise ValueError(f"power must be non-negative, got {watts}")
        code = int(round(watts / self.full_scale_watts * Q15_MAX))
        return min(Q15_MAX, code)

    def dequantise(self, code: int) -> float:
        """Sample code -> watts."""
        return code * self.full_scale_watts / Q15_MAX

    def observe(self, value: float) -> float:
        code = self.quantise(value)
        self._refresh_mu()
        slot = self._history.current_slot
        have_history = self._mu_codes is not None

        if have_history:
            mu_now = int(self._mu_codes[slot])
            if mu_now >= self._eta_floor_code and mu_now > 0:
                eta_q13 = min(Q13_MAX, (code * Q13_ONE) // mu_now)
            else:
                eta_q13 = Q13_ONE
        else:
            eta_q13 = Q13_ONE
        self._recent_eta_q13.append(eta_q13)

        if have_history:
            mu_next = int(self._mu_codes[(slot + 1) % self.n_slots])
            phi_q13 = self._phi_q13()
            # Eq. 1 in integer arithmetic.
            persistence = (self._alpha_q * code) >> 15
            conditioned = (mu_next * phi_q13) >> 13
            conditioned = ((Q15_ONE - self._alpha_q) * conditioned) >> 15
            prediction_code = min(Q15_MAX, persistence + conditioned)
        else:
            prediction_code = code

        # History stores the *quantised* sample, as real firmware would.
        self._history.push_slot(float(code))
        return self.dequantise(prediction_code)

    # ------------------------------------------------------------------
    def _refresh_mu(self) -> None:
        completed = self._history.total_days_completed
        if completed == self._mu_days_seen:
            return
        self._mu_days_seen = completed
        available = self._history.n_complete_days
        if available == 0:
            self._mu_codes = None
            self._eta_floor_code = 0
            return
        rows = self._history._recent_rows(min(self.params.days, available))
        # Integer mean, matching a 32-bit accumulator divided on the MCU.
        sums = rows.sum(axis=0).astype(np.int64)
        self._mu_codes = sums // rows.shape[0]
        self._eta_floor_code = max(
            int(self.eta_floor_fraction * int(self._mu_codes.max())), 1
        )

    def _phi_q13(self) -> int:
        """Conditioning factor in Q13 from the buffered ratios."""
        k_param = self.params.k
        n_have = len(self._recent_eta_q13)
        acc = 0
        # Missing oldest ratios count as neutral 1.0 (Q13_ONE).
        for idx in range(k_param):
            buffered = idx - (k_param - n_have)
            eta = (
                self._recent_eta_q13[buffered] if buffered >= 0 else Q13_ONE
            )
            acc += self._theta_q[idx] * eta
        return acc // self._theta_sum_q
