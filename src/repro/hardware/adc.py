"""The power-sampling sequence of Fig. 5 and its energy.

The paper describes the per-slot wake-up sequence:

1. wake on timer; enable the internal voltage reference and sleep for
   the 45 ms settling time (Vref current flows the whole time);
2. launch the A/D conversion (a few microseconds) and sleep until the
   end-of-conversion interrupt;
3. disable Vref, run the prediction, re-enter deep sleep.

Step 2 is microseconds, step 1 is 45 *milliseconds*: the voltage
reference dominates, which is why the paper measures the whole A/D
event at 55 uJ while the prediction arithmetic adds only 4-9 uJ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.mcu import MCUPowerModel, MSP430F1611

__all__ = ["SamplingSequence"]


@dataclass(frozen=True)
class SamplingSequence:
    """Energy model of one wake/sample event (Fig. 5).

    Attributes
    ----------
    mcu:
        The microcontroller electrical model.
    vref_settle_seconds:
        Reference settling time (paper: 45 ms).
    conversion_seconds:
        ADC12 conversion time ("a few microseconds"; 13 ADC12CLK cycles
        plus sample time -- 10 us is representative).
    wakeup_overhead_cycles:
        CPU cycles spent on the interrupt handlers and state juggling
        around the conversion.
    """

    mcu: MCUPowerModel = MSP430F1611
    vref_settle_seconds: float = 45e-3
    conversion_seconds: float = 10e-6
    wakeup_overhead_cycles: int = 400

    def __post_init__(self):
        if self.vref_settle_seconds < 0 or self.conversion_seconds < 0:
            raise ValueError("durations must be non-negative")
        if self.wakeup_overhead_cycles < 0:
            raise ValueError("wakeup_overhead_cycles must be non-negative")

    def vref_energy(self) -> float:
        """Energy (J) of the reference during settling + conversion."""
        duration = self.vref_settle_seconds + self.conversion_seconds
        return self.mcu.supply_volts * self.mcu.vref_current_amps * duration

    def conversion_energy(self) -> float:
        """Energy (J) of the ADC core during conversion."""
        return (
            self.mcu.supply_volts
            * self.mcu.adc_current_amps
            * self.conversion_seconds
        )

    def cpu_overhead_energy(self) -> float:
        """Energy (J) of the interrupt/bookkeeping CPU activity."""
        return self.mcu.active_energy(self.wakeup_overhead_cycles)

    def total_energy(self) -> float:
        """Energy (J) of one complete sampling event.

        With the default (datasheet-typical) constants this evaluates to
        ~54.3 uJ; the paper measures 55 uJ.  Table IV accounting uses
        the measured value (see :mod:`repro.hardware.energy`); this
        breakdown exists to show *where* the 55 uJ goes.
        """
        return self.vref_energy() + self.conversion_energy() + self.cpu_overhead_energy()
