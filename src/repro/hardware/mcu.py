"""Electrical model of the microcontroller.

The paper's test platform is a TI MSP430F1611 on an MSP-TS430PM64
board, running at 3 V / 5 MHz (Section IV-A).  :data:`MSP430F1611`
captures the datasheet-level constants the energy accounting needs; a
different MCU can be modelled by instantiating another
:class:`MCUPowerModel`.

The sleep (LPM3) current is back-derived from the paper's measured
"356 mJ per day" so the Table IV / Fig. 6 ratios come out exactly:
``356 mJ / 86400 s / 3 V = 1.373 uA``, which the paper rounds to the
quoted "1.4 uA @ 3 V".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MCUPowerModel", "MSP430F1611", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class MCUPowerModel:
    """Supply/clock/current description of a microcontroller.

    Attributes
    ----------
    name:
        Human-readable part name.
    supply_volts:
        Supply voltage.
    clock_hz:
        CPU clock while active.
    active_current_amps:
        Supply current with the CPU running.
    sleep_current_amps:
        Deep-sleep (LPM3) current: only the wake-up timer runs.
    adc_current_amps:
        Extra current while the ADC core converts.
    vref_current_amps:
        Extra current while the internal voltage reference is enabled.
    """

    name: str
    supply_volts: float
    clock_hz: float
    active_current_amps: float
    sleep_current_amps: float
    adc_current_amps: float
    vref_current_amps: float

    def __post_init__(self):
        for field_name in (
            "supply_volts",
            "clock_hz",
            "active_current_amps",
            "sleep_current_amps",
            "adc_current_amps",
            "vref_current_amps",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    # ------------------------------------------------------------------
    @property
    def active_power_watts(self) -> float:
        """Power with the CPU running."""
        return self.supply_volts * self.active_current_amps

    @property
    def sleep_power_watts(self) -> float:
        """Power in deep sleep (LPM3)."""
        return self.supply_volts * self.sleep_current_amps

    @property
    def energy_per_cycle_joules(self) -> float:
        """Active energy consumed per CPU cycle."""
        return self.active_power_watts / self.clock_hz

    def active_energy(self, cycles: int) -> float:
        """Energy (J) to execute ``cycles`` CPU cycles."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles * self.energy_per_cycle_joules

    def sleep_energy(self, seconds: float) -> float:
        """Energy (J) spent sleeping for ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return self.sleep_power_watts * seconds

    def sleep_energy_per_day(self) -> float:
        """Energy (J) of a full day in deep sleep (Table IV, sleep row)."""
        return self.sleep_energy(SECONDS_PER_DAY)


#: The paper's platform.  Active current: MSP430F1611 datasheet gives
#: ~500 uA/MIPS at 3 V, i.e. 2.5 mA at 5 MHz.  Sleep current derived
#: from the paper's measured 356 mJ/day (see module docstring).  ADC and
#: Vref currents are datasheet typicals (ADC12 ~0.8 mA, REFON ~0.4 mA).
MSP430F1611 = MCUPowerModel(
    name="MSP430F1611 @ 3V/5MHz",
    supply_volts=3.0,
    clock_hz=5_000_000.0,
    active_current_amps=2.5e-3,
    sleep_current_amps=356e-3 / SECONDS_PER_DAY / 3.0,  # 1.373 uA
    adc_current_amps=0.8e-3,
    vref_current_amps=0.4e-3,
)
