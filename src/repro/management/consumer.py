"""Duty-cycled application load model.

The embedded application of Fig. 1 is modelled the way the
energy-management papers this work supports do ([2], [3]): the node is
*active* (sensing + radio) for a controllable fraction of each slot and
asleep otherwise.  The controller's knob is the duty cycle.

As with the storage models, every attribute and every method argument
may be a scalar or a ``(B,)`` array; :meth:`DutyCycledLoad.stack` merges
``B`` scalar-configured loads into one array-parameterised instance for
the fleet simulator.  All arithmetic is elementwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["DutyCycledLoad"]


@dataclass(frozen=True)
class DutyCycledLoad:
    """Two-state (active/sleep) load with a continuous duty knob.

    Attributes
    ----------
    active_power_watts:
        Draw while performing the application task (sense + TX,
        ~60 mW for a mote-class node).
    sleep_power_watts:
        Draw while idle (everything but the wake timer off).
    min_duty / max_duty:
        Application-imposed bounds on the duty cycle: ``min_duty``
        encodes the minimum service the deployment tolerates,
        ``max_duty`` the most useful work it can do.
    """

    active_power_watts: float = 60e-3
    sleep_power_watts: float = 30e-6
    min_duty: float = 0.02
    max_duty: float = 1.0

    def __post_init__(self):
        if np.any(np.asarray(self.active_power_watts) <= 0):
            raise ValueError("active_power_watts must be positive")
        if np.any(np.asarray(self.sleep_power_watts) < 0):
            raise ValueError("sleep_power_watts must be non-negative")
        if np.any(
            np.asarray(self.active_power_watts) <= np.asarray(self.sleep_power_watts)
        ):
            raise ValueError("active power must exceed sleep power")
        min_duty = np.asarray(self.min_duty)
        max_duty = np.asarray(self.max_duty)
        if (
            np.any(min_duty < 0.0)
            or np.any(min_duty > max_duty)
            or np.any(max_duty > 1.0)
        ):
            raise ValueError("require 0 <= min_duty <= max_duty <= 1")

    @classmethod
    def stack(cls, loads: Sequence["DutyCycledLoad"]) -> "DutyCycledLoad":
        """One array-parameterised load modelling ``len(loads)`` nodes."""
        if not loads:
            raise ValueError("stack requires at least one load")
        return cls(
            active_power_watts=np.array(
                [load.active_power_watts for load in loads], dtype=float
            ),
            sleep_power_watts=np.array(
                [load.sleep_power_watts for load in loads], dtype=float
            ),
            min_duty=np.array([load.min_duty for load in loads], dtype=float),
            max_duty=np.array([load.max_duty for load in loads], dtype=float),
        )

    def clamp(self, duty):
        """Clamp a requested duty cycle to the allowed range."""
        return np.maximum(self.min_duty, np.minimum(self.max_duty, duty))

    def power(self, duty):
        """Average power (W) at a duty cycle (after clamping)."""
        duty = self.clamp(duty)
        return duty * self.active_power_watts + (1.0 - duty) * self.sleep_power_watts

    def energy(self, duty, seconds: float):
        """Energy (J) consumed over ``seconds`` at a duty cycle."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return self.power(duty) * seconds

    def duty_for_power(self, watts):
        """Duty cycle whose average power equals ``watts`` (clamped).

        Inverse of :meth:`power`; the controllers use it to convert an
        energy budget into a duty-cycle setting.
        """
        if np.any(np.asarray(watts) < 0):
            raise ValueError("watts must be non-negative")
        span = self.active_power_watts - self.sleep_power_watts
        duty = (watts - self.sleep_power_watts) / span
        return self.clamp(duty)
