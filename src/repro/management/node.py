"""Slot-by-slot simulation of a complete harvesting node (Fig. 1).

Per slot, mirroring the paper's operating sequence:

1. at the boundary the node samples the incoming power (the slot-start
   sample) and runs the predictor -> predicted power for the slot ahead;
2. the controller turns (prediction, state of charge) into a duty cycle;
3. the slot plays out: the *true* slot-mean power charges the store,
   the load draws its duty-cycled energy, the store leaks;
4. bookkeeping: achieved duty (reduced pro rata if the store ran dry),
   overflow (energy wasted against a full store), downtime.

The stepping itself lives in the fleet engine
(:mod:`repro.management.fleet`); :class:`SensorNodeSimulation` is the
single-node (``B = 1``) front-end preserved for the original API.

The result object summarises the metrics the energy-management papers
care about: mean achieved duty, duty variance (Noh's objective),
downtime fraction, waste fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import OnlinePredictor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import Controller
from repro.management.fleet import FleetNodeSpec, FleetSimulator
from repro.management.harvester import PVHarvester
from repro.management.storage import Battery
from repro.solar.slots import SlotView
from repro.solar.trace import SolarTrace

__all__ = ["NodeRunResult", "SensorNodeSimulation"]


@dataclass(frozen=True)
class NodeRunResult:
    """Per-slot records and summary metrics of one simulation run.

    All arrays have one entry per simulated slot, in time order.
    """

    n_slots: int
    duty_requested: np.ndarray
    duty_achieved: np.ndarray
    state_of_charge: np.ndarray
    harvested_joules: np.ndarray
    consumed_joules: np.ndarray
    wasted_joules: np.ndarray
    shortfall_joules: np.ndarray

    @property
    def mean_duty(self) -> float:
        """Average achieved duty cycle (application utility proxy)."""
        return float(self.duty_achieved.mean())

    @property
    def duty_std(self) -> float:
        """Standard deviation of the achieved duty (smoothness)."""
        return float(self.duty_achieved.std())

    @property
    def downtime_fraction(self) -> float:
        """Fraction of slots where the store could not cover the request."""
        return float((self.shortfall_joules > 0).mean())

    @property
    def waste_fraction(self) -> float:
        """Harvested energy lost to a full store, as a fraction of harvest."""
        total_harvest = float(self.harvested_joules.sum())
        if total_harvest == 0.0:
            return 0.0
        return float(self.wasted_joules.sum()) / total_harvest

    @property
    def final_soc(self) -> float:
        """State of charge after the last slot."""
        return float(self.state_of_charge[-1])

    def summary(self) -> dict:
        """Digest of the headline metrics."""
        return {
            "mean_duty": self.mean_duty,
            "duty_std": self.duty_std,
            "downtime_fraction": self.downtime_fraction,
            "waste_fraction": self.waste_fraction,
            "final_soc": self.final_soc,
        }


class SensorNodeSimulation:
    """Wire trace + harvester + storage + load + predictor + controller.

    A thin ``B = 1`` front-end over
    :class:`~repro.management.fleet.FleetSimulator`: the fleet engine
    owns the stepping, this class preserves the original single-node
    API (and its elementwise arithmetic is identical, so results match
    the historical scalar loop).

    One behavioural difference from the historical loop: the fleet
    engine steps *copies* of the predictor/controller/storage it is
    given, so ``run()`` no longer mutates the instances passed in and
    calling it twice yields two identical, independent runs (the old
    loop drained the shared storage across runs).

    Parameters
    ----------
    trace:
        Native-resolution irradiance trace.
    n_slots:
        Slots per day (``N``); the prediction horizon.
    predictor:
        Any :class:`~repro.core.base.OnlinePredictor`; it sees the
        slot-start *irradiance* samples (W/m^2), as in the paper.
    controller:
        Duty-cycle policy; an
        :class:`~repro.management.controller.OracleController` is
        automatically fed the true slot mean instead of the prediction.
    harvester, storage, load:
        Physical models; defaults give a plausible mote.
    """

    def __init__(
        self,
        trace: SolarTrace,
        n_slots: int,
        predictor: OnlinePredictor,
        controller: Controller,
        harvester: PVHarvester = None,
        storage: Battery = None,
        load: DutyCycledLoad = None,
    ):
        self.trace = trace
        self.view = SlotView.from_trace(trace, n_slots)
        self.predictor = predictor
        self.controller = controller
        self.harvester = harvester if harvester is not None else PVHarvester()
        self.storage = storage if storage is not None else Battery()
        self.load = load if load is not None else DutyCycledLoad()
        self._fleet = None
        self._fleet_components = None

    def run(self) -> NodeRunResult:
        """Simulate every slot of the trace; returns the full record."""
        components = (
            self.trace,
            self.predictor,
            self.controller,
            self.harvester,
            self.storage,
            self.load,
        )
        # The engine precomputes the slot decomposition and harvest
        # energies at construction; reuse it across run() calls unless
        # a component attribute was swapped out.
        if self._fleet is None or any(
            current is not cached
            for current, cached in zip(components, self._fleet_components)
        ):
            spec = FleetNodeSpec(
                trace=self.trace,
                controller=self.controller,
                predictor=self.predictor,
                harvester=self.harvester,
                storage=self.storage,
                load=self.load,
            )
            self._fleet = FleetSimulator([spec], self.view.n_slots)
            self._fleet_components = components
        return self._fleet.run().node_result(0)
