"""Slot-by-slot simulation of a complete harvesting node (Fig. 1).

Per slot, mirroring the paper's operating sequence:

1. at the boundary the node samples the incoming power (the slot-start
   sample) and runs the predictor -> predicted power for the slot ahead;
2. the controller turns (prediction, state of charge) into a duty cycle;
3. the slot plays out: the *true* slot-mean power charges the store,
   the load draws its duty-cycled energy, the store leaks;
4. bookkeeping: achieved duty (reduced pro rata if the store ran dry),
   overflow (energy wasted against a full store), downtime.

The result object summarises the metrics the energy-management papers
care about: mean achieved duty, duty variance (Noh's objective),
downtime fraction, waste fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import OnlinePredictor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import Controller, OracleController
from repro.management.harvester import PVHarvester
from repro.management.storage import Battery
from repro.solar.slots import SlotView
from repro.solar.trace import SolarTrace

__all__ = ["NodeRunResult", "SensorNodeSimulation"]


@dataclass(frozen=True)
class NodeRunResult:
    """Per-slot records and summary metrics of one simulation run.

    All arrays have one entry per simulated slot, in time order.
    """

    n_slots: int
    duty_requested: np.ndarray
    duty_achieved: np.ndarray
    state_of_charge: np.ndarray
    harvested_joules: np.ndarray
    consumed_joules: np.ndarray
    wasted_joules: np.ndarray
    shortfall_joules: np.ndarray

    @property
    def mean_duty(self) -> float:
        """Average achieved duty cycle (application utility proxy)."""
        return float(self.duty_achieved.mean())

    @property
    def duty_std(self) -> float:
        """Standard deviation of the achieved duty (smoothness)."""
        return float(self.duty_achieved.std())

    @property
    def downtime_fraction(self) -> float:
        """Fraction of slots where the store could not cover the request."""
        return float((self.shortfall_joules > 0).mean())

    @property
    def waste_fraction(self) -> float:
        """Harvested energy lost to a full store, as a fraction of harvest."""
        total_harvest = float(self.harvested_joules.sum())
        if total_harvest == 0.0:
            return 0.0
        return float(self.wasted_joules.sum()) / total_harvest

    @property
    def final_soc(self) -> float:
        """State of charge after the last slot."""
        return float(self.state_of_charge[-1])

    def summary(self) -> dict:
        """Digest of the headline metrics."""
        return {
            "mean_duty": self.mean_duty,
            "duty_std": self.duty_std,
            "downtime_fraction": self.downtime_fraction,
            "waste_fraction": self.waste_fraction,
            "final_soc": self.final_soc,
        }


class SensorNodeSimulation:
    """Wire trace + harvester + storage + load + predictor + controller.

    Parameters
    ----------
    trace:
        Native-resolution irradiance trace.
    n_slots:
        Slots per day (``N``); the prediction horizon.
    predictor:
        Any :class:`~repro.core.base.OnlinePredictor`; it sees the
        slot-start *irradiance* samples (W/m^2), as in the paper.
    controller:
        Duty-cycle policy; an :class:`OracleController` is automatically
        fed the true slot mean instead of the prediction.
    harvester, storage, load:
        Physical models; defaults give a plausible mote.
    """

    def __init__(
        self,
        trace: SolarTrace,
        n_slots: int,
        predictor: OnlinePredictor,
        controller: Controller,
        harvester: PVHarvester = None,
        storage: Battery = None,
        load: DutyCycledLoad = None,
    ):
        self.trace = trace
        self.view = SlotView.from_trace(trace, n_slots)
        self.predictor = predictor
        self.controller = controller
        self.harvester = harvester if harvester is not None else PVHarvester()
        self.storage = storage if storage is not None else Battery()
        self.load = load if load is not None else DutyCycledLoad()

    def run(self) -> NodeRunResult:
        """Simulate every slot of the trace; returns the full record."""
        starts = self.view.flat_starts()
        means = self.view.flat_means()
        slot_seconds = self.view.slot_duration_hours * 3600.0
        total = starts.size

        self.predictor.reset()
        self.controller.reset()
        oracle = isinstance(self.controller, OracleController)

        duty_requested = np.empty(total)
        duty_achieved = np.empty(total)
        soc = np.empty(total)
        harvested = np.empty(total)
        consumed = np.empty(total)
        wasted = np.empty(total)
        shortfall = np.empty(total)

        for t in range(total):
            predicted_irradiance = self.predictor.observe(float(starts[t]))
            if oracle:
                predicted_power = self.harvester.power(float(means[t]))
            else:
                predicted_power = self.harvester.power(
                    max(0.0, predicted_irradiance)
                )
            duty = self.controller.decide(
                predicted_power, self.storage.state_of_charge
            )
            duty_requested[t] = duty

            # The slot plays out with the *true* mean power.
            incoming = self.harvester.energy(float(means[t]), slot_seconds)
            stored = self.storage.charge(incoming)
            wasted[t] = incoming * self.storage.charge_efficiency - stored
            harvested[t] = incoming

            request = self.load.energy(duty, slot_seconds)
            supplied = self.storage.discharge(request)
            consumed[t] = supplied
            shortfall[t] = request - supplied
            duty_achieved[t] = duty * (supplied / request) if request > 0 else 0.0

            self.storage.leak(slot_seconds)
            soc[t] = self.storage.state_of_charge
            self.controller.feedback(incoming / slot_seconds)

        return NodeRunResult(
            n_slots=self.view.n_slots,
            duty_requested=duty_requested,
            duty_achieved=duty_achieved,
            state_of_charge=soc,
            harvested_joules=harvested,
            consumed_joules=consumed,
            wasted_joules=wasted,
            shortfall_joules=shortfall,
        )
