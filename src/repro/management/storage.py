"""Energy-storage models: battery and supercapacitor.

Both expose the same small interface the node simulation drives:

* ``charge(joules) -> stored`` -- add harvested energy (after charge
  efficiency), returning how much was actually stored (overflow beyond
  capacity is wasted -- a real regulator would shunt it);
* ``discharge(joules) -> supplied`` -- draw energy for the load
  (divided by discharge efficiency), returning how much of the request
  could be supplied;
* ``leak(seconds)`` -- self-discharge over time;
* ``state_of_charge`` in [0, 1].

Invariant: the stored energy never leaves ``[0, capacity]``; property
tests in ``tests/management/test_storage.py`` enforce it under random
operation sequences.
"""

from __future__ import annotations

__all__ = ["Battery", "Supercapacitor"]


class Battery:
    """Rechargeable battery with round-trip efficiency and leakage.

    Parameters
    ----------
    capacity_joules:
        Usable capacity (a 2.5 Wh NiMH AA pair ~ 9000 J).
    charge_efficiency / discharge_efficiency:
        Fractions of energy surviving each direction (NiMH ~0.9/0.95).
    leakage_watts:
        Constant self-discharge power while energy remains.
    initial_soc:
        Initial state of charge in [0, 1].
    """

    def __init__(
        self,
        capacity_joules: float = 9000.0,
        charge_efficiency: float = 0.90,
        discharge_efficiency: float = 0.95,
        leakage_watts: float = 10e-6,
        initial_soc: float = 0.5,
    ):
        if capacity_joules <= 0:
            raise ValueError("capacity_joules must be positive")
        for name, value in (
            ("charge_efficiency", charge_efficiency),
            ("discharge_efficiency", discharge_efficiency),
        ):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if leakage_watts < 0:
            raise ValueError("leakage_watts must be non-negative")
        if not 0.0 <= initial_soc <= 1.0:
            raise ValueError("initial_soc must be in [0, 1]")
        self.capacity_joules = capacity_joules
        self.charge_efficiency = charge_efficiency
        self.discharge_efficiency = discharge_efficiency
        self.leakage_watts = leakage_watts
        self._stored = initial_soc * capacity_joules

    # ------------------------------------------------------------------
    @property
    def stored_joules(self) -> float:
        """Energy currently stored."""
        return self._stored

    @property
    def state_of_charge(self) -> float:
        """Stored energy as a fraction of capacity."""
        return self._stored / self.capacity_joules

    @property
    def is_depleted(self) -> bool:
        """True when no energy remains."""
        return self._stored <= 0.0

    def charge(self, joules: float) -> float:
        """Store harvested energy; returns the amount actually stored."""
        if joules < 0:
            raise ValueError("charge amount must be non-negative")
        incoming = joules * self.charge_efficiency
        room = self.capacity_joules - self._stored
        stored = min(incoming, room)
        self._stored += stored
        return stored

    def discharge(self, joules: float) -> float:
        """Draw energy for the load; returns the amount supplied.

        The store loses ``supplied / discharge_efficiency``; if less
        energy remains than requested, everything left is supplied.
        """
        if joules < 0:
            raise ValueError("discharge amount must be non-negative")
        drawn_from_store = joules / self.discharge_efficiency
        if drawn_from_store <= self._stored:
            self._stored -= drawn_from_store
            return joules
        supplied = self._stored * self.discharge_efficiency
        self._stored = 0.0
        return supplied

    def leak(self, seconds: float) -> float:
        """Apply self-discharge over ``seconds``; returns energy lost."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        loss = min(self._stored, self.leakage_watts * seconds)
        self._stored -= loss
        return loss


class Supercapacitor(Battery):
    """Supercapacitor: higher round-trip efficiency, SoC-dependent leakage.

    Supercap self-discharge grows with the stored voltage; modelled as a
    leakage power proportional to the state of charge.
    """

    def __init__(
        self,
        capacity_joules: float = 400.0,
        charge_efficiency: float = 0.98,
        discharge_efficiency: float = 0.98,
        leakage_watts_full: float = 200e-6,
        initial_soc: float = 0.5,
    ):
        super().__init__(
            capacity_joules=capacity_joules,
            charge_efficiency=charge_efficiency,
            discharge_efficiency=discharge_efficiency,
            leakage_watts=0.0,
            initial_soc=initial_soc,
        )
        if leakage_watts_full < 0:
            raise ValueError("leakage_watts_full must be non-negative")
        self.leakage_watts_full = leakage_watts_full

    def leak(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        loss = min(
            self._stored, self.leakage_watts_full * self.state_of_charge * seconds
        )
        self._stored -= loss
        return loss
