"""Energy-storage models: battery and supercapacitor.

Both expose the same small interface the node simulation drives:

* ``charge(joules) -> stored`` -- add harvested energy (after charge
  efficiency), returning how much was actually stored (overflow beyond
  capacity is wasted -- a real regulator would shunt it);
* ``discharge(joules) -> supplied`` -- draw energy for the load
  (divided by discharge efficiency), returning how much of the request
  could be supplied;
* ``leak(seconds)`` -- self-discharge over time;
* ``state_of_charge`` in [0, 1].

Every parameter and every method argument may be a scalar *or* a
``(B,)`` array: with array parameters one instance models ``B``
independent stores stepped in lock-step, which is how the fleet
simulator (:mod:`repro.management.fleet`) vectorizes a whole fleet's
storage.  :meth:`Battery.stack` builds such an instance from ``B``
scalar-configured ones.  All arithmetic is elementwise, so the array
path is bit-identical to ``B`` scalar stores.

Invariant: the stored energy never leaves ``[0, capacity]``; property
tests in ``tests/management/test_storage.py`` enforce it under random
operation sequences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["Battery", "Supercapacitor"]


class Battery:
    """Rechargeable battery with round-trip efficiency and leakage.

    Parameters
    ----------
    capacity_joules:
        Usable capacity (a 2.5 Wh NiMH AA pair ~ 9000 J).
    charge_efficiency / discharge_efficiency:
        Fractions of energy surviving each direction (NiMH ~0.9/0.95).
    leakage_watts:
        Constant self-discharge power while energy remains.
    initial_soc:
        Initial state of charge in [0, 1].

    Any parameter may be a ``(B,)`` array to model ``B`` stores at once.
    """

    def __init__(
        self,
        capacity_joules=9000.0,
        charge_efficiency=0.90,
        discharge_efficiency=0.95,
        leakage_watts=10e-6,
        initial_soc=0.5,
    ):
        if np.any(np.asarray(capacity_joules) <= 0):
            raise ValueError("capacity_joules must be positive")
        for name, value in (
            ("charge_efficiency", charge_efficiency),
            ("discharge_efficiency", discharge_efficiency),
        ):
            value = np.asarray(value)
            if np.any(value <= 0.0) or np.any(value > 1.0):
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if np.any(np.asarray(leakage_watts) < 0):
            raise ValueError("leakage_watts must be non-negative")
        initial = np.asarray(initial_soc)
        if np.any(initial < 0.0) or np.any(initial > 1.0):
            raise ValueError("initial_soc must be in [0, 1]")
        self.capacity_joules = capacity_joules
        self.charge_efficiency = charge_efficiency
        self.discharge_efficiency = discharge_efficiency
        self.leakage_watts = leakage_watts
        self._stored = initial_soc * capacity_joules

    # ------------------------------------------------------------------
    @classmethod
    def stack(cls, stores: Sequence["Battery"]) -> "Battery":
        """One array-parameterised store modelling ``len(stores)`` nodes.

        Each source store contributes its parameters and *current*
        state of charge; the sources themselves are left untouched.
        All entries must be plain (scalar-parameterised) instances of
        exactly this class.
        """
        if not stores:
            raise ValueError("stack requires at least one store")
        for store in stores:
            if type(store) is not cls:
                raise TypeError(
                    f"cannot stack {type(store).__name__} as {cls.__name__}"
                )
        stacked = cls(
            capacity_joules=np.array([s.capacity_joules for s in stores], dtype=float),
            charge_efficiency=np.array(
                [s.charge_efficiency for s in stores], dtype=float
            ),
            discharge_efficiency=np.array(
                [s.discharge_efficiency for s in stores], dtype=float
            ),
            leakage_watts=np.array([s.leakage_watts for s in stores], dtype=float),
        )
        # Copy the stored energy directly -- an soc -> joules round trip
        # would cost one ulp and break bit-parity with the sources.
        stacked._stored = np.array([s._stored for s in stores], dtype=float)
        return stacked

    # ------------------------------------------------------------------
    @property
    def stored_joules(self):
        """Energy currently stored (scalar or ``(B,)``)."""
        return self._stored

    @property
    def state_of_charge(self):
        """Stored energy as a fraction of capacity (scalar or ``(B,)``)."""
        return self._stored / self.capacity_joules

    @property
    def is_depleted(self):
        """True when no energy remains (elementwise for arrays)."""
        return self._stored <= 0.0

    def charge(self, joules):
        """Store harvested energy; returns the amount actually stored."""
        if np.any(np.asarray(joules) < 0):
            raise ValueError("charge amount must be non-negative")
        incoming = joules * self.charge_efficiency
        room = self.capacity_joules - self._stored
        stored = np.minimum(incoming, room)
        self._stored = self._stored + stored
        return stored

    def discharge(self, joules):
        """Draw energy for the load; returns the amount supplied.

        The store loses ``supplied / discharge_efficiency``; if less
        energy remains than requested, everything left is supplied.
        """
        if np.any(np.asarray(joules) < 0):
            raise ValueError("discharge amount must be non-negative")
        drawn_from_store = joules / self.discharge_efficiency
        covered = drawn_from_store <= self._stored
        supplied = np.where(covered, joules, self._stored * self.discharge_efficiency)
        self._stored = np.where(covered, self._stored - drawn_from_store, 0.0)
        if supplied.ndim == 0:
            self._stored = float(self._stored)
            return float(supplied)
        return supplied

    def leak(self, seconds: float):
        """Apply self-discharge over ``seconds``; returns energy lost."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        loss = np.minimum(self._stored, self.leakage_watts * seconds)
        self._stored = self._stored - loss
        return loss


class Supercapacitor(Battery):
    """Supercapacitor: higher round-trip efficiency, SoC-dependent leakage.

    Supercap self-discharge grows with the stored voltage; modelled as a
    leakage power proportional to the state of charge.
    """

    def __init__(
        self,
        capacity_joules=400.0,
        charge_efficiency=0.98,
        discharge_efficiency=0.98,
        leakage_watts_full=200e-6,
        initial_soc=0.5,
    ):
        super().__init__(
            capacity_joules=capacity_joules,
            charge_efficiency=charge_efficiency,
            discharge_efficiency=discharge_efficiency,
            leakage_watts=0.0,
            initial_soc=initial_soc,
        )
        if np.any(np.asarray(leakage_watts_full) < 0):
            raise ValueError("leakage_watts_full must be non-negative")
        self.leakage_watts_full = leakage_watts_full

    @classmethod
    def stack(cls, stores: Sequence["Supercapacitor"]) -> "Supercapacitor":
        if not stores:
            raise ValueError("stack requires at least one store")
        for store in stores:
            if type(store) is not cls:
                raise TypeError(
                    f"cannot stack {type(store).__name__} as {cls.__name__}"
                )
        stacked = cls(
            capacity_joules=np.array([s.capacity_joules for s in stores], dtype=float),
            charge_efficiency=np.array(
                [s.charge_efficiency for s in stores], dtype=float
            ),
            discharge_efficiency=np.array(
                [s.discharge_efficiency for s in stores], dtype=float
            ),
            leakage_watts_full=np.array(
                [s.leakage_watts_full for s in stores], dtype=float
            ),
        )
        stacked._stored = np.array([s._stored for s in stores], dtype=float)
        return stacked

    def leak(self, seconds: float):
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        loss = np.minimum(
            self._stored, self.leakage_watts_full * self.state_of_charge * seconds
        )
        self._stored = self._stored - loss
        return loss
