"""Day-horizon energy planning controller (extension).

The Kansal controller chases each slot's prediction; the EWMA-based
minimum-variance controller smooths but reacts slowly.  This module
adds the planner the Noh et al. [4] approach actually implies: keep a
**per-slot profile of realized harvest power** (the same ``μ_D``
structure the predictor uses) and budget the *expected daily income*
evenly, with a proportional state-of-charge correction.  The profile
gives it day-one-of-season awareness that an EWMA acquires only after
its time constant.

The controller learns the profile from the ``feedback`` hook the node
simulation calls with each slot's realized harvest power.
"""

from __future__ import annotations

from repro.core.base import DayHistory
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import Controller

__all__ = ["ProfilePlanningController"]


class ProfilePlanningController(Controller):
    """Budget the expected daily harvest evenly across the day.

    Parameters
    ----------
    load:
        The duty-cycled load (power <-> duty conversion).
    capacity_joules:
        Storage capacity, scaling the SoC correction.
    n_slots:
        Slots per day (profile resolution).
    profile_days:
        Days of realized-harvest history in the profile.
    target_soc:
        Desired state of charge.
    correction_gain:
        Strength of the SoC correction (closes the gap over one day at
        gain 1).
    """

    def __init__(
        self,
        load: DutyCycledLoad,
        capacity_joules: float,
        n_slots: int,
        profile_days: int = 7,
        target_soc: float = 0.6,
        correction_gain: float = 0.75,
    ):
        if capacity_joules <= 0:
            raise ValueError("capacity_joules must be positive")
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if profile_days < 1:
            raise ValueError("profile_days must be >= 1")
        if not 0.0 <= target_soc <= 1.0:
            raise ValueError("target_soc must be in [0, 1]")
        if correction_gain < 0:
            raise ValueError("correction_gain must be non-negative")
        self.load = load
        self.capacity_joules = capacity_joules
        self.n_slots = n_slots
        self.profile_days = profile_days
        self.target_soc = target_soc
        self.correction_gain = correction_gain
        self._profile = DayHistory(n_slots=n_slots, depth=profile_days)
        self._bootstrap_average = None

    def reset(self) -> None:
        self._profile.reset()
        self._bootstrap_average = None

    # ------------------------------------------------------------------
    def feedback(self, harvest_watts: float) -> None:
        """Record the just-finished slot's realized harvest power."""
        if harvest_watts < 0:
            raise ValueError(f"harvest power must be non-negative, got {harvest_watts}")
        self._profile.push_slot(harvest_watts)
        if self._bootstrap_average is None:
            self._bootstrap_average = harvest_watts
        else:
            self._bootstrap_average += 0.05 * (harvest_watts - self._bootstrap_average)

    def expected_daily_average_watts(self) -> float:
        """Mean harvest power over a day, from the learned profile."""
        available = self._profile.n_complete_days
        if available == 0:
            return self._bootstrap_average or 0.0
        rows = self._profile._recent_rows(min(self.profile_days, available))
        return float(rows.mean())

    def decide(self, predicted_watts: float, state_of_charge: float) -> float:
        if predicted_watts < 0:
            raise ValueError("predicted_watts must be non-negative")
        average = self.expected_daily_average_watts()
        if average <= 0.0:
            average = predicted_watts  # first-day bootstrap
        correction = (
            self.correction_gain
            * (state_of_charge - self.target_soc)
            * self.capacity_joules
            / 86_400.0
        )
        budget = max(0.0, average + correction)
        return self.load.duty_for_power(budget)
