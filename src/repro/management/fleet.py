"""Lock-step fleet simulation: thousands of harvesting nodes at once.

:class:`~repro.management.node.SensorNodeSimulation` steps one node
through the predict -> control -> store chain with scalar Python
arithmetic; at fleet scale (hundreds to thousands of nodes) that loop is
the bottleneck.  This module refactors the whole chain around
array-shaped state: a :class:`FleetSimulator` advances ``B``
heterogeneous nodes -- mixed sites, predictors, controllers, batteries,
loads -- through every slot boundary in lock-step, so the per-slot work
is a handful of ``(B,)`` numpy operations instead of ``B`` Python loops.

How the vectorization is organised:

* **Predictors** are grouped by (name, parameters).  Groups whose
  registry entry ships a vector kernel
  (:func:`repro.core.registry.supports_vector`) run one
  :class:`~repro.core.base.VectorPredictor` per group; anything else --
  scalar-only registry entries or explicit
  :class:`~repro.core.base.OnlinePredictor` instances -- falls back to
  one scalar predictor per node inside an adapter column.
* **Controllers** of the four built-in types are merged with their
  ``stack`` classmethods into one array-parameterised instance per
  type; unknown controller classes fall back to a per-node adapter (so
  e.g. :class:`~repro.management.planning.ProfilePlanningController`
  still works, just without the speedup).
* **Storage** is stacked per concrete class
  (:class:`~repro.management.storage.Battery` /
  :class:`~repro.management.storage.Supercapacitor`), again with a
  per-node fallback for custom subclasses.

Because every stacked model is elementwise, a ``B``-node fleet run is
numerically identical (to float rounding; parity-tested at 1e-9) to
``B`` independent ``SensorNodeSimulation`` runs -- and 20x+ faster for
a 256-node fleet (``benchmarks/test_bench_fleet.py``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace as dataclasses_replace
from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.core.base import OnlinePredictor
from repro.core.registry import (
    make_predictor,
    make_vector_predictor,
    supports_vector,
)
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    Controller,
    FixedDutyController,
    KansalController,
    MinimumVarianceController,
    OracleController,
)
from repro.management.harvester import PVHarvester
from repro.management.storage import Battery, Supercapacitor
from repro.solar.slots import SlotView
from repro.solar.trace import SolarTrace

__all__ = ["FleetAggregate", "FleetNodeSpec", "FleetRunResult", "FleetSimulator"]

#: Controller classes the simulator can merge into one array instance.
_STACKABLE_CONTROLLERS = (
    FixedDutyController,
    KansalController,
    MinimumVarianceController,
    OracleController,
)

#: Storage classes the simulator can merge into one array instance.
_STACKABLE_STORES = (Battery, Supercapacitor)


@dataclass
class FleetNodeSpec:
    """Everything one node of the fleet needs.

    Attributes
    ----------
    trace:
        Native-resolution irradiance trace for this node's site.  Nodes
        may use different traces, but all traces must cover the same
        number of days (the fleet steps every node through the same
        boundary index).
    controller:
        Duty-cycle policy instance (scalar-configured, one per node).
        :class:`~repro.management.controller.OracleController` nodes are
        automatically fed the true slot mean.
    predictor:
        Registry name (vectorized when the registry has a kernel for
        it) or an explicit :class:`~repro.core.base.OnlinePredictor`
        instance (always scalar fallback).
    predictor_kwargs:
        Factory keyword arguments when ``predictor`` is a name.
    harvester, storage, load:
        Physical models; defaults give a plausible mote.  The spec's
        instances are treated as read-only templates -- the simulator
        stacks copies, so one run never dirties the spec.
    name:
        Label used in summaries; defaults to ``node<i>``.
    """

    trace: SolarTrace
    controller: Controller
    predictor: Union[str, OnlinePredictor] = "wcma"
    predictor_kwargs: Mapping[str, object] = field(default_factory=dict)
    harvester: PVHarvester = field(default_factory=PVHarvester)
    storage: Battery = field(default_factory=Battery)
    load: DutyCycledLoad = field(default_factory=DutyCycledLoad)
    name: str = ""

    def predictor_label(self) -> str:
        """Short human-readable predictor identifier."""
        if isinstance(self.predictor, str):
            return self.predictor.lower()
        return type(self.predictor).__name__


@dataclass(frozen=True)
class FleetRunResult:
    """Per-slot, per-node records and summary metrics of one fleet run.

    All record arrays have shape ``(total_slots, n_nodes)``, time-major,
    with node columns in spec order.
    """

    n_slots: int
    node_names: Tuple[str, ...]
    duty_requested: np.ndarray
    duty_achieved: np.ndarray
    state_of_charge: np.ndarray
    harvested_joules: np.ndarray
    consumed_joules: np.ndarray
    wasted_joules: np.ndarray
    shortfall_joules: np.ndarray

    # ------------------------------------------------------------------
    # Per-node metrics: (B,) arrays, spec order.
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes simulated (``B``)."""
        return self.duty_achieved.shape[1]

    @property
    def total_slots(self) -> int:
        """Slots simulated per node."""
        return self.duty_achieved.shape[0]

    @property
    def mean_duty(self) -> np.ndarray:
        """Per-node average achieved duty cycle."""
        return self.duty_achieved.mean(axis=0)

    @property
    def duty_std(self) -> np.ndarray:
        """Per-node standard deviation of the achieved duty."""
        return self.duty_achieved.std(axis=0)

    @property
    def downtime_fraction(self) -> np.ndarray:
        """Per-node fraction of slots with an unmet load request."""
        return (self.shortfall_joules > 0).mean(axis=0)

    @property
    def waste_fraction(self) -> np.ndarray:
        """Per-node harvested energy lost to a full store, as a fraction."""
        total_harvest = self.harvested_joules.sum(axis=0)
        wasted = self.wasted_joules.sum(axis=0)
        out = np.zeros_like(total_harvest)
        np.divide(wasted, total_harvest, out=out, where=total_harvest > 0)
        return out

    @property
    def final_soc(self) -> np.ndarray:
        """Per-node state of charge after the last slot."""
        return self.state_of_charge[-1].copy()

    # ------------------------------------------------------------------
    def node_result(self, node: int):
        """The :class:`~repro.management.node.NodeRunResult` of one node.

        Column ``node`` extracted into the exact single-node result
        object, so existing analysis code works unchanged.
        """
        from repro.management.node import NodeRunResult

        return NodeRunResult(
            n_slots=self.n_slots,
            duty_requested=self.duty_requested[:, node].copy(),
            duty_achieved=self.duty_achieved[:, node].copy(),
            state_of_charge=self.state_of_charge[:, node].copy(),
            harvested_joules=self.harvested_joules[:, node].copy(),
            consumed_joules=self.consumed_joules[:, node].copy(),
            wasted_joules=self.wasted_joules[:, node].copy(),
            shortfall_joules=self.shortfall_joules[:, node].copy(),
        )

    def node_summary(self, node: int) -> dict:
        """Digest of one node's headline metrics (see ``NodeRunResult``)."""
        return {
            "name": self.node_names[node],
            "mean_duty": float(self.mean_duty[node]),
            "duty_std": float(self.duty_std[node]),
            "downtime_fraction": float(self.downtime_fraction[node]),
            "waste_fraction": float(self.waste_fraction[node]),
            "final_soc": float(self.final_soc[node]),
        }

    def summary(self) -> dict:
        """Fleet-aggregate digest of the headline metrics."""
        total_harvest = float(self.harvested_joules.sum())
        waste = (
            float(self.wasted_joules.sum()) / total_harvest
            if total_harvest > 0
            else 0.0
        )
        return {
            "n_nodes": self.n_nodes,
            "total_slots": self.total_slots,
            "mean_duty": float(self.duty_achieved.mean()),
            "mean_duty_std": float(self.duty_std.mean()),
            "downtime_fraction": float((self.shortfall_joules > 0).mean()),
            "waste_fraction": waste,
            "mean_final_soc": float(self.final_soc.mean()),
        }


@dataclass(frozen=True)
class FleetAggregate:
    """Per-node summary metrics of one fleet run, without the records.

    The structure-of-arrays form the sharded fleet engine streams and
    checkpoints: a handful of ``(B,)`` arrays instead of the
    ``(total_slots, B)`` records of :class:`FleetRunResult`, so memory
    stays flat in the horizon and a million-node block result is a few
    megabytes.  Produced by :meth:`FleetSimulator.run_aggregate`, which
    accumulates these online during the slot loop (plain running sums
    in time order -- deterministic, and invariant to how the fleet is
    partitioned into blocks).

    ``astype(np.float32)`` halves the storage/IPC footprint (metrics
    are reports, not further simulation inputs); accumulation itself
    always runs in float64.
    """

    n_slots: int
    total_slots: int
    node_names: Tuple[str, ...]
    mean_duty: np.ndarray
    duty_std: np.ndarray
    downtime_fraction: np.ndarray
    waste_fraction: np.ndarray
    final_soc: np.ndarray
    harvested_joules_total: np.ndarray
    wasted_joules_total: np.ndarray
    consumed_joules_total: np.ndarray
    shortfall_slots: np.ndarray

    _FLOAT_FIELDS = (
        "mean_duty",
        "duty_std",
        "downtime_fraction",
        "waste_fraction",
        "final_soc",
        "harvested_joules_total",
        "wasted_joules_total",
        "consumed_joules_total",
    )

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered (``B``)."""
        return self.mean_duty.shape[0]

    def astype(self, dtype) -> "FleetAggregate":
        """The same aggregate with float metrics cast to ``dtype``."""
        replacements = {
            name: getattr(self, name).astype(dtype)
            for name in self._FLOAT_FIELDS
        }
        return dataclasses_replace(self, **replacements)

    def node_summary(self, node: int) -> dict:
        """Digest of one node's headline metrics (``FleetRunResult`` keys)."""
        return {
            "name": self.node_names[node],
            "mean_duty": float(self.mean_duty[node]),
            "duty_std": float(self.duty_std[node]),
            "downtime_fraction": float(self.downtime_fraction[node]),
            "waste_fraction": float(self.waste_fraction[node]),
            "final_soc": float(self.final_soc[node]),
        }

    def summary(self) -> dict:
        """Fleet-aggregate digest (same keys as ``FleetRunResult.summary``)."""
        total_harvest = float(self.harvested_joules_total.sum(dtype=np.float64))
        waste = (
            float(self.wasted_joules_total.sum(dtype=np.float64)) / total_harvest
            if total_harvest > 0
            else 0.0
        )
        return {
            "n_nodes": self.n_nodes,
            "total_slots": self.total_slots,
            "mean_duty": float(self.mean_duty.mean(dtype=np.float64)),
            "mean_duty_std": float(self.duty_std.mean(dtype=np.float64)),
            "downtime_fraction": float(self.shortfall_slots.sum())
            / (self.total_slots * self.n_nodes),
            "waste_fraction": waste,
            "mean_final_soc": float(self.final_soc.mean(dtype=np.float64)),
        }

    @staticmethod
    def concat(parts: Sequence["FleetAggregate"]) -> "FleetAggregate":
        """Concatenate block aggregates along the node axis, in order."""
        if not parts:
            raise ValueError("need at least one aggregate to concatenate")
        first = parts[0]
        for part in parts[1:]:
            if (part.n_slots, part.total_slots) != (first.n_slots, first.total_slots):
                raise ValueError(
                    "cannot concatenate aggregates with different slot "
                    f"geometry: {(part.n_slots, part.total_slots)} vs "
                    f"{(first.n_slots, first.total_slots)}"
                )
        if len(parts) == 1:
            return first
        arrays = {
            name: np.concatenate([getattr(p, name) for p in parts])
            for name in FleetAggregate._FLOAT_FIELDS + ("shortfall_slots",)
        }
        return FleetAggregate(
            n_slots=first.n_slots,
            total_slots=first.total_slots,
            node_names=tuple(n for p in parts for n in p.node_names),
            **arrays,
        )


# ----------------------------------------------------------------------
# Group adapters: each covers a subset of node columns.  ``sel`` is a
# slice when the subset is the whole fleet (no gather/scatter copies on
# the homogeneous fast path) and an index array otherwise.
# ----------------------------------------------------------------------
class _VectorPredictorColumn:
    """A registry vector kernel driving a group of node columns."""

    def __init__(self, sel, kernel):
        self.sel = sel
        self.kernel = kernel

    def reset(self) -> None:
        self.kernel.reset()

    def observe(self, values: np.ndarray) -> np.ndarray:
        return self.kernel.observe(values)


class _ScalarPredictorColumn:
    """Per-node scalar predictors for configurations without a kernel."""

    def __init__(self, sel, predictors: List[OnlinePredictor]):
        self.sel = sel
        self.predictors = predictors

    def reset(self) -> None:
        for predictor in self.predictors:
            predictor.reset()

    def observe(self, values: np.ndarray) -> np.ndarray:
        return np.array(
            [p.observe(float(v)) for p, v in zip(self.predictors, values)],
            dtype=float,
        )


class _StackedControllerColumn:
    """One array-parameterised controller covering its node columns."""

    def __init__(self, sel, controller: Controller):
        self.sel = sel
        self.controller = controller

    def reset(self) -> None:
        self.controller.reset()

    def decide(self, predicted_watts, state_of_charge):
        return self.controller.decide(predicted_watts, state_of_charge)

    def feedback(self, harvest_watts) -> None:
        self.controller.feedback(harvest_watts)


class _ScalarControllerColumn:
    """Per-node controllers for classes without a ``stack``."""

    def __init__(self, sel, controllers: List[Controller]):
        self.sel = sel
        self.controllers = controllers

    def reset(self) -> None:
        for controller in self.controllers:
            controller.reset()

    def decide(self, predicted_watts, state_of_charge):
        return np.array(
            [
                c.decide(float(p), float(s))
                for c, p, s in zip(self.controllers, predicted_watts, state_of_charge)
            ],
            dtype=float,
        )

    def feedback(self, harvest_watts) -> None:
        for controller, watts in zip(self.controllers, harvest_watts):
            controller.feedback(float(watts))


class _StackedStoreColumn:
    """One array-parameterised store covering its node columns."""

    def __init__(self, sel, store: Battery):
        self.sel = sel
        self.store = store
        self.charge_efficiency = np.asarray(store.charge_efficiency, dtype=float)

    @property
    def state_of_charge(self):
        return self.store.state_of_charge

    def charge(self, joules):
        return self.store.charge(joules)

    def discharge(self, joules):
        return self.store.discharge(joules)

    def leak(self, seconds):
        self.store.leak(seconds)


class _ScalarStoreColumn:
    """Per-node stores for custom storage classes without a ``stack``.

    Operates on deep copies of the spec's instances (made by the
    column builder), so the spec stays pristine between runs exactly
    as on the stacked path.
    """

    def __init__(self, sel, stores: List[Battery]):
        self.sel = sel
        self.stores = stores
        self.charge_efficiency = np.array(
            [s.charge_efficiency for s in stores], dtype=float
        )

    @property
    def state_of_charge(self):
        return np.array([s.state_of_charge for s in self.stores], dtype=float)

    def charge(self, joules):
        return np.array(
            [s.charge(float(j)) for s, j in zip(self.stores, joules)], dtype=float
        )

    def discharge(self, joules):
        return np.array(
            [s.discharge(float(j)) for s, j in zip(self.stores, joules)], dtype=float
        )

    def leak(self, seconds):
        for store in self.stores:
            store.leak(seconds)


def _column_selector(indices: List[int], n_nodes: int):
    """A slice when ``indices`` is the whole fleet, else an index array."""
    if len(indices) == n_nodes:
        return slice(None)
    return np.array(indices, dtype=np.intp)


class FleetSimulator:
    """Step a heterogeneous fleet of harvesting nodes in lock-step.

    Parameters
    ----------
    specs:
        One :class:`FleetNodeSpec` per node.  All traces must span the
        same number of days and support ``n_slots``.
    n_slots:
        Slots per day (``N``), shared by the whole fleet -- lock-step
        means every node crosses the same slot boundary together.
    """

    def __init__(self, specs: Sequence[FleetNodeSpec], n_slots: int):
        specs = list(specs)
        if not specs:
            raise ValueError("fleet needs at least one node spec")
        for i, spec in enumerate(specs):
            if not isinstance(spec.controller, Controller):
                raise TypeError(
                    f"spec {i}: controller must be a Controller instance, "
                    f"got {type(spec.controller).__name__}"
                )
        self.specs = specs
        self.n_slots = n_slots
        self.node_names = tuple(
            spec.name or f"node{i}" for i, spec in enumerate(specs)
        )

        # One SlotView per distinct trace object; nodes sharing a trace
        # share the flattened sample arrays.
        self.slot_duration_hours = 24.0 / n_slots
        slot_seconds = self.slot_duration_hours * 3600.0
        views: Dict[int, SlotView] = {}
        starts_cols = []
        energy_cols = []
        oracle_power_cols = []
        n_days = None
        for i, spec in enumerate(specs):
            key = id(spec.trace)
            if key not in views:
                views[key] = SlotView.from_trace(spec.trace, n_slots)
            view = views[key]
            if n_days is None:
                n_days = view.n_days
            elif view.n_days != n_days:
                raise ValueError(
                    f"spec {i}: trace covers {view.n_days} days, fleet "
                    f"steps {n_days}; all traces must span the same days"
                )
            starts_cols.append(view.flat_starts())
            # Realized harvest per slot is a pure function of the trace,
            # so it is precomputed through each node's own harvester --
            # custom PVHarvester subclasses overriding power() and/or
            # energy() keep their behaviour.
            means = view.flat_means()
            energy_cols.append(
                np.asarray(spec.harvester.energy(means, slot_seconds), dtype=float)
            )
            if isinstance(spec.controller, OracleController):
                oracle_power_cols.append(
                    np.asarray(spec.harvester.power(means), dtype=float)
                )
        self.n_days = n_days
        self._starts = np.column_stack(starts_cols)
        self._harvest_energy = np.column_stack(energy_cols)
        self._gains = PVHarvester.stack_gains([s.harvester for s in specs])
        self._oracle_indices = np.array(
            [
                i
                for i, spec in enumerate(specs)
                if isinstance(spec.controller, OracleController)
            ],
            dtype=np.intp,
        )
        # True harvest power the oracle controllers plan with, one
        # column per oracle node (in self._oracle_indices order).
        self._oracle_power = (
            np.column_stack(oracle_power_cols)
            if oracle_power_cols
            else np.empty((self._starts.shape[0], 0))
        )
        # Nodes whose harvester overrides the linear power() cannot use
        # the gains fast path for converting *predictions* to power.
        self._custom_harvester_nodes = [
            i
            for i, spec in enumerate(specs)
            if type(spec.harvester).power is not PVHarvester.power
        ]

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Fleet size ``B``."""
        return len(self.specs)

    @property
    def total_slots(self) -> int:
        """Boundaries each node is stepped through."""
        return self._starts.shape[0]

    # ------------------------------------------------------------------
    def _build_predictor_columns(self):
        n_nodes = self.n_nodes
        # Grouped by (name, kwargs) *equality*, not hashability, so
        # factory kwargs holding lists/dicts still group correctly; a
        # comparison that cannot produce a bool (e.g. ndarray kwargs)
        # conservatively starts a new group.
        groups: List[Tuple[str, dict, List[int]]] = []
        scalar_members: List[Tuple[int, OnlinePredictor]] = []
        for i, spec in enumerate(self.specs):
            predictor = spec.predictor
            kwargs = dict(spec.predictor_kwargs or {})
            if isinstance(predictor, str):
                if supports_vector(predictor):
                    name = predictor.lower()
                    for group_name, group_kwargs, indices in groups:
                        try:
                            same = group_name == name and group_kwargs == kwargs
                        except (TypeError, ValueError):
                            same = False
                        if same:
                            indices.append(i)
                            break
                    else:
                        groups.append((name, kwargs, [i]))
                else:
                    scalar_members.append(
                        (i, make_predictor(predictor, self.n_slots, **kwargs))
                    )
            else:
                # Deep-copied so a run never mutates (or is polluted
                # by) the instance the caller handed in.
                scalar_members.append((i, copy.deepcopy(predictor)))
        columns = []
        for name, kwargs, indices in groups:
            kernel = make_vector_predictor(
                name, self.n_slots, len(indices), **kwargs
            )
            columns.append(
                _VectorPredictorColumn(_column_selector(indices, n_nodes), kernel)
            )
        if scalar_members:
            indices = [i for i, _ in scalar_members]
            columns.append(
                _ScalarPredictorColumn(
                    _column_selector(indices, n_nodes),
                    [p for _, p in scalar_members],
                )
            )
        return columns

    def _build_controller_columns(self):
        n_nodes = self.n_nodes
        by_type: Dict[type, List[Tuple[int, Controller]]] = {}
        scalar_members: List[Tuple[int, Controller]] = []
        for i, spec in enumerate(self.specs):
            controller = spec.controller
            if type(controller) in _STACKABLE_CONTROLLERS:
                by_type.setdefault(type(controller), []).append((i, controller))
            else:
                scalar_members.append((i, copy.deepcopy(controller)))
        columns = []
        for cls, members in by_type.items():
            indices = [i for i, _ in members]
            stacked = cls.stack([c for _, c in members])
            columns.append(
                _StackedControllerColumn(_column_selector(indices, n_nodes), stacked)
            )
        if scalar_members:
            indices = [i for i, _ in scalar_members]
            columns.append(
                _ScalarControllerColumn(
                    _column_selector(indices, n_nodes),
                    [c for _, c in scalar_members],
                )
            )
        return columns

    def _build_storage_columns(self):
        n_nodes = self.n_nodes
        by_type: Dict[type, List[Tuple[int, Battery]]] = {}
        scalar_members: List[Tuple[int, Battery]] = []
        for i, spec in enumerate(self.specs):
            store = spec.storage
            if type(store) in _STACKABLE_STORES:
                by_type.setdefault(type(store), []).append((i, store))
            else:
                scalar_members.append((i, copy.deepcopy(store)))
        columns = []
        for cls, members in by_type.items():
            indices = [i for i, _ in members]
            stacked = cls.stack([s for _, s in members])
            columns.append(
                _StackedStoreColumn(_column_selector(indices, n_nodes), stacked)
            )
        if scalar_members:
            indices = [i for i, _ in scalar_members]
            columns.append(
                _ScalarStoreColumn(
                    _column_selector(indices, n_nodes),
                    [s for _, s in scalar_members],
                )
            )
        return columns

    # ------------------------------------------------------------------
    def run(self) -> FleetRunResult:
        """Simulate every slot for every node; returns the full record."""
        sink = _RecordSink(self.total_slots, self.n_nodes)
        self._simulate(sink)
        return FleetRunResult(
            n_slots=self.n_slots,
            node_names=self.node_names,
            duty_requested=sink.duty_requested,
            duty_achieved=sink.duty_achieved,
            state_of_charge=sink.soc,
            harvested_joules=sink.harvested,
            consumed_joules=sink.consumed,
            wasted_joules=sink.wasted,
            shortfall_joules=sink.shortfall,
        )

    def run_aggregate(self) -> FleetAggregate:
        """Simulate every slot, accumulating per-node metrics online.

        Identical simulation to :meth:`run` -- same kernels, same slot
        loop, same float64 arithmetic -- but per-slot records are folded
        into running per-node sums instead of being stored, so memory is
        ``O(B)`` instead of ``O(total_slots * B)``.  This is what lets
        the sharded fleet engine stream million-node fleets through
        fixed-size blocks.  (Derived statistics reduce in time order,
        which can differ from :class:`FleetRunResult`'s pairwise numpy
        reductions by float rounding -- the metrics agree to ~1e-12,
        and are bitwise-reproducible run to run and across any node
        partitioning.)
        """
        sink = _AggregateSink(self.n_nodes)
        self._simulate(sink)
        total = self.total_slots
        mean_duty = sink.duty_sum / total
        variance = np.maximum(sink.duty_sq_sum / total - mean_duty**2, 0.0)
        waste_fraction = np.zeros(self.n_nodes)
        np.divide(
            sink.wasted_sum,
            sink.harvested_sum,
            out=waste_fraction,
            where=sink.harvested_sum > 0,
        )
        return FleetAggregate(
            n_slots=self.n_slots,
            total_slots=total,
            node_names=self.node_names,
            mean_duty=mean_duty,
            duty_std=np.sqrt(variance),
            downtime_fraction=sink.shortfall_slots / total,
            waste_fraction=waste_fraction,
            final_soc=sink.final_soc.copy(),
            harvested_joules_total=sink.harvested_sum,
            wasted_joules_total=sink.wasted_sum,
            consumed_joules_total=sink.consumed_sum,
            shortfall_slots=sink.shortfall_slots.astype(np.int64),
        )

    def _simulate(self, sink) -> None:
        """The slot loop, feeding per-slot ``(B,)`` vectors to ``sink``."""
        n_nodes = self.n_nodes
        total = self.total_slots
        slot_seconds = self.slot_duration_hours * 3600.0

        predictor_cols = self._build_predictor_columns()
        controller_cols = self._build_controller_columns()
        storage_cols = self._build_storage_columns()
        for column in predictor_cols:
            column.reset()
        for column in controller_cols:
            column.reset()
        load = DutyCycledLoad.stack([spec.load for spec in self.specs])
        gains = self._gains

        oracle_indices = self._oracle_indices
        any_oracle = oracle_indices.size > 0

        predictions = np.empty(n_nodes)
        soc_now = np.empty(n_nodes)
        duty = np.empty(n_nodes)
        wasted_now = np.empty(n_nodes)
        starts, harvest_energy = self._starts, self._harvest_energy
        oracle_power = self._oracle_power
        custom_harvesters = self._custom_harvester_nodes

        for t in range(total):
            values = starts[t]
            for column in predictor_cols:
                predictions[column.sel] = column.observe(values[column.sel])

            # Electrical power the controller plans with: predicted for
            # normal nodes, the true slot power for oracle nodes.
            predicted_power = np.maximum(predictions, 0.0) * gains
            for i in custom_harvesters:
                predicted_power[i] = self.specs[i].harvester.power(
                    max(0.0, float(predictions[i]))
                )
            if any_oracle:
                predicted_power[oracle_indices] = oracle_power[t]

            for column in storage_cols:
                soc_now[column.sel] = column.state_of_charge
            for column in controller_cols:
                duty[column.sel] = column.decide(
                    predicted_power[column.sel], soc_now[column.sel]
                )

            # The slot plays out with the *true* mean power.
            incoming = harvest_energy[t]
            for column in storage_cols:
                incoming_here = incoming[column.sel]
                stored = column.charge(incoming_here)
                wasted_now[column.sel] = (
                    incoming_here * column.charge_efficiency - stored
                )

            request = load.energy(duty, slot_seconds)
            supplied = np.empty(n_nodes)
            for column in storage_cols:
                supplied[column.sel] = column.discharge(request[column.sel])
            shortfall_now = request - supplied
            ratio = np.zeros(n_nodes)
            np.divide(supplied, request, out=ratio, where=request > 0)
            achieved = duty * ratio

            for column in storage_cols:
                column.leak(slot_seconds)
                soc_now[column.sel] = column.state_of_charge
            sink.record(
                t, duty, achieved, soc_now, incoming, supplied,
                wasted_now, shortfall_now,
            )
            harvest_watts = incoming / slot_seconds
            for column in controller_cols:
                column.feedback(harvest_watts[column.sel])


class _RecordSink:
    """Full ``(total_slots, B)`` records (the :meth:`FleetSimulator.run` form)."""

    def __init__(self, total: int, n_nodes: int):
        self.duty_requested = np.empty((total, n_nodes))
        self.duty_achieved = np.empty((total, n_nodes))
        self.soc = np.empty((total, n_nodes))
        self.harvested = np.empty((total, n_nodes))
        self.consumed = np.empty((total, n_nodes))
        self.wasted = np.empty((total, n_nodes))
        self.shortfall = np.empty((total, n_nodes))

    def record(self, t, duty, achieved, soc, incoming, supplied, wasted, shortfall):
        self.duty_requested[t] = duty
        self.duty_achieved[t] = achieved
        self.soc[t] = soc
        self.harvested[t] = incoming
        self.consumed[t] = supplied
        self.wasted[t] = wasted
        self.shortfall[t] = shortfall


class _AggregateSink:
    """Online per-node accumulators (the :meth:`FleetSimulator.run_aggregate` form)."""

    def __init__(self, n_nodes: int):
        self.duty_sum = np.zeros(n_nodes)
        self.duty_sq_sum = np.zeros(n_nodes)
        self.shortfall_slots = np.zeros(n_nodes)
        self.harvested_sum = np.zeros(n_nodes)
        self.consumed_sum = np.zeros(n_nodes)
        self.wasted_sum = np.zeros(n_nodes)
        self.final_soc = np.zeros(n_nodes)

    def record(self, t, duty, achieved, soc, incoming, supplied, wasted, shortfall):
        self.duty_sum += achieved
        self.duty_sq_sum += achieved * achieved
        self.shortfall_slots += shortfall > 0
        self.harvested_sum += incoming
        self.consumed_sum += supplied
        self.wasted_sum += wasted
        self.final_soc[:] = soc
