"""Photovoltaic harvester model: irradiance to electrical power.

A small sensor-node panel is modelled as a constant-efficiency
converter with a conditioning (MPPT / regulator) efficiency on top --
the level of detail the energy-management literature this paper builds
on ([2], [5]) uses.  Irradiance traces are per unit area, so the
harvested power is::

    P_elec = GHI * area * panel_efficiency * conditioning_efficiency
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PVHarvester"]


@dataclass(frozen=True)
class PVHarvester:
    """Constant-efficiency PV panel + power-conditioning model.

    Attributes
    ----------
    area_m2:
        Panel area; sensor nodes carry a few tens of cm^2 (default
        50 cm^2).
    panel_efficiency:
        Photovoltaic conversion efficiency (mono-Si small panel ~0.15).
    conditioning_efficiency:
        Regulator/MPPT efficiency (Fig. 1's power conditioning
        subsystem, ~0.85).
    """

    area_m2: float = 50e-4
    panel_efficiency: float = 0.15
    conditioning_efficiency: float = 0.85

    def __post_init__(self):
        if self.area_m2 <= 0:
            raise ValueError("area_m2 must be positive")
        for name in ("panel_efficiency", "conditioning_efficiency"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")

    @property
    def gain(self) -> float:
        """W of electrical output per W/m^2 of irradiance."""
        return self.area_m2 * self.panel_efficiency * self.conditioning_efficiency

    def power(self, irradiance_wm2):
        """Electrical power (W) for irradiance (W/m^2; scalar or array)."""
        irradiance = np.asarray(irradiance_wm2, dtype=float)
        if (irradiance < 0).any():
            raise ValueError("irradiance must be non-negative")
        result = irradiance * self.gain
        return float(result) if result.ndim == 0 else result

    def energy(self, irradiance_wm2, seconds: float):
        """Energy (J) harvested at constant irradiance for ``seconds``.

        Scalar irradiance gives a float; a ``(B,)`` array gives per-node
        energies.
        """
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        result = np.asarray(self.power(irradiance_wm2)) * seconds
        return float(result) if result.ndim == 0 else result

    @staticmethod
    def stack_gains(harvesters) -> np.ndarray:
        """Per-node ``gain`` array for a sequence of harvesters."""
        return np.array([h.gain for h in harvesters], dtype=float)
