"""Harvested-energy-management substrate (Fig. 1 of the paper).

The paper motivates prediction through the energy-management loop of
Fig. 1: an energy harvester charges a store, an *intelligent
controller* adapts the embedded application's consumption to the
*predicted* incoming energy.  This package builds that loop so the
effect of prediction accuracy on system-level behaviour can be
simulated end to end:

* :mod:`repro.management.harvester` -- photovoltaic panel + power
  conditioning: irradiance (W/m^2) to electrical power (W).
* :mod:`repro.management.storage` -- battery / supercapacitor models
  with round-trip efficiency and leakage.
* :mod:`repro.management.consumer` -- a duty-cycled sensing load.
* :mod:`repro.management.controller` -- duty-cycle policies: Kansal
  et al.'s energy-neutral adaptation [2] and a Noh-style
  minimum-variance allocation [4], plus an oracle and a fixed-duty
  baseline.
* :mod:`repro.management.node` -- the slot-by-slot single-node
  simulation tying everything to a solar trace and a predictor.
* :mod:`repro.management.fleet` -- the lock-step fleet engine stepping
  many nodes at once (see below).

Fleet simulation
----------------

All the physical models above are elementwise: their parameters and
method arguments accept ``(B,)`` arrays as well as scalars, and each
has a ``stack`` classmethod merging ``B`` scalar-configured instances
into one array-parameterised instance.  :class:`FleetSimulator` builds
on that to step a heterogeneous fleet -- mixed sites, predictors,
controllers, battery sizes -- through every slot boundary in lock-step,
replacing ``B`` Python loops with a handful of ``(B,)`` numpy
operations per slot (20x+ faster at 256 nodes)::

    from repro.management import (
        FleetNodeSpec, FleetSimulator, KansalController, DutyCycledLoad,
    )
    load = DutyCycledLoad()
    specs = [
        FleetNodeSpec(
            trace=trace,                      # per-node site trace
            controller=KansalController(load, 9000.0),
            predictor="wcma",                 # vector kernel via registry
            predictor_kwargs={"alpha": 0.7, "days": 10, "k": 2},
        )
        for trace in traces
    ]
    result = FleetSimulator(specs, n_slots=48).run()
    result.summary()                # fleet aggregates
    result.downtime_fraction        # (B,) per-node metric
    result.node_result(3)           # one node's full NodeRunResult

Per-node outputs match ``B`` independent ``SensorNodeSimulation`` runs
elementwise (parity-tested to 1e-9); ``SensorNodeSimulation`` itself is
the ``B = 1`` front-end of the same engine.  ``examples/fleet_simulation.py``
runs a 100-node heterogeneous fleet end to end.
"""

from repro.management.harvester import PVHarvester
from repro.management.storage import Battery, Supercapacitor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    Controller,
    FixedDutyController,
    KansalController,
    MinimumVarianceController,
    OracleController,
)
from repro.management.planning import ProfilePlanningController
from repro.management.fleet import (
    FleetAggregate,
    FleetNodeSpec,
    FleetRunResult,
    FleetSimulator,
)
from repro.management.node import NodeRunResult, SensorNodeSimulation

__all__ = [
    "PVHarvester",
    "Battery",
    "Supercapacitor",
    "DutyCycledLoad",
    "Controller",
    "FixedDutyController",
    "KansalController",
    "MinimumVarianceController",
    "OracleController",
    "ProfilePlanningController",
    "FleetAggregate",
    "FleetNodeSpec",
    "FleetRunResult",
    "FleetSimulator",
    "NodeRunResult",
    "SensorNodeSimulation",
]
