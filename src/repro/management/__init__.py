"""Harvested-energy-management substrate (Fig. 1 of the paper).

The paper motivates prediction through the energy-management loop of
Fig. 1: an energy harvester charges a store, an *intelligent
controller* adapts the embedded application's consumption to the
*predicted* incoming energy.  This package builds that loop so the
effect of prediction accuracy on system-level behaviour can be
simulated end to end:

* :mod:`repro.management.harvester` -- photovoltaic panel + power
  conditioning: irradiance (W/m^2) to electrical power (W).
* :mod:`repro.management.storage` -- battery / supercapacitor models
  with round-trip efficiency and leakage.
* :mod:`repro.management.consumer` -- a duty-cycled sensing load.
* :mod:`repro.management.controller` -- duty-cycle policies: Kansal
  et al.'s energy-neutral adaptation [2] and a Noh-style
  minimum-variance allocation [4], plus an oracle and a fixed-duty
  baseline.
* :mod:`repro.management.node` -- the slot-by-slot node simulation
  tying everything to a solar trace and a predictor.
"""

from repro.management.harvester import PVHarvester
from repro.management.storage import Battery, Supercapacitor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    Controller,
    FixedDutyController,
    KansalController,
    MinimumVarianceController,
    OracleController,
)
from repro.management.planning import ProfilePlanningController
from repro.management.node import NodeRunResult, SensorNodeSimulation

__all__ = [
    "PVHarvester",
    "Battery",
    "Supercapacitor",
    "DutyCycledLoad",
    "Controller",
    "FixedDutyController",
    "KansalController",
    "MinimumVarianceController",
    "OracleController",
    "ProfilePlanningController",
    "NodeRunResult",
    "SensorNodeSimulation",
]
