"""Duty-cycle controllers (the "intelligent controller" of Fig. 1).

Each controller maps (predicted incoming power, storage state) to a
duty-cycle request once per slot:

* :class:`FixedDutyController` -- no adaptation; the baseline that
  motivates harvested-energy management.
* :class:`KansalController` -- energy-neutral adaptation in the spirit
  of Kansal et al. [2]: spend what the predictor says is coming, plus a
  proportional correction steering the store toward a target state of
  charge.
* :class:`MinimumVarianceController` -- Noh et al. [4]-style: aim for
  the *smoothest* duty cycle consistent with energy neutrality, using a
  slowly adapting daily-average budget rather than chasing every slot's
  prediction.
* :class:`OracleController` -- Kansal update driven by the *true*
  upcoming slot power; upper-bounds what better prediction can buy.

The node simulation (:mod:`repro.management.node`) wires these to a
predictor and a solar trace; ``benchmarks/test_bench_node_management.py``
quantifies how prediction accuracy propagates to duty stability --
the system-level motivation the paper's introduction gives for caring
about MAPE at all.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.management.consumer import DutyCycledLoad

__all__ = [
    "Controller",
    "FixedDutyController",
    "KansalController",
    "MinimumVarianceController",
    "OracleController",
]


class Controller(abc.ABC):
    """Per-slot duty-cycle policy.

    The four built-in controllers are fully elementwise: parameters and
    ``decide`` arguments may be scalars or ``(B,)`` arrays, and
    :meth:`stack` merges ``B`` scalar-configured controllers into one
    array-parameterised instance (the fleet simulator's fast path).
    """

    @abc.abstractmethod
    def decide(self, predicted_watts: float, state_of_charge: float) -> float:
        """Duty-cycle request for the upcoming slot.

        Parameters
        ----------
        predicted_watts:
            Predicted *electrical* harvest power over the upcoming slot.
        state_of_charge:
            Storage state of charge in [0, 1] at the slot boundary.
        """

    def reset(self) -> None:
        """Clear internal state (default: stateless)."""

    def feedback(self, harvest_watts: float) -> None:
        """Receive the just-finished slot's realized harvest power.

        Called by the node simulation after each slot; the default
        ignores it.  Planning controllers override this to learn the
        daily harvest profile.
        """


@dataclass
class FixedDutyController(Controller):
    """Constant duty cycle, oblivious to energy conditions."""

    duty: float = 0.2

    def __post_init__(self):
        duty = np.asarray(self.duty)
        if np.any(duty < 0.0) or np.any(duty > 1.0):
            raise ValueError("duty must be in [0, 1]")

    @classmethod
    def stack(cls, controllers: Sequence["FixedDutyController"]) -> "FixedDutyController":
        """One array-parameterised controller for ``len(controllers)`` nodes."""
        return cls(duty=np.array([c.duty for c in controllers], dtype=float))

    def decide(self, predicted_watts: float, state_of_charge: float) -> float:
        return self.duty


class KansalController(Controller):
    """Energy-neutral duty-cycle adaptation (Kansal et al. [2]).

    Budget for the next slot = predicted harvest power + a proportional
    term steering the state of charge toward ``target_soc``::

        budget = prediction + gain * (soc - target) * capacity / horizon

    Parameters
    ----------
    load:
        The duty-cycled load (for the power<->duty conversion).
    capacity_joules:
        Storage capacity, for scaling the SoC correction.
    target_soc:
        Desired operating state of charge.
    correction_gain:
        Strength of the SoC correction (1.0 = close the SoC gap over
        one ``horizon_seconds``).
    horizon_seconds:
        Time constant of the SoC correction (default one day).
    """

    def __init__(
        self,
        load: DutyCycledLoad,
        capacity_joules: float,
        target_soc: float = 0.6,
        correction_gain: float = 1.0,
        horizon_seconds: float = 86_400.0,
    ):
        if np.any(np.asarray(capacity_joules) <= 0):
            raise ValueError("capacity_joules must be positive")
        target = np.asarray(target_soc)
        if np.any(target < 0.0) or np.any(target > 1.0):
            raise ValueError("target_soc must be in [0, 1]")
        if np.any(np.asarray(correction_gain) < 0):
            raise ValueError("correction_gain must be non-negative")
        if np.any(np.asarray(horizon_seconds) <= 0):
            raise ValueError("horizon_seconds must be positive")
        self.load = load
        self.capacity_joules = capacity_joules
        self.target_soc = target_soc
        self.correction_gain = correction_gain
        self.horizon_seconds = horizon_seconds

    @classmethod
    def stack(cls, controllers: Sequence["KansalController"]) -> "KansalController":
        """One array-parameterised controller for ``len(controllers)`` nodes."""
        return cls(
            load=DutyCycledLoad.stack([c.load for c in controllers]),
            capacity_joules=np.array(
                [c.capacity_joules for c in controllers], dtype=float
            ),
            target_soc=np.array([c.target_soc for c in controllers], dtype=float),
            correction_gain=np.array(
                [c.correction_gain for c in controllers], dtype=float
            ),
            horizon_seconds=np.array(
                [c.horizon_seconds for c in controllers], dtype=float
            ),
        )

    def decide(self, predicted_watts: float, state_of_charge: float) -> float:
        if np.any(np.asarray(predicted_watts) < 0):
            raise ValueError("predicted_watts must be non-negative")
        correction = (
            self.correction_gain
            * (state_of_charge - self.target_soc)
            * self.capacity_joules
            / self.horizon_seconds
        )
        budget = np.maximum(0.0, predicted_watts + correction)
        return self.load.duty_for_power(budget)


class MinimumVarianceController(Controller):
    """Smooth-duty allocation in the spirit of Noh et al. [4].

    Tracks an exponentially weighted average of the harvest power
    (fed by the predictor, so prediction errors still matter) and
    budgets that average constantly, with a gentle SoC correction.
    The result is a much lower duty variance than slot-chasing, at the
    cost of slower reaction to weather changes.
    """

    def __init__(
        self,
        load: DutyCycledLoad,
        capacity_joules: float,
        target_soc: float = 0.6,
        smoothing: float = 0.02,
        correction_gain: float = 0.5,
        horizon_seconds: float = 86_400.0,
    ):
        if np.any(np.asarray(capacity_joules) <= 0):
            raise ValueError("capacity_joules must be positive")
        smoothing_arr = np.asarray(smoothing)
        if np.any(smoothing_arr <= 0.0) or np.any(smoothing_arr > 1.0):
            raise ValueError("smoothing must be in (0, 1]")
        target = np.asarray(target_soc)
        if np.any(target < 0.0) or np.any(target > 1.0):
            raise ValueError("target_soc must be in [0, 1]")
        if np.any(np.asarray(correction_gain) < 0):
            raise ValueError("correction_gain must be non-negative")
        if np.any(np.asarray(horizon_seconds) <= 0):
            raise ValueError("horizon_seconds must be positive")
        self.load = load
        self.capacity_joules = capacity_joules
        self.target_soc = target_soc
        self.smoothing = smoothing
        self.correction_gain = correction_gain
        self.horizon_seconds = horizon_seconds
        self._average_watts = None

    @classmethod
    def stack(
        cls, controllers: Sequence["MinimumVarianceController"]
    ) -> "MinimumVarianceController":
        """One array-parameterised controller for ``len(controllers)`` nodes."""
        return cls(
            load=DutyCycledLoad.stack([c.load for c in controllers]),
            capacity_joules=np.array(
                [c.capacity_joules for c in controllers], dtype=float
            ),
            target_soc=np.array([c.target_soc for c in controllers], dtype=float),
            smoothing=np.array([c.smoothing for c in controllers], dtype=float),
            correction_gain=np.array(
                [c.correction_gain for c in controllers], dtype=float
            ),
            horizon_seconds=np.array(
                [c.horizon_seconds for c in controllers], dtype=float
            ),
        )

    def reset(self) -> None:
        self._average_watts = None

    def decide(self, predicted_watts: float, state_of_charge: float) -> float:
        if np.any(np.asarray(predicted_watts) < 0):
            raise ValueError("predicted_watts must be non-negative")
        if self._average_watts is None:
            # `+ 0.0` copies an array argument so later in-place updates
            # never alias the caller's buffer.
            self._average_watts = predicted_watts + 0.0
        else:
            self._average_watts += self.smoothing * (
                predicted_watts - self._average_watts
            )
        correction = (
            self.correction_gain
            * (state_of_charge - self.target_soc)
            * self.capacity_joules
            / self.horizon_seconds
        )
        budget = np.maximum(0.0, self._average_watts + correction)
        return self.load.duty_for_power(budget)


class OracleController(KansalController):
    """Kansal controller fed the *true* upcoming slot power.

    The node simulation passes it the realized slot mean instead of a
    prediction, bounding the benefit of a perfect predictor.
    """
