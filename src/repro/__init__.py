"""repro -- reproduction of "Evaluation and Design Exploration of Solar
Harvested-Energy Prediction Algorithm" (Ali, Al-Hashimi, Recas, Atienza;
DATE 2010).

Public API overview
-------------------

Data substrate (:mod:`repro.solar`)
    ``build_dataset("PFCI")`` returns a one-year synthetic stand-in for
    the paper's NREL MIDC traces; ``SlotView`` decomposes a trace into
    the N-slot structure the predictor operates on.

Predictors (:mod:`repro.core`)
    ``WCMAPredictor`` (the evaluated algorithm, Eqs. 1-5),
    ``EWMAPredictor`` and simple baselines; ``grid_search`` for the
    paper's exhaustive parameter optimisation; ``clairvoyant_dynamic``
    for the Table V bound; adaptive selectors for the realizable
    extension.

Error measurement (:mod:`repro.metrics`)
    MAPE / MAPE' / RMSE / MAE with the region-of-interest rule of
    Section III; ``evaluate_predictor`` scores any online predictor.

Hardware model (:mod:`repro.hardware`)
    MSP430F1611 energy accounting (Table IV, Fig. 6) and a Q15
    fixed-point implementation of the predictor.

Energy management (:mod:`repro.management`)
    Harvester, storage, consumer and controller models wired into a
    full node simulation (Fig. 1), and the lock-step ``FleetSimulator``
    stepping thousands of heterogeneous nodes as array state (see the
    "Fleet simulation" section of that package's docs).

Experiments (:mod:`repro.experiments`)
    One module per table/figure of the paper; see DESIGN.md for the
    per-experiment index.

Quickstart
----------

>>> from repro import build_dataset, WCMAParams, WCMAPredictor
>>> from repro.metrics import evaluate_predictor
>>> trace = build_dataset("PFCI", n_days=60)
>>> predictor = WCMAPredictor(48, WCMAParams(alpha=0.7, days=10, k=2))
>>> run = evaluate_predictor(predictor, trace, 48)
>>> run.mape < 0.2
True
"""

from repro.core import (
    EWMAPredictor,
    GridSearchResult,
    OnlinePredictor,
    WCMABatch,
    WCMAParams,
    WCMAPredictor,
    clairvoyant_dynamic,
    grid_search,
    make_predictor,
)
from repro.management import FleetNodeSpec, FleetRunResult, FleetSimulator
from repro.metrics import evaluate_predictor
from repro.solar import (
    Scenario,
    SlotView,
    SolarTrace,
    available_scenarios,
    build_dataset,
    generate_trace,
    get_site,
    make_scenario,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "OnlinePredictor",
    "WCMAParams",
    "WCMAPredictor",
    "WCMABatch",
    "EWMAPredictor",
    "GridSearchResult",
    "grid_search",
    "clairvoyant_dynamic",
    "make_predictor",
    "evaluate_predictor",
    "FleetNodeSpec",
    "FleetRunResult",
    "FleetSimulator",
    "SolarTrace",
    "SlotView",
    "build_dataset",
    "generate_trace",
    "get_site",
    "Scenario",
    "make_scenario",
    "available_scenarios",
]
