"""Repository-root pytest configuration.

Registers the ``--update-golden`` flag here (the rootdir conftest) so
it is recognised no matter which test path the run is anchored at; the
golden-suite tests in ``tests/test_golden.py`` consume it.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite the golden snapshots under tests/golden/ from the "
            "current outputs instead of diffing against them"
        ),
    )
