#!/usr/bin/env python3
"""Calibration workflow: from a measured trace to unlimited similar years.

A user with a real NREL MIDC download (converted to the repo's CSV
format; see `repro.solar.io`) can fit a site profile to it and then
generate as many statistically similar years as their study needs.
This example demonstrates the loop using a synthetic "measurement" as
the stand-in download:

1. characterise the source trace (day-type mix, clearness, variability);
2. fit a :class:`SiteProfile` with ``calibrate_site``;
3. generate a fresh year from the fitted profile;
4. verify the statistics AND the prediction difficulty carry over.

Run:  python examples/calibrate_real_data.py [SITE]
"""

import sys

from repro import build_dataset, grid_search
from repro.solar.calibration import calibrate_site
from repro.solar.sites import get_site
from repro.solar.statistics import trace_statistics
from repro.solar.synthetic import generate_trace

SITE = sys.argv[1].upper() if len(sys.argv) > 1 else "ECSU"
DAYS = 180


def describe(label, stats):
    print(
        f"  {label:<12} clear/partly/overcast "
        f"{stats.clear_fraction:.2f}/{stats.partly_fraction:.2f}/"
        f"{stats.overcast_fraction:.2f}   clearness {stats.mean_clearness:.3f}   "
        f"variability {stats.midday_step_variability:.3f}"
    )


def main() -> None:
    latitude = get_site(SITE).latitude_deg
    source = build_dataset(SITE, n_days=DAYS)
    print(f'Treating {DAYS} synthetic {SITE} days as the "measured" download.\n')

    print("1. source statistics:")
    source_stats = trace_statistics(source, latitude)
    describe("source", source_stats)

    print("\n2. fitting a site profile (method of moments)...")
    fitted = calibrate_site(source, latitude, name=f"{SITE}-FIT")
    mix = fitted.day_type_model.stationary_distribution()
    print(
        "  fitted day-type chain stationary mix: "
        f"{mix[0]:.2f}/{mix[1]:.2f}/{mix[2]:.2f}"
    )

    print("\n3. generating a fresh year from the fitted profile...")
    regenerated = generate_trace(fitted, n_days=DAYS, seed=2024)
    describe("regenerated", trace_statistics(regenerated, latitude))

    print("\n4. does prediction difficulty carry over? (WCMA sweep, N=48)")
    source_sweep = grid_search(source, 48)
    regen_sweep = grid_search(regenerated, 48)
    print(
        f"  source      MAPE {source_sweep.best_error * 100:5.2f}%  "
        f"(alpha={source_sweep.best.alpha}, D={source_sweep.best.days}, "
        f"K={source_sweep.best.k})"
    )
    print(
        f"  regenerated MAPE {regen_sweep.best_error * 100:5.2f}%  "
        f"(alpha={regen_sweep.best.alpha}, D={regen_sweep.best.days}, "
        f"K={regen_sweep.best.k})"
    )
    print(
        "\nThe regenerated year is a valid drop-in for parameter studies:"
        "\nsame weather statistics, same difficulty, fresh realisation."
    )


if __name__ == "__main__":
    main()
