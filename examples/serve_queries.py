"""Walkthrough: the always-on forecast daemon, driven end to end.

Spawns ``repro-solar serve`` as a real subprocess (stdin-JSONL
transport, persistent state), registers a synthetic site and the
bundled measured sample, streams observations and reads the audit
lines back, interrupts the daemon with SIGINT mid-stream, verifies the
clean state flush (exit status 0 + shutdown event), then restarts it
and shows the resume: the second daemon picks up at the exact observed
count and model-state digest the first one flushed.

Run with::

    PYTHONPATH=src python examples/serve_queries.py
"""

import json
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.solar.ingest import sample_csv_path

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def spawn(state_dir):
    """One serve daemon with the measured sample registered alongside."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir),
            "--trace", str(sample_csv_path()),
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": SRC_DIR},
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["event"] == "ready", ready
    print(f"daemon up: pid={ready['pid']} predictor={ready['predictor']}")
    return proc


def ask(proc, request):
    proc.stdin.write(json.dumps(request) + "\n")
    proc.stdin.flush()
    response = json.loads(proc.stdout.readline())
    assert response.get("ok"), response
    return response


def main() -> None:
    state_dir = Path(tempfile.mkdtemp(prefix="serve-state-")) / "state"

    # ------------------------------------------------------------------
    # 1. First daemon: synthetic + measured sites, observations in.
    # ------------------------------------------------------------------
    proc = spawn(state_dir)
    synthetic = ask(proc, {"op": "register", "site": "SPMD"})
    measured = ask(proc, {"op": "register", "site": "SAMPLE-MIDC"})
    print(f"registered {synthetic['site']} and {measured['site']}")

    ask(proc, {"op": "replay", "site": "SPMD", "days": 3})
    for value in (0.0, 0.0, 12.5, 80.0, 210.0, 360.0):
        audit = ask(
            proc, {"op": "observe", "site": "SAMPLE-MIDC", "value": value}
        )
        print(
            f"observe {audit['site']} day={audit['day']} slot={audit['slot']} "
            f"value={audit['value']:.1f} -> prediction="
            f"{audit['prediction']:.1f} state={audit['state_digest']}"
        )
    last_digest = audit["state_digest"]
    forecast = ask(proc, {"op": "forecast", "site": "SPMD"})
    print(
        f"standing forecast for {forecast['site']}: "
        f"{forecast['prediction']:.1f} W/m^2 (slot {forecast['slot']})"
    )

    # ------------------------------------------------------------------
    # 2. SIGINT: graceful shutdown must flush state and exit 0.
    # ------------------------------------------------------------------
    proc.send_signal(signal.SIGINT)
    tail, _ = proc.communicate(timeout=30)
    shutdown = json.loads(tail.splitlines()[-1])
    assert shutdown["event"] == "shutdown", shutdown
    assert proc.returncode == 0, proc.returncode
    print(f"SIGINT: rc=0, flushed {shutdown['checkpointed']} pending site(s)")

    # ------------------------------------------------------------------
    # 3. Restart: registration *is* the resume.
    # ------------------------------------------------------------------
    proc = spawn(state_dir)
    resumed = ask(proc, {"op": "register", "site": "SAMPLE-MIDC"})
    assert resumed["observed"] == 6, resumed
    assert resumed["resumed_from"] == last_digest, resumed
    print(
        f"restarted: {resumed['site']} resumed at observed="
        f"{resumed['observed']} from state {resumed['resumed_from']}"
    )
    proc.send_signal(signal.SIGINT)
    proc.communicate(timeout=30)
    assert proc.returncode == 0
    print("done: resume matched the flushed digest exactly")


if __name__ == "__main__":
    main()
