#!/usr/bin/env python3
"""Fleet simulation: 100 heterogeneous harvesting nodes in lock-step.

The single-node example (``energy_neutral_node.py``) closes the
prediction -> duty-cycle loop for one mote; this one scales it to a
deployment.  A 100-node fleet is spread across three sites and cycles
through three predictors, three controller policies and three storage
sizes, then the whole fleet is stepped through every slot boundary at
once by :class:`~repro.management.fleet.FleetSimulator` -- array state
instead of 100 Python loops, with elementwise-identical results.

The output answers fleet-scale questions a per-node run cannot: which
fraction of the deployment browns out, how unequal the achieved duty is
across sites, and which node is worst.

Run:  python examples/fleet_simulation.py
"""

from repro.experiments.fleet import (
    build_fleet_specs,
    fleet_result_table,
    run_fleet,
)
from repro.metrics import format_fleet_summary, summarise_fleet

N_NODES = 100
N_SLOTS = 48
DAYS = 60
SITES = ("SPMD", "HSU", "PFCI")          # steady / variable / sunny
PREDICTORS = ("wcma", "ewma", "persistence")
CONTROLLERS = ("kansal", "minvar", "oracle")
CAPACITIES = (250.0, 400.0, 4000.0)      # two supercaps and a battery


def main() -> None:
    print(
        f"Building a {N_NODES}-node fleet: sites {', '.join(SITES)}; "
        f"predictors {', '.join(PREDICTORS)}; "
        f"controllers {', '.join(CONTROLLERS)}; "
        f"{DAYS} days at N={N_SLOTS}\n"
    )
    specs = build_fleet_specs(
        n_nodes=N_NODES,
        sites=SITES,
        n_days=DAYS,
        predictors=PREDICTORS,
        controllers=CONTROLLERS,
        capacities=CAPACITIES,
        n_slots=N_SLOTS,
    )
    result, elapsed = run_fleet(specs, N_SLOTS)

    print(fleet_result_table(result, specs).render())
    print()
    print(format_fleet_summary(summarise_fleet(result)))

    node_slots = result.n_nodes * result.total_slots
    print(
        f"\nthroughput: {node_slots:,} node-slots in {elapsed:.2f}s "
        f"({node_slots / elapsed:,.0f} node-slots/sec)"
    )

    # Any column of the fleet can still be inspected as a full
    # single-node result -- here, the worst brown-out node.
    worst = int(result.downtime_fraction.argmax())
    node = result.node_result(worst)
    print(
        f"\nworst node ({result.node_names[worst]}): "
        f"duty {node.mean_duty * 100:.1f}%, "
        f"downtime {node.downtime_fraction * 100:.2f}%, "
        f"final SoC {node.final_soc * 100:.1f}%"
    )


if __name__ == "__main__":
    main()
