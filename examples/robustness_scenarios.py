#!/usr/bin/env python3
"""Scenario robustness: how much do field degradations cost a predictor?

The paper scores predictors on clean traces; a deployed panel soils, a
tree shades the morning, the sensor drops out, the weather regime
shifts, the RTC drifts.  This example runs a small robustness matrix --
(scenario x site x predictor) over degraded traces from the scenario
engine -- and prints the per-scenario MAPE degradation plus the
deployment consequence (a one-node-per-scenario fleet's downtime).

It also shows the scenario engine's composability: a custom scenario is
just an ordered chain of transforms under one seed.

Run:  python examples/robustness_scenarios.py
"""

from repro.experiments.robustness import run, run_fleet_robustness
from repro.metrics import format_robustness_summary, summarise_robustness
from repro.solar import build_dataset
from repro.solar.scenarios import (
    PartialShading,
    Scenario,
    SensorDropout,
    SoilingRamp,
    make_scenario,
)

DAYS = 60
SITES = ("PFCI", "HSU")                  # sunny / variable
SCENARIOS = ("soiling", "shading", "dropout", "regime-shift", "jitter")


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The matrix: every (scenario, site) cell scored by every
    #    predictor, with a per-cell re-tuned WCMA for comparison.
    # ------------------------------------------------------------------
    matrix = run(n_days=DAYS, sites=SITES, scenarios=SCENARIOS, seed=42)
    print(matrix.render())
    print()
    print(format_robustness_summary(summarise_robustness(matrix.rows)))
    print()

    # ------------------------------------------------------------------
    # 2. The deployment view: one lock-step fleet node per cell.
    # ------------------------------------------------------------------
    fleet = run_fleet_robustness(
        n_days=30, sites=SITES, scenarios=SCENARIOS, seed=42
    )
    print(fleet.render())
    print()

    # ------------------------------------------------------------------
    # 3. Composing a custom scenario from the transform catalogue.
    # ------------------------------------------------------------------
    rooftop = Scenario.compose(
        [
            SoilingRamp(rate_per_day=0.003, wash_interval_days=30),
            PartialShading(start_hour=15.0, end_hour=17.5, attenuation=0.7),
            SensorDropout(rate_per_day=0.2),
            make_scenario("jitter"),
        ],
        name="city-rooftop",
        seed=7,
    )
    trace = build_dataset("HSU", n_days=DAYS)
    degraded = rooftop.apply(trace)
    kept = degraded.values.sum() / trace.values.sum()
    print(f"custom scenario {rooftop.name!r}: {rooftop}")
    print(
        f"applied to {trace.name}: {kept:.1%} of clean energy remains "
        f"({degraded.name})"
    )


if __name__ == "__main__":
    main()
