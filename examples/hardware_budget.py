#!/usr/bin/env python3
"""Accuracy-cost trade-off on the MSP430 (Tables III+IV, Fig. 6).

For each sampling rate N the paper weighs the accuracy gain against
the sampling+prediction energy overhead.  This example regenerates that
trade-off for one site and adds what the paper leaves implicit: the
fixed-point (Q15) implementation's accuracy and cycle cost next to the
floating-point one.

Run:  python examples/hardware_budget.py [SITE]
"""

import sys

from repro import WCMAParams, WCMAPredictor, build_dataset, grid_search
from repro.hardware.cycles import (
    FLOAT_COSTS,
    Q15_COSTS,
    arithmetic_cycles,
    history_memory_bytes,
    prediction_cycles,
)
from repro.hardware.energy import daily_energy, overhead_fraction
from repro.hardware.fixedpoint import FixedPointWCMA
from repro.metrics import evaluate_predictor
from repro.solar.sites import get_site

SITE = sys.argv[1].upper() if len(sys.argv) > 1 else "HSU"
DAYS = 150


def main() -> None:
    trace = build_dataset(SITE, n_days=DAYS)
    native = get_site(SITE).samples_per_day

    print(f"Accuracy vs energy overhead on {SITE} ({DAYS} days)\n")
    print(f"{'N':>4} {'horizon':>8} {'MAPE':>8} {'uJ/day':>8} {'overhead':>9}")
    for n_slots in (288, 96, 72, 48, 24):
        if native % n_slots:
            continue
        sweep = grid_search(trace, n_slots)
        print(
            f"{n_slots:>4} {24 * 60 // n_slots:>6}mn "
            f"{sweep.best_error * 100:7.2f}% "
            f"{daily_energy(n_slots) * 1e6:8.0f} "
            f"{overhead_fraction(n_slots) * 100:8.2f}%"
        )

    print("\nImplementation cost per prediction (K=2):")
    print(f"  measured-anchored model : {prediction_cycles(2):5d} cycles")
    print(f"  arithmetic, float ops   : {arithmetic_cycles(2, FLOAT_COSTS):5d} cycles")
    print(f"  arithmetic, Q15 ops     : {arithmetic_cycles(2, Q15_COSTS):5d} cycles")
    print(f"  state RAM (D=10, N=48)  : {history_memory_bytes(10, 48, k_param=2):5d} bytes")

    params = WCMAParams(alpha=0.7, days=10, k=2)
    float_run = evaluate_predictor(WCMAPredictor(48, params), trace, 48)
    q15_run = evaluate_predictor(FixedPointWCMA(48, params), trace, 48)
    print("\nQuantisation cost of the Q15 port (N=48, guideline parameters):")
    print(f"  float MAPE {float_run.mape * 100:.3f}%   Q15 MAPE {q15_run.mape * 100:.3f}%")

    print(
        "\nSampling dominates the energy budget (55 uJ vs ~4 uJ per event),"
        "\nso higher N buys accuracy at a cost set by the ADC, not by the"
        "\nprediction arithmetic -- the paper's Fig. 6 conclusion."
    )


if __name__ == "__main__":
    main()
