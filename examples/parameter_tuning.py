#!/usr/bin/env python3
"""Parameter tuning walkthrough: reproduce the paper's design guidelines.

Section IV-B of the paper distils the exhaustive sweeps into three
rules of thumb:

* D ~= 10 captures almost all the accuracy while bounding memory;
* K = 2 is within a whisker of the optimal K;
* alpha ~= 0.7 for 30-60 minute horizons (lower for longer horizons,
  approaching 1 for very short ones).

This example runs the actual sweeps on one site and prints the
evidence behind each rule, including the predictor's RAM footprint on
the MSP430 for each D.

Run:  python examples/parameter_tuning.py [SITE]
"""

import sys

from repro import build_dataset, grid_search
from repro.hardware.cycles import history_memory_bytes

SITE = sys.argv[1].upper() if len(sys.argv) > 1 else "HSU"
N_SLOTS = 48
DAYS = 180


def main() -> None:
    trace = build_dataset(SITE, n_days=DAYS)
    print(f"Sweeping (alpha, D, K) on {SITE} at N={N_SLOTS} "
          f"({DAYS}-day trace)...\n")
    sweep = grid_search(trace, N_SLOTS)
    best = sweep.best
    print(
        f"Optimum: alpha={best.alpha}, D={best.days}, K={best.k} "
        f"-> MAPE {sweep.best_error * 100:.2f}%\n"
    )

    # Guideline 1: D ~= 10 is enough (Fig. 7).
    print("MAPE vs D (at the optimal alpha, K) and MSP430 RAM use:")
    a_idx = sweep.alphas.index(best.alpha)
    k_idx = sweep.ks.index(best.k)
    for i, d_value in enumerate(sweep.days):
        if d_value % 2 and d_value != sweep.days[-1]:
            continue
        mape = sweep.errors[i, k_idx, a_idx]
        ram = history_memory_bytes(d_value, N_SLOTS, k_param=best.k)
        marker = " <= guideline D~=10" if d_value == 10 else ""
        print(f"  D={d_value:2d}  MAPE {mape * 100:6.2f}%   RAM {ram:5d} B{marker}")

    # Guideline 2: K=2 is nearly optimal.
    print("\nBest achievable MAPE per K (alpha, D free):")
    for k_value in sweep.ks:
        params, err = sweep.best_for_k(k_value)
        marker = " <= guideline K=2" if k_value == 2 else ""
        print(
            f"  K={k_value}  MAPE {err * 100:6.2f}%  "
            f"(alpha={params.alpha}, D={params.days}){marker}"
        )

    # Guideline 3: alpha sensitivity at the optimal (D, K).
    print("\nMAPE vs alpha (at the optimal D, K):")
    d_idx = sweep.days.index(best.days)
    for a, alpha in enumerate(sweep.alphas):
        mape = sweep.errors[d_idx, k_idx, a]
        bar = "#" * int(round(mape * 400))
        print(f"  alpha={alpha:3.1f}  {mape * 100:6.2f}%  {bar}")


if __name__ == "__main__":
    main()
