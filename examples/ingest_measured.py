"""Walkthrough: a raw measured irradiance file through the full stack.

Ingests the bundled MIDC-shaped sample (a real-download stand-in with
missing telemetry, spikes, stuck runs and dropouts), inspects the
quality report, verifies the replay round trip, registers the file as
a measured site, and runs it through the predictor comparison and the
robustness matrix next to a synthetic site.

Run with::

    PYTHONPATH=src python examples/ingest_measured.py
"""

import numpy as np

from repro.core.registry import make_predictor
from repro.experiments.robustness import run as run_robustness
from repro.metrics import (
    evaluate_predictor,
    format_quality_summary,
    summarise_quality,
)
from repro.solar.ingest import format_ingest_report, ingest_sample, sample_csv_path
from repro.solar.ingest.sites import (
    register_measured_site,
    unregister_measured_site,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Ingest: raw CSV -> raw trace + clean trace + quality report.
    # ------------------------------------------------------------------
    result = ingest_sample()
    print(format_ingest_report(result))
    print()
    print(format_quality_summary(summarise_quality(result.report)))

    # ------------------------------------------------------------------
    # 2. The defects are a Scenario: replaying them on the clean trace
    #    reconstructs the raw trace exactly.
    # ------------------------------------------------------------------
    replayed = result.scenario.apply(result.clean)
    assert replayed.values.tobytes() == result.raw.values.tobytes()
    print("\nround trip: scenario.apply(clean) == raw (byte-identical)")

    # ------------------------------------------------------------------
    # 3. Score a predictor on the clean and the raw trace: the gap is
    #    what the measured defects cost.
    # ------------------------------------------------------------------
    n_slots = 48
    for label, trace in (("clean", result.clean), ("raw", result.raw)):
        run = evaluate_predictor(make_predictor("wcma", n_slots), trace, n_slots)
        print(f"wcma on the {label:<5} trace: MAPE {run.mape:.2%}")

    # ------------------------------------------------------------------
    # 4. Register as a measured site: every experiment accepts the name.
    # ------------------------------------------------------------------
    site = register_measured_site(sample_csv_path(), name="SAMPLE", overwrite=True)
    try:
        matrix = run_robustness(
            n_days=site.n_days,
            sites=("PFCI", site.name),
            scenarios=("dropout",),
            predictors=("wcma",),
            tune_wcma=False,
        )
        print()
        print(matrix.render())
        degradations = [
            row["dMAPE vs clean (pp)"]
            for row in matrix.rows
            if row["site"] == site.name and row["scenario"] != "clean"
        ]
        print(
            "\nmeasured-site dropout degradation: "
            f"{float(np.mean(degradations)):+.2f}pp"
        )
    finally:
        unregister_measured_site(site.name)


if __name__ == "__main__":
    main()
