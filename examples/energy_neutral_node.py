#!/usr/bin/env python3
"""Close the loop: prediction accuracy -> duty-cycle behaviour (Fig. 1).

The paper's introduction motivates prediction through harvested-energy
management: a node that anticipates incoming energy can spend it
instead of hoarding it, without browning out.  This example simulates a
supercapacitor-buffered node on a variable site under three predictors
(WCMA / EWMA / persistence) and two controllers (Kansal energy-neutral,
Noh-style minimum-variance), plus an oracle bound.

Run:  python examples/energy_neutral_node.py
"""

from repro import WCMAParams, WCMAPredictor, build_dataset
from repro.core.baselines import PersistencePredictor
from repro.core.ewma import EWMAPredictor
from repro.management import (
    DutyCycledLoad,
    KansalController,
    MinimumVarianceController,
    OracleController,
    PVHarvester,
    SensorNodeSimulation,
    Supercapacitor,
)

SITE = "SPMD"
N_SLOTS = 48
DAYS = 120

# A deliberately tight energy system: small panel, supercap buffer that
# holds only a few hours of full-duty operation, so prediction quality
# actually matters.
HARVESTER = PVHarvester(area_m2=25e-4, panel_efficiency=0.15)
LOAD = DutyCycledLoad(active_power_watts=40e-3, sleep_power_watts=40e-6)
CAPACITY_J = 250.0


def simulate(name, predictor, controller, storage=None):
    if storage is None:
        storage = Supercapacitor(capacity_joules=CAPACITY_J, initial_soc=0.5)
    sim = SensorNodeSimulation(
        trace=build_dataset(SITE, n_days=DAYS),
        n_slots=N_SLOTS,
        predictor=predictor,
        controller=controller,
        harvester=HARVESTER,
        storage=storage,
        load=LOAD,
    )
    result = sim.run()
    print(
        f"{name:<34} duty {result.mean_duty * 100:5.1f}%  "
        f"std {result.duty_std:.3f}  "
        f"downtime {result.downtime_fraction * 100:5.2f}%  "
        f"waste {result.waste_fraction * 100:5.1f}%"
    )
    return result


def main() -> None:
    print(f"Node simulation: {SITE}, {DAYS} days, N={N_SLOTS}, "
          f"{CAPACITY_J:.0f} J supercap\n")

    def wcma():
        return WCMAPredictor(N_SLOTS, WCMAParams(alpha=0.7, days=10, k=2))

    def kansal():
        return KansalController(LOAD, CAPACITY_J, target_soc=0.6)

    print("-- Kansal energy-neutral controller --")
    simulate("WCMA predictor", wcma(), kansal())
    simulate("EWMA predictor", EWMAPredictor(N_SLOTS), kansal())
    simulate("Persistence predictor", PersistencePredictor(N_SLOTS), kansal())
    simulate(
        "Oracle (true slot mean)",
        PersistencePredictor(N_SLOTS),
        OracleController(LOAD, CAPACITY_J, target_soc=0.6),
    )

    # Smoothing the duty across day and night requires a buffer that can
    # carry the night -- give the minimum-variance controller a small
    # battery instead of the 250 J supercap.
    from repro.management import Battery

    battery_j = 4000.0
    print("\n-- Minimum-variance controller (Noh-style), 4 kJ battery --")
    simulate(
        "WCMA predictor",
        wcma(),
        MinimumVarianceController(LOAD, battery_j, target_soc=0.6),
        storage=Battery(capacity_joules=battery_j, initial_soc=0.6),
    )
    simulate(
        "Persistence predictor",
        PersistencePredictor(N_SLOTS),
        MinimumVarianceController(LOAD, battery_j, target_soc=0.6),
        storage=Battery(capacity_joules=battery_j, initial_soc=0.6),
    )

    print(
        "\nBetter prediction lets the energy-neutral controller run a"
        "\nhigher, steadier duty cycle with less spilled harvest -- the"
        "\nsystem-level payoff behind the paper's MAPE comparisons."
    )


if __name__ == "__main__":
    main()
