#!/usr/bin/env python3
"""Dynamic parameter selection: from the paper's bound to a real policy.

Section IV-C shows with a *clairvoyant* selector that per-prediction
(alpha, K) adaptation could more than halve the average error, and
leaves realizable selectors as future work.  This example builds that
ladder on one site:

  static optimum  >=  adaptive selectors (causal)  >=  clairvoyant bound

using the follow-the-leader, epsilon-greedy and Hedge selectors from
``repro.core.adaptive``.

Run:  python examples/dynamic_prediction.py [SITE]
"""

import sys

from repro import build_dataset, clairvoyant_dynamic, grid_search
from repro.core.adaptive import (
    EpsilonGreedySelector,
    FollowTheLeaderSelector,
    HedgeSelector,
)
from repro.metrics import evaluate_predictor

SITE = sys.argv[1].upper() if len(sys.argv) > 1 else "ORNL"
N_SLOTS = 48
DAYS = 150


def main() -> None:
    trace = build_dataset(SITE, n_days=DAYS)
    print(f"Dynamic parameter selection on {SITE}, N={N_SLOTS}, "
          f"{DAYS} days\n")

    static = grid_search(trace, N_SLOTS)
    print(
        f"static optimum        MAPE {static.best_error * 100:6.2f}%   "
        f"(alpha={static.best.alpha}, D={static.best.days}, K={static.best.k};"
        " tuned on this very trace)"
    )
    days = static.best.days

    from repro import WCMAParams, WCMAPredictor

    guideline = WCMAPredictor(N_SLOTS, WCMAParams(alpha=0.7, days=10, k=2))
    guideline_run = evaluate_predictor(guideline, trace, N_SLOTS)
    print(
        f"static guideline      MAPE {guideline_run.mape * 100:6.2f}%   "
        "(alpha=0.7, D=10, K=2; no site tuning)"
    )
    selectors = {
        "follow-the-leader": FollowTheLeaderSelector(N_SLOTS, days=days),
        "epsilon-greedy 5%": EpsilonGreedySelector(
            N_SLOTS, days=days, epsilon=0.05, seed=7
        ),
        "hedge (exp weights)": HedgeSelector(N_SLOTS, days=days),
    }
    for name, selector in selectors.items():
        run = evaluate_predictor(selector, trace, N_SLOTS)
        print(f"{name:<21} MAPE {run.mape * 100:6.2f}%   (causal, realizable)")

    for mode, label in (
        ("k_only", "clairvoyant K only"),
        ("alpha_only", "clairvoyant a only"),
        ("both", "clairvoyant a + K"),
    ):
        bound = clairvoyant_dynamic(trace, N_SLOTS, days, mode=mode)
        extra = ""
        if bound.fixed_alpha is not None:
            extra = f"(best fixed alpha={bound.fixed_alpha})"
        if bound.fixed_k is not None:
            extra = f"(best fixed K={bound.fixed_k})"
        print(f"{label:<21} MAPE {bound.mape * 100:6.2f}%   {extra}")

    print(
        "\nThe adaptive selectors close part of the gap between the static"
        "\noptimum and the clairvoyant bound without any oracle knowledge --"
        "\nthe 'dynamic prediction algorithm' the paper calls for."
    )


if __name__ == "__main__":
    main()
