#!/usr/bin/env python3
"""Quickstart: predict solar power with WCMA and score it the paper's way.

Builds a synthetic year for the sunniest site (PFCI), runs the WCMA
predictor with the paper's guideline parameters (alpha=0.7, D=10, K=2)
at N=48 slots/day, and reports MAPE alongside the EWMA and persistence
baselines.

Run:  python examples/quickstart.py
"""

from repro import WCMAParams, WCMAPredictor, build_dataset
from repro.core.baselines import PersistencePredictor
from repro.core.ewma import EWMAPredictor
from repro.metrics import evaluate_predictor

N_SLOTS = 48  # 30-minute prediction horizon
SITE = "PFCI"
DAYS = 180  # half a year keeps the demo quick; use 365 for the paper setup


def main() -> None:
    trace = build_dataset(SITE, n_days=DAYS)
    print(f"Trace: {trace}")
    print(f"Horizon: {24 * 60 // N_SLOTS} minutes (N={N_SLOTS} slots/day)\n")

    predictors = {
        "WCMA (a=0.7, D=10, K=2)": WCMAPredictor(
            N_SLOTS, WCMAParams(alpha=0.7, days=10, k=2)
        ),
        "EWMA (Kansal, gamma=0.5)": EWMAPredictor(N_SLOTS, gamma=0.5),
        "Persistence": PersistencePredictor(N_SLOTS),
    }

    print(f"{'predictor':<28} {'MAPE':>8} {'RMSE W/m2':>10} {'scored':>7}")
    for name, predictor in predictors.items():
        run = evaluate_predictor(predictor, trace, N_SLOTS)
        print(
            f"{name:<28} {run.mape * 100:7.2f}% {run.rmse_value:10.1f} "
            f"{run.n_scored:7d}"
        )

    print(
        "\nMAPE follows Section III of the paper: prediction vs the slot's"
        "\nmean power, scored only where power is >= 10% of the trace peak"
        "\nand after a 20-day warm-up."
    )


if __name__ == "__main__":
    main()
