"""Bench (extension): the learned-tier fast path.

Two measurements, recorded into ``BENCH_learn.json`` at the repo root
(uploaded as a CI artifact beside ``BENCH_parallel.json``):

* **Batched refit kernels** -- ``fit_model_batch`` (the stacked ridge
  solve and cross-node GBM stump search) vs the frozen per-node scalar
  loop from :mod:`repro.learn.reference`, over a grid of fleet shapes.
  The gate applies at the early-window fleet refit shape (``B=64``
  nodes, ``n=96`` rows -- two 48-slot days): the GBM kernel and the
  combined ridge+GBM refit must both clear
  :data:`MIN_REFIT_SPEEDUP`; the steady-state 60-day window (``n=2880``)
  is recorded honestly (its speedup is smaller -- the per-node loop is
  already matmul-bound there) but not gated.
* **Matrix throughput** -- the learned robustness slice, column-stacked
  (one B-cell :class:`~repro.learn.predictor.LearnedKernel` slab per
  predictor) vs the per-cell scalar path it replaced, with learned
  cells/sec and the kernel's features/refit/predict stage split.

Both paths are bitwise-identical by construction (pinned in
``tests/learn/test_fast_path.py`` and the goldens), so everything here
is pure wall-clock.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.experiments import robustness
from repro.learn.features import N_FEATURES
from repro.learn.models import TrainingConfig, fit_model_batch, unstack_params
from repro.learn.reference import fit_model_reference

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_learn.json"

IS_CI = bool(os.environ.get("CI"))
#: The ISSUE gate: >= 5x batched-vs-loop refit at the fleet shape.
#: Softened on shared CI runners the same way the parallel bench is.
MIN_REFIT_SPEEDUP = 3.0 if IS_CI else 5.0

#: (B nodes, n window rows) refit shapes.  (64, 96) is the gated fleet
#: shape: a 64-node fleet's first online refit after ``min_train_days``
#: worth of 48-slot days.  (64, 2880) is the steady-state 60-day window.
REFIT_SHAPES = ((64, 96), (256, 96), (64, 2880))
GATE_SHAPE = (64, 96)

MATRIX_KWARGS = dict(
    n_days=45,
    sites=("PFCI", "HSU"),
    scenarios=("dropout", "regime-shift", "jitter"),
    predictors=("ridge", "gbm"),
    seed=7,
    tune_wcma=False,
)


def _record(key, payload):
    """Merge one benchmark's numbers into BENCH_learn.json.

    Machine context is per entry (same policy as BENCH_parallel.json):
    partial runs must not re-attribute numbers measured elsewhere.
    """
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    payload = dict(payload)
    payload["machine"] = {"cpu_count": os.cpu_count(), "ci": IS_CI}
    data[key] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _refit_window(B, n, seed=12345):
    """A stacked training window shaped like the online kernel's."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(n, B, N_FEATURES))
    X *= rng.uniform(0.5, 60.0, size=(1, 1, N_FEATURES))
    y = rng.uniform(0.0, 900.0, size=(n, B))
    return X, y


def _time_refit(kind, X, y, config, repeats=3):
    """Best-of-``repeats`` seconds for batched and per-node-loop refits.

    The loop reseeds per node from ``(seed, fit_count)`` exactly like
    the kernel's ``engine="loop"`` path, which is what makes the two
    bitwise-comparable in the first place.
    """
    B = X.shape[1]
    batched_s = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        batched = fit_model_batch(
            kind, X, y, config, np.random.default_rng([config.seed, 0])
        )
        batched_s = min(batched_s, time.perf_counter() - start)
    loop_s = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        loop = [
            fit_model_reference(
                kind, X[:, b, :], y[:, b], config,
                np.random.default_rng([config.seed, 0]),
            )
            for b in range(B)
        ]
        loop_s = min(loop_s, time.perf_counter() - start)
    return batched, loop, batched_s, loop_s


def test_bench_learn_refit_speedup():
    """Batched refit kernels vs the scalar loop, gated at B=64, n=96."""
    config = TrainingConfig()
    entry = {"shapes": {}, "gate_shape": list(GATE_SHAPE)}
    gate = {}
    for B, n in REFIT_SHAPES:
        X, y = _refit_window(B, n)
        shape_entry = {}
        # Best-of-3 where the gate needs a stable number; the
        # recorded-only shapes get one (slow, honest) measurement.
        repeats = 3 if (B, n) == GATE_SHAPE else 1
        for kind in ("ridge", "gbm"):
            batched, loop, batched_s, loop_s = _time_refit(
                kind, X, y, config, repeats=repeats
            )
            if (B, n) == GATE_SHAPE:
                # The speedup claim only means anything if the two
                # paths compute the same fit -- spot-check it here too.
                for b in range(0, B, 16):
                    got = unstack_params(batched, b)
                    for key, value in loop[b].items():
                        assert np.array_equal(got[key], value), (kind, b, key)
                gate[kind] = (batched_s, loop_s)
            shape_entry[kind] = {
                "batched_s": round(batched_s, 5),
                "loop_s": round(loop_s, 5),
                "batched_per_node_ms": round(1e3 * batched_s / B, 4),
                "speedup": round(loop_s / batched_s, 2),
            }
            print(
                f"\nrefit {kind} B={B} n={n}: batched {batched_s * 1e3:.1f}ms "
                f"vs loop {loop_s * 1e3:.1f}ms = {loop_s / batched_s:.2f}x"
            )
        entry["shapes"][f"B{B}_n{n}"] = shape_entry

    gbm_speedup = gate["gbm"][1] / gate["gbm"][0]
    combined_speedup = (gate["ridge"][1] + gate["gbm"][1]) / (
        gate["ridge"][0] + gate["gbm"][0]
    )
    entry["gate"] = {
        "min_speedup": MIN_REFIT_SPEEDUP,
        "gbm_speedup": round(gbm_speedup, 2),
        "combined_speedup": round(combined_speedup, 2),
    }
    _record("refit_speedup", entry)
    B, n = GATE_SHAPE
    assert gbm_speedup >= MIN_REFIT_SPEEDUP, (
        f"batched GBM refit at B={B}, n={n} is {gbm_speedup:.2f}x the "
        f"scalar loop; the gate is >= {MIN_REFIT_SPEEDUP}x"
    )
    assert combined_speedup >= MIN_REFIT_SPEEDUP, (
        f"combined ridge+GBM refit at B={B}, n={n} is "
        f"{combined_speedup:.2f}x the scalar loop; the gate is "
        f">= {MIN_REFIT_SPEEDUP}x"
    )


def test_bench_learn_matrix_throughput():
    """Column-stacked learned slabs vs the per-cell path they replace."""
    stats = []
    start = time.perf_counter()
    stacked = robustness.run(stats=stats, **MATRIX_KWARGS)
    stacked_s = time.perf_counter() - start

    # The pre-stacking baseline: force every learned predictor through
    # the per-cell scalar path by emptying the stacked set.
    original = robustness.STACKED_MATRIX_PREDICTORS
    robustness.STACKED_MATRIX_PREDICTORS = ()
    try:
        start = time.perf_counter()
        per_cell = robustness.run(**MATRIX_KWARGS)
        per_cell_s = time.perf_counter() - start
    finally:
        robustness.STACKED_MATRIX_PREDICTORS = original

    assert stacked.rows == per_cell.rows, (
        "stacked and per-cell learned matrices must be byte-identical"
    )
    n_cells = sum(
        1
        for row in stacked.rows
        if row["predictor"] in robustness.STACKED_MATRIX_PREDICTORS
    )
    stages = stats[0].stage_seconds or {}
    print(
        f"\nlearned matrix ({n_cells} cells): stacked {stacked_s:.2f}s "
        f"({n_cells / stacked_s:.2f} cells/s) vs per-cell {per_cell_s:.2f}s "
        f"= {per_cell_s / stacked_s:.2f}x; stages "
        + ", ".join(f"{k}={v:.2f}s" for k, v in sorted(stages.items()))
    )
    _record(
        "matrix_throughput",
        {
            "n_days": MATRIX_KWARGS["n_days"],
            "sites": list(MATRIX_KWARGS["sites"]),
            "n_learned_cells": n_cells,
            "stacked_s": round(stacked_s, 4),
            "per_cell_s": round(per_cell_s, 4),
            "speedup": round(per_cell_s / stacked_s, 2),
            "cells_per_sec": round(n_cells / stacked_s, 3),
            "stage_seconds": {k: round(v, 4) for k, v in stages.items()},
        },
    )
    assert n_cells == 16  # 2 sites x 4 scenarios (clean included) x 2 models
