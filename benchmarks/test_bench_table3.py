"""Bench: regenerate Table III (optimised parameters across N).

Shape claims asserted (vs the paper's Table III):

* MAPE decreases monotonically with N on every site;
* alpha* is non-decreasing in N, reaching >= 0.9 at N=288;
* the 0-dagger entries: the 5-minute sites at N=288 give exactly 0
  with alpha=1;
* K=2 is near-optimal: the mape_k2 column is within 1.5 percentage
  points of the optimum everywhere;
* every regenerated MAPE is within a factor ~1.7 of the paper's value.
"""

from conftest import run_once

from repro.experiments import table3
from repro.experiments.paper_values import TABLE3


def test_bench_table3(benchmark, full_days):
    result = run_once(benchmark, table3.run, n_days=full_days)
    print("\n" + result.render())

    rows = {(row["data_set"], row["n"]): row for row in result.rows}
    sites = sorted({site for site, _ in rows})

    for site in sites:
        n_values = sorted({n for s, n in rows if s == site}, reverse=True)
        mapes = [rows[(site, n)]["mape"] for n in n_values]
        alphas = [rows[(site, n)]["alpha"] for n in n_values]
        # Monotone: error rises as N falls (horizon grows).
        assert all(a <= b + 1e-9 for a, b in zip(mapes, mapes[1:])), site
        # alpha falls as N falls.
        assert all(a >= b - 0.101 for a, b in zip(alphas, alphas[1:])), site
        # The shortest horizon relies most on persistence.
        assert alphas[0] >= 0.7, site
        assert alphas[0] >= alphas[-1], site

    # 0-dagger entries: 5-minute sites at N=288.
    for site in ("SPMD", "ECSU"):
        row = rows[(site, 288)]
        assert row["alpha"] == 1.0
        assert row["mape"] == 0.0

    # K=2 guideline: within 1 point of optimal at the horizons the
    # guideline targets (N >= 48); within 2 points at N=24, where our
    # synthetic clouds reward slightly longer windows than the paper's
    # traces did.
    for key, row in rows.items():
        if row["mape_k2"] is not None:
            budget = 0.01 if key[1] >= 48 else 0.02
            assert row["mape_k2"] - row["mape"] < budget, key

    # Absolute levels within ~1.7x of the paper (skip the exact-zero rows).
    for key, row in rows.items():
        paper_mape = TABLE3[key][3]
        if paper_mape and paper_mape > 0.0:
            assert 0.5 * paper_mape < row["mape"] < 1.7 * paper_mape, key
