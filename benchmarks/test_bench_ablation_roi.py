"""Bench (ablation): sensitivity to the region-of-interest threshold.

Section III argues low-power samples must be excluded from the average
error; Section IV-A fixes the threshold at 10 % of peak.  This bench
sweeps the threshold to show (a) reported MAPE falls as the threshold
rises (dawn/dusk slots are the hardest), and (b) the *ranking* of
parameter settings -- what the optimisation actually consumes -- is
stable across reasonable thresholds, i.e. the 10 % choice is not
load-bearing for the paper's conclusions.
"""

from conftest import run_once

from repro.core.optimizer import grid_search
from repro.solar.datasets import build_dataset

SITE = "HSU"
N_SLOTS = 48
THRESHOLDS = (0.05, 0.10, 0.20)


def _sweep(full_days):
    trace = build_dataset(SITE, n_days=full_days)
    out = {}
    for threshold in THRESHOLDS:
        sweep = grid_search(trace, N_SLOTS, roi_fraction=threshold)
        out[threshold] = (sweep.best, sweep.best_error)
    return out


def test_bench_ablation_roi(benchmark, full_days):
    results = run_once(benchmark, _sweep, full_days)

    print(f"\nROI-threshold ablation ({SITE}, N={N_SLOTS}):")
    for threshold, (best, error) in results.items():
        print(
            f"  threshold {threshold * 100:4.0f}%  MAPE {error * 100:6.2f}%  "
            f"(alpha={best.alpha}, D={best.days}, K={best.k})"
        )

    errors = [results[t][1] for t in THRESHOLDS]
    # Higher threshold -> only bright slots scored -> lower reported MAPE.
    assert errors[0] > errors[1] > errors[2]

    # Parameter selection is stable: alpha within one grid step, K within
    # one, across the threshold sweep.
    alphas = [results[t][0].alpha for t in THRESHOLDS]
    ks = [results[t][0].k for t in THRESHOLDS]
    assert max(alphas) - min(alphas) <= 0.2 + 1e-9
    assert max(ks) - min(ks) <= 2
