"""Bench (extension): duty-cycle controller comparison at full scale.

Runs the year-long node simulation under four controllers with the
same WCMA predictor and storage, comparing the objectives the
energy-management papers optimise:

* Kansal energy-neutral -- tracks the prediction slot by slot;
* EWMA minimum-variance -- smooth but slow to adapt;
* profile planner -- budgets the learned daily profile (this repo's
  realisation of the Noh idea);
* oracle Kansal -- perfect prediction bound.

Shape claims: the profile planner achieves the lowest duty variance of
the realizable controllers while keeping downtime near the Kansal
level and wasting no more harvest.
"""

from conftest import run_once

from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    KansalController,
    MinimumVarianceController,
    OracleController,
)
from repro.management.harvester import PVHarvester
from repro.management.node import SensorNodeSimulation
from repro.management.planning import ProfilePlanningController
from repro.management.storage import Battery
from repro.solar.datasets import build_dataset

SITE = "HSU"
N_SLOTS = 48
CAPACITY_J = 4000.0
LOAD = DutyCycledLoad(active_power_watts=40e-3, sleep_power_watts=40e-6)


def _simulate(full_days):
    trace = build_dataset(SITE, n_days=full_days)

    def run(controller):
        sim = SensorNodeSimulation(
            trace=trace,
            n_slots=N_SLOTS,
            predictor=WCMAPredictor(N_SLOTS, WCMAParams(0.7, 10, 2)),
            controller=controller,
            harvester=PVHarvester(area_m2=25e-4),
            storage=Battery(capacity_joules=CAPACITY_J, initial_soc=0.6),
            load=LOAD,
        )
        return sim.run().summary()

    return {
        "kansal": run(KansalController(LOAD, CAPACITY_J, target_soc=0.6)),
        "minvar-ewma": run(
            MinimumVarianceController(LOAD, CAPACITY_J, target_soc=0.6)
        ),
        "profile-planner": run(
            ProfilePlanningController(LOAD, CAPACITY_J, N_SLOTS, target_soc=0.6)
        ),
        "oracle-kansal": run(OracleController(LOAD, CAPACITY_J, target_soc=0.6)),
    }


def test_bench_planning(benchmark, full_days):
    results = run_once(benchmark, _simulate, full_days)

    print(f"\nController comparison ({SITE}, {CAPACITY_J:.0f} J battery, WCMA):")
    for name, summary in results.items():
        print(
            f"  {name:<16} duty {summary['mean_duty'] * 100:5.1f}%  "
            f"std {summary['duty_std']:.3f}  "
            f"downtime {summary['downtime_fraction'] * 100:5.2f}%  "
            f"waste {summary['waste_fraction'] * 100:5.1f}%"
        )

    planner = results["profile-planner"]
    kansal = results["kansal"]
    minvar = results["minvar-ewma"]

    # Smoothest realizable duty.
    assert planner["duty_std"] < kansal["duty_std"]
    assert planner["duty_std"] <= minvar["duty_std"] * 1.1
    # Still a functioning node.
    assert planner["downtime_fraction"] < 0.10
    # Not hoarding: waste within 1.5x of the slot-chasing controller's.
    assert planner["waste_fraction"] < max(kansal["waste_fraction"] * 1.5, 0.25)
