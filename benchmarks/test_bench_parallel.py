"""Bench (extension): the shared parallel execution layer.

Three measurements, recorded into ``BENCH_parallel.json`` at the repo
root (uploaded as a CI artifact):

* **run_all backends** -- the full experiment selection at a CI-sized
  trace length, sequential vs process pool vs thread pool, through the
  shared executor.  The >= 2x wall-clock bar applies on machines with
  >= 4 cores; backend, chunking and per-unit dispatch overhead are
  recorded either way.
* **Robustness resume** -- an "interrupted" matrix: 9 of the 10
  default scenarios pre-populate a result cache, then the full matrix
  re-runs against it.  Asserts >= 90% of cells hit and the resumed
  output is byte-identical to a fresh full run.
* **Sharded fleet** -- a 4096-node heterogeneous fleet month streamed
  through fixed-size node blocks.  Asserts the block partitioning is
  bitwise-invariant and its overhead vs one monolithic run is small;
  records node-slots/sec and the projected wall-clock of the 1M-node
  *year* the shards are sized for.  ``REPRO_BENCH_FLEET_1M=1`` runs
  that full configuration for real (hours -- checkpoint/resume via the
  cache is the point), block by block.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.experiments.common import clear_batch_cache
from repro.experiments.robustness import DEFAULT_SCENARIOS
from repro.experiments.robustness import run as run_robustness
from repro.experiments.runner import render_report, run_all
from repro.management.fleet import FleetAggregate
from repro.parallel import FleetPlan, ResultCache, run_fleet_blocks
from repro.solar.datasets import clear_cache as clear_trace_cache

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

IS_CI = bool(os.environ.get("CI"))
MIN_PARALLEL_SPEEDUP = 1.3 if IS_CI else 2.0

#: CI-sized run_all: long enough that unit work dominates dispatch,
#: short enough that three full runs stay cheap on one core.
RUN_ALL_DAYS = 120

ROBUSTNESS_KWARGS = dict(
    n_days=45, sites=("PFCI", "HSU"), seed=7, tune_wcma=False
)

#: The sharded fleet month: heterogeneous axes, 4 default-size blocks.
#: Blocks much smaller than the default pay the slot loop's fixed
#: Python cost once per block; at 4096 nodes a block's per-slot arrays
#: also still fit cache, so sharding tends to *beat* one monolithic
#: pass even before any parallelism.
FLEET_PLAN = FleetPlan(
    n_nodes=16384,
    sites=("SPMD",),
    n_days=30,
    predictors=("wcma", "ewma", "persistence"),
    controllers=("kansal", "fixed"),
    capacities=(250.0, 9000.0),
)
FLEET_BLOCK = 4096

#: The full-scale target the shards are sized for.
MILLION_PLAN = FleetPlan(
    n_nodes=1_000_000,
    sites=("SPMD",),
    n_days=365,
    predictors=("wcma", "ewma", "persistence"),
    controllers=("kansal", "fixed"),
    capacities=(250.0, 9000.0),
)


def _record(key, payload):
    """Merge one benchmark's numbers into BENCH_parallel.json.

    Machine context is per entry (same policy as BENCH_sweep.json):
    partial runs must not re-attribute numbers measured elsewhere.
    """
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    payload = dict(payload)
    payload["machine"] = {"cpu_count": os.cpu_count(), "ci": IS_CI}
    data[key] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _timed_run_all(**kwargs):
    clear_batch_cache()
    clear_trace_cache()
    stats = []
    start = time.perf_counter()
    results = run_all(n_days=RUN_ALL_DAYS, stats=stats, **kwargs)
    return results, time.perf_counter() - start, stats[0]


def test_bench_parallel_run_all_backends():
    """Sequential vs process vs thread on the same unit split."""
    jobs = 4
    cores = os.cpu_count() or 1

    sequential, seq_s, seq_stats = _timed_run_all()
    process, proc_s, proc_stats = _timed_run_all(jobs=jobs)
    threaded, thread_s, thread_stats = _timed_run_all(jobs=jobs, backend="thread")

    assert render_report(sequential) == render_report(process)
    assert render_report(sequential) == render_report(threaded)

    entry = {"n_days": RUN_ALL_DAYS, "jobs": jobs, "sequential_s": round(seq_s, 4)}
    for label, seconds, stats in (
        ("process", proc_s, proc_stats),
        ("thread", thread_s, thread_stats),
    ):
        entry[label] = {
            "seconds": round(seconds, 4),
            "speedup": round(seq_s / seconds, 2),
            "backend": stats.backend,
            "n_units": stats.n_units,
            "chunk_size": stats.chunk_size,
            "n_chunks": stats.n_chunks,
            "dispatch_s": round(stats.dispatch_s, 4),
            "dispatch_per_unit_s": round(stats.dispatch_per_unit_s, 6),
        }
    _record("run_all_backends", entry)
    print(
        f"\nrun_all({RUN_ALL_DAYS}d) backends: sequential {seq_s:.2f}s, "
        f"process {proc_s:.2f}s ({seq_s / proc_s:.2f}x), "
        f"thread {thread_s:.2f}s ({seq_s / thread_s:.2f}x) on {cores} core(s)"
    )
    assert seq_stats.backend == "inline"
    if cores >= jobs:
        speedup = seq_s / proc_s
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"expected >= {MIN_PARALLEL_SPEEDUP}x with {jobs} process "
            f"workers on {cores} cores, measured sequential {seq_s:.2f}s vs "
            f"parallel {proc_s:.2f}s = {speedup:.2f}x (dispatch "
            f"{proc_stats.dispatch_s:.3f}s over {proc_stats.n_chunks} chunks)"
        )


def test_bench_robustness_resume(tmp_path):
    """An interrupted matrix resumes: >= 90% cell hits, identical rows."""
    cache = ResultCache(tmp_path / "cache", salt="bench")
    partial_scenarios = DEFAULT_SCENARIOS[:-1]  # "interrupted" before the last
    run_robustness(
        scenarios=partial_scenarios, cache=cache, **ROBUSTNESS_KWARGS
    )

    stats = []
    start = time.perf_counter()
    resumed = run_robustness(cache=cache, stats=stats, **ROBUSTNESS_KWARGS)
    resumed_s = time.perf_counter() - start

    start = time.perf_counter()
    fresh = run_robustness(**ROBUSTNESS_KWARGS)
    fresh_s = time.perf_counter() - start

    hit_fraction = stats[0].cache_hits / stats[0].n_units
    print(
        f"\nRobustness resume: {stats[0].cache_hits}/{stats[0].n_units} "
        f"cells from cache ({100 * hit_fraction:.0f}%), resumed "
        f"{resumed_s:.2f}s vs fresh {fresh_s:.2f}s"
    )
    _record(
        "robustness_resume",
        {
            "n_days": ROBUSTNESS_KWARGS["n_days"],
            "sites": list(ROBUSTNESS_KWARGS["sites"]),
            "n_cells": stats[0].n_units,
            "cache_hits": stats[0].cache_hits,
            "hit_fraction": round(hit_fraction, 3),
            "resumed_s": round(resumed_s, 4),
            "fresh_s": round(fresh_s, 4),
        },
    )
    assert hit_fraction >= 0.9, (
        "resume should serve >= 90% of cells from cache, got "
        f"{stats[0].cache_hits}/{stats[0].n_units}"
    )
    assert resumed.rows == fresh.rows
    assert resumed.render() == fresh.render()


def test_bench_fleet_sharded():
    """Blocked fleet month: bitwise partition invariance, flat overhead."""
    start = time.perf_counter()
    monolithic, _ = run_fleet_blocks(FLEET_PLAN, block_size=FLEET_PLAN.n_nodes)
    monolithic_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded, stats = run_fleet_blocks(FLEET_PLAN, block_size=FLEET_BLOCK)
    sharded_s = time.perf_counter() - start

    assert sharded.node_names == monolithic.node_names
    for name in FleetAggregate._FLOAT_FIELDS:
        assert np.array_equal(getattr(sharded, name), getattr(monolithic, name)), name

    node_slots = sharded.n_nodes * sharded.total_slots
    rate = node_slots / sharded_s
    overhead = sharded_s / monolithic_s - 1.0
    million_slots = MILLION_PLAN.n_nodes * MILLION_PLAN.n_days * MILLION_PLAN.n_slots
    projected_hours = million_slots / rate / 3600.0
    print(
        f"\nSharded fleet: {sharded.n_nodes} nodes x {sharded.total_slots} "
        f"slots in {stats.n_units} blocks of {FLEET_BLOCK}: {sharded_s:.2f}s "
        f"({rate:,.0f} node-slots/sec, {100 * overhead:+.1f}% vs monolithic); "
        f"projected 1M-node year: {projected_hours:.1f}h on one core"
    )
    _record(
        "fleet_sharded",
        {
            "n_nodes": FLEET_PLAN.n_nodes,
            "n_days": FLEET_PLAN.n_days,
            "block_size": FLEET_BLOCK,
            "n_blocks": stats.n_units,
            "node_slots": node_slots,
            "monolithic_s": round(monolithic_s, 4),
            "sharded_s": round(sharded_s, 4),
            "sharding_overhead": round(overhead, 4),
            "node_slots_per_sec": round(rate),
            "projected_1m_node_year_hours": round(projected_hours, 2),
        },
    )
    # Fixed-size blocks are a memory/checkpoint knob, not a tax: the
    # same month in 4 blocks must cost within 25% of one monolithic run
    # (measured: it usually *wins*, the block's arrays fit cache).
    assert overhead < 0.25, (
        f"sharding cost {100 * overhead:.1f}% over monolithic "
        f"({sharded_s:.2f}s vs {monolithic_s:.2f}s)"
    )


def test_bench_fleet_million_node_year(tmp_path):
    """The full 1M-node fleet year, block by block, checkpointed.

    Hours of work -- opt in with ``REPRO_BENCH_FLEET_1M=1``.  The cache
    makes it resumable: re-running after an interruption (or flipping
    ``REPRO_SOLAR_CACHE_DIR`` to a persistent path) only computes the
    missing blocks.
    """
    import pytest

    if not os.environ.get("REPRO_BENCH_FLEET_1M"):
        pytest.skip("set REPRO_BENCH_FLEET_1M=1 to run the 1M-node year")

    cache_dir = os.environ.get("REPRO_SOLAR_CACHE_DIR") or str(tmp_path / "cache")
    cache = ResultCache(cache_dir)
    jobs = max(1, (os.cpu_count() or 1) - 1)
    start = time.perf_counter()
    aggregate, stats = run_fleet_blocks(
        MILLION_PLAN, jobs=jobs, cache=cache, dtype="float32"
    )
    elapsed = time.perf_counter() - start
    node_slots = aggregate.n_nodes * aggregate.total_slots
    _record(
        "fleet_million_node_year",
        {
            "n_nodes": aggregate.n_nodes,
            "total_slots": aggregate.total_slots,
            "jobs": stats.jobs,
            "backend": stats.backend,
            "n_blocks": stats.n_units,
            "cache_hits": stats.cache_hits,
            "seconds": round(elapsed, 1),
            "node_slots_per_sec": round(node_slots / elapsed),
            "summary": {
                k: (round(v, 6) if isinstance(v, float) else v)
                for k, v in aggregate.summary().items()
            },
        },
    )
    assert aggregate.n_nodes == 1_000_000
