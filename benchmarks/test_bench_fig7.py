"""Bench: regenerate Fig. 7 (MAPE vs D, N=48, all six sites).

Shape claims: every site's curve decreases (more history helps), the
improvement from D=2 to D=10 dwarfs the improvement from D=10 to D=20
(the paper's D~=10 guideline), and curve levels preserve the site
ordering (PFCI lowest, ORNL highest).
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig7


def test_bench_fig7(benchmark, full_days):
    result = run_once(benchmark, fig7.run, n_days=full_days)
    print("\n" + result.render())

    curves = {}
    for row in result.rows:
        curves.setdefault(row["data_set"], []).append((row["d"], row["mape"]))

    assert set(curves) == {"SPMD", "ECSU", "ORNL", "HSU", "NPCS", "PFCI"}
    levels = {}
    for site, points in curves.items():
        points.sort()
        errors = np.array([e for _, e in points])
        d_values = [d for d, _ in points]
        assert d_values == list(range(2, 21)), site
        # Overall decreasing (allow tiny noise between adjacent points).
        assert errors[-1] <= errors[0], site
        assert (np.diff(errors) < 0.01).all(), site
        # Diminishing returns: D=2->10 gains at least 3x the D=10->20 gain.
        early = errors[0] - errors[8]
        late = errors[8] - errors[-1]
        assert early > 3 * max(late, 0.0) or late < 0.005, site
        levels[site] = errors[-1]

    assert levels["PFCI"] < levels["NPCS"] < levels["HSU"]
    assert levels["ORNL"] == max(levels.values())
