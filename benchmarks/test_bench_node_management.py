"""Bench (extension): prediction accuracy -> system-level behaviour.

The paper's Fig. 1 motivation, closed end to end: simulate a tightly
provisioned supercap node for a full year under the Kansal
energy-neutral controller with different predictors, plus the oracle
bound and a greedy fixed-duty baseline.

All five configurations now run as *one* five-node fleet through the
lock-step engine (:class:`~repro.management.fleet.FleetSimulator`) --
the same numbers the historical per-node loop produced (the fleet is
elementwise-identical; see ``tests/management/test_fleet_parity.py``),
at a fraction of the wall-clock.

Shape claims: the prediction-driven controllers avoid the downtime the
fixed-duty node suffers; the WCMA node's downtime is no worse than the
EWMA node's; and the oracle is at least as good as every predictor.
"""

from conftest import run_once

from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    FixedDutyController,
    KansalController,
    OracleController,
)
from repro.management.fleet import FleetNodeSpec, FleetSimulator
from repro.management.harvester import PVHarvester
from repro.management.storage import Supercapacitor
from repro.solar.datasets import build_dataset

SITE = "SPMD"
N_SLOTS = 48
CAPACITY_J = 250.0
LOAD = DutyCycledLoad(active_power_watts=40e-3, sleep_power_watts=40e-6)
HARVESTER = PVHarvester(area_m2=25e-4)


def _simulate(full_days):
    trace = build_dataset(SITE, n_days=full_days)

    def kansal():
        return KansalController(LOAD, CAPACITY_J, target_soc=0.6)

    def spec(name, predictor, controller, **kwargs):
        return FleetNodeSpec(
            trace=trace,
            controller=controller,
            predictor=predictor,
            predictor_kwargs=kwargs,
            harvester=HARVESTER,
            storage=Supercapacitor(capacity_joules=CAPACITY_J, initial_soc=0.5),
            load=LOAD,
            name=name,
        )

    specs = [
        spec("wcma", "wcma", kansal(), alpha=0.7, days=10, k=2),
        spec("ewma", "ewma", kansal()),
        spec("persistence", "persistence", kansal()),
        spec(
            "oracle",
            "persistence",
            OracleController(LOAD, CAPACITY_J, target_soc=0.6),
        ),
        spec("fixed-greedy", "persistence", FixedDutyController(0.8)),
    ]
    result = FleetSimulator(specs, N_SLOTS).run()
    return {
        result.node_names[i]: result.node_summary(i)
        for i in range(result.n_nodes)
    }


def test_bench_node_management(benchmark, full_days):
    results = run_once(benchmark, _simulate, full_days)

    print(f"\nYear-long fleet simulation ({SITE}, {CAPACITY_J:.0f} J supercap):")
    for name, summary in results.items():
        print(
            f"  {name:<13} duty {summary['mean_duty'] * 100:5.1f}%  "
            f"downtime {summary['downtime_fraction'] * 100:6.2f}%  "
            f"waste {summary['waste_fraction'] * 100:5.1f}%"
        )

    # Prediction-driven management avoids the fixed node's downtime.
    assert results["fixed-greedy"]["downtime_fraction"] > 0.05
    for name in ("wcma", "ewma", "persistence", "oracle"):
        assert (
            results[name]["downtime_fraction"]
            < results["fixed-greedy"]["downtime_fraction"] / 2
        ), name

    # Better prediction never hurts: WCMA <= EWMA on downtime, and the
    # oracle bounds everyone.
    assert (
        results["wcma"]["downtime_fraction"]
        <= results["ewma"]["downtime_fraction"] + 1e-9
    )
    for name in ("wcma", "ewma", "persistence"):
        assert (
            results["oracle"]["downtime_fraction"]
            <= results[name]["downtime_fraction"] + 1e-9
        ), name
