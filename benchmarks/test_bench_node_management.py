"""Bench (extension): prediction accuracy -> system-level behaviour.

The paper's Fig. 1 motivation, closed end to end: simulate a tightly
provisioned supercap node for a full year under the Kansal
energy-neutral controller with different predictors, plus the oracle
bound and a greedy fixed-duty baseline.

Shape claims: the prediction-driven controllers avoid the downtime the
fixed-duty node suffers; the WCMA node's downtime is no worse than the
EWMA node's; and the oracle is at least as good as every predictor.
"""

from conftest import run_once

from repro.core.baselines import PersistencePredictor
from repro.core.ewma import EWMAPredictor
from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    FixedDutyController,
    KansalController,
    OracleController,
)
from repro.management.harvester import PVHarvester
from repro.management.node import SensorNodeSimulation
from repro.management.storage import Supercapacitor
from repro.solar.datasets import build_dataset

SITE = "SPMD"
N_SLOTS = 48
CAPACITY_J = 250.0
LOAD = DutyCycledLoad(active_power_watts=40e-3, sleep_power_watts=40e-6)
HARVESTER = PVHarvester(area_m2=25e-4)


def _simulate(full_days):
    trace = build_dataset(SITE, n_days=full_days)

    def run(predictor, controller):
        sim = SensorNodeSimulation(
            trace=trace,
            n_slots=N_SLOTS,
            predictor=predictor,
            controller=controller,
            harvester=HARVESTER,
            storage=Supercapacitor(capacity_joules=CAPACITY_J, initial_soc=0.5),
            load=LOAD,
        )
        return sim.run().summary()

    kansal = lambda: KansalController(LOAD, CAPACITY_J, target_soc=0.6)
    return {
        "wcma": run(WCMAPredictor(N_SLOTS, WCMAParams(0.7, 10, 2)), kansal()),
        "ewma": run(EWMAPredictor(N_SLOTS), kansal()),
        "persistence": run(PersistencePredictor(N_SLOTS), kansal()),
        "oracle": run(
            PersistencePredictor(N_SLOTS),
            OracleController(LOAD, CAPACITY_J, target_soc=0.6),
        ),
        "fixed-greedy": run(PersistencePredictor(N_SLOTS), FixedDutyController(0.8)),
    }


def test_bench_node_management(benchmark, full_days):
    results = run_once(benchmark, _simulate, full_days)

    print(f"\nYear-long node simulation ({SITE}, {CAPACITY_J:.0f} J supercap):")
    for name, summary in results.items():
        print(
            f"  {name:<13} duty {summary['mean_duty'] * 100:5.1f}%  "
            f"downtime {summary['downtime_fraction'] * 100:6.2f}%  "
            f"waste {summary['waste_fraction'] * 100:5.1f}%"
        )

    # Prediction-driven management avoids the fixed node's downtime.
    assert results["fixed-greedy"]["downtime_fraction"] > 0.05
    for name in ("wcma", "ewma", "persistence", "oracle"):
        assert (
            results[name]["downtime_fraction"]
            < results["fixed-greedy"]["downtime_fraction"] / 2
        ), name

    # Better prediction never hurts: WCMA <= EWMA on downtime, and the
    # oracle bounds everyone.
    assert (
        results["wcma"]["downtime_fraction"]
        <= results["ewma"]["downtime_fraction"] + 1e-9
    )
    for name in ("wcma", "ewma", "persistence"):
        assert (
            results["oracle"]["downtime_fraction"]
            <= results[name]["downtime_fraction"] + 1e-9
        ), name
