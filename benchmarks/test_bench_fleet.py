"""Bench (extension): fleet-engine throughput and speedup.

Two measurements of the lock-step fleet engine
(:class:`~repro.management.fleet.FleetSimulator`):

* **Throughput** -- a 256-node homogeneous WCMA+Kansal fleet over a
  full year, reported as node-slots/sec.  This is the number that has
  to keep growing as the engine scales (sharding, multi-backend).
* **Speedup** -- the same 256-node fleet on a shorter trace against 256
  *sequential* ``SensorNodeSimulation`` runs, asserting the >= 20x
  acceptance bar and elementwise agreement between the fleet's node 0
  and the scalar simulation.
"""

import os
import time

import numpy as np
from conftest import run_once

from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import KansalController
from repro.management.fleet import FleetNodeSpec, FleetSimulator
from repro.management.harvester import PVHarvester
from repro.management.node import SensorNodeSimulation
from repro.management.storage import Supercapacitor
from repro.solar.datasets import build_dataset

SITE = "SPMD"
N_SLOTS = 48
N_NODES = 256
CAPACITY_J = 250.0
SPEEDUP_DAYS = 10  # short trace: the sequential baseline is 256 full runs

#: The acceptance bar is >= 20x (typically ~60x on an idle machine).
#: On shared CI runners wall-clock ratios are noisy, so the gate is
#: relaxed there -- the 20x bar is enforced on real hardware.
MIN_SPEEDUP = 10.0 if os.environ.get("CI") else 20.0
LOAD = DutyCycledLoad(active_power_watts=40e-3, sleep_power_watts=40e-6)
HARVESTER = PVHarvester(area_m2=25e-4)
WCMA_KWARGS = dict(alpha=0.7, days=10, k=2)


def _specs(trace, n_nodes):
    return [
        FleetNodeSpec(
            trace=trace,
            controller=KansalController(LOAD, CAPACITY_J, target_soc=0.6),
            predictor="wcma",
            predictor_kwargs=WCMA_KWARGS,
            harvester=HARVESTER,
            storage=Supercapacitor(capacity_joules=CAPACITY_J, initial_soc=0.5),
            load=LOAD,
        )
        for _ in range(n_nodes)
    ]


def _scalar_sim(trace):
    return SensorNodeSimulation(
        trace=trace,
        n_slots=N_SLOTS,
        predictor=WCMAPredictor(N_SLOTS, WCMAParams(**WCMA_KWARGS)),
        controller=KansalController(LOAD, CAPACITY_J, target_soc=0.6),
        harvester=HARVESTER,
        storage=Supercapacitor(capacity_joules=CAPACITY_J, initial_soc=0.5),
        load=LOAD,
    )


def test_bench_fleet_throughput(benchmark, full_days):
    """Year-long 256-node fleet; prints nodes x slots / sec."""
    trace = build_dataset(SITE, n_days=full_days)
    simulator = FleetSimulator(_specs(trace, N_NODES), N_SLOTS)

    result = run_once(benchmark, simulator.run)

    node_slots = result.n_nodes * result.total_slots
    seconds = benchmark.stats["mean"]
    print(
        f"\nFleet throughput: {N_NODES} nodes x {result.total_slots} slots "
        f"= {node_slots:,} node-slots in {seconds:.2f}s "
        f"({node_slots / seconds:,.0f} node-slots/sec)"
    )
    assert result.duty_achieved.shape == (result.total_slots, N_NODES)
    assert np.isfinite(result.duty_achieved).all()


def test_bench_fleet_speedup_vs_sequential(benchmark):
    """256-node fleet >= 20x faster than 256 sequential scalar runs."""
    trace = build_dataset(SITE, n_days=SPEEDUP_DAYS)
    simulator = FleetSimulator(_specs(trace, N_NODES), N_SLOTS)

    fleet_result = run_once(benchmark, simulator.run)
    fleet_seconds = benchmark.stats["mean"]

    start = time.perf_counter()
    scalar_results = [_scalar_sim(trace).run() for _ in range(N_NODES)]
    sequential_seconds = time.perf_counter() - start

    speedup = sequential_seconds / fleet_seconds
    print(
        f"\nFleet speedup: {N_NODES} nodes x {SPEEDUP_DAYS} days -- "
        f"fleet {fleet_seconds:.2f}s vs sequential {sequential_seconds:.2f}s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP:.0f}x, measured {speedup:.1f}x"
    )

    # The speed comes without changing the numbers: every fleet column
    # matches its scalar twin elementwise (all nodes are identical here,
    # so compare a few columns against the first scalar run).
    reference = scalar_results[0]
    for node in (0, N_NODES // 2, N_NODES - 1):
        node_result = fleet_result.node_result(node)
        for attribute in (
            "duty_requested",
            "duty_achieved",
            "state_of_charge",
            "harvested_joules",
            "consumed_joules",
            "wasted_joules",
            "shortfall_joules",
        ):
            np.testing.assert_allclose(
                getattr(node_result, attribute),
                getattr(reference, attribute),
                atol=1e-9,
                rtol=0.0,
                err_msg=f"node {node}, {attribute}",
            )
