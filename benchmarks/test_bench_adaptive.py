"""Bench (extension): realizable dynamic parameter selection.

Places the causal adaptive selectors of ``repro.core.adaptive`` on the
ladder Table V motivates:

    guideline static  >=  adaptive (causal)  ~  tuned static  >  clairvoyant

Shape claims: every selector beats the *untuned* guideline static
configuration on the variable site, lands within 15 % of the in-sample
tuned static optimum, and stays (necessarily) above the clairvoyant
both-dynamic bound.
"""

from conftest import run_once

from repro.core.adaptive import (
    EpsilonGreedySelector,
    FollowTheLeaderSelector,
    HedgeSelector,
)
from repro.core.dynamic import clairvoyant_dynamic
from repro.core.optimizer import grid_search
from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.metrics.evaluate import evaluate_predictor
from repro.solar.datasets import build_dataset

SITE = "ORNL"
N_SLOTS = 48


def _ladder(full_days):
    trace = build_dataset(SITE, n_days=full_days)
    static = grid_search(trace, N_SLOTS)
    days = static.best.days
    rungs = {
        "static tuned (in-sample)": static.best_error,
        "static guideline": evaluate_predictor(
            WCMAPredictor(N_SLOTS, WCMAParams(0.7, 10, 2)), trace, N_SLOTS
        ).mape,
        "ftl": evaluate_predictor(
            FollowTheLeaderSelector(N_SLOTS, days=days), trace, N_SLOTS
        ).mape,
        "epsilon-greedy": evaluate_predictor(
            EpsilonGreedySelector(N_SLOTS, days=days, epsilon=0.05, seed=11),
            trace,
            N_SLOTS,
        ).mape,
        "hedge": evaluate_predictor(
            HedgeSelector(N_SLOTS, days=days), trace, N_SLOTS
        ).mape,
        "clairvoyant both": clairvoyant_dynamic(
            trace, N_SLOTS, days, mode="both"
        ).mape,
    }
    return rungs


def test_bench_adaptive(benchmark, full_days):
    rungs = run_once(benchmark, _ladder, full_days)

    print(f"\nAdaptive-selection ladder ({SITE}, N={N_SLOTS}):")
    for name, value in sorted(rungs.items(), key=lambda kv: kv[1]):
        print(f"  {name:<26} MAPE {value * 100:6.2f}%")

    for name in ("ftl", "epsilon-greedy", "hedge"):
        # Above the clairvoyant bound (causality tax).
        assert rungs[name] > rungs["clairvoyant both"], name
        # Beats deploying the untuned guideline configuration.
        assert rungs[name] < rungs["static guideline"], name
        # Within 15% of the in-sample tuned optimum.
        assert rungs[name] < rungs["static tuned (in-sample)"] * 1.15, name
