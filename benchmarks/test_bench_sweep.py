"""Bench (extension): sweep-engine v2 throughput, speedup, and the
parallel experiment runner.

Four measurements, all recorded into ``BENCH_sweep.json`` at the repo
root (uploaded as a CI artifact) so the perf trajectory of the sweep
stack is tracked over time:

* **Throughput** -- cold exhaustive grid searches (paper grid) across
  the paper's sampling rates on one site, in grid-points/sec.
* **Fused vs loop, paper grid** -- the v2 engine against the frozen
  pre-v2 loop (:mod:`repro.core.sweep_reference`) on the paper's own
  sweep configuration.  Both engines here are numpy-vectorised over
  alpha, so the honest gap is the kernel restructuring alone (~3x on
  this shape).
* **Fused vs loop, scale grid** -- the workload the ROADMAP actually
  cares about ("far larger grids, longer traces"): a 2-year trace at
  N=288 with D=2..30, K=1..8 and a 0.05-step alpha grid.  Here the old
  loop's per-(D, K) temporaries fall out of cache and its O(K) phi
  passes bite, and the fused engine clears the >= 5x bar.
* **Parallel run_all** -- full experiment reproduction, sequential vs
  ``jobs=4``.  The >= 2x bar only applies on machines with >= 4 cores
  (process-parallelism cannot win on fewer); the measurement and the
  core count are recorded either way.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.core.optimizer import (
    DEFAULT_ALPHAS,
    DEFAULT_DAYS,
    DEFAULT_KS,
    SweepSpec,
    grid_search,
    sweep_many,
)
from repro.experiments.common import clear_batch_cache
from repro.experiments.runner import render_report, run_all
from repro.solar.datasets import build_dataset
from repro.solar.datasets import clear_cache as clear_trace_cache

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

SITE = "HSU"
PAPER_N_VALUES = (288, 96, 72, 48, 24)

#: Beyond-paper scale configuration (the ROADMAP's "larger grids,
#: longer traces" direction): 2 years, N=288, extended parameter cube.
SCALE_DAYS = 730
SCALE_N = 288
SCALE_GRID = dict(
    alphas=tuple(round(a * 0.05, 2) for a in range(21)),
    days=tuple(range(2, 31)),
    ks=tuple(range(1, 9)),
)

IS_CI = bool(os.environ.get("CI"))
#: Wall-clock ratio gates, relaxed on shared CI runners (same policy as
#: the fleet bench).
MIN_SCALE_SPEEDUP = 3.0 if IS_CI else 5.0
MIN_PAPER_SPEEDUP = 1.5 if IS_CI else 2.0
MIN_PARALLEL_SPEEDUP = 1.3 if IS_CI else 2.0


def _record(key, payload):
    """Merge one benchmark's numbers into BENCH_sweep.json.

    Machine context is stored per entry, not at the top level: partial
    runs (e.g. the CI smoke job's ``-k`` subset) must not re-attribute
    numbers measured elsewhere to the current machine.
    """
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    payload = dict(payload)
    payload["machine"] = {"cpu_count": os.cpu_count(), "ci": IS_CI}
    data.pop("machine", None)  # drop the legacy top-level key
    data[key] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _grid_points(n_sweeps, alphas=DEFAULT_ALPHAS, days=DEFAULT_DAYS, ks=DEFAULT_KS):
    return n_sweeps * len(alphas) * len(days) * len(ks)


def test_bench_sweep_throughput(benchmark, full_days):
    """Cold paper-grid sweeps across all paper N values of one site."""
    trace = build_dataset(SITE, n_days=full_days)
    specs = [SweepSpec(trace, n) for n in PAPER_N_VALUES]

    results = run_once(benchmark, sweep_many, specs)

    seconds = benchmark.stats["mean"]
    points = _grid_points(len(PAPER_N_VALUES))
    rate = points / seconds
    print(
        f"\nSweep throughput: {points:,} grid points "
        f"({len(PAPER_N_VALUES)} sweeps at N={PAPER_N_VALUES}) "
        f"in {seconds:.2f}s = {rate:,.0f} grid-points/sec"
    )
    _record(
        "grid_search_throughput",
        {
            "site": SITE,
            "n_days": full_days,
            "n_values": list(PAPER_N_VALUES),
            "grid_points": points,
            "seconds": round(seconds, 4),
            "grid_points_per_sec": round(rate),
        },
    )
    assert len(results) == len(PAPER_N_VALUES)
    for result in results:
        assert np.isfinite(result.best_error)
    # Conservative floor; typical measurements are an order higher.
    assert rate > (1_000 if IS_CI else 5_000)


def test_bench_sweep_fused_vs_loop_paper_grid(benchmark, full_days):
    """v2 engine vs the frozen pre-v2 loop on the paper's own grid."""
    trace = build_dataset(SITE, n_days=full_days)
    per_n = {}
    loop_total = fused_total = 0.0

    def fused_all():
        return [grid_search(trace, n) for n in PAPER_N_VALUES]

    results = run_once(benchmark, fused_all)
    # per-N split measured outside the benchmark timer
    for n in PAPER_N_VALUES:
        t0 = time.perf_counter()
        fused = grid_search(trace, n)
        t_fused = time.perf_counter() - t0
        t0 = time.perf_counter()
        loop = grid_search(trace, n, engine="loop")
        t_loop = time.perf_counter() - t0
        np.testing.assert_allclose(
            fused.errors, loop.errors, atol=1e-12, rtol=0.0, equal_nan=True
        )
        loop_total += t_loop
        fused_total += t_fused
        per_n[f"N={n}"] = {
            "loop_s": round(t_loop, 4),
            "fused_s": round(t_fused, 4),
            "speedup": round(t_loop / t_fused, 2),
        }
    speedup = loop_total / fused_total
    print(
        f"\nFused vs loop (paper grid, {full_days}d {SITE}): "
        f"loop {loop_total:.2f}s vs fused {fused_total:.2f}s "
        f"({speedup:.2f}x) -- " + ", ".join(
            f"{k} {v['speedup']}x" for k, v in per_n.items()
        )
    )
    _record(
        "fused_vs_loop_paper_grid",
        {
            "site": SITE,
            "n_days": full_days,
            "loop_s": round(loop_total, 4),
            "fused_s": round(fused_total, 4),
            "speedup": round(speedup, 2),
            "per_n": per_n,
        },
    )
    assert len(results) == len(PAPER_N_VALUES)
    assert speedup >= MIN_PAPER_SPEEDUP, (
        f"expected >= {MIN_PAPER_SPEEDUP}x on the paper grid, "
        f"measured {speedup:.2f}x"
    )


def test_bench_sweep_fused_vs_loop_scale(benchmark):
    """The >= 5x bar, on the scale workload the rework targets."""
    trace = build_dataset(SITE, n_days=SCALE_DAYS)
    grid_search(trace, SCALE_N, **SCALE_GRID)  # warm trace/slot caches

    fused = run_once(benchmark, grid_search, trace, SCALE_N, **SCALE_GRID)
    fused_seconds = benchmark.stats["mean"]

    t0 = time.perf_counter()
    loop = grid_search(trace, SCALE_N, engine="loop", **SCALE_GRID)
    loop_seconds = time.perf_counter() - t0

    np.testing.assert_allclose(
        fused.errors, loop.errors, atol=1e-12, rtol=0.0, equal_nan=True
    )
    speedup = loop_seconds / fused_seconds
    points = _grid_points(1, **SCALE_GRID)
    print(
        f"\nFused vs loop (scale: {SCALE_DAYS}d, N={SCALE_N}, "
        f"{points:,} grid points): loop {loop_seconds:.2f}s vs "
        f"fused {fused_seconds:.2f}s ({speedup:.2f}x)"
    )
    _record(
        "fused_vs_loop_scale_grid",
        {
            "site": SITE,
            "n_days": SCALE_DAYS,
            "n_slots": SCALE_N,
            "grid_points": points,
            "loop_s": round(loop_seconds, 4),
            "fused_s": round(fused_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= MIN_SCALE_SPEEDUP, (
        f"expected >= {MIN_SCALE_SPEEDUP}x at scale, measured {speedup:.2f}x"
    )


def test_bench_run_all_parallel(benchmark, full_days):
    """Full reproduction, sequential vs process-parallel (jobs=4)."""
    jobs = 4
    cores = os.cpu_count() or 1

    clear_batch_cache()
    clear_trace_cache()
    sequential = run_once(benchmark, run_all, n_days=full_days)
    sequential_seconds = benchmark.stats["mean"]

    clear_batch_cache()
    clear_trace_cache()
    stats = []
    start = time.perf_counter()
    parallel = run_all(n_days=full_days, jobs=jobs, stats=stats)
    parallel_seconds = time.perf_counter() - start

    assert render_report(sequential) == render_report(parallel)
    speedup = sequential_seconds / parallel_seconds
    exec_stats = stats[0]
    print(
        f"\nrun_all({full_days}d): sequential {sequential_seconds:.2f}s vs "
        f"jobs={jobs} {parallel_seconds:.2f}s ({speedup:.2f}x on "
        f"{cores} core(s)); backend={exec_stats.backend} "
        f"chunk={exec_stats.chunk_size} "
        f"dispatch {1e3 * exec_stats.dispatch_per_unit_s:.2f} ms/unit"
    )
    _record(
        "run_all_parallel",
        {
            "n_days": full_days,
            "jobs": jobs,
            "cpu_count": cores,
            "sequential_s": round(sequential_seconds, 4),
            "parallel_s": round(parallel_seconds, 4),
            "speedup": round(speedup, 2),
            "backend": exec_stats.backend,
            "n_units": exec_stats.n_units,
            "chunk_size": exec_stats.chunk_size,
            "n_chunks": exec_stats.n_chunks,
            "dispatch_s": round(exec_stats.dispatch_s, 4),
            "dispatch_per_unit_s": round(exec_stats.dispatch_per_unit_s, 6),
        },
    )
    # Process pools cannot beat sequential without cores to run on; the
    # >= 2x wall-clock bar applies where the hardware allows it.
    if cores >= jobs:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"expected >= {MIN_PARALLEL_SPEEDUP}x with {jobs} jobs on "
            f"{cores} cores, measured sequential {sequential_seconds:.2f}s "
            f"vs parallel {parallel_seconds:.2f}s = {speedup:.2f}x "
            f"(backend={exec_stats.backend}, {exec_stats.n_units} units in "
            f"{exec_stats.n_chunks} chunks of {exec_stats.chunk_size}, "
            f"dispatch {exec_stats.dispatch_s:.3f}s)"
        )
