"""Bench (extension): the always-on forecast service.

Measures the serve layer end to end and records the numbers into
``BENCH_serve.json`` at the repo root (uploaded as a CI artifact):

* **Query throughput** -- hundreds of logical sites (``node-NNN``
  backed by the six synthetic datasets via the register op's
  ``dataset`` alias) are registered, warmed up with a replay, then
  driven through ``ForecastService.handle`` with a full JSON round
  trip per request -- the serialisation cost every transport
  (stdin-JSONL, HTTP) pays.  Asserts a conservative queries/sec floor.
* **Durable observe** -- the same observe stream against a state
  store at ``checkpoint_every=1`` (every slot fsynced to its own
  atomic checkpoint -- the always-on-node setting) and at a batched
  interval, recording the durability overhead, then verifies a fresh
  service resumes every node at the full observed count.
"""

import json
import os
import time
from pathlib import Path

from repro.serve import ForecastService
from repro.solar.sites import SITE_ORDER

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

IS_CI = bool(os.environ.get("CI"))

#: Logical fleet size: hundreds of per-node predictors sharing the six
#: synthetic datasets through the register op's ``dataset`` alias.
N_SITES = 300
WARMUP_DAYS = 2
QUERY_ROUNDS = 10  # observe+forecast pairs per site in the timed loop

#: Conservative floors -- the measured rates are orders of magnitude
#: higher; these only catch catastrophic regressions (an accidental
#: O(sites) scan per request, state digests gone quadratic, ...).
MIN_QUERY_QPS = 300 if IS_CI else 1000
MIN_DURABLE_QPS = 30 if IS_CI else 60

#: Durable-observe leg: small enough that per-slot atomic writes (one
#: temp file + rename each) stay a few hundred IOs.
N_DURABLE_SITES = 40
DURABLE_ROUNDS = 5


def _record(key, payload):
    """Merge one benchmark's numbers into BENCH_serve.json.

    Machine context is per entry (same policy as BENCH_parallel.json):
    partial runs must not re-attribute numbers measured elsewhere.
    """
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    payload = dict(payload)
    payload["machine"] = {"cpu_count": os.cpu_count(), "ci": IS_CI}
    data[key] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _query(service, request):
    """One request through handle() with the transport's JSON round trip."""
    response = service.handle(json.loads(json.dumps(request)))
    json.dumps(response)
    return response


def _register_fleet(service, n_sites):
    for i in range(n_sites):
        r = _query(
            service,
            {
                "op": "register",
                "site": f"node-{i:03d}",
                "dataset": SITE_ORDER[i % len(SITE_ORDER)],
            },
        )
        assert r["ok"], r


def test_bench_serve_query_throughput():
    """Mixed observe/forecast load over a replay-warmed logical fleet."""
    service = ForecastService(n_slots=48)

    start = time.perf_counter()
    _register_fleet(service, N_SITES)
    register_s = time.perf_counter() - start

    start = time.perf_counter()
    samples = 0
    for i in range(N_SITES):
        r = _query(
            service,
            {"op": "replay", "site": f"node-{i:03d}", "days": WARMUP_DAYS},
        )
        assert r["ok"], r
        samples += r["samples"]
    replay_s = time.perf_counter() - start

    start = time.perf_counter()
    queries = 0
    for round_no in range(QUERY_ROUNDS):
        for i in range(N_SITES):
            site = f"node-{i:03d}"
            obs = _query(
                service,
                {"op": "observe", "site": site,
                 "value": float((i + round_no) % 11) * 40.0},
            )
            fc = _query(service, {"op": "forecast", "site": site})
            assert obs["ok"] and fc["ok"]
            assert fc["prediction"] == obs["prediction"]
            queries += 2
    query_s = time.perf_counter() - start
    qps = queries / query_s

    print(
        f"\nServe load: {N_SITES} sites registered in {register_s:.2f}s, "
        f"{samples} replay samples in {replay_s:.2f}s "
        f"({samples / replay_s:,.0f}/s), {queries} queries in "
        f"{query_s:.2f}s ({qps:,.0f} qps)"
    )
    _record(
        "query_throughput",
        {
            "n_sites": N_SITES,
            "warmup_days": WARMUP_DAYS,
            "register_s": round(register_s, 4),
            "replay_samples": samples,
            "replay_samples_per_sec": round(samples / replay_s),
            "queries": queries,
            "queries_per_sec": round(qps),
        },
    )
    assert qps >= MIN_QUERY_QPS, (
        f"serve throughput collapsed: {qps:,.0f} qps < {MIN_QUERY_QPS}"
    )


def test_bench_serve_durable_observe(tmp_path):
    """Observe throughput with per-slot vs batched checkpointing."""
    rates = {}
    for label, every in (("every_slot", 1), ("every_25", 25)):
        service = ForecastService(
            n_slots=48, state_dir=tmp_path / label, checkpoint_every=every
        )
        _register_fleet(service, N_DURABLE_SITES)
        start = time.perf_counter()
        for round_no in range(DURABLE_ROUNDS):
            for i in range(N_DURABLE_SITES):
                r = _query(
                    service,
                    {"op": "observe", "site": f"node-{i:03d}",
                     "value": float(round_no) * 25.0},
                )
                assert r["ok"], r
        elapsed = time.perf_counter() - start
        rates[label] = N_DURABLE_SITES * DURABLE_ROUNDS / elapsed
        service.checkpoint_all()

        # A fresh service must resume every node at the full count.
        resumed = ForecastService(n_slots=48, state_dir=tmp_path / label)
        for i in range(N_DURABLE_SITES):
            reg = resumed.handle({"op": "register", "site": f"node-{i:03d}",
                                  "dataset": SITE_ORDER[i % len(SITE_ORDER)]})
            assert reg["observed"] == DURABLE_ROUNDS, reg

    overhead = rates["every_25"] / rates["every_slot"]
    print(
        f"\nDurable observe: {rates['every_slot']:,.0f} qps at "
        f"checkpoint_every=1 vs {rates['every_25']:,.0f} qps batched "
        f"({overhead:.1f}x)"
    )
    _record(
        "durable_observe",
        {
            "n_sites": N_DURABLE_SITES,
            "observes_per_site": DURABLE_ROUNDS,
            "qps_checkpoint_every_1": round(rates["every_slot"]),
            "qps_checkpoint_every_25": round(rates["every_25"]),
            "batching_speedup": round(overhead, 2),
        },
    )
    assert rates["every_slot"] >= MIN_DURABLE_QPS, (
        f"durable observe collapsed: {rates['every_slot']:,.0f} qps "
        f"< {MIN_DURABLE_QPS}"
    )
