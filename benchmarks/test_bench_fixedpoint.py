"""Bench (extension): Q15 fixed-point implementation study.

The paper implements the predictor in C on the MSP430; a production
port would use fixed point.  This bench quantifies the quantisation
cost at full scale: the Q15 implementation must track the float one to
within 0.2 MAPE percentage points while costing roughly an order of
magnitude fewer arithmetic cycles.
"""

from conftest import run_once

from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.hardware.cycles import FLOAT_COSTS, Q15_COSTS, arithmetic_cycles
from repro.hardware.fixedpoint import FixedPointWCMA
from repro.metrics.evaluate import evaluate_predictor
from repro.solar.datasets import build_dataset

SITES = ("HSU", "PFCI")
N_SLOTS = 48
PARAMS = WCMAParams(alpha=0.7, days=10, k=2)


def _study(full_days):
    out = {}
    for site in SITES:
        trace = build_dataset(site, n_days=full_days)
        float_run = evaluate_predictor(
            WCMAPredictor(N_SLOTS, PARAMS), trace, N_SLOTS
        )
        q15_run = evaluate_predictor(
            FixedPointWCMA(N_SLOTS, PARAMS), trace, N_SLOTS
        )
        out[site] = (float_run.mape, q15_run.mape)
    return out


def test_bench_fixedpoint(benchmark, full_days):
    results = run_once(benchmark, _study, full_days)

    print("\nQ15 fixed-point vs float (N=48, alpha=0.7, D=10, K=2):")
    for site, (float_mape, q15_mape) in results.items():
        print(
            f"  {site}: float {float_mape * 100:.3f}%  "
            f"q15 {q15_mape * 100:.3f}%  "
            f"delta {abs(q15_mape - float_mape) * 100:.3f} points"
        )

    for site, (float_mape, q15_mape) in results.items():
        assert abs(q15_mape - float_mape) < 0.002, site

    float_cycles = arithmetic_cycles(PARAMS.k, FLOAT_COSTS)
    q15_cycles = arithmetic_cycles(PARAMS.k, Q15_COSTS)
    print(f"  arithmetic cycles: float {float_cycles}, q15 {q15_cycles}")
    assert q15_cycles * 4 < float_cycles
