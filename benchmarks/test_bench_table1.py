"""Bench: regenerate Table I (data-set inventory) at full scale."""

from conftest import run_once

from repro.experiments import table1
from repro.experiments.paper_values import TABLE1


def test_bench_table1(benchmark, full_days):
    result = run_once(benchmark, table1.run, n_days=full_days)
    print("\n" + result.render())

    by_site = {row["data_set"]: row for row in result.rows}
    assert len(by_site) == 6
    for site, expected in TABLE1.items():
        row = by_site[site]
        # Observation counts and resolutions must match the paper exactly.
        assert row["observations"] == expected["observations"]
        assert row["days"] == expected["days"]
        assert row["resolution"] == f"{expected['resolution_minutes']} minutes"
        assert row["location"] == expected["location"]
