"""Bench: regenerate Table IV (energy accounting) -- exact match required.

Unlike the trace-driven tables, Table IV is deterministic arithmetic
over the calibrated hardware model, so every row must match the paper's
measured numbers exactly (to display precision).
"""

from conftest import run_once

from repro.experiments import table4
from repro.experiments.paper_values import TABLE4
from repro.hardware.energy import daily_energy, prediction_energy
from repro.hardware.mcu import MSP430F1611


def test_bench_table4(benchmark):
    result = run_once(benchmark, table4.run)
    print("\n" + result.render())

    adc_uj = 55.0
    assert (adc_uj + prediction_energy(1, 0.7) * 1e6) == _approx(
        TABLE4["adc_plus_prediction_k1_a07_uj"]
    )
    assert (adc_uj + prediction_energy(7, 0.7) * 1e6) == _approx(
        TABLE4["adc_plus_prediction_k7_a07_uj"]
    )
    assert (adc_uj + prediction_energy(7, 0.0) * 1e6) == _approx(
        TABLE4["adc_plus_prediction_k7_a00_uj"]
    )
    assert MSP430F1611.sleep_energy_per_day() * 1e3 == _approx(
        TABLE4["sleep_per_day_mj"]
    )
    assert daily_energy(48, include_prediction=False) * 1e6 == _approx(
        TABLE4["adc_48_per_day_uj"]
    )
    assert daily_energy(48) * 1e6 == _approx(
        TABLE4["adc_plus_prediction_48_per_day_uj"]
    )


def _approx(value, tolerance=0.05):
    import pytest

    return pytest.approx(value, abs=tolerance)
