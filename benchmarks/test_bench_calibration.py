"""Bench (extension): site-calibration round trip at full scale.

Calibrate a profile from one synthetic ORNL year, generate a new year
from the fitted profile, and verify the regenerated trace preserves the
properties the experiments consume: day-type mix, clearness, midday
variability, and -- the acid test -- the WCMA difficulty (optimal MAPE
within a factor of the source trace's).

This is the workflow a user with a real NREL MIDC download follows to
mint statistically similar extra years.
"""

from conftest import run_once

from repro.core.optimizer import grid_search
from repro.solar.calibration import calibrate_site
from repro.solar.datasets import build_dataset
from repro.solar.sites import get_site
from repro.solar.statistics import trace_statistics
from repro.solar.synthetic import generate_trace

SITE = "ORNL"
N_SLOTS = 48


def _round_trip(full_days):
    latitude = get_site(SITE).latitude_deg
    source = build_dataset(SITE, n_days=full_days)
    fitted = calibrate_site(source, latitude, name=f"{SITE}-FIT")
    regenerated = generate_trace(fitted, n_days=full_days, seed=1234)
    return {
        "source_stats": trace_statistics(source, latitude),
        "regen_stats": trace_statistics(regenerated, latitude),
        "source_mape": grid_search(source, N_SLOTS).best_error,
        "regen_mape": grid_search(regenerated, N_SLOTS).best_error,
    }


def test_bench_calibration(benchmark, full_days):
    results = run_once(benchmark, _round_trip, full_days)
    src = results["source_stats"]
    regen = results["regen_stats"]

    print(f"\nCalibration round trip ({SITE}, {N_SLOTS} slots):")
    print(
        "  clear/partly/overcast: source "
        f"{src.clear_fraction:.2f}/{src.partly_fraction:.2f}/{src.overcast_fraction:.2f}"
        f"  regen {regen.clear_fraction:.2f}/{regen.partly_fraction:.2f}/{regen.overcast_fraction:.2f}"
    )
    print(
        f"  clearness: {src.mean_clearness:.3f} -> {regen.mean_clearness:.3f}"
        f"   variability: {src.midday_step_variability:.3f} -> "
        f"{regen.midday_step_variability:.3f}"
    )
    print(
        f"  WCMA optimal MAPE: source {results['source_mape'] * 100:.2f}%  "
        f"regen {results['regen_mape'] * 100:.2f}%"
    )

    assert abs(regen.clear_fraction - src.clear_fraction) < 0.20
    assert abs(regen.mean_clearness - src.mean_clearness) < 0.12
    ratio = regen.midday_step_variability / src.midday_step_variability
    assert 0.4 < ratio < 2.5
    mape_ratio = results["regen_mape"] / results["source_mape"]
    assert 0.5 < mape_ratio < 2.0
