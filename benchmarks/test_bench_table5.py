"""Bench: regenerate Table V (clairvoyant dynamic parameter selection).

Shape claims asserted (vs the paper's Table V):

* dynamic-(alpha+K) <= dynamic-alpha <= dynamic-K <= static, per row;
* the relative gain of dynamic-(alpha+K) over static grows as N falls;
* dynamic at N=48 beats the same site's static error at N=96 (the
  paper highlights dynamic@48 vs static@288; our static@288 is already
  very low, so the adjacent-N comparison is the robust analogue);
* the best fixed alpha under dynamic-K is lower than the static
  alpha*, and the best fixed K under dynamic-alpha is higher than the
  static K* (Section IV-C's closing observation);
* the >10-percentage-point accuracy gain the abstract claims shows up
  at the small-N end for the variable sites.
"""

from conftest import run_once

from repro.experiments import table3, table5


def test_bench_table5(benchmark, full_days):
    result = run_once(benchmark, table5.run, n_days=full_days)
    print("\n" + result.render())

    static_params = {
        (row["data_set"], row["n"]): row
        for row in table3.run(n_days=full_days, sites=table5.DYNAMIC_SITES).rows
    }
    rows = {(row["data_set"], row["n"]): row for row in result.rows}
    sites = sorted({site for site, _ in rows})

    for key, row in rows.items():
        assert row["both_mape"] <= row["alpha_only_mape"] + 1e-12, key
        assert row["alpha_only_mape"] <= row["k_only_mape"] + 1e-12, key
        assert row["k_only_mape"] <= row["static_mape"] + 1e-12, key

    for site in sites:
        n_values = sorted({n for s, n in rows if s == site})
        gains = []
        for n in n_values:
            row = rows[(site, n)]
            if row["static_mape"] > 1e-9:
                gains.append(
                    (n, (row["static_mape"] - row["both_mape"]) / row["static_mape"])
                )
        # Relative gain at the smallest N beats the largest N's gain.
        if len(gains) >= 2:
            assert gains[0][1] >= gains[-1][1] - 0.05, site

        # Dynamic at N=48 beats static at N=96.
        if (site, 48) in rows and (site, 96) in rows:
            assert rows[(site, 48)]["both_mape"] < rows[(site, 96)]["static_mape"], site

        # Companion-parameter observation at N=48.
        if (site, 48) in rows:
            static = static_params[(site, 48)]
            row = rows[(site, 48)]
            assert row["k_only_alpha"] <= static["alpha"] + 1e-9, site
            assert row["alpha_only_k"] >= static["k"], site

    # Abstract's headline: >10 points of MAPE gain at the small-N end
    # for the most variable sites.
    for site in ("SPMD", "ORNL"):
        if (site, 24) in rows:
            row = rows[(site, 24)]
            assert row["static_mape"] - row["both_mape"] > 0.10, site
