"""Bench: regenerate Fig. 6 (overhead % vs N) -- exact match required."""

import pytest
from conftest import run_once

from repro.experiments import fig6
from repro.experiments.paper_values import FIG6_OVERHEAD


def test_bench_fig6(benchmark):
    result = run_once(benchmark, fig6.run)
    print("\n" + result.render())

    percents = {row["n"]: row["overhead_percent"] for row in result.rows}
    for n, expected_fraction in FIG6_OVERHEAD.items():
        assert percents[n] == pytest.approx(expected_fraction * 100, abs=0.01), n

    # Overhead scales linearly with N (pure sampling arithmetic).
    assert percents[288] == pytest.approx(percents[24] * 12, rel=1e-6)
