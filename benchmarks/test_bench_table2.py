"""Bench: regenerate Table II (MAPE' vs MAPE optimisation at N=48).

Shape claims asserted (vs the paper's Table II):

* the MAPE optimum is far below the MAPE' optimum on every site
  (the paper's central argument for the error definition);
* MAPE optimisation selects a higher alpha than MAPE' optimisation;
* the site difficulty ordering matches: ORNL and SPMD hardest,
  NPCS and PFCI easiest.
"""

from conftest import run_once

from repro.experiments import table2
from repro.experiments.paper_values import TABLE2


def test_bench_table2(benchmark, full_days):
    result = run_once(benchmark, table2.run, n_days=full_days)
    print("\n" + result.render())
    rows = {row["data_set"]: row for row in result.rows}

    for site, row in rows.items():
        # MAPE optimum clearly lower than MAPE' optimum (paper: 2-3x).
        assert row["mape"] < row["mape_prime"] * 0.75, site
        # MAPE favours more persistence.
        assert row["alpha"] >= row["alpha_prime"], site
        # Within a factor ~1.7 of the paper's absolute MAPE.
        paper_mape = TABLE2[site]["mape"][3]
        assert 0.55 * paper_mape < row["mape"] < 1.6 * paper_mape, site

    # Difficulty ordering: sunny sites at the bottom, ORNL at the top.
    assert rows["PFCI"]["mape"] < rows["NPCS"]["mape"]
    assert rows["NPCS"]["mape"] < min(
        rows["SPMD"]["mape"], rows["ECSU"]["mape"], rows["ORNL"]["mape"], rows["HSU"]["mape"]
    )
    assert rows["ORNL"]["mape"] == max(r["mape"] for r in rows.values())
