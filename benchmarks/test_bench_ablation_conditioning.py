"""Bench (ablation): the conditioning factor Phi and its weighting.

DESIGN.md calls out two design choices of the evaluated algorithm:
(a) scaling the past-days average by the current-day conditioning
factor Phi_K (Eq. 3), and (b) the linear weights theta(k) = k/K (Eq. 5)
that favour recent slots.  This bench ablates both on a variable site:

* Phi off (Phi == 1): the conditioned term degenerates to the plain
  moving average -> error rises;
* theta uniform (all weights equal): recent slots lose their priority
  -> error rises slightly;
* theta reversed (oldest slot heaviest): -> clearly worse than linear.
"""

import numpy as np
from conftest import run_once

from repro.core.wcma import WCMABatch
from repro.metrics.roi import roi_mask
from repro.solar.datasets import build_dataset

SITE = "ORNL"
N_SLOTS = 48
DAYS = 10
K_PARAM = 3


def _phi_with_weights(batch, days, k_param, weights):
    """Recompute Phi with arbitrary weights (oldest..newest)."""
    eta = batch.eta_flat(days)
    acc = np.zeros_like(eta)
    for k in range(1, k_param + 1):
        shift = k_param - k
        if shift == 0:
            acc += weights[k - 1] * eta
        else:
            acc[shift:] += weights[k - 1] * eta[:-shift]
    phi = acc / np.sum(weights)
    phi[: k_param - 1] = np.nan
    return phi


def _ablate(full_days):
    trace = build_dataset(SITE, n_days=full_days)
    batch = WCMABatch.from_trace(trace, N_SLOTS)
    reference = batch.reference_mean
    mask = roi_mask(reference, N_SLOTS)
    s = batch.starts_flat[:-1]
    mu_next = batch.mu_flat(DAYS)[1:]

    theta_linear = np.arange(1, K_PARAM + 1, dtype=float) / K_PARAM
    variants = {
        "phi-linear-theta (paper)": _phi_with_weights(
            batch, DAYS, K_PARAM, theta_linear
        ),
        "phi-uniform-theta": _phi_with_weights(
            batch, DAYS, K_PARAM, np.ones(K_PARAM)
        ),
        "phi-reversed-theta": _phi_with_weights(
            batch, DAYS, K_PARAM, theta_linear[::-1]
        ),
        "phi-off (plain average)": np.ones(batch.n_boundaries),
    }

    out = {}
    for name, phi in variants.items():
        best = np.inf
        for alpha in np.arange(0.0, 1.01, 0.1):
            predictions = alpha * s + (1 - alpha) * mu_next * phi[:-1]
            ok = mask & np.isfinite(predictions)
            mape = float(
                np.abs(reference[ok] - predictions[ok]).__truediv__(reference[ok]).mean()
            )
            best = min(best, mape)
        out[name] = best
    return out


def test_bench_ablation_conditioning(benchmark, full_days):
    results = run_once(benchmark, _ablate, full_days)

    print(f"\nConditioning-factor ablation ({SITE}, N={N_SLOTS}, D={DAYS}, K={K_PARAM}):")
    for name, value in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:<26} MAPE {value * 100:6.2f}%")

    paper = results["phi-linear-theta (paper)"]
    # Phi itself carries real value.
    assert results["phi-off (plain average)"] > paper * 1.05
    # Linear (recency-weighted) theta: statistically ties uniform on our
    # synthetic clouds (within 0.2 points) and clearly beats weighting
    # the oldest slot heaviest.
    assert abs(results["phi-uniform-theta"] - paper) < 0.002
    assert results["phi-reversed-theta"] > paper
