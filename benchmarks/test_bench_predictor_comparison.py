"""Bench (extension): Bergonzini-style predictor comparison.

The paper's related work [7] compares prediction algorithms; this bench
regenerates that comparison on our substrate: WCMA (guideline
parameters) vs EWMA (Kansal), persistence, previous-day, and the
unconditioned moving average, on a sunny and a variable site.

Shape claims: WCMA wins on both site classes; EWMA (which ignores the
current day) loses badly on the variable site; the unconditioned moving
average sits between EWMA and WCMA, isolating the value of the
conditioning factor Phi.
"""

from conftest import run_once

from repro.core.baselines import (
    MovingAveragePredictor,
    PersistencePredictor,
    PreviousDayPredictor,
)
from repro.core.ewma import EWMAPredictor
from repro.core.proenergy import ProEnergyPredictor
from repro.core.regression import ARPredictor, SlotLinearTrendPredictor
from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.metrics.evaluate import evaluate_predictor
from repro.solar.datasets import build_dataset

N_SLOTS = 48
SITES = ("PFCI", "ORNL")


def _compare(full_days):
    out = {}
    for site in SITES:
        trace = build_dataset(site, n_days=full_days)
        predictors = {
            "wcma": WCMAPredictor(N_SLOTS, WCMAParams(0.7, 10, 2)),
            "ewma": EWMAPredictor(N_SLOTS, gamma=0.5),
            "persistence": PersistencePredictor(N_SLOTS),
            "previous-day": PreviousDayPredictor(N_SLOTS),
            "moving-average": MovingAveragePredictor(N_SLOTS, days=10),
            "pro-energy": ProEnergyPredictor(N_SLOTS),
            "ar": ARPredictor(N_SLOTS),
            "linear-trend": SlotLinearTrendPredictor(N_SLOTS),
        }
        out[site] = {
            name: evaluate_predictor(p, trace, N_SLOTS).mape
            for name, p in predictors.items()
        }
    return out


def test_bench_predictor_comparison(benchmark, full_days):
    results = run_once(benchmark, _compare, full_days)

    print("\nPredictor comparison (MAPE, N=48):")
    for site, scores in results.items():
        line = "  ".join(f"{k}={v * 100:.2f}%" for k, v in sorted(scores.items()))
        print(f"  {site}: {line}")

    for site, scores in results.items():
        # WCMA wins overall.
        assert scores["wcma"] == min(scores.values()), site
        # EWMA, blind to the current day, is the big loser of [7].
        assert scores["ewma"] > 1.5 * scores["wcma"], site
        # Conditioning helps: WCMA beats the unconditioned average.
        assert scores["wcma"] < scores["moving-average"], site
        # Day-over-day persistence is worse than slot persistence here.
        assert scores["persistence"] < scores["previous-day"], site
        # Pro-Energy (profile matching) lands between the naive
        # baselines and WCMA, as the successor literature reports.
        assert scores["wcma"] <= scores["pro-energy"], site
        assert scores["pro-energy"] < scores["previous-day"], site
        # Weather-blind trend extrapolation is no better than using
        # yesterday directly.
        assert scores["linear-trend"] > scores["persistence"], site
