"""Bench: regenerate Fig. 2 (six days of solar energy, 5-minute bins).

Shape claims: the window shows real day-to-day variety (peak and daily
energy vary by large factors) and intra-day structure exists (the
series is not flat) -- the two observations the paper's motivational
figure makes.
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig2


def test_bench_fig2(benchmark, full_days):
    result = run_once(benchmark, fig2.run, n_days=full_days)
    print("\n" + result.render())

    energies = np.array([row["energy_wh_m2"] for row in result.rows])
    peaks = np.array([row["peak_wm2"] for row in result.rows])
    assert len(result.rows) == 6
    # Day-to-day variation: the best day collects much more than the worst.
    assert energies.max() > 1.5 * energies.min()
    assert peaks.max() > 0.0

    series = fig2.series(n_days=full_days)
    assert series.shape == (6, 288)
    # Intra-day variation on at least one day: bursty drops like Fig. 2.
    daylight = series[:, 96:192]
    rel_step = np.abs(np.diff(daylight, axis=1)) / (daylight[:, :-1] + 1.0)
    assert rel_step.max() > 0.2
