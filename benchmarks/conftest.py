"""Benchmark fixtures: full-scale (365-day) experiment reproductions.

Each bench regenerates one of the paper's tables/figures at the paper's
scale, prints the regenerated rows, and asserts the qualitative shape
claims recorded in DESIGN.md.  ``benchmark.pedantic(..., rounds=1)`` is
used throughout: these are end-to-end reproductions, not microbenches,
and a single round is what "regenerate the table" costs.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

FULL_DAYS = 365


@pytest.fixture(scope="session")
def full_days():
    """Trace length of the paper's setup."""
    return FULL_DAYS


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
