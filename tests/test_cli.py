"""Tests for the command-line front-end."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.solar.io import read_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table9"])

    def test_jobs_option(self):
        args = build_parser().parse_args(["run-all", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["run", "table1"])
        assert args.jobs is None

    @pytest.mark.parametrize("value", ["0", "-2", "x"])
    def test_rejects_non_positive_jobs(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run-all", "--jobs", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err and "Traceback" not in err

    def test_robustness_rejects_non_positive_jobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness", "--jobs", "0"])

    def test_robustness_rejects_unknown_scenario(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["robustness", "--scenarios", "nope"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_fleet_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--scenarios", "nope"])


class TestValueErrorsExitCleanly:
    """Library ValueErrors surface as one 'error:' line, status 2."""

    def test_unknown_site(self, capsys):
        code = main(["run", "table1", "--days", "30", "--sites", "NOPE"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown sites" in err

    def test_unknown_predictor(self, capsys):
        code = main(
            ["summarize", "--site", "PFCI", "--days", "30", "--predictor", "nope"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown predictor" in err

    def test_unknown_robustness_predictor(self, capsys):
        code = main(
            ["robustness", "--days", "30", "--sites", "PFCI",
             "--predictors", "nope"]
        )
        assert code == 2
        assert "unknown predictors" in capsys.readouterr().err

    def test_bad_n_for_site(self, capsys):
        code = main(["compare", "--site", "PFCI", "--days", "30", "--n", "7"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "does not divide" in err

    def test_bad_n_for_robustness_defaults(self, capsys):
        code = main(["robustness", "--days", "30", "--n", "7"])
        assert code == 2
        assert "does not divide" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["run-all", "--days", "0"],
            ["fleet", "--nodes", "0"],
            ["compare", "--site", "PFCI", "--n", "-3"],
            ["export-trace", "SPMD", "--days", "-1", "--out", "x.csv"],
            ["robustness", "--seed", "-1"],
            ["fleet", "--scenarios", "dropout", "--scenario-seed", "-1"],
            ["export-trace", "SPMD", "--seed", "-1", "--out", "x.csv"],
        ],
    )
    def test_non_positive_sizes_rejected_by_parser(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "PFCI" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table4"]) == 0
        out = capsys.readouterr().out
        assert "55.0 uJ" in out

    def test_run_with_sites_and_days(self, capsys):
        code = main(["run", "table1", "--days", "30", "--sites", "PFCI"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PFCI" in out and "43200" in out  # 30 * 1440 observations

    def test_run_with_jobs(self, capsys):
        code = main(
            ["run", "table1", "--days", "30", "--sites", "PFCI", "--jobs", "2"]
        )
        assert code == 0
        assert "43200" in capsys.readouterr().out

    def test_export_trace(self, tmp_path, capsys):
        out_path = tmp_path / "t.csv"
        code = main(
            ["export-trace", "SPMD", "--days", "2", "--out", str(out_path)]
        )
        assert code == 0
        trace = read_csv(out_path)
        assert trace.n_days == 2
        assert trace.name == "SPMD"
        assert (trace.values >= 0).all()

    def test_export_trace_seed_changes_data(self, tmp_path):
        a_path = tmp_path / "a.csv"
        b_path = tmp_path / "b.csv"
        main(["export-trace", "SPMD", "--days", "2", "--seed", "1", "--out", str(a_path)])
        main(["export-trace", "SPMD", "--days", "2", "--seed", "2", "--out", str(b_path)])
        a = read_csv(a_path)
        b = read_csv(b_path)
        assert not np.array_equal(a.values, b.values)


class TestAnalysisCommands:
    def test_tune(self, capsys):
        assert main(["tune", "--site", "PFCI", "--days", "45", "--n", "48"]) == 0
        out = capsys.readouterr().out
        assert "best on PFCI" in out
        assert "guideline check: K=2" in out

    def test_compare(self, capsys):
        assert main(["compare", "--site", "HSU", "--days", "45", "--n", "24"]) == 0
        out = capsys.readouterr().out
        assert "wcma" in out and "pro-energy" in out and "MAPE" in out

    def test_summarize(self, capsys):
        code = main(
            ["summarize", "--site", "PFCI", "--days", "45", "--n", "48",
             "--predictor", "wcma"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "error quantiles" in out

    def test_tune_from_csv(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        main(["export-trace", "HSU", "--days", "45", "--out", str(path)])
        capsys.readouterr()
        assert main(["tune", "--trace", str(path), "--n", "24"]) == 0
        out = capsys.readouterr().out
        assert "best on HSU" in out

    def test_trace_and_site_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--site", "PFCI", "--trace", "x.csv"])


class TestFleetCommand:
    def test_fleet_summary_table(self, capsys):
        code = main(
            [
                "fleet",
                "--nodes", "6",
                "--sites", "SPMD", "HSU",
                "--days", "8",
                "--predictors", "wcma", "persistence",
                "--controllers", "kansal",
                "--capacities", "250",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FLEET: fleet simulation: 6 nodes" in out
        assert "wcma" in out and "persistence" in out
        assert "downtime" in out
        assert "node-slots/sec" in out

    def test_fleet_rejects_unknown_controller(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--controllers", "nope"])

    def test_fleet_with_scenarios(self, capsys):
        code = main(
            [
                "fleet",
                "--nodes", "4",
                "--sites", "SPMD",
                "--days", "8",
                "--predictors", "wcma",
                "--scenarios", "clean", "dropout",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FLEET: fleet simulation: 4 nodes" in out


class TestIngestCommand:
    def sample(self):
        from repro.solar.ingest import sample_csv_path

        return str(sample_csv_path())

    def test_ingest_summary_and_quality(self, capsys):
        assert main(["ingest", self.sample()]) == 0
        out = capsys.readouterr().out
        assert "ingested SAMPLE-MIDC" in out
        assert "quality:" in out and "dropout" in out
        assert "replay scenario:" in out

    def test_ingest_clean_export_roundtrips(self, tmp_path, capsys):
        out_path = tmp_path / "clean.csv"
        code = main(
            ["ingest", self.sample(), "--name", "M", "--out", str(out_path)]
        )
        assert code == 0
        trace = read_csv(out_path)
        assert trace.name == "M"
        assert trace.n_days == 28
        assert (trace.values >= 0).all()

    def test_ingest_resolution_and_channel(self, capsys):
        code = main(
            ["ingest", self.sample(), "--resolution", "15",
             "--channel", "air temp"]
        )
        assert code == 0
        assert "Air Temperature" in capsys.readouterr().out

    def test_ingest_missing_file_exits_cleanly(self, capsys):
        code = main(["ingest", "/nonexistent/file.csv"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_ingest_bad_channel_exits_cleanly(self, capsys):
        code = main(["ingest", self.sample(), "--channel", "nope"])
        assert code == 2
        assert "unknown channel" in capsys.readouterr().err

    def test_ingest_bad_resolution_exits_cleanly(self, capsys):
        code = main(["ingest", self.sample(), "--resolution", "7"])
        assert code == 2
        assert "target resolution" in capsys.readouterr().err


class TestRobustnessTrace:
    @pytest.fixture(autouse=True)
    def _cleanup_registry(self):
        yield
        from repro.solar.ingest.sites import clear_measured_sites

        clear_measured_sites()

    def test_trace_runs_matrix_and_defects_replay(self, capsys):
        from repro.solar.datasets import available_datasets
        from repro.solar.ingest import sample_csv_path

        code = main(
            ["robustness", "--trace", str(sample_csv_path()),
             "--scenarios", "dropout", "--predictors", "persistence",
             "--no-tune", "--fleet-days", "8"]
        )
        assert code == 0
        captured = capsys.readouterr()
        # --days defaulted past the trace length: clamped with a note.
        assert "running the matrix at 28 days" in captured.err
        out = captured.out
        assert "SAMPLE-MIDC" in out
        assert "sample-midc-defects" in out
        assert "ROBUSTNESS-FLEET" in out
        # The registration is a per-invocation side effect, cleaned up.
        assert "SAMPLE-MIDC" not in available_datasets()

    def test_foreign_measured_site_does_not_veto_default_n(self, tmp_path):
        """A registered measured site whose rate N cannot divide must
        not fail validation of a default (synthetic-six) robustness run."""
        from repro.cli import _validate_names
        from repro.solar.ingest.sites import register_measured_site

        hourly = tmp_path / "hourly.csv"
        hourly.write_text(
            "DATE,MST,Global [W/m^2]\n"
            + "\n".join(f"03/01/2010,{h:02d}:00,10.0" for h in range(24))
            + "\n"
        )
        register_measured_site(hourly, name="HOURLY")  # spd=24, 48 won't divide
        args = build_parser().parse_args(["robustness", "--n", "48"])
        _validate_names(args)  # must not raise

    def test_trace_only_run_skips_synthetic_n_check(self):
        """--trace without --sites runs the measured site alone; an N
        the synthetic six cannot slot must pass validation (the
        measured check happens after ingestion)."""
        from repro.cli import _validate_names

        args = build_parser().parse_args(
            ["robustness", "--trace", "whatever.csv", "--n", "90"]
        )
        _validate_names(args)  # must not raise (90 does not divide 288)

    def test_trace_missing_file_exits_cleanly(self, capsys):
        code = main(["robustness", "--trace", "/nonexistent/file.csv"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_trace_bad_n_exits_cleanly(self, capsys):
        from repro.solar.ingest import sample_csv_path

        code = main(
            ["robustness", "--trace", str(sample_csv_path()), "--n", "54"]
        )
        assert code == 2
        assert "does not divide" in capsys.readouterr().err


class TestRobustnessCommand:
    def test_matrix_and_summary(self, capsys):
        code = main(
            [
                "robustness",
                "--days", "30",
                "--sites", "PFCI",
                "--scenarios", "dropout", "jitter",
                "--no-tune",
                "--fleet-days", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ROBUSTNESS: scenario robustness matrix" in out
        assert "dropout" in out and "jitter" in out and "clean" in out
        assert "most harmful:" in out
        assert "ROBUSTNESS-FLEET: fleet robustness" in out

    def test_no_fleet_skips_fleet_table(self, capsys):
        code = main(
            [
                "robustness",
                "--days", "30",
                "--sites", "PFCI",
                "--scenarios", "jitter",
                "--no-tune",
                "--no-fleet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ROBUSTNESS-FLEET" not in out

    def test_list_shows_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scenarios:" in out and "regime-shift" in out


class TestCacheCommand:
    """repro-solar cache info/clear + the run-time cache flags."""

    def test_info_on_missing_dir_exits_2(self, tmp_path, capsys):
        code = main(["cache", "info", "--dir", str(tmp_path / "nope")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "does not exist" in err

    def test_clear_on_missing_dir_exits_2(self, tmp_path, capsys):
        code = main(["cache", "clear", "--dir", str(tmp_path / "nope")])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_clear_refuses_foreign_dir(self, tmp_path, capsys):
        (tmp_path / "keep.txt").write_text("not a cache")
        code = main(["cache", "clear", "--dir", str(tmp_path)])
        assert code == 2
        assert "refusing" in capsys.readouterr().err
        assert (tmp_path / "keep.txt").exists()

    def test_run_populates_then_info_then_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main([
            "run", "table1", "--days", "5", "--sites", "PFCI",
            "--cache-dir", str(cache_dir),
        ]) == 0
        captured = capsys.readouterr()
        assert "cache-misses=1" in captured.err
        assert main([
            "run", "table1", "--days", "5", "--sites", "PFCI",
            "--cache-dir", str(cache_dir),
        ]) == 0
        captured = capsys.readouterr()
        assert "cache-hits=1" in captured.err

        assert main(["cache", "info", "--dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries:    1" in out
        assert main(["cache", "clear", "--dir", str(cache_dir)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "info", "--dir", str(cache_dir)]) == 0
        assert "entries:    0" in capsys.readouterr().out

    def test_no_cache_flag_disables_caching(self, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_SOLAR_CACHE_DIR", str(cache_dir))
        assert main([
            "run", "table1", "--days", "5", "--sites", "PFCI", "--no-cache",
        ]) == 0
        captured = capsys.readouterr()
        assert not cache_dir.exists()
        assert "cache-misses" not in captured.err

    def test_default_cache_dir_honours_env(self, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "from-env"
        monkeypatch.setenv("REPRO_SOLAR_CACHE_DIR", str(cache_dir))
        assert main(["run", "table1", "--days", "5", "--sites", "PFCI"]) == 0
        capsys.readouterr()
        assert cache_dir.is_dir()
        assert main(["cache", "info"]) == 0
        assert str(cache_dir) in capsys.readouterr().out

    def test_robustness_uses_cache(self, tmp_path, capsys):
        argv = [
            "robustness", "--days", "30", "--sites", "PFCI",
            "--scenarios", "dropout", "--no-tune", "--no-fleet",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "cache-misses=2" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "cache-hits=2" in second.err
        assert first.out == second.out

    def test_backend_choice_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-all", "--backend", "mpi"])
