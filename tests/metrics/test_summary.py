"""Tests for the evaluation summary diagnostics."""

import numpy as np
import pytest

from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.metrics.evaluate import evaluate_predictor, score_predictions
from repro.metrics.summary import format_summary, summarise


def perfect_run(n_slots=4, n_days=30, level=100.0):
    reference = np.tile([0.0, level, 2 * level, level], n_days)[:-1]
    return score_predictions(
        predictions=reference.copy(),
        reference_mean=reference,
        reference_next_start=reference,
        n_slots=n_slots,
        warmup_days=0,
    )


class TestSummarise:
    def test_perfect_run(self):
        summary = summarise(perfect_run())
        assert summary.mape == 0.0
        assert summary.error_quantiles[0.9] == 0.0
        assert summary.mean_over_prediction == 0.0
        assert summary.mean_under_prediction == 0.0

    def test_bias_split(self):
        reference = np.tile([0.0, 100.0, 200.0, 100.0], 30)[:-1]
        predictions = reference * 1.1  # always over-predicts
        run = score_predictions(
            predictions, reference, reference, n_slots=4, warmup_days=0
        )
        summary = summarise(run)
        assert summary.over_prediction_fraction == 1.0
        assert summary.mean_over_prediction > 0.0
        assert summary.mape == pytest.approx(0.1)

    def test_monthly_breakdown_spans_trace(self, hsu_trace):
        run = evaluate_predictor(
            WCMAPredictor(48, WCMAParams(0.7, 5, 2)), hsu_trace, 48
        )
        summary = summarise(run)
        # 30-day trace minus 20 warm-up days: month 1 only.
        assert set(summary.monthly_mape) == {1}
        assert summary.n_scored == run.n_scored

    def test_quantiles_ordered(self, hsu_trace):
        run = evaluate_predictor(
            WCMAPredictor(48, WCMAParams(0.7, 5, 2)), hsu_trace, 48
        )
        q = summarise(run).error_quantiles
        assert q[0.5] <= q[0.9] <= q[0.99]

    def test_level_bands_present(self, hsu_trace):
        run = evaluate_predictor(
            WCMAPredictor(48, WCMAParams(0.7, 5, 2)), hsu_trace, 48
        )
        by_level = summarise(run).mape_by_level
        assert len(by_level) >= 2

    def test_empty_region_rejected_upstream(self):
        """A warm-up longer than the trace already fails at scoring."""
        reference = np.tile([0.0, 100.0], 4)[:-1]
        with pytest.raises(ValueError):
            score_predictions(
                reference.copy(), reference, reference, n_slots=2, warmup_days=50
            )


class TestFormatSummary:
    def test_renders_all_sections(self, hsu_trace):
        run = evaluate_predictor(
            WCMAPredictor(48, WCMAParams(0.7, 5, 2)), hsu_trace, 48
        )
        text = format_summary(summarise(run))
        assert "MAPE:" in text
        assert "error quantiles:" in text
        assert "by power level:" in text
        assert "by month:" in text
