"""Tests for per-slot error definitions and aggregate error functions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.errors import (
    mae,
    mape,
    mbe,
    percentage_errors,
    rmse,
    slot_errors,
    slot_errors_prime,
)


class TestSlotErrors:
    def test_eq7_definition(self):
        mean = np.array([10.0, 20.0])
        pred = np.array([8.0, 25.0])
        assert slot_errors(mean, pred).tolist() == [2.0, -5.0]

    def test_eq6_definition(self):
        nxt = np.array([12.0, 18.0])
        pred = np.array([10.0, 20.0])
        assert slot_errors_prime(nxt, pred).tolist() == [2.0, -2.0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            slot_errors(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            slot_errors_prime(np.zeros(3), np.zeros(4))


class TestMape:
    def test_simple_value(self):
        error = np.array([1.0, -2.0])
        reference = np.array([10.0, 10.0])
        assert mape(error, reference) == pytest.approx(0.15)

    def test_mask_applied(self):
        error = np.array([1.0, 100.0])
        reference = np.array([10.0, 10.0])
        mask = np.array([True, False])
        assert mape(error, reference, mask) == pytest.approx(0.10)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError, match="zeros"):
            mape(np.array([1.0]), np.array([0.0]))

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            mape(np.array([1.0]), np.array([2.0]), np.array([False]))

    @given(
        scale=st.floats(0.1, 1000.0),
        values=arrays(
            float,
            10,
            elements=st.floats(1.0, 100.0),
        ),
    )
    def test_scale_invariance(self, scale, values):
        """MAPE is independent of the data scale (the paper's argument
        for preferring it over RMSE/MAE)."""
        error = values * 0.1
        base = mape(error, values)
        scaled = mape(error * scale, values * scale)
        assert scaled == pytest.approx(base, rel=1e-9)


class TestOtherAggregates:
    def test_mae(self):
        assert mae(np.array([1.0, -3.0])) == pytest.approx(2.0)

    def test_mbe_signed(self):
        assert mbe(np.array([1.0, -3.0])) == pytest.approx(-1.0)

    def test_rmse(self):
        assert rmse(np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

    def test_rmse_at_least_mae(self):
        error = np.array([0.5, -2.0, 3.0, -0.1])
        assert rmse(error) >= mae(error)

    def test_rmse_outlier_sensitivity(self):
        """The paper's reason to avoid RMSE: one outlier dominates."""
        calm = np.full(99, 1.0)
        with_outlier = np.append(calm, 100.0)
        assert rmse(with_outlier) / rmse(calm) > 5.0
        assert mae(with_outlier) / mae(calm) < 2.1

    def test_mask_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.zeros(3), np.array([True]))

    def test_empty_error(self):
        with pytest.raises(ValueError):
            rmse(np.array([]))


class TestPercentageErrors:
    def test_absolute_value(self):
        out = percentage_errors(np.array([-5.0]), np.array([10.0]))
        assert out.tolist() == [0.5]

    def test_mask_filters(self):
        out = percentage_errors(
            np.array([1.0, 2.0]),
            np.array([10.0, 10.0]),
            np.array([False, True]),
        )
        assert out.tolist() == [0.2]
