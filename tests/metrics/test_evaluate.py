"""Tests for the generic predictor evaluation harness."""

import numpy as np
import pytest

from repro.core.baselines import PersistencePredictor
from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.metrics.evaluate import evaluate_predictor, score_predictions


class TestScorePredictions:
    def test_perfect_predictions_zero_error(self):
        reference = np.tile(np.array([0.0, 50.0, 100.0, 50.0]), 25)
        run = score_predictions(
            predictions=reference.copy(),
            reference_mean=reference,
            reference_next_start=reference,
            n_slots=4,
            warmup_days=0,
        )
        assert run.mape == 0.0
        assert run.mape_prime == 0.0
        assert run.rmse_value == 0.0

    def test_nan_predictions_excluded(self):
        reference = np.tile(np.array([100.0, 100.0]), 20)
        predictions = reference * 0.9
        predictions[:10] = np.nan
        run = score_predictions(
            predictions, reference, reference, n_slots=2, warmup_days=0
        )
        assert run.n_scored == 30
        assert run.mape == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            score_predictions(np.zeros(3), np.zeros(4), np.zeros(4), 2)

    def test_mbe_sign(self):
        reference = np.tile(np.array([100.0]), 40)
        predictions = np.full(40, 110.0)  # over-prediction
        run = score_predictions(
            predictions, reference, reference, n_slots=1, warmup_days=0
        )
        assert run.mbe_value == pytest.approx(-10.0)


class TestEvaluatePredictor:
    def test_persistence_on_repeating_days(self, repeating_day_trace):
        run = evaluate_predictor(
            PersistencePredictor(48), repeating_day_trace, 48
        )
        # Persistence on a repeating triangular day: errors from the ramp
        # only; finite and modest.
        assert 0.0 < run.mape < 0.25

    def test_wcma_alpha_zero_on_repeating_days(self, repeating_day_trace):
        """With identical days, mu equals the profile, eta = 1 in the
        bright region, so alpha=0 predicts the next boundary exactly; the
        only error left is slot-mean vs boundary (the ramp lag)."""
        predictor = WCMAPredictor(48, WCMAParams(alpha=0.0, days=5, k=2))
        run = evaluate_predictor(predictor, repeating_day_trace, 48)
        view_errors = np.abs(
            run.predictions[run.mask_next] - run.reference_next_start[run.mask_next]
        )
        assert view_errors.max() < 1e-6  # exact boundary prediction
        assert run.mape > 0.0  # but the slot mean still differs

    def test_alpha_one_exact_when_one_sample_per_slot(self, repeating_day_trace):
        """Table III's 0-dagger entries: M=1 and alpha=1 -> MAPE == 0."""
        predictor = WCMAPredictor(288, WCMAParams(alpha=1.0, days=5, k=1))
        run = evaluate_predictor(predictor, repeating_day_trace, 288)
        assert run.mape == 0.0

    def test_mask_counts_sane(self, hsu_trace):
        run = evaluate_predictor(PersistencePredictor(48), hsu_trace, 48)
        total = hsu_trace.n_days * 48 - 1
        assert 0 < run.n_scored < total / 2  # night + warm-up excluded

    def test_warmup_respected(self, hsu_trace):
        run = evaluate_predictor(
            PersistencePredictor(48), hsu_trace, 48, warmup_days=25
        )
        assert not run.mask_mean[: 25 * 48].any()
