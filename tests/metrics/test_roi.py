"""Tests for the region-of-interest mask."""

import numpy as np
import pytest

from repro.metrics.roi import roi_indices, DEFAULT_ROI_FRACTION, DEFAULT_WARMUP_DAYS, roi_mask


class TestRoiMask:
    def test_threshold_at_ten_percent_of_peak(self):
        reference = np.array([0.0, 5.0, 9.9, 10.0, 50.0, 100.0])
        mask = roi_mask(reference, n_slots=1, warmup_days=0)
        assert mask.tolist() == [False, False, False, True, True, True]

    def test_explicit_peak(self):
        reference = np.array([10.0, 50.0])
        mask = roi_mask(reference, n_slots=1, peak=1000.0, warmup_days=0)
        assert mask.tolist() == [False, False]

    def test_warmup_days_masked(self):
        reference = np.full(10, 100.0)
        mask = roi_mask(reference, n_slots=2, warmup_days=3)
        # 3 days x 2 slots = 6 leading samples masked.
        assert mask.tolist() == [False] * 6 + [True] * 4

    def test_warmup_longer_than_trace(self):
        reference = np.full(4, 100.0)
        mask = roi_mask(reference, n_slots=2, warmup_days=10)
        assert not mask.any()

    def test_defaults_match_paper(self):
        assert DEFAULT_ROI_FRACTION == 0.10
        assert DEFAULT_WARMUP_DAYS == 20

    def test_night_always_excluded(self):
        reference = np.zeros(100)
        reference[50] = 500.0
        mask = roi_mask(reference, n_slots=10, warmup_days=0)
        assert mask.sum() == 1 and mask[50]

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            roi_mask(np.ones(4), 1, roi_fraction=0.0)
        with pytest.raises(ValueError):
            roi_mask(np.ones(4), 1, roi_fraction=1.0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            roi_mask(np.ones(4), 1, warmup_days=-1)

    def test_rejects_dark_trace(self):
        with pytest.raises(ValueError, match="peak"):
            roi_mask(np.zeros(4), 1)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            roi_mask(np.ones((2, 2)), 1)

    def test_custom_fraction(self):
        reference = np.array([10.0, 40.0, 100.0])
        mask = roi_mask(reference, 1, roi_fraction=0.5, warmup_days=0)
        assert mask.tolist() == [False, False, True]


class TestRoiIndices:
    def test_matches_flatnonzero_of_mask(self):
        rng = np.random.default_rng(7)
        reference = rng.random(480) * 100.0
        for warmup in (0, 3):
            mask = roi_mask(reference, n_slots=24, warmup_days=warmup)
            idx = roi_indices(reference, n_slots=24, warmup_days=warmup)
            np.testing.assert_array_equal(idx, np.flatnonzero(mask))

    def test_sorted_and_integer(self):
        reference = np.concatenate([np.zeros(24), np.full(48, 100.0)])
        idx = roi_indices(reference, n_slots=24, warmup_days=1)
        assert idx.dtype.kind == "i"
        assert (np.diff(idx) > 0).all()
        assert idx.min() >= 24

    def test_forwards_peak_and_fraction(self):
        reference = np.array([10.0, 40.0, 100.0])
        idx = roi_indices(reference, 1, peak=2000.0, roi_fraction=0.5, warmup_days=0)
        assert idx.tolist() == []
        idx = roi_indices(reference, 1, roi_fraction=0.5, warmup_days=0)
        assert idx.tolist() == [2]
