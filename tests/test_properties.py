"""Cross-cutting property-based tests (hypothesis).

These complement the per-module suites with randomized invariants that
span module boundaries: trace/io round trips, predictor output bounds,
metric algebra, and fixed-point consistency.
"""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.registry import available_predictors, make_predictor
from repro.core.wcma import WCMABatch, WCMAParams, WCMAPredictor
from repro.hardware.fixedpoint import Q13_MAX, FixedPointWCMA
from repro.metrics.errors import mape
from repro.metrics.roi import roi_mask
from repro.solar.io import loads, dumps
from repro.solar.slots import SlotView
from repro.solar.trace import SolarTrace


def trace_strategy(max_days=4, spd=96):
    """Random non-negative traces of whole days."""
    return st.integers(1, max_days).flatmap(
        lambda days: arrays(
            float,
            days * spd,
            elements=st.floats(0.0, 1000.0, allow_nan=False),
        ).map(lambda v: SolarTrace(v, (24 * 60) // spd, "prop"))
    )


class TestTraceProperties:
    @settings(max_examples=20, deadline=None)
    @given(trace=trace_strategy())
    def test_io_round_trip_preserves_everything(self, trace):
        again = loads(dumps(trace))
        assert again.resolution_minutes == trace.resolution_minutes
        assert np.allclose(again.values, trace.values, rtol=1e-5, atol=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(trace=trace_strategy(), n=st.sampled_from([96, 48, 24, 12]))
    def test_slot_means_bounded_by_extremes(self, trace, n):
        view = SlotView.from_trace(trace, n)
        shaped = trace.as_days().reshape(trace.n_days, n, -1)
        assert (view.means <= shaped.max(axis=2) + 1e-9).all()
        assert (view.means >= shaped.min(axis=2) - 1e-9).all()

    @settings(max_examples=20, deadline=None)
    @given(trace=trace_strategy())
    def test_daily_energy_additive(self, trace):
        total = trace.daily_energy().sum()
        dt_hours = trace.resolution_minutes / 60.0
        assert total == pytest.approx(trace.values.sum() * dt_hours)


class TestPredictorProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        samples=arrays(float, 96 * 3, elements=st.floats(0.0, 900.0)),
        alpha=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
        k=st.integers(1, 4),
    )
    def test_wcma_outputs_finite_and_nonnegative(self, samples, alpha, k):
        predictor = WCMAPredictor(96, WCMAParams(alpha, 2, k))
        out = predictor.run(samples)
        assert np.isfinite(out).all()
        assert (out >= 0.0).all()

    @settings(max_examples=10, deadline=None)
    @given(samples=arrays(float, 48 * 3, elements=st.floats(0.0, 900.0)))
    def test_all_registered_predictors_stay_finite(self, samples):
        for name in available_predictors():
            predictor = make_predictor(name, 48)
            out = predictor.run(samples)
            assert np.isfinite(out).all(), name
            assert (out >= 0.0).all(), name

    @settings(max_examples=10, deadline=None)
    @given(
        samples=arrays(float, 48 * 3, elements=st.floats(0.0, 1400.0)),
        alpha=st.sampled_from([0.0, 0.5, 1.0]),
    )
    def test_q15_close_to_float_everywhere(self, samples, alpha):
        params = WCMAParams(alpha, 2, 2)
        flt = WCMAPredictor(48, params)
        q15 = FixedPointWCMA(48, params, full_scale_watts=1500.0)
        q13_ceiling = ((1 << 16) - 1) / (1 << 13)  # ratio saturation, ~8.0
        for value in samples:
            a = flt.observe(float(value))
            b = q15.observe(float(value))
            # Within 2% of full scale at every single step; on
            # adversarial inputs the float path may exceed full scale
            # (clamped below) and the float eta ratio may exceed the
            # Q13 ceiling -- there the Q15 port saturates by design and
            # the two paths legitimately diverge, so those steps are
            # exempt.  The divergence can also appear on the fixed-point
            # side only: when mu sits within one quantisation step of
            # the dawn-guard floor, the float path substitutes the
            # neutral ratio while the Q15 path lets the (saturating)
            # division through -- a saturated Q13 ratio marks the same
            # by-design divergence.
            if any(eta > q13_ceiling for eta in flt._recent_eta):
                continue
            if any(eta_q >= Q13_MAX for eta_q in q15._recent_eta_q13):
                continue
            assert abs(min(a, 1500.0) - b) <= 30.0 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        alpha=st.sampled_from([0.2, 0.5, 0.8]),
    )
    def test_determinism_across_runs(self, seed, alpha):
        rng = np.random.default_rng(seed)
        samples = rng.uniform(0, 800, 48 * 3)
        predictor = make_predictor("wcma", 48, alpha=alpha, days=2, k=2)
        first = predictor.run(samples.copy())
        predictor.reset()
        second = predictor.run(samples.copy())
        assert np.array_equal(first, second)


class TestMetricProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        reference=arrays(float, 30, elements=st.floats(1.0, 500.0)),
        noise=arrays(float, 30, elements=st.floats(-50.0, 50.0)),
    )
    def test_mape_zero_iff_exact(self, reference, noise):
        exact = mape(np.zeros_like(reference), reference)
        assert exact == 0.0
        if np.abs(noise).max() > 0:
            assert mape(noise, reference) > 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        reference=arrays(float, 64, elements=st.floats(0.0, 500.0)),
        fraction=st.sampled_from([0.05, 0.1, 0.3]),
    )
    def test_roi_mask_monotone_in_threshold(self, reference, fraction):
        if reference.max() <= 0:
            return
        loose = roi_mask(reference, 8, roi_fraction=fraction, warmup_days=0)
        tight = roi_mask(reference, 8, roi_fraction=min(0.9, fraction * 2), warmup_days=0)
        # Tightening the threshold can only remove samples.
        assert not (tight & ~loose).any()

    @settings(max_examples=10, deadline=None)
    @given(
        days=st.integers(1, 4),
        k=st.integers(1, 3),
        seed=st.integers(0, 1000),
    )
    def test_batch_conditioned_term_nonnegative(self, days, k, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0, 1000, 6 * 96)
        trace = SolarTrace(values, 15, "prop")
        batch = WCMABatch.from_trace(trace, 96)
        q = batch.conditioned_term(days, k)
        finite = np.isfinite(q)
        assert (q[finite] >= 0.0).all()
