"""Tests for the real-dataset ingestion pipeline.

Covers the MIDC-shaped parser (channel selection, missing-data forms,
grid inference, error paths), the quality-flag detectors (hand-built
cases plus hypothesis determinism/disjointness properties), the clean
repair, the replay round trip on the bundled sample (the acceptance
property: masks byte-identical, values exact), and measured-site
registration through the experiment stack.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.experiments.common import (
    clear_batch_cache,
    sites_for,
    supported_n_for_site,
    trace_for,
)
from repro.experiments.robustness import run as run_robustness
from repro.metrics import evaluate_predictor, format_quality_summary, summarise_quality
from repro.core.registry import make_predictor
from repro.solar.datasets import available_datasets, build_dataset, samples_per_day_for
from repro.solar.ingest import (
    IngestError,
    QualityThresholds,
    build_replay_scenario,
    clean_values,
    detect_quality,
    format_ingest_report,
    ingest_csv,
    ingest_sample,
    parse_midc,
    sample_csv_path,
)
from repro.solar.ingest.replay import (
    ReplayedDropout,
    ReplayedGaps,
    ReplayedSpikes,
    ReplayedStuck,
)
from repro.solar.ingest.sites import (
    clear_measured_sites,
    measured_site,
    register_measured_site,
    unregister_measured_site,
)
from repro.solar.scenarios import Scenario
from repro.solar.sites import SITE_ORDER
from repro.solar.trace import SolarTrace


HEADER = "DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]"


def midc_text(rows, header=HEADER):
    return "\n".join([header] + rows) + "\n"


def hourly_rows(days=1, value=lambda day, hour: 100.0 * (6 <= hour <= 18)):
    rows = []
    for day in range(days):
        for hour in range(24):
            rows.append(
                f"03/{day + 1:02d}/2010,{hour:02d}:00,{value(day, hour)},5.0"
            )
    return rows


@pytest.fixture
def measured_registry_guard():
    yield
    clear_measured_sites()


class TestParser:
    def test_basic_grid_and_resolution(self):
        parsed = parse_midc(io.StringIO(midc_text(hourly_rows(days=2))))
        assert parsed.resolution_minutes == 60
        assert parsed.samples_per_day == 24
        assert parsed.n_days == 2
        assert parsed.channel == "Global Horizontal [W/m^2]"
        assert parsed.channels == (
            "Global Horizontal [W/m^2]",
            "Air Temperature [deg C]",
        )

    def test_default_channel_prefers_global(self):
        header = "DATE,MST,Direct Normal [W/m^2],Global Horizontal [W/m^2]"
        rows = ["03/01/2010,%02d:00,1.0,2.0" % h for h in range(24)]
        parsed = parse_midc(io.StringIO(midc_text(rows, header)))
        assert parsed.channel == "Global Horizontal [W/m^2]"
        assert parsed.values[12] == 2.0

    def test_channel_substring_selection(self):
        parsed = parse_midc(
            io.StringIO(midc_text(hourly_rows())), channel="air temp"
        )
        assert parsed.channel == "Air Temperature [deg C]"
        assert np.nanmax(parsed.values) == 5.0

    def test_unknown_channel_lists_available(self):
        with pytest.raises(IngestError, match="unknown channel.*Global"):
            parse_midc(io.StringIO(midc_text(hourly_rows())), channel="nope")

    def test_rows_in_any_order(self):
        rows = hourly_rows()
        shuffled = rows[::-1]
        a = parse_midc(io.StringIO(midc_text(rows)))
        b = parse_midc(io.StringIO(midc_text(shuffled)))
        assert a.values.tobytes() == b.values.tobytes()

    def test_missing_forms_become_nan(self):
        rows = hourly_rows()
        rows[10] = "03/01/2010,10:00,,5.0"        # empty cell
        rows[11] = "03/01/2010,11:00,-99999,5.0"  # sentinel
        del rows[12]                              # absent row
        parsed = parse_midc(io.StringIO(midc_text(rows)))
        assert np.isnan(parsed.values[[10, 11, 12]]).all()
        assert parsed.values[13] == 100.0

    def test_absent_days_padded(self):
        rows = hourly_rows(days=1) + [
            f"03/03/2010,{h:02d}:00,50.0,5.0" for h in range(24)
        ]
        parsed = parse_midc(io.StringIO(midc_text(rows)))
        assert parsed.n_days == 3
        assert np.isnan(parsed.values[24:48]).all()

    def test_iso_dates_accepted(self):
        rows = [f"2010-03-01,{h:02d}:00,42.0,5.0" for h in range(24)]
        parsed = parse_midc(io.StringIO(midc_text(rows)))
        assert parsed.start_date == "2010-03-01"

    def test_negative_values_survive_parse(self):
        rows = hourly_rows(value=lambda d, h: -1.5 if h < 6 else 100.0)
        parsed = parse_midc(io.StringIO(midc_text(rows)))
        assert parsed.values[0] == -1.5  # clipping happens at ingest


class TestParserErrors:
    def test_empty_file(self):
        with pytest.raises(IngestError, match="empty"):
            parse_midc(io.StringIO(""))

    def test_no_date_column(self):
        text = "TIMESTAMP,GHI\n1,2\n"
        with pytest.raises(IngestError, match="date column"):
            parse_midc(io.StringIO(text))

    def test_no_time_column(self):
        text = "DATE,GHI\n03/01/2010,2\n"
        with pytest.raises(IngestError, match="time column"):
            parse_midc(io.StringIO(text))

    def test_no_channels(self):
        text = "DATE,MST\n03/01/2010,00:00\n"
        with pytest.raises(IngestError, match="no measurement channels"):
            parse_midc(io.StringIO(text))

    def test_header_only(self):
        with pytest.raises(IngestError, match="no data rows"):
            parse_midc(io.StringIO(HEADER + "\n"))

    def test_bad_date(self):
        rows = hourly_rows()
        rows[3] = "garbage,03:00,1.0,5.0"
        with pytest.raises(IngestError, match="cannot parse date"):
            parse_midc(io.StringIO(midc_text(rows)))

    def test_bad_time(self):
        rows = hourly_rows()
        rows[3] = "03/01/2010,25:00,1.0,5.0"
        with pytest.raises(IngestError, match="time"):
            parse_midc(io.StringIO(midc_text(rows)))

    def test_non_numeric_sample(self):
        rows = hourly_rows()
        rows[3] = "03/01/2010,03:00,abc,5.0"
        with pytest.raises(IngestError, match="non-numeric"):
            parse_midc(io.StringIO(midc_text(rows)))

    def test_duplicate_timestamp(self):
        rows = hourly_rows() + ["03/01/2010,07:00,1.0,5.0"]
        with pytest.raises(IngestError, match="duplicate timestamp"):
            parse_midc(io.StringIO(midc_text(rows)))

    def test_irregular_grid(self):
        rows = [
            "03/01/2010,00:00,1.0,5.0",
            "03/01/2010,00:10,1.0,5.0",
            "03/01/2010,00:24,1.0,5.0",  # not on the 10-minute grid
        ]
        with pytest.raises(IngestError, match="irregular time grid"):
            parse_midc(io.StringIO(midc_text(rows)))

    def test_non_divisor_resolution(self):
        rows = [f"03/01/2010,00:{m:02d},1.0,5.0" for m in (0, 7, 14, 21)]
        with pytest.raises(IngestError, match="does not divide a day"):
            parse_midc(io.StringIO(midc_text(rows)))

    def test_stray_offgrid_row_rejected_loudly(self):
        """One logger hiccup must not silently halve the inferred grid."""
        rows = hourly_rows() + ["03/01/2010,07:30,1.0,5.0"]
        with pytest.raises(IngestError, match="irregular time grid"):
            parse_midc(io.StringIO(midc_text(rows)))

    def test_short_row(self):
        rows = hourly_rows()
        rows[3] = "03/01/2010"
        with pytest.raises(IngestError, match="expected at least"):
            parse_midc(io.StringIO(midc_text(rows)))


class TestIngestAndResample:
    def test_negatives_clipped(self):
        rows = hourly_rows(value=lambda d, h: -1.5 if h < 6 else 100.0)
        result = ingest_csv(io.StringIO(midc_text(rows)), name="T")
        assert (result.raw.values >= 0).all()
        assert result.raw.values[0] == 0.0

    def test_resample_block_mean(self):
        rows = hourly_rows(value=lambda d, h: float(h))
        result = ingest_csv(
            io.StringIO(midc_text(rows)), name="T", resolution_minutes=120
        )
        assert result.clean.resolution_minutes == 120
        # Hours (6, 7) average to 6.5 once negatives/zeros are left alone.
        assert result.raw.values[3] == pytest.approx(6.5)

    def test_resample_missing_threshold(self):
        rows = hourly_rows()
        rows[10] = "03/01/2010,10:00,,5.0"  # 1 of 2 samples in its block
        result = ingest_csv(
            io.StringIO(midc_text(rows)), name="T", resolution_minutes=120
        )
        # Half valid == the 0.5 default threshold: still observed.
        assert not result.report.missing[5]
        stricter = ingest_csv(
            io.StringIO(midc_text(rows)),
            name="T",
            resolution_minutes=120,
            min_valid_fraction=0.75,
        )
        assert stricter.report.missing[5]

    def test_bad_target_resolution(self):
        for target in (30, 90, 7):  # finer, non-multiple, non-divisor
            with pytest.raises(IngestError, match="target resolution"):
                ingest_csv(
                    io.StringIO(midc_text(hourly_rows())),
                    resolution_minutes=target,
                )

    def test_default_name_from_path(self, tmp_path):
        path = tmp_path / "My Site 01.csv"
        path.write_text(midc_text(hourly_rows()))
        result = ingest_csv(path)
        assert result.clean.name == "MY-SITE-01"
        assert result.source == str(path)

    def test_report_renders(self):
        result = ingest_sample()
        text = format_ingest_report(result)
        assert "SAMPLE-MIDC" in text and "quality:" in text
        summary = summarise_quality(result.report)
        rendered = format_quality_summary(summary)
        assert "missing" in rendered and "clean days" in rendered


class TestDetectors:
    SPD = 24
    RES = 60

    def day(self, peak=400.0):
        """One synthetic day: night-flanked triangular profile."""
        v = np.zeros(self.SPD)
        v[6:19] = peak * (1.0 - np.abs(np.linspace(-1, 1, 13)) * 0.8)
        return v

    def detect(self, values, missing=None, **kw):
        return detect_quality(
            values, self.SPD, self.RES, missing=missing,
            thresholds=QualityThresholds(**kw) if kw else None,
        )

    def test_clean_trace_unflagged(self):
        report = self.detect(self.day())
        assert not report.any_defect.any()
        assert report.night_slots[0] and not report.night_slots[12]

    def test_spike_threshold(self):
        v = self.day()
        v[12] = 1600.0
        report = self.detect(v)
        assert report.spike[12] and report.spike.sum() == 1

    def test_stuck_flags_repeats_not_onset(self):
        v = self.day()
        v[9:14] = v[9]
        report = self.detect(v)
        assert not report.stuck[9]
        assert report.stuck[10:14].all()
        assert report.stuck.sum() == 4

    def test_short_plateau_unflagged(self):
        v = self.day()
        v[9] = v[10]  # run of 2 at 60-minute slots < 20-minute floor? no:
        # min run is max(2, round(20/60)) == 2, so a pair *is* flagged.
        report = self.detect(v)
        assert report.stuck[10] and report.stuck.sum() == 1

    def test_dropout_inside_daylight(self):
        v = self.day()
        v[10:13] = 0.0
        report = self.detect(v)
        assert report.dropout[10:13].all() and report.dropout.sum() == 3

    def test_night_zeros_not_dropout(self):
        report = self.detect(self.day())
        assert not report.dropout[:6].any()

    def test_missing_excluded_from_dropout(self):
        v = self.day()
        v[10:13] = 0.0
        missing = np.zeros(self.SPD, dtype=bool)
        missing[10:13] = True
        report = self.detect(v, missing=missing)
        assert not report.dropout.any()
        assert report.missing[10:13].all()

    def test_nan_is_missing(self):
        v = self.day()
        v[8] = np.nan
        report = self.detect(v)
        assert report.missing[8] and report.missing.sum() == 1

    def test_clean_values_repairs_and_preserves(self):
        # Three days so the night inference can tell a dropout column
        # (dark on one day, sunny on the others) from real night.
        v = np.concatenate([self.day(), self.day(), self.day()])
        v[12] = 1700.0
        v[8:11] = 0.0
        report = self.detect(v)
        assert report.spike[12] and report.dropout[8:11].all()
        cleaned = clean_values(v, report)
        untouched = ~report.any_defect
        assert np.array_equal(cleaned[untouched], v[untouched])
        assert 0 < cleaned[12] < report.thresholds.spike_wm2  # interpolated
        assert (cleaned[8:11] > 0).all()

    def test_clean_values_nothing_to_do(self):
        v = self.day()
        report = self.detect(v)
        assert clean_values(v, report).tobytes() == v.tobytes()


#: Hypothesis values: mostly plausible irradiance, some spikes, zeros
#: and NaN, over 1-3 days of 24 hourly slots.
_values = st.integers(1, 3).flatmap(
    lambda days: arrays(
        float,
        days * 24,
        elements=st.one_of(
            st.floats(0.0, 1400.0),
            st.just(0.0),
            st.floats(1500.1, 3000.0),
            st.just(float("nan")),
            st.sampled_from([250.0, 250.0, 777.7]),  # encourage repeats
        ),
    )
)


class TestDetectorProperties:
    @settings(max_examples=60, deadline=None)
    @given(values=_values, seed=st.integers(0, 2**31 - 1))
    def test_deterministic_and_disjoint(self, values, seed):
        """Masks are a pure function of the input and pairwise disjoint."""
        rng = np.random.default_rng(seed)
        missing = rng.random(values.size) < 0.1
        first = detect_quality(values, 24, 60, missing=missing)
        second = detect_quality(values, 24, 60, missing=missing)
        names = ("missing", "spike", "stuck", "dropout")
        for name in names:
            assert (
                getattr(first, name).tobytes() == getattr(second, name).tobytes()
            )
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                assert not (getattr(first, a) & getattr(first, b)).any()

    @settings(max_examples=40, deadline=None)
    @given(values=_values)
    def test_flag_value_contracts(self, values):
        """Each flag only ever lands on values matching its definition."""
        report = detect_quality(values, 24, 60)
        filled = np.where(report.missing, 0.0, values)
        assert (filled[report.spike] > report.thresholds.spike_wm2).all()
        assert (filled[report.stuck] > 0).all()
        assert (filled[report.dropout] == 0.0).all()
        assert report.missing.tobytes() == np.isnan(values).tobytes()


class TestReplayTransforms:
    def trace(self):
        v = np.zeros(48)
        v[12:36] = np.linspace(10, 500, 24)
        return SolarTrace(v, 30, "R")

    def test_geometry_bound(self):
        mask = np.zeros(96, dtype=bool)
        mask[50] = True
        scenario = Scenario(name="x", transforms=(ReplayedDropout(mask=mask),))
        with pytest.raises(ValueError, match="geometry"):
            scenario.apply(self.trace())

    def test_masks_require_payload(self):
        with pytest.raises(ValueError, match="mask"):
            ReplayedGaps()
        with pytest.raises(ValueError, match="mask"):
            ReplayedDropout()
        with pytest.raises(ValueError, match="mask"):
            ReplayedStuck()
        with pytest.raises(ValueError, match="mask"):
            ReplayedSpikes()

    def test_stuck_rejects_flagged_first_sample(self):
        mask = np.zeros(48, dtype=bool)
        mask[0] = True
        with pytest.raises(ValueError, match="sample 0"):
            ReplayedStuck(mask=mask)

    def test_spike_amplitude_count_checked(self):
        mask = np.zeros(48, dtype=bool)
        mask[20] = True
        with pytest.raises(ValueError, match="amplitude count"):
            ReplayedSpikes(mask=mask, amplitudes=np.array([1.0, 2.0]))

    def test_replay_is_deterministic_scenario(self):
        trace = self.trace()
        mask = np.zeros(48, dtype=bool)
        mask[20:24] = True
        scenario = Scenario(
            name="drop", transforms=(ReplayedDropout(mask=mask),), seed=1
        )
        a = scenario.apply(trace)
        b = scenario.with_seed(999).apply(trace)
        assert a.values.tobytes() == b.values.tobytes()
        assert (a.values[20:24] == 0).all()


class TestSampleRoundTrip:
    """The acceptance property on the bundled sample file."""

    @pytest.fixture(scope="class")
    def result(self):
        return ingest_sample()

    def test_sample_carries_every_flag(self, result):
        counts = result.report.counts()
        assert all(counts[name] > 0 for name in counts)

    def test_replay_reproduces_raw_values_exactly(self, result):
        replayed = result.scenario.apply(result.clean)
        assert replayed.values.tobytes() == result.raw.values.tobytes()

    def test_replay_reproduces_masks_exactly(self, result):
        replayed = result.scenario.apply(result.clean)
        re_report = detect_quality(
            replayed.values,
            result.report.samples_per_day,
            result.report.resolution_minutes,
            missing=result.report.missing,
            thresholds=result.report.thresholds,
        )
        for name in ("missing", "spike", "stuck", "dropout"):
            assert (
                getattr(re_report, name).tobytes()
                == getattr(result.report, name).tobytes()
            ), name

    def test_clean_differs_from_raw_only_on_flags(self, result):
        same = result.clean.values == result.raw.values
        assert same[~result.report.any_defect].all()
        assert result.clean.n_days == 28
        assert result.clean.resolution_minutes == 5

    def test_scenario_via_builder_matches(self, result):
        rebuilt = build_replay_scenario(
            result.report, result.raw.values, name="again"
        )
        assert (
            rebuilt.apply(result.clean).values.tobytes()
            == result.raw.values.tobytes()
        )

    def test_resampled_ingest_round_trips_too(self):
        result = ingest_sample(resolution_minutes=15)
        assert result.clean.samples_per_day == 96
        replayed = result.scenario.apply(result.clean)
        assert replayed.values.tobytes() == result.raw.values.tobytes()

    def test_night_defects_round_trip_exactly(self):
        """Spike/stuck glitches in night columns repair to zero in the
        clean trace yet replay back to the recorded readings."""
        day = np.zeros(24)
        day[6:19] = 300.0 + np.arange(13) * 7.0
        v = np.concatenate([day, day, day])
        v[2] = 1600.0          # nocturnal spike (night column)
        v[26:29] = 42.0        # nocturnal stuck plateau, onset at 26
        rows = [
            f"03/{1 + i // 24:02d}/2010,{i % 24:02d}:00,{v[i]},5.0"
            for i in range(v.size)
        ]
        result = ingest_csv(io.StringIO(midc_text(rows)), name="NIGHT")
        report = result.report
        assert report.spike[2]
        assert report.stuck[27:29].all() and not report.stuck[26]
        # Clean repairs night-column defects to darkness...
        assert result.clean.values[2] == 0.0
        assert (result.clean.values[27:29] == 0.0).all()
        # ...and the replay still restores the raw readings exactly.
        replayed = result.scenario.apply(result.clean)
        assert replayed.values.tobytes() == result.raw.values.tobytes()


class TestMeasuredSites:
    def test_registration_and_lookup(self, measured_registry_guard):
        site = register_measured_site(sample_csv_path(), name="MEAS")
        assert site.name == "MEAS"
        assert site.n_days == 28 and site.samples_per_day == 288
        assert "MEAS" in available_datasets()
        assert samples_per_day_for("MEAS") == 288
        assert measured_site("meas") is site
        unregister_measured_site("MEAS")
        assert "MEAS" not in available_datasets()
        assert available_datasets() == SITE_ORDER

    def test_duplicate_and_collision_rejected(self, measured_registry_guard):
        register_measured_site(sample_csv_path(), name="MEAS")
        with pytest.raises(ValueError, match="already registered"):
            register_measured_site(sample_csv_path(), name="MEAS")
        register_measured_site(sample_csv_path(), name="MEAS", overwrite=True)
        with pytest.raises(ValueError, match="collides"):
            register_measured_site(sample_csv_path(), name="PFCI")

    def test_build_dataset_serves_clean_trace(self, measured_registry_guard):
        register_measured_site(sample_csv_path(), name="MEAS")
        trace = build_dataset("MEAS", n_days=10)
        assert trace.n_days == 10
        full = build_dataset("MEAS", n_days=28)
        assert np.array_equal(trace.values, full.values[: trace.n_samples])
        with pytest.raises(ValueError, match="cannot be extended"):
            build_dataset("MEAS", n_days=29)
        with pytest.raises(ValueError, match="seed is not applicable"):
            build_dataset("MEAS", n_days=10, seed=3)

    def test_experiment_helpers_accept_measured(self, measured_registry_guard):
        register_measured_site(sample_csv_path(), name="MEAS")
        assert sites_for(("pfci", "meas")) == ("PFCI", "MEAS")
        assert supported_n_for_site("MEAS", (288, 96, 48, 100)) == (288, 96, 48)
        clear_batch_cache()
        trace = trace_for("MEAS", 14)
        assert trace.n_days == 14 and trace.name == "MEAS"

    def test_predictors_and_sweep_consume_measured(self, measured_registry_guard):
        site = register_measured_site(sample_csv_path(), name="MEAS")
        trace = site.build()
        run = evaluate_predictor(make_predictor("ewma", 48), trace, 48)
        assert 0 < run.mape < 2.0

    def test_fleet_specs_accept_measured(self, measured_registry_guard):
        from repro.experiments.fleet import build_fleet_specs

        register_measured_site(sample_csv_path(), name="MEAS")
        specs = build_fleet_specs(
            n_nodes=2, sites=("MEAS",), n_days=8, predictors=("persistence",)
        )
        assert specs[0].trace.name == "MEAS"

    def test_reregistration_invalidates_trace_memo(
        self, measured_registry_guard, tmp_path
    ):
        """Re-registering a name against a different file must not serve
        the previous file's memoised trace."""

        def write(path, level):
            rows = [
                f"03/01/2010,{h:02d}:00,{level if 6 <= h <= 18 else 0.0}"
                for h in range(24)
            ]
            path.write_text("DATE,MST,Global [W/m^2]\n" + "\n".join(rows) + "\n")

        first = tmp_path / "a.csv"
        second = tmp_path / "b.csv"
        write(first, 100.0)
        write(second, 50.0)
        register_measured_site(first, name="M")
        before = trace_for("M", 1)
        assert before.values.max() == 100.0
        register_measured_site(second, name="M", overwrite=True)
        after = trace_for("M", 1)
        assert after.values.max() == 50.0

    def test_robustness_matrix_measured_parity(self, measured_registry_guard):
        """Sequential == parallel on a measured site, defects included."""
        site = register_measured_site(sample_csv_path(), name="MEAS")
        kwargs = dict(
            n_days=site.n_days,
            sites=("MEAS",),
            scenarios=("clean", site.defects_scenario_name),
            predictors=("persistence",),
            tune_wcma=False,
        )
        sequential = run_robustness(**kwargs)
        parallel = run_robustness(jobs=2, **kwargs)
        assert sequential.rows == parallel.rows
        defect_rows = [
            r for r in sequential.rows if r["scenario"] == "meas-defects"
        ]
        assert len(defect_rows) == 1
        assert defect_rows[0]["dMAPE vs clean (pp)"] is not None
