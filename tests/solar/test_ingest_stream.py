"""Tests for the streaming ingest path and the parser hardening.

The acceptance property of the streaming reader is *byte-identity*:
``ingest_stream`` (and the lower-level ``stream_channel``) must produce
exactly the bits of the whole-file path on any date-grouped file, while
holding at most one day of samples at a time.  Covered here: parity on
the bundled sample and on hypothesis-generated files, bounded-memory
laziness (consumption tracking), the streaming-only error paths
(out-of-order dates, non-seekable sources), the BOM/CRLF/sentinel-
whitespace hardening, and the thread safety of the measured-site ingest
memo.
"""

import io
import re
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solar.ingest import (
    IngestError,
    ingest_csv,
    ingest_stream,
    iter_days,
    parse_midc,
    sample_csv_path,
    scan_midc,
    stream_channel,
)


HEADER = "DATE (MM/DD/YYYY),MST,Global Horizontal [W/m^2],Air Temperature [deg C]"


def midc_text(rows, header=HEADER):
    return "\n".join([header] + rows) + "\n"


def hourly_rows(days=1, value=lambda day, hour: 100.0 * (6 <= hour <= 18)):
    rows = []
    for day in range(days):
        for hour in range(24):
            rows.append(
                f"03/{day + 1:02d}/2010,{hour:02d}:00,{value(day, hour)},5.0"
            )
    return rows


def assert_channels_identical(streamed, parsed):
    assert streamed.values.tobytes() == parsed.values.tobytes()
    assert streamed.resolution_minutes == parsed.resolution_minutes
    assert streamed.channel == parsed.channel
    assert streamed.channels == parsed.channels
    assert streamed.start_date == parsed.start_date


class TestScan:
    def test_metadata_matches_whole_file_parse(self):
        text = midc_text(hourly_rows(days=3))
        info = scan_midc(io.StringIO(text))
        parsed = parse_midc(io.StringIO(text))
        assert info.resolution_minutes == parsed.resolution_minutes
        assert info.channel == parsed.channel
        assert info.channels == parsed.channels
        assert info.n_days == parsed.n_days
        assert info.samples_per_day == parsed.samples_per_day
        assert info.start_date == parsed.start_date
        assert info.n_rows == 72

    @pytest.mark.parametrize(
        "rows",
        [
            [],
            ["03/01/2010,00:00,100.0,5.0", "03/01/2010,00:17,50.0,5.0"],
        ],
        ids=["empty", "off-grid"],
    )
    def test_error_parity_with_parse(self, rows):
        text = midc_text(rows)
        with pytest.raises(IngestError) as parse_err:
            parse_midc(io.StringIO(text))
        with pytest.raises(IngestError) as scan_err:
            scan_midc(io.StringIO(text))
        assert str(scan_err.value) == str(parse_err.value)

    def test_span_guard(self):
        rows = [
            "01/01/2010,00:00,1.0,5.0",
            "01/01/2019,00:00,1.0,5.0",
        ]
        with pytest.raises(IngestError, match="spans"):
            scan_midc(io.StringIO(midc_text(rows)))


class TestIterDays:
    def test_chunks_match_parse_day_rows(self):
        text = midc_text(hourly_rows(days=4))
        parsed = parse_midc(io.StringIO(text))
        days = parsed.values.reshape(parsed.n_days, -1)
        chunks = list(iter_days(io.StringIO(text)))
        assert len(chunks) == parsed.n_days
        for i, chunk in enumerate(chunks):
            assert chunk.values.tobytes() == days[i].tobytes()
            assert chunk.values.size == parsed.samples_per_day
        assert chunks[0].date == parsed.start_date

    def test_gap_days_yielded_all_nan(self):
        rows = [
            "03/01/2010,00:00,10.0,5.0",
            "03/01/2010,01:00,20.0,5.0",
            "03/04/2010,00:00,30.0,5.0",
        ]
        chunks = list(iter_days(io.StringIO(midc_text(rows))))
        assert [c.date for c in chunks] == [
            "2010-03-01", "2010-03-02", "2010-03-03", "2010-03-04",
        ]
        assert np.all(np.isnan(chunks[1].values))
        assert np.all(np.isnan(chunks[2].values))

    def test_out_of_order_dates_rejected(self):
        rows = [
            "03/02/2010,00:00,10.0,5.0",
            "03/01/2010,00:00,20.0,5.0",
        ]
        with pytest.raises(IngestError, match="grouped by date"):
            list(iter_days(io.StringIO(midc_text(rows))))

    def test_duplicate_timestamp_rejected(self):
        rows = [
            "03/01/2010,00:00,10.0,5.0",
            "03/01/2010,00:00,20.0,5.0",
        ]
        with pytest.raises(IngestError, match="duplicate timestamp"):
            list(iter_days(io.StringIO(midc_text(rows))))

    def test_lazy_one_day_lookahead(self):
        """Consuming a chunk reads at most one day past its rows."""
        n_days = 10
        text = midc_text(hourly_rows(days=n_days))

        class CountingLines:
            def __init__(self, text):
                self._lines = iter(text.splitlines(keepends=True))
                self.consumed = 0

            def __iter__(self):
                return self

            def __next__(self):
                line = next(self._lines)
                self.consumed += 1
                return line

        source = CountingLines(text)
        chunks = iter_days(source, resolution_minutes=60)
        next(chunks)
        # Day 1 is yielded once day 2's first row shows the date change:
        # header + 24 rows of day 1 + at most a handful of day-2 rows.
        assert source.consumed <= 1 + 24 + 2
        remaining = list(chunks)
        assert len(remaining) == n_days - 1

    def test_non_seekable_stream_needs_explicit_resolution(self):
        text = midc_text(hourly_rows(days=1))

        lines = iter(text.splitlines(keepends=True))
        with pytest.raises(IngestError, match="resolution_minutes"):
            list(iter_days(lines))
        # Same one-shot source works once the scan pass is unnecessary.
        lines = iter(text.splitlines(keepends=True))
        chunks = list(iter_days(lines, resolution_minutes=60))
        assert len(chunks) == 1

    def test_bad_explicit_resolution(self):
        with pytest.raises(IngestError, match="divide a day"):
            list(iter_days(io.StringIO(midc_text(hourly_rows())), resolution_minutes=7))


class TestStreamParity:
    def test_sample_file_stream_channel_identical(self):
        streamed = stream_channel(sample_csv_path())
        parsed = parse_midc(sample_csv_path())
        assert_channels_identical(streamed, parsed)

    @pytest.mark.parametrize("resolution", [None, 15])
    def test_sample_file_ingest_stream_identical(self, resolution):
        whole = ingest_csv(sample_csv_path(), resolution_minutes=resolution)
        streamed = ingest_stream(sample_csv_path(), resolution_minutes=resolution)
        assert streamed.raw.values.tobytes() == whole.raw.values.tobytes()
        assert streamed.clean.values.tobytes() == whole.clean.values.tobytes()
        for flag in ("missing", "spike", "stuck", "dropout"):
            assert (
                getattr(streamed.report, flag).tobytes()
                == getattr(whole.report, flag).tobytes()
            )
        assert streamed.start_date == whole.start_date
        assert streamed.channel == whole.channel
        assert streamed.native_resolution_minutes == whole.native_resolution_minutes
        # The replay round trip survives the streaming path too.
        np.testing.assert_array_equal(
            streamed.scenario.apply(streamed.clean).values, streamed.raw.values
        )

    def test_seekable_stream_source(self):
        text = midc_text(hourly_rows(days=3))
        whole = ingest_csv(io.StringIO(text))
        streamed = ingest_stream(io.StringIO(text))
        assert streamed.clean.values.tobytes() == whole.clean.values.tobytes()

    def test_non_seekable_stream_rejected_clearly(self):
        text = midc_text(hourly_rows(days=1))
        with pytest.raises(IngestError, match="two passes"):
            ingest_stream(iter(text.splitlines(keepends=True)))

    # Generated files: arbitrary day patterns with missing cells,
    # sentinel values and absent rows must stream byte-identically.
    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.lists(
                st.one_of(
                    st.none(),  # row absent
                    st.just("-9999"),  # sentinel -> NaN
                    st.just(""),  # empty cell -> NaN
                    st.floats(0, 900, allow_nan=False).map(lambda v: f"{v:.1f}"),
                ),
                min_size=24,
                max_size=24,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_generated_files_stream_identically(self, data):
        rows = []
        for day, cells in enumerate(data):
            for hour, cell in enumerate(cells):
                if cell is None:
                    continue
                rows.append(f"03/{day + 1:02d}/2010,{hour:02d}:00,{cell},5.0")
        text = midc_text(rows)
        try:
            parsed = parse_midc(io.StringIO(text))
        except IngestError as exc:
            # Degenerate inputs (no rows, or too few distinct minutes to
            # infer the grid) must fail identically in both paths.
            with pytest.raises(IngestError, match=re.escape(str(exc))):
                stream_channel(io.StringIO(text))
            return
        streamed = stream_channel(io.StringIO(text))
        assert_channels_identical(streamed, parsed)


class TestParserHardening:
    """BOM, CRLF and padded sentinels must not derail any read mode."""

    def bom_crlf_text(self):
        rows = hourly_rows(days=2)
        return "\ufeff" + "\r\n".join([HEADER] + rows) + "\r\n"

    def test_bom_and_crlf_stream(self):
        plain = parse_midc(io.StringIO(midc_text(hourly_rows(days=2))))
        hardened = parse_midc(io.StringIO(self.bom_crlf_text()))
        assert_channels_identical(hardened, plain)

    def test_bom_and_crlf_path(self, tmp_path):
        path = tmp_path / "bom.csv"
        path.write_bytes(self.bom_crlf_text().encode("utf-8"))
        plain = parse_midc(io.StringIO(midc_text(hourly_rows(days=2))))
        for read in (parse_midc, stream_channel):
            assert_channels_identical(read(path), plain)

    def test_utf8_sig_double_bom_path(self, tmp_path):
        # Files saved by BOM-happy tooling: encoder adds its own BOM.
        path = tmp_path / "sig.csv"
        path.write_text(midc_text(hourly_rows(days=1)), encoding="utf-8-sig")
        parsed = parse_midc(path)
        assert parsed.channel == "Global Horizontal [W/m^2]"
        assert parsed.n_days == 1

    def test_sentinel_with_padding_is_missing(self):
        rows = [
            "03/01/2010,00:00, -9999.0 ,5.0",
            "03/01/2010,01:00,  -99999 ,5.0",
            "03/01/2010,02:00, 42.0 ,5.0",
        ]
        parsed = parse_midc(io.StringIO(midc_text(rows)))
        assert np.isnan(parsed.values[0])
        assert np.isnan(parsed.values[1])
        assert parsed.values[2] == 42.0
        streamed = stream_channel(io.StringIO(midc_text(rows)))
        assert streamed.values.tobytes() == parsed.values.tobytes()


class TestIngestMemoLock:
    def test_concurrent_ingest_runs_once(self, tmp_path, monkeypatch):
        """Racing threads share one ingestion, not one each."""
        from repro.solar.ingest import sites as sites_mod

        csv_path = tmp_path / "memo.csv"
        rows = hourly_rows(days=2)
        csv_path.write_text(midc_text(rows))

        calls = []
        real_ingest = sites_mod.ingest_csv
        started = threading.Barrier(8 + 1, timeout=10)

        def counting_ingest(*args, **kwargs):
            calls.append(threading.get_ident())
            return real_ingest(*args, **kwargs)

        monkeypatch.setattr(sites_mod, "ingest_csv", counting_ingest)
        site = sites_mod.MeasuredSite(
            name="MEMO",
            path=str(csv_path),
            channel=None,
            resolution_minutes=None,
            samples_per_day=24,
            n_days=2,
        )
        results = []

        def worker():
            started.wait()
            results.append(site.ingest())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        started.wait()
        for t in threads:
            t.join(timeout=30)
        try:
            assert len(results) == 8
            assert len(calls) == 1, "memoised ingest ran more than once"
            assert all(r is results[0] for r in results)
        finally:
            sites_mod._INGEST_CACHE.clear()
