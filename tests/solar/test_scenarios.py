"""Unit tests for the scenario engine (transforms, Scenario, registry)."""

import numpy as np
import pytest

from repro.solar.scenarios import (
    CloudRegimeShift,
    MissingGaps,
    PartialShading,
    Scenario,
    SensorDropout,
    SoilingRamp,
    StuckAtFault,
    TimestampJitter,
    Transform,
    TransformContext,
    available_scenarios,
    make_scenario,
    register_scenario,
    scenario_descriptions,
    unregister_scenario,
)


def _ctx(trace, seed=0):
    return TransformContext(
        resolution_minutes=trace.resolution_minutes,
        samples_per_day=trace.samples_per_day,
        n_days=trace.n_days,
        rng=np.random.default_rng(seed),
    )


class TestTransforms:
    def test_soiling_monotone_attenuation(self, repeating_day_trace):
        out = SoilingRamp(rate_per_day=0.01, floor=0.5)(
            repeating_day_trace.values, _ctx(repeating_day_trace)
        )
        days = out.reshape(30, -1).sum(axis=1)
        base = repeating_day_trace.as_days().sum(axis=1)
        ratio = days / base
        assert np.all(np.diff(ratio) <= 1e-12)
        assert ratio[0] == pytest.approx(1.0)
        assert ratio[-1] == pytest.approx(1.0 - 0.01 * 29)

    def test_soiling_washout_resets(self, repeating_day_trace):
        out = SoilingRamp(rate_per_day=0.01, wash_interval_days=10)(
            repeating_day_trace.values, _ctx(repeating_day_trace)
        )
        ratio = out.reshape(30, -1).sum(axis=1) / repeating_day_trace.daily_energy() * (
            repeating_day_trace.resolution_minutes / 60.0
        )
        # Day 10 and day 20 are washes: back to full harvest.
        assert ratio[10] == pytest.approx(ratio[0])
        assert ratio[20] == pytest.approx(ratio[0])
        assert ratio[9] < ratio[0]

    def test_shading_window_only(self, repeating_day_trace):
        shading = PartialShading(start_hour=10.0, end_hour=12.0, attenuation=0.5)
        out = shading(repeating_day_trace.values, _ctx(repeating_day_trace))
        day_in = repeating_day_trace.day(0)
        day_out = out.reshape(30, -1)[0]
        spd = repeating_day_trace.samples_per_day
        window = slice(int(10.0 / 24 * spd), int(12.0 / 24 * spd))
        np.testing.assert_allclose(day_out[window], 0.5 * day_in[window])
        outside = np.ones(spd, dtype=bool)
        outside[window] = False
        np.testing.assert_array_equal(day_out[outside], day_in[outside])

    def test_shading_seasonal_day_range(self, repeating_day_trace):
        shading = PartialShading(
            start_hour=10.0, end_hour=12.0, attenuation=0.5, days=(5, 10)
        )
        out = shading(repeating_day_trace.values, _ctx(repeating_day_trace))
        shaped = out.reshape(30, -1)
        np.testing.assert_array_equal(shaped[0], repeating_day_trace.day(0))
        assert shaped[7].sum() < repeating_day_trace.day(7).sum()
        np.testing.assert_array_equal(shaped[12], repeating_day_trace.day(12))

    def test_dropout_zeroes_windows(self, repeating_day_trace):
        dropout = SensorDropout(rate_per_day=3.0, mean_duration_minutes=120.0)
        out = dropout(repeating_day_trace.values, _ctx(repeating_day_trace, seed=5))
        assert (out == 0).sum() > (repeating_day_trace.values == 0).sum()
        changed = out != repeating_day_trace.values
        assert (out[changed] == 0).all()

    def test_stuck_holds_onset_value(self, repeating_day_trace):
        stuck = StuckAtFault(rate_per_day=5.0, mean_duration_minutes=180.0)
        out = stuck(repeating_day_trace.values, _ctx(repeating_day_trace, seed=9))
        changed = np.flatnonzero(out != repeating_day_trace.values)
        assert changed.size > 0
        # Every changed daylight sample equals some original sample value
        # (the held onset), never an interpolated invention.
        originals = set(np.round(repeating_day_trace.values, 9))
        assert set(np.round(out[changed], 9)) <= originals

    @pytest.mark.parametrize("policy", ["zero", "hold", "interp"])
    def test_gap_policies(self, repeating_day_trace, policy):
        gaps = MissingGaps(
            rate_per_day=3.0, mean_duration_minutes=120.0, policy=policy
        )
        out = gaps(repeating_day_trace.values, _ctx(repeating_day_trace, seed=3))
        assert out.shape == repeating_day_trace.values.shape
        assert (out >= 0).all()
        if policy == "zero":
            changed = out != repeating_day_trace.values
            assert (out[changed] == 0).all()
        else:
            # Imputed values stay within the trace's physical range.
            assert out.max() <= repeating_day_trace.values.max() + 1e-9

    def test_gap_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown gap policy"):
            MissingGaps(policy="magic")

    def test_regime_shift_darkens_after_onset(self, repeating_day_trace):
        shift = CloudRegimeShift(onset_day=15)
        out = shift(repeating_day_trace.values, _ctx(repeating_day_trace, seed=2))
        shaped = out.reshape(30, -1)
        before = shaped[:15].sum()
        np.testing.assert_array_equal(
            shaped[:15], repeating_day_trace.as_days()[:15]
        )
        assert shaped[15:].sum() < repeating_day_trace.as_days()[15:].sum()
        assert before == repeating_day_trace.as_days()[:15].sum()

    def test_regime_shift_beyond_trace_is_noop(self, repeating_day_trace):
        shift = CloudRegimeShift(onset_day=100)
        out = shift(repeating_day_trace.values, _ctx(repeating_day_trace, seed=2))
        np.testing.assert_array_equal(out, repeating_day_trace.values)

    def test_jitter_preserves_daylight_energy_approximately(
        self, repeating_day_trace
    ):
        jitter = TimestampJitter(max_shift_minutes=30.0)
        out = jitter(repeating_day_trace.values, _ctx(repeating_day_trace, seed=4))
        assert not np.array_equal(out, repeating_day_trace.values)
        # Rolls move samples within a day; total energy can only shrink
        # (night clamping), never grow.
        assert out.sum() <= repeating_day_trace.values.sum() + 1e-9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SoilingRamp(rate_per_day=1.5)
        with pytest.raises(ValueError):
            PartialShading(start_hour=10.0, end_hour=9.0)
        with pytest.raises(ValueError):
            SensorDropout(mean_duration_minutes=0.0)
        with pytest.raises(ValueError):
            StuckAtFault(rate_per_day=-1.0)
        with pytest.raises(ValueError):
            CloudRegimeShift(onset_day=-1)
        with pytest.raises(ValueError):
            TimestampJitter(max_shift_minutes=-5.0)

    def test_transform_cannot_change_sample_count(self, repeating_day_trace):
        class Broken(Transform):
            def _transform(self, values, ctx):
                return values[:-1]

        with pytest.raises(ValueError, match="sample count"):
            Broken()(repeating_day_trace.values, _ctx(repeating_day_trace))


class TestScenario:
    def test_empty_scenario_is_identity_object(self, hsu_trace):
        assert Scenario(name="clean").apply(hsu_trace) is hsu_trace

    def test_apply_names_and_geometry(self, hsu_trace):
        scenario = make_scenario("soiling")
        out = scenario.apply(hsu_trace)
        assert out.name == "HSU+soiling"
        assert out.n_days == hsu_trace.n_days
        assert out.resolution_minutes == hsu_trace.resolution_minutes

    def test_with_seed(self, hsu_trace):
        a = make_scenario("dropout", seed=1)
        b = a.with_seed(2)
        assert b.seed == 2 and b.transforms == a.transforms
        assert not np.array_equal(a.apply(hsu_trace).values, b.apply(hsu_trace).values)

    def test_compose_flattens_in_order(self):
        soiling = make_scenario("soiling", seed=3)
        shading = make_scenario("shading", seed=9)
        combined = Scenario.compose([soiling, shading])
        assert [type(t).__name__ for t in combined.transforms] == [
            "SoilingRamp",
            "PartialShading",
        ]
        assert combined.seed == 3  # first composed scenario's seed
        assert combined.name == "soiling+shading"

    def test_compose_accepts_bare_transforms(self, hsu_trace):
        combined = Scenario.compose(
            [SoilingRamp(rate_per_day=0.01), PartialShading()], name="combo", seed=7
        )
        out = combined.apply(hsu_trace)
        assert out.name == "HSU+combo"

    def test_compose_rejects_junk(self):
        with pytest.raises(TypeError):
            Scenario.compose([42])
        with pytest.raises(ValueError):
            Scenario.compose([])

    def test_transforms_type_checked(self):
        with pytest.raises(TypeError):
            Scenario(name="x", transforms=("not-a-transform",))

    def test_repr_mentions_chain(self):
        scenario = make_scenario("harsh-field")
        assert "SoilingRamp" in repr(scenario)
        assert "harsh-field" in repr(scenario)


class TestRegistry:
    def test_catalogue_size_and_clean(self):
        names = available_scenarios()
        assert "clean" in names
        assert len(names) >= 10

    def test_descriptions_cover_catalogue(self):
        descriptions = scenario_descriptions()
        assert set(descriptions) == set(available_scenarios())
        assert all(descriptions[n] for n in ("clean", "soiling", "regime-shift"))

    def test_make_scenario_unknown(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            make_scenario("definitely-not-registered")

    def test_register_unregister_roundtrip(self):
        register_scenario(
            "test-temp", lambda seed: Scenario(name="test-temp", seed=seed)
        )
        try:
            assert "test-temp" in available_scenarios()
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(
                    "test-temp", lambda seed: Scenario(name="t", seed=seed)
                )
            register_scenario(
                "test-temp",
                lambda seed: Scenario(name="test-temp2", seed=seed),
                overwrite=True,
            )
            assert make_scenario("test-temp").name == "test-temp2"
        finally:
            unregister_scenario("test-temp")
        assert "test-temp" not in available_scenarios()
        with pytest.raises(KeyError):
            unregister_scenario("test-temp")

    def test_factory_kwargs_pass_through(self, hsu_trace):
        heavy = make_scenario("soiling", rate_per_day=0.02)
        light = make_scenario("soiling", rate_per_day=0.0005)
        assert (
            heavy.apply(hsu_trace).values.sum()
            < light.apply(hsu_trace).values.sum()
        )

    def test_every_builtin_scenario_applies(self, spmd_trace):
        """Every catalogue entry works on a 5-minute site too."""
        for name in available_scenarios():
            out = make_scenario(name, seed=11).apply(spmd_trace)
            assert out.n_days == spmd_trace.n_days
            assert (out.values >= 0).all()
