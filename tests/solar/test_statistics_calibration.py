"""Tests for trace statistics and site calibration."""

import numpy as np
import pytest

from repro.solar.calibration import calibrate_site
from repro.solar.clearsky import clearsky_profile
from repro.solar.datasets import build_dataset
from repro.solar.sites import get_site
from repro.solar.statistics import (
    classify_days,
    clear_sky_index,
    daily_clearness,
    trace_statistics,
)
from repro.solar.synthetic import generate_trace
from repro.solar.trace import SolarTrace


def clearsky_only_trace(n_days=10, latitude=35.0):
    days = [clearsky_profile(latitude, d, 288) for d in range(1, n_days + 1)]
    return SolarTrace(np.concatenate(days), 5, "cs"), latitude


class TestClearSkyIndex:
    def test_clear_trace_index_near_one(self):
        trace, lat = clearsky_only_trace()
        k = clear_sky_index(trace, lat)
        daylight = k[k > 0]
        assert daylight.min() > 0.95
        assert daylight.max() < 1.05

    def test_night_index_zero(self):
        trace, lat = clearsky_only_trace()
        k = clear_sky_index(trace, lat).reshape(10, 288)
        assert k[:, 0].max() == 0.0  # midnight

    def test_scaled_trace_scales_index(self):
        trace, lat = clearsky_only_trace()
        half = SolarTrace(trace.values * 0.5, 5, "half")
        k = clear_sky_index(half, lat)
        daylight = k[k > 0]
        assert daylight.mean() == pytest.approx(0.5, abs=0.02)


class TestDailyClearness:
    def test_clear_trace_near_one(self):
        trace, lat = clearsky_only_trace()
        clearness = daily_clearness(trace, lat)
        assert clearness == pytest.approx(np.ones(10), abs=0.02)

    def test_classification_thresholds(self):
        trace, lat = clearsky_only_trace(n_days=3)
        # Scale day 1 to 60%, day 2 to 20% of clear sky.
        days = trace.as_days().copy()
        days[1] *= 0.6
        days[2] *= 0.2
        mixed = SolarTrace(days.reshape(-1), 5, "mixed")
        labels = classify_days(mixed, lat)
        assert labels.tolist() == [0, 1, 2]  # CLEAR, PARTLY, OVERCAST

    def test_classify_rejects_bad_bounds(self):
        trace, lat = clearsky_only_trace(n_days=2)
        with pytest.raises(ValueError):
            classify_days(trace, lat, bounds=(0.8, 0.4))


class TestTraceStatistics:
    def test_fractions_sum_to_one(self, hsu_trace):
        stats = trace_statistics(hsu_trace, get_site("HSU").latitude_deg)
        total = (
            stats.clear_fraction + stats.partly_fraction + stats.overcast_fraction
        )
        assert total == pytest.approx(1.0)

    def test_sunny_site_clearer_and_calmer(self):
        pfci = trace_statistics(
            build_dataset("PFCI", n_days=45), get_site("PFCI").latitude_deg
        )
        ornl = trace_statistics(
            build_dataset("ORNL", n_days=45), get_site("ORNL").latitude_deg
        )
        assert pfci.mean_clearness > ornl.mean_clearness
        assert pfci.midday_step_variability < ornl.midday_step_variability
        assert pfci.clear_fraction > ornl.clear_fraction


class TestCalibration:
    def test_needs_enough_days(self):
        trace, lat = clearsky_only_trace(n_days=10)
        with pytest.raises(ValueError, match="30 days"):
            calibrate_site(trace, lat)

    def test_round_trip_statistics(self):
        """Calibrate from a synthetic HSU year, regenerate, and compare
        the statistics the experiments are sensitive to."""
        source_site = get_site("HSU")
        source = build_dataset("HSU", n_days=120)
        fitted = calibrate_site(source, source_site.latitude_deg, name="HSU-FIT")
        regenerated = generate_trace(fitted, n_days=120, seed=99)

        stats_source = trace_statistics(source, source_site.latitude_deg)
        stats_regen = trace_statistics(regenerated, source_site.latitude_deg)

        assert stats_regen.mean_clearness == pytest.approx(
            stats_source.mean_clearness, abs=0.12
        )
        assert stats_regen.clear_fraction == pytest.approx(
            stats_source.clear_fraction, abs=0.2
        )
        # Variability within a factor of two (moment matching, not exact).
        ratio = (
            stats_regen.midday_step_variability
            / stats_source.midday_step_variability
        )
        assert 0.4 < ratio < 2.5

    def test_fitted_profile_metadata(self):
        source = build_dataset("PFCI", n_days=60)
        fitted = calibrate_site(
            source, get_site("PFCI").latitude_deg, name="X", location="ZZ", seed=1
        )
        assert fitted.name == "X"
        assert fitted.location == "ZZ"
        assert fitted.resolution_minutes == source.resolution_minutes
        # The fitted Markov chain is a valid stochastic matrix.
        assert np.allclose(fitted.day_type_model.transition.sum(axis=1), 1.0)
