"""Tests for the stochastic cloud model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solar.clouds import (
    CloudModelParams,
    DayType,
    DayTypeModel,
    IntradayCloudModel,
)


def make_chain(persistence=0.5):
    stationary = np.array([0.5, 0.3, 0.2])
    transition = persistence * np.eye(3) + (1 - persistence) * np.tile(
        stationary, (3, 1)
    )
    return DayTypeModel(transition=transition, initial=stationary)


class TestDayTypeModel:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            DayTypeModel(transition=np.eye(2))
        with pytest.raises(ValueError):
            DayTypeModel(transition=np.eye(3), initial=np.array([0.5, 0.5]))

    def test_rejects_non_stochastic_rows(self):
        bad = np.full((3, 3), 0.5)
        with pytest.raises(ValueError):
            DayTypeModel(transition=bad)

    def test_rejects_negative_probabilities(self):
        bad = np.array([[1.5, -0.5, 0.0], [0.3, 0.4, 0.3], [0.3, 0.4, 0.3]])
        with pytest.raises(ValueError):
            DayTypeModel(transition=bad)

    def test_sample_days_deterministic_per_seed(self):
        chain = make_chain()
        a = chain.sample_days(50, np.random.default_rng(1))
        b = chain.sample_days(50, np.random.default_rng(1))
        assert (a == b).all()

    def test_sample_days_values_in_range(self):
        days = make_chain().sample_days(200, np.random.default_rng(2))
        assert set(np.unique(days)).issubset({0, 1, 2})

    def test_stationary_distribution(self):
        chain = make_chain(persistence=0.4)
        pi = chain.stationary_distribution()
        assert pi == pytest.approx([0.5, 0.3, 0.2], abs=1e-9)
        # pi is invariant under the transition.
        assert pi @ chain.transition == pytest.approx(pi, abs=1e-9)

    def test_empirical_mix_approaches_stationary(self):
        chain = make_chain(persistence=0.3)
        days = chain.sample_days(20000, np.random.default_rng(3))
        freq = np.bincount(days, minlength=3) / days.size
        assert freq == pytest.approx([0.5, 0.3, 0.2], abs=0.03)

    def test_rejects_nonpositive_days(self):
        with pytest.raises(ValueError):
            make_chain().sample_days(0, np.random.default_rng(0))


class TestCloudModelParams:
    def test_defaults_valid(self):
        CloudModelParams()

    def test_rejects_wrong_tuple_length(self):
        with pytest.raises(ValueError):
            CloudModelParams(base_index=(0.9, 0.5))

    def test_rejects_bad_clamp(self):
        with pytest.raises(ValueError):
            CloudModelParams(k_min=1.5, k_max=1.0)

    def test_rejects_bad_mean_reversion(self):
        with pytest.raises(ValueError):
            CloudModelParams(mean_reversion=(0.0, 0.5, 0.5))


class TestIntradayCloudModel:
    def test_clamped_to_range(self):
        params = CloudModelParams()
        model = IntradayCloudModel(params)
        rng = np.random.default_rng(7)
        for day_type in DayType:
            k = model.sample_day(day_type, 1440, rng)
            assert k.shape == (1440,)
            assert (k >= params.k_min).all()
            assert (k <= params.k_max).all()

    def test_clear_days_brighter_than_overcast(self):
        model = IntradayCloudModel(CloudModelParams())
        rng = np.random.default_rng(11)
        clear = np.mean(
            [model.sample_day(DayType.CLEAR, 288, rng).mean() for _ in range(20)]
        )
        overcast = np.mean(
            [model.sample_day(DayType.OVERCAST, 288, rng).mean() for _ in range(20)]
        )
        assert clear > overcast + 0.3

    def test_partly_days_more_variable_than_clear(self):
        model = IntradayCloudModel(CloudModelParams())
        rng = np.random.default_rng(13)
        clear_std = np.mean(
            [model.sample_day(DayType.CLEAR, 288, rng).std() for _ in range(20)]
        )
        partly_std = np.mean(
            [model.sample_day(DayType.PARTLY, 288, rng).std() for _ in range(20)]
        )
        assert partly_std > clear_std

    def test_deterministic_per_seed(self):
        model = IntradayCloudModel(CloudModelParams())
        a = model.sample_day(DayType.PARTLY, 288, np.random.default_rng(5))
        b = model.sample_day(DayType.PARTLY, 288, np.random.default_rng(5))
        assert np.allclose(a, b)

    def test_rejects_nonpositive_samples(self):
        model = IntradayCloudModel(CloudModelParams())
        with pytest.raises(ValueError):
            model.sample_day(DayType.CLEAR, 0, np.random.default_rng(0))

    @settings(max_examples=20, deadline=None)
    @given(
        spd=st.sampled_from([96, 288, 1440]),
        day_type=st.sampled_from(list(DayType)),
        seed=st.integers(0, 10_000),
    )
    def test_clamp_property(self, spd, day_type, seed):
        params = CloudModelParams()
        model = IntradayCloudModel(params)
        k = model.sample_day(day_type, spd, np.random.default_rng(seed))
        assert (k >= params.k_min).all() and (k <= params.k_max).all()
