"""Tests for the SolarTrace container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.solar.trace import MINUTES_PER_DAY, SolarTrace


def make_trace(n_days=3, resolution=30, name="t"):
    spd = MINUTES_PER_DAY // resolution
    values = np.arange(n_days * spd, dtype=float)
    return SolarTrace(values, resolution, name)


class TestConstruction:
    def test_basic_properties(self):
        trace = make_trace(n_days=3, resolution=30)
        assert trace.samples_per_day == 48
        assert trace.n_days == 3
        assert trace.n_samples == 144
        assert len(trace) == 144

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            SolarTrace(np.zeros(10), 7)  # 7 does not divide 1440
        with pytest.raises(ValueError):
            SolarTrace(np.zeros(10), 0)

    def test_rejects_partial_days(self):
        with pytest.raises(ValueError):
            SolarTrace(np.zeros(47), 30)

    def test_rejects_negative_and_nonfinite(self):
        with pytest.raises(ValueError):
            SolarTrace(np.full(48, -1.0), 30)
        bad = np.zeros(48)
        bad[3] = np.nan
        with pytest.raises(ValueError):
            SolarTrace(bad, 30)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            SolarTrace(np.zeros((2, 48)), 30)

    def test_values_read_only(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            trace.values[0] = 99.0


class TestViews:
    def test_as_days_shape_and_content(self):
        trace = make_trace(n_days=2, resolution=30)
        days = trace.as_days()
        assert days.shape == (2, 48)
        assert days[1, 0] == 48.0

    def test_day_indexing(self):
        trace = make_trace(n_days=3)
        assert trace.day(0)[0] == 0.0
        assert trace.day(-1)[0] == trace.day(2)[0]

    def test_select_days(self):
        trace = make_trace(n_days=5)
        sub = trace.select_days(1, 3)
        assert sub.n_days == 2
        assert sub.values[0] == trace.day(1)[0]
        assert sub.name == trace.name

    def test_select_days_empty_raises(self):
        with pytest.raises(ValueError):
            make_trace(n_days=3).select_days(3, 3)


class TestDownsample:
    def test_decimates(self):
        trace = make_trace(n_days=1, resolution=30)
        down = trace.downsample(2)
        assert down.samples_per_day == 24
        assert down.resolution_minutes == 60
        assert down.values[1] == trace.values[2]

    def test_rejects_nondividing_factor(self):
        with pytest.raises(ValueError):
            make_trace(resolution=30).downsample(5)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            make_trace().downsample(0)


class TestStats:
    def test_peak(self):
        assert make_trace(n_days=2).peak == 95.0

    def test_daily_energy(self):
        values = np.full(48, 100.0)  # constant 100 W for a day
        trace = SolarTrace(np.tile(values, 2), 30)
        energy = trace.daily_energy()
        assert energy.shape == (2,)
        assert energy[0] == pytest.approx(2400.0)  # 100 W * 24 h

    @given(st.integers(1, 5), st.sampled_from([15, 30, 60, 5]))
    def test_reshape_roundtrip(self, n_days, resolution):
        trace = make_trace(n_days=n_days, resolution=resolution)
        assert np.array_equal(trace.as_days().reshape(-1), trace.values)
