"""Tests for CSV trace io."""

import io

import numpy as np
import pytest

from repro.solar.io import FormatError, dumps, loads, read_csv, write_csv
from repro.solar.trace import SolarTrace


def small_trace():
    values = np.linspace(0, 500, 96)  # one day at 15-minute resolution
    return SolarTrace(values, 15, "UNIT")


class TestRoundTrip:
    def test_string_roundtrip(self):
        trace = small_trace()
        again = loads(dumps(trace))
        assert again.name == "UNIT"
        assert again.resolution_minutes == 15
        assert np.allclose(again.values, trace.values)

    def test_file_roundtrip(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.csv"
        write_csv(trace, path)
        again = read_csv(path)
        assert np.allclose(again.values, trace.values)

    def test_multiday_roundtrip(self):
        values = np.abs(np.sin(np.arange(2 * 288))) * 900
        trace = SolarTrace(values, 5, "two-days")
        again = loads(dumps(trace))
        assert again.n_days == 2
        assert np.allclose(again.values, trace.values)


class TestFormatValidation:
    def test_missing_magic(self):
        with pytest.raises(FormatError, match="magic"):
            loads("day,minute,ghi_wm2\n1,0,0\n")

    def test_missing_resolution(self):
        text = "# repro-solar-trace v1\n# name: x\nday,minute,ghi_wm2\n1,0,0\n"
        with pytest.raises(FormatError, match="resolution"):
            loads(text)

    def test_bad_header_row(self):
        text = (
            "# repro-solar-trace v1\n# resolution_minutes: 15\n"
            "a,b,c\n1,0,0\n"
        )
        with pytest.raises(FormatError, match="column header"):
            loads(text)

    def test_grid_mismatch_detected(self):
        good = dumps(small_trace())
        lines = good.splitlines()
        # Corrupt one minute stamp.
        row = lines[5].split(",")
        row[1] = "999"
        lines[5] = ",".join(row)
        with pytest.raises(FormatError, match="grid"):
            loads("\n".join(lines) + "\n")

    def test_non_numeric_sample(self):
        good = dumps(small_trace())
        bad = good.replace(good.splitlines()[4].split(",")[2], "abc", 1)
        with pytest.raises(FormatError):
            loads(bad)

    def test_empty_body(self):
        text = (
            "# repro-solar-trace v1\n# resolution_minutes: 15\n"
            "day,minute,ghi_wm2\n"
        )
        with pytest.raises(FormatError, match="no samples"):
            loads(text)

    def test_bad_resolution_value(self):
        text = (
            "# repro-solar-trace v1\n# resolution_minutes: abc\n"
            "day,minute,ghi_wm2\n1,0,0\n"
        )
        with pytest.raises(FormatError, match="resolution"):
            loads(text)

    @pytest.mark.parametrize("resolution", [0, -5, 25, 7])
    def test_wrong_resolution_rejected(self, resolution):
        """Non-positive or non-day-dividing resolutions are format errors."""
        text = (
            f"# repro-solar-trace v1\n# resolution_minutes: {resolution}\n"
            "day,minute,ghi_wm2\n1,0,0\n"
        )
        with pytest.raises(FormatError, match="does not divide a day"):
            loads(text)

    def test_non_monotonic_day_order(self):
        good = dumps(small_trace())
        lines = good.splitlines()
        # Swap two sample rows: the grid is then non-monotonic.
        lines[4], lines[5] = lines[5], lines[4]
        with pytest.raises(FormatError, match="grid"):
            loads("\n".join(lines) + "\n")

    def test_truncated_final_day(self):
        good = dumps(small_trace())
        lines = good.splitlines()
        with pytest.raises(FormatError, match="whole number of days"):
            loads("\n".join(lines[:-10]) + "\n")

    def test_negative_sample_rejected(self):
        good = dumps(small_trace())
        lines = good.splitlines()
        row = lines[10].split(",")
        row[2] = "-5.0"
        lines[10] = ",".join(row)
        with pytest.raises(FormatError, match="negative"):
            loads("\n".join(lines) + "\n")

    def test_non_finite_sample_rejected(self):
        good = dumps(small_trace())
        lines = good.splitlines()
        row = lines[10].split(",")
        row[2] = "inf"
        lines[10] = ",".join(row)
        with pytest.raises(FormatError, match="non-finite"):
            loads("\n".join(lines) + "\n")


class TestWriteFormat:
    def test_header_content(self):
        text = dumps(small_trace())
        lines = text.splitlines()
        assert lines[0] == "# repro-solar-trace v1"
        assert lines[1] == "# name: UNIT"
        assert lines[2] == "# resolution_minutes: 15"
        assert lines[3] == "day,minute,ghi_wm2"

    def test_write_to_text_buffer(self):
        buffer = io.StringIO()
        write_csv(small_trace(), buffer)
        assert buffer.getvalue().startswith("# repro-solar-trace v1")
