"""Tests for slot decomposition."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.solar.slots import SlotView, slot_means, slot_starts
from repro.solar.trace import SolarTrace


def ramp_trace(n_days=2, spd=288):
    values = np.tile(np.arange(spd, dtype=float), n_days)
    return SolarTrace(values, (24 * 60) // spd, "ramp")


class TestSlotView:
    def test_shapes(self):
        view = SlotView.from_trace(ramp_trace(), 48)
        assert view.starts.shape == (2, 48)
        assert view.means.shape == (2, 48)
        assert view.samples_per_slot == 6
        assert view.n_days == 2

    def test_start_is_first_sample(self):
        view = SlotView.from_trace(ramp_trace(), 48)
        # Slot j starts at sample 6j of the day ramp.
        assert view.starts[0, 0] == 0.0
        assert view.starts[0, 1] == 6.0
        assert view.starts[1, 10] == 60.0

    def test_mean_is_slot_average(self):
        view = SlotView.from_trace(ramp_trace(), 48)
        # Slot 0 holds samples 0..5 -> mean 2.5.
        assert view.means[0, 0] == pytest.approx(2.5)

    def test_one_sample_per_slot_start_equals_mean(self):
        view = SlotView.from_trace(ramp_trace(spd=288), 288)
        assert np.array_equal(view.starts, view.means)

    def test_rejects_nondividing_n(self):
        with pytest.raises(ValueError):
            SlotView.from_trace(ramp_trace(spd=288), 100)

    def test_rejects_n_above_native(self):
        with pytest.raises(ValueError):
            SlotView.from_trace(ramp_trace(spd=288), 576)

    def test_slot_duration(self):
        view = SlotView.from_trace(ramp_trace(), 48)
        assert view.slot_duration_hours == pytest.approx(0.5)

    def test_slot_energy(self):
        trace = SolarTrace(np.full(288, 100.0), 5)
        view = SlotView.from_trace(trace, 24)
        assert view.slot_energy() == pytest.approx(np.full((1, 24), 100.0))

    def test_flat_ordering(self):
        view = SlotView.from_trace(ramp_trace(n_days=3), 48)
        flat = view.flat_starts()
        assert flat.shape == (144,)
        assert flat[48] == view.starts[1, 0]
        assert np.array_equal(
            view.flat_means(), view.means.reshape(-1)
        )

    def test_shorthands(self):
        trace = ramp_trace()
        assert np.array_equal(slot_starts(trace, 48), SlotView.from_trace(trace, 48).starts)
        assert np.array_equal(slot_means(trace, 48), SlotView.from_trace(trace, 48).means)

    @given(n=st.sampled_from([288, 96, 72, 48, 24, 12]))
    def test_mean_of_means_equals_trace_mean(self, n):
        trace = ramp_trace(n_days=2)
        view = SlotView.from_trace(trace, n)
        assert view.means.mean() == pytest.approx(trace.values.mean())
